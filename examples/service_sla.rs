//! A serving fleet under tail-latency SLOs: one big memory-bound server
//! pushed near its full-speed serving capacity next to three lightly loaded
//! servers, all under one 280 W budget.
//!
//! Compares uniform, FastCap-style, and SLA-aware cap splitting. The
//! uniform 70 W share starves the big server below its arrival rate — its
//! queue saturates and the p99 blows through the 1 ms target — while the
//! SLA-aware coordinator boosts it to full demand, trims the comfortable
//! servers below theirs, and ends up spending *less* energy.
//!
//! Run with: `cargo run --release --example service_sla`

use coscale_repro::prelude::*;

fn fleet() -> Vec<ServiceServerSpec> {
    vec![
        ServiceServerSpec::small_with_cores("heavy", "MEM2", 11, 230_000.0, 8)
            .with_p99_target_s(1e-3),
        ServiceServerSpec::small("light0", "ILP1", 12, 30_000.0).with_p99_target_s(1e-3),
        ServiceServerSpec::small("light1", "ILP2", 13, 30_000.0).with_p99_target_s(1e-3),
        ServiceServerSpec::small("light2", "MID2", 14, 30_000.0).with_p99_target_s(1e-3),
    ]
}

fn main() {
    let global_cap_w = 280.0;
    println!(
        "service_sla: {} servers, budget {global_cap_w} W, p99 target 1 ms\n",
        fleet().len()
    );

    let mut results: Vec<ServiceResult> = Vec::new();
    for split in [CapSplit::Uniform, CapSplit::FastCap, CapSplit::SlaAware] {
        let cfg = ServiceConfig::new(fleet(), global_cap_w, split)
            .with_rounds(40)
            .with_threads(4);
        let r = run_service(cfg);

        println!("== {split} ==");
        println!(
            "  {:<8} {:>9} {:>8} {:>8} {:>10} {:>10} {:>5} {:>9}",
            "server", "mean cap", "done", "shed", "p50", "p99", "SLO", "energy"
        );
        for o in &r.outcomes {
            println!(
                "  {:<8} {:>7.1} W {:>8} {:>8} {:>7.0} µs {:>7.0} µs {:>5} {:>7.2} J",
                o.name,
                o.mean_cap_w,
                o.completed,
                o.shed,
                o.percentile_s(0.50) * 1e6,
                o.p99_s() * 1e6,
                if o.meets_slo() { "met" } else { "MISS" },
                o.energy_j,
            );
        }
        println!(
            "  fleet: energy {:.2} J | p99 {:.3} ms | SLO violations {} rounds | rejects {}\n",
            r.total_energy_j(),
            r.fleet_percentile_s(0.99) * 1e3,
            r.total_violation_rounds(),
            r.total_shed(),
        );
        results.push(r);
    }

    let (uni, sla) = (&results[0], &results[2]);
    println!(
        "SLA-aware vs uniform at {global_cap_w} W: every server {} its p99 target \
         (uniform: {}/{}), energy {:+.1}%",
        if sla.all_meet_slo() {
            "meets"
        } else {
            "misses"
        },
        uni.outcomes.iter().filter(|o| o.meets_slo()).count(),
        uni.outcomes.len(),
        (sla.total_energy_j() / uni.total_energy_j() - 1.0) * 100.0,
    );
}
