//! Quickstart: run one workload mix under CoScale and report energy savings
//! against the no-DVFS baseline.
//!
//! ```text
//! cargo run --release --example quickstart [MIX_NAME]
//! ```

use coscale_repro::prelude::*;

fn main() {
    let mix_name = std::env::args().nth(1).unwrap_or_else(|| "MIX2".into());
    let m = mix(&mix_name).unwrap_or_else(|| {
        eprintln!("unknown mix '{mix_name}'; known mixes:");
        for m in all_mixes() {
            eprintln!("  {} ({}): {}", m.name, m.class, m.apps.join(" "));
        }
        std::process::exit(2);
    });

    // A reduced configuration keeps this example fast: 16 cores, 8 M
    // instructions per application. `SimConfig::for_mix` alone gives the
    // paper-scale setup.
    let mut cfg = SimConfig::for_mix(m);
    cfg.target_instrs = 8_000_000;

    println!("Simulating {mix_name} at maximum frequencies (baseline)...");
    let base = run_policy(cfg.clone(), PolicyKind::StaticMax);
    println!(
        "  baseline: {} epochs, makespan {}, energy {:.2} J",
        base.epochs,
        base.makespan,
        base.total_energy_j()
    );

    println!("Simulating {mix_name} under CoScale (γ = 10%)...");
    let run = run_policy(cfg, PolicyKind::CoScale);
    println!(
        "  CoScale:  {} epochs, makespan {}, energy {:.2} J",
        run.epochs,
        run.makespan,
        run.total_energy_j()
    );

    let degr = run.degradation_vs(&base);
    let worst = degr.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!(
        "full-system energy savings: {:.1}%",
        100.0 * run.energy_savings_vs(&base)
    );
    println!(
        "CPU energy savings:         {:.1}%",
        100.0 * (1.0 - run.cpu_energy_j / base.cpu_energy_j)
    );
    println!(
        "memory energy savings:      {:.1}%",
        100.0 * (1.0 - run.mem_energy_j / base.mem_energy_j)
    );
    println!(
        "worst application slowdown: {:.1}% (bound 10%)",
        100.0 * worst
    );
}
