//! Compare all seven energy-management policies on one mix — the experiment
//! behind Figures 8 and 9 of the paper, at example scale.
//!
//! ```text
//! cargo run --release --example policy_comparison [MIX_NAME]
//! ```

use coscale_repro::prelude::*;

fn main() {
    let mix_name = std::env::args().nth(1).unwrap_or_else(|| "MID1".into());
    let m = mix(&mix_name).unwrap_or_else(|| {
        eprintln!("unknown mix '{mix_name}'");
        std::process::exit(2);
    });
    let mut cfg = SimConfig::for_mix(m);
    cfg.target_instrs = 6_000_000;

    eprintln!("running baseline...");
    let base = run_policy(cfg.clone(), PolicyKind::StaticMax);

    println!(
        "{:<18} {:>12} {:>10} {:>10} {:>10}  bound (10%)",
        "policy", "energy (J)", "savings", "avg slow", "worst"
    );
    for kind in [
        PolicyKind::MemScale,
        PolicyKind::CpuOnly,
        PolicyKind::Uncoordinated,
        PolicyKind::SemiCoordinated,
        PolicyKind::CoScale,
        PolicyKind::Offline,
    ] {
        eprintln!("running {kind}...");
        let r = run_policy(cfg.clone(), kind);
        let d = r.degradation_vs(&base);
        let avg = d.iter().sum::<f64>() / d.len() as f64;
        let worst = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:<18} {:>12.3} {:>9.1}% {:>9.1}% {:>9.1}%  {}",
            kind.to_string(),
            r.total_energy_j(),
            100.0 * r.energy_savings_vs(&base),
            100.0 * avg,
            100.0 * worst,
            if worst <= 0.115 { "met" } else { "VIOLATED" },
        );
    }
    println!(
        "\n(baseline: {:.3} J, makespan {}; the paper's headline claims are that\n\
         CoScale ≈ Offline, Semi-coordinated trails CoScale, and Uncoordinated\n\
         violates the bound)",
        base.total_energy_j(),
        base.makespan
    );
}
