//! Hierarchical budget trees: a bursty rack next to a quiet pod, under one
//! 280 W fleet budget.
//!
//! The rack holds an 8-core memory-bound server absorbing an MMPP stream
//! that bursts to ~1.2× a calm rate already near its capped serving
//! capacity, plus a calm rack-mate; the pod holds two lightly loaded
//! servers. A flat uniform split hands the bursty server a 70 W share it
//! cannot serve bursts on — its p99 blows through the 1 ms target and the
//! queue sheds. The two-level tree
//! `dc:uniform[rack:sla-aware[h0,m0],pod:fastcap[q0,q1]]` pins each group
//! to half the budget and lets the rack's SLA-aware node shift watts onto
//! the bursting server the moment its tail-latency signal trips —
//! containing the burst inside the rack without taking a single watt from
//! the quiet pod, and on less energy than the flat split.
//!
//! Run with: `cargo run --release --example hierarchical_capping`

use coscale_repro::prelude::*;

fn fleet() -> Vec<ServiceServerSpec> {
    vec![
        // The bursty rack: h0's MMPP stream bursts to 240k req/s against a
        // ~230k req/s full-power serving capacity; m0 is its calm rack-mate.
        ServiceServerSpec::small_with_cores("h0", "MEM2", 11, 200_000.0, 8)
            .with_p99_target_s(1e-3)
            .with_arrivals(ArrivalKind::Mmpp {
                rate_hz: 200_000.0,
                burst_factor: 1.2,
                mean_calm: Ps::from_ms(3),
                mean_burst: Ps::from_ms(2),
                diurnal_period: Ps::ZERO,
                diurnal_depth: 0.0,
            }),
        ServiceServerSpec::small("m0", "MID1", 12, 25_000.0).with_p99_target_s(1e-3),
        // The quiet pod: steady light streams.
        ServiceServerSpec::small("q0", "ILP1", 13, 30_000.0).with_p99_target_s(1e-3),
        ServiceServerSpec::small("q1", "MID2", 14, 30_000.0).with_p99_target_s(1e-3),
    ]
}

fn report(label: &str, r: &ServiceResult) {
    println!("== {label} ==");
    if let Some(t) = &r.topology {
        println!("  topology: {t}");
    }
    println!(
        "  {:<4} {:>9} {:>8} {:>8} {:>10} {:>5} {:>9}",
        "srv", "mean cap", "done", "shed", "p99", "SLO", "energy"
    );
    for o in &r.outcomes {
        println!(
            "  {:<4} {:>7.1} W {:>8} {:>8} {:>7.0} µs {:>5} {:>7.2} J",
            o.name,
            o.mean_cap_w,
            o.completed,
            o.shed,
            o.p99_s() * 1e6,
            if o.meets_slo() { "met" } else { "MISS" },
            o.energy_j,
        );
    }
    println!(
        "  fleet: energy {:.2} J | SLO violations {} rounds | rejects {}\n",
        r.total_energy_j(),
        r.total_violation_rounds(),
        r.total_shed(),
    );
}

fn main() {
    let global_cap_w = 280.0;
    println!(
        "hierarchical_capping: {} servers, budget {global_cap_w} W, p99 target 1 ms\n",
        fleet().len()
    );

    let flat = run_service(
        ServiceConfig::new(fleet(), global_cap_w, CapSplit::Uniform)
            .with_rounds(40)
            .with_threads(4),
    );
    report("flat uniform", &flat);

    let tree = BudgetTree::parse("dc:uniform[rack:sla-aware[h0,m0],pod:fastcap[q0,q1]]").unwrap();
    let hier = run_service(
        ServiceConfig::new(fleet(), global_cap_w, CapSplit::Uniform)
            .with_topology(tree)
            .with_rounds(40)
            .with_threads(4),
    );
    report("tree uniform[sla-aware, fastcap]", &hier);

    println!(
        "tree vs flat uniform at {global_cap_w} W: tree {} every p99 target \
         (flat: {}/{}), energy {:+.1}%",
        if hier.all_meet_slo() {
            "meets"
        } else {
            "misses"
        },
        flat.outcomes.iter().filter(|o| o.meets_slo()).count(),
        flat.outcomes.len(),
        (hier.total_energy_j() / flat.total_energy_j() - 1.0) * 100.0,
    );
}
