//! Multi-tier request DAGs with trace-driven cross-tier power shifting.
//!
//! A two-tier service — a power-hungry ILP front end and a storage tier
//! doing 4× the per-request work at 2× the fan-out — serves a closed-loop
//! client population under one tight budget. Client requests become DAGs
//! (`fe[2] -> st[2]*2@4`): each front-end span spawns two storage spans
//! and the client hears back only when the whole DAG closes, so the SLA
//! binds the *end-to-end* p99.
//!
//! Three cross-tier disciplines split the same budget over the tiers:
//!
//! * `uniform` — half the budget each, blind to where time goes;
//! * `demand-proportional` — watts follow *power* demand, which favors
//!   the hungry front end, not the slow storage tier;
//! * `critical-path` — watts follow the windowed per-tier critical-path
//!   attribution from the request traces, shifting budget to whichever
//!   tier is the slowest leg of closed DAGs (PowerTracer's insight inside
//!   the lease-capping framework).
//!
//! At 220 W only the critical-path split meets the 4 ms end-to-end p99:
//! the static splits leave the storage tier throttled and the tail
//! doubles, at the same energy.
//!
//! Run with: `cargo run --release --example multi_tier`

use coscale_repro::prelude::*;

fn config(tier_split: CapSplit, budget_w: f64, rounds: usize) -> ServiceConfig {
    let graph: TierGraph = "fe[2] -> st[2]*2@4".parse().unwrap();
    let fleet: Vec<ServiceServerSpec> = graph
        .server_names()
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mix = if name.starts_with("fe") {
                "ILP1"
            } else {
                "MID2"
            };
            ServiceServerSpec::small_with_cores(name, mix, 40 + i as u64, 0.0, 4)
        })
        .collect();
    ServiceConfig::new(fleet, budget_w, CapSplit::FastCap)
        .with_rounds(rounds)
        .with_threads(4)
        .with_closed_loop(
            ClosedLoopConfig::new(96, Ps::from_us(100), BalancePolicy::LeastQueue)
                .with_mean_request_instrs(60_000.0),
        )
        .with_tiers(
            TierConfig::new(graph)
                .with_e2e_target_s(4e-3)
                .with_tier_split(tier_split),
        )
}

fn main() {
    let budget_w = 220.0;
    let rounds = 24;
    println!("multi_tier: fe[2] -> st[2]*2@4, {budget_w} W budget, 4 ms e2e p99 target\n");
    println!(
        "{:<20} {:>8} {:>12} {:>12} {:>8} {:>10}  tier crit shares",
        "tier split", "DAGs", "e2e p50", "e2e p99", "SLO", "energy"
    );
    for tier_split in [
        CapSplit::Uniform,
        CapSplit::DemandProportional,
        CapSplit::CriticalPath,
    ] {
        let r = run_service(config(tier_split, budget_w, rounds));
        let t = r.tiers.as_ref().unwrap();
        let shares: Vec<String> = t
            .crit_shares()
            .iter()
            .zip(&t.tier_names)
            .map(|(s, n)| format!("{n} {s:.2}"))
            .collect();
        println!(
            "{:<20} {:>8} {:>9.3} ms {:>9.3} ms {:>8} {:>8.2} J  {}",
            tier_split.to_string(),
            t.stats.roots_closed,
            t.e2e_percentile_s(0.50) * 1e3,
            t.e2e_p99_s() * 1e3,
            if t.meets_e2e_slo() { "met" } else { "MISSED" },
            r.total_energy_j(),
            shares.join(", "),
        );
    }
}
