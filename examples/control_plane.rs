//! The message-passing control plane under fire: the same four-server
//! fleet run three ways —
//!
//! 1. **loopback** — the default perfect plane (bit-identical to a
//!    direct-call coordinator);
//! 2. **lossy** — one round of RPC latency, 20% loss, 5% duplication:
//!    grants and acks vanish, servers ride stale leases or fall to the
//!    floor cap, and the budget is *still* conserved every round;
//! 3. **failover** — the primary coordinator is partitioned away
//!    mid-run, the standby elects itself, and the healed primary steps
//!    down.
//!
//! Run with: `cargo run --release --example control_plane`

use coscale_repro::prelude::*;

fn fleet() -> Vec<ServerSpec> {
    (0..4)
        .map(|i| {
            let mut s = ServerSpec::small(&format!("s{i}"), "MID1", 1 + i);
            s.config.target_instrs *= 20;
            s
        })
        .collect()
}

const BUDGET_W: f64 = 120.0;

fn run(label: &str, rpc: RpcConfig) -> ClusterResult {
    let floor_w = rpc.floor_cap_w;
    let cfg = ClusterConfig::new(fleet(), BUDGET_W, CapSplit::FastCap).with_rpc(rpc);
    let n = cfg.servers.len();
    let r = run_cluster(cfg);

    // The ledger's guarantee: in-force caps never sum past the budget
    // plus the floors of expired leases, no matter what the plane ate.
    let mut worst = 0.0_f64;
    for caps in &r.cap_timeline {
        worst = worst.max(caps.iter().sum());
    }
    assert!(worst <= BUDGET_W + n as f64 * floor_w + 1e-6);

    let c = &r.control;
    println!("== {label} ==");
    println!(
        "  {} rounds, makespan {:.2} ms, energy {:.2} J, max Σcaps {:.1} W",
        r.rounds,
        r.makespan().as_secs_f64() * 1e3,
        r.total_energy_j(),
        worst
    );
    println!(
        "  plane: {} sent / {} delivered / {} lost / {} cut / {} duplicated",
        c.plane.sent,
        c.plane.delivered,
        c.plane.dropped_loss,
        c.plane.dropped_partition,
        c.plane.duplicated
    );
    println!(
        "  grants: {}/{} applied, {} stale, {} expired-on-arrival; \
         {} lease expirations, {} floor rounds",
        c.grants_applied,
        c.grants_sent,
        c.grants_stale,
        c.grants_expired,
        c.lease_expirations,
        c.floor_rounds
    );
    if c.elections > 0 || c.step_downs > 0 {
        println!(
            "  failover: {} election(s), {} step-down(s), final terms {:?}",
            c.elections, c.step_downs, c.terms
        );
    }
    println!();
    r
}

fn main() {
    let loopback = run("loopback (perfect plane)", RpcConfig::default());

    let lossy = run(
        "lossy (1-round latency, 20% loss, 5% dup, 6 W floor)",
        RpcConfig {
            latency_us: 1250.0,
            loss: 0.2,
            duplicate: 0.05,
            floor_cap_w: 6.0,
            ..RpcConfig::default()
        },
    );

    let failover = run(
        "failover (primary partitioned rounds 8..20)",
        RpcConfig {
            failover: true,
            partitions: vec![PartitionSpec {
                from_round: 8,
                to_round: 20,
                nodes: vec!["primary".into()],
            }],
            ..RpcConfig::default()
        },
    );
    assert_eq!(failover.control.elections, 1);
    assert_eq!(failover.control.terms, vec![1, 1]);

    // Leases are what make the fleet this hard to hurt: a dropped renewal
    // means riding the previous cap (steady demand makes that nearly
    // free), never a stall — 20% loss costs ~0% makespan here, and the
    // leader change is invisible to the physics.
    println!(
        "loss cost the fleet {:+.1}% makespan; the failover run finished \
         within {:+.1}% of loopback under a different leader",
        100.0 * (lossy.makespan().as_secs_f64() / loopback.makespan().as_secs_f64() - 1.0),
        100.0 * (failover.makespan().as_secs_f64() / loopback.makespan().as_secs_f64() - 1.0),
    );
}
