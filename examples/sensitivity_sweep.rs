//! Sweep the performance-degradation bound γ (the paper's Figure 10) on one
//! mix and print the savings/degradation trade-off curve.
//!
//! ```text
//! cargo run --release --example sensitivity_sweep [MIX_NAME]
//! ```

use coscale_repro::prelude::*;

fn main() {
    let mix_name = std::env::args().nth(1).unwrap_or_else(|| "MID3".into());
    let m = mix(&mix_name).unwrap_or_else(|| {
        eprintln!("unknown mix '{mix_name}'");
        std::process::exit(2);
    });
    let mut cfg = SimConfig::for_mix(m);
    cfg.target_instrs = 6_000_000;

    eprintln!("running baseline...");
    let base = run_policy(cfg.clone(), PolicyKind::StaticMax);

    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "γ", "savings", "avg slow", "worst slow"
    );
    for gamma in [0.01, 0.05, 0.10, 0.15, 0.20] {
        let mut c = cfg.clone();
        c.gamma = gamma;
        eprintln!("running γ = {gamma}...");
        let r = run_policy(c, PolicyKind::CoScale);
        let d = r.degradation_vs(&base);
        let avg = d.iter().sum::<f64>() / d.len() as f64;
        let worst = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:>5.0}% {:>11.1}% {:>11.1}% {:>11.1}%",
            100.0 * gamma,
            100.0 * r.energy_savings_vs(&base),
            100.0 * avg,
            100.0 * worst
        );
    }
    println!(
        "\nExpected shape (paper Fig. 10): savings grow with the bound while\n\
         the worst slowdown always stays under γ."
    );
}
