//! Closed-loop clients + fleet load balancing under a tight global cap.
//!
//! A population of interactive clients (request → response → exponential
//! think) drives a heterogeneous fleet: one big memory-bound server next
//! to three small ones, under a budget tight enough that the uniform split
//! throttles the big server hard. A round-robin front end keeps sending it
//! a quarter of the traffic anyway — its queue grows and the fleet p99
//! blows up. The power-headroom balancer reads the same caps the
//! coordinator just granted and steers traffic toward servers with watts
//! of slack, meeting the p99 target at the same budget.
//!
//! Run with: `cargo run --release --example closed_loop_balancing`

use coscale_repro::prelude::*;

fn fleet() -> Vec<ServiceServerSpec> {
    vec![
        ServiceServerSpec::small_with_cores("big", "MEM2", 11, 0.0, 8).with_p99_target_s(2e-3),
        ServiceServerSpec::small("small0", "ILP1", 12, 0.0).with_p99_target_s(2e-3),
        ServiceServerSpec::small("small1", "ILP2", 13, 0.0).with_p99_target_s(2e-3),
        ServiceServerSpec::small("small2", "ILP1", 14, 0.0).with_p99_target_s(2e-3),
    ]
}

fn main() {
    let global_cap_w = 200.0;
    let clients = 320;
    let think = Ps::from_us(100);
    println!(
        "closed_loop_balancing: {} clients, {} µs mean think, {} W budget, uniform split\n",
        clients,
        think.as_us(),
        global_cap_w
    );
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "balancer", "generated", "completed", "fleet p99", "big p99", "energy"
    );
    for balance in [
        BalancePolicy::RoundRobin,
        BalancePolicy::LeastQueue,
        BalancePolicy::PowerHeadroom,
    ] {
        let cfg = ServiceConfig::new(fleet(), global_cap_w, CapSplit::Uniform)
            .with_rounds(40)
            .with_threads(4)
            .with_closed_loop(
                ClosedLoopConfig::new(clients, think, balance).with_mean_request_instrs(120_000.0),
            );
        let r = run_service(cfg);
        let cl = r.closed_loop.as_ref().unwrap();
        let big = r.outcomes.iter().find(|o| o.name == "big").unwrap();
        println!(
            "{:<16} {:>10} {:>10} {:>9.3} ms {:>9.3} ms {:>8.2} J",
            balance.to_string(),
            cl.generated,
            r.total_completed(),
            r.fleet_percentile_s(0.99) * 1e3,
            big.p99_s() * 1e3,
            r.total_energy_j(),
        );
    }
    println!(
        "\nThe headroom-weighted balancer routes around the capped big server;\n\
         round-robin saturates it and the whole fleet's tail pays."
    );
}
