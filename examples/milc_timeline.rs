//! The paper's Figure 7 case study: how CoScale, Uncoordinated and
//! Semi-coordinated track milc's phase changes in MIX2, epoch by epoch.
//!
//! Prints an ASCII timeline of the memory-bus frequency and milc's core
//! frequency under each policy.
//!
//! ```text
//! cargo run --release --example milc_timeline
//! ```

use coscale_repro::prelude::*;

fn main() {
    let m = mix("MIX2").expect("MIX2 exists");
    let milc_cores = m.cores_of("milc");
    let mut cfg = SimConfig::for_mix(m);
    cfg.target_instrs = 10_000_000;

    let policies = [
        PolicyKind::CoScale,
        PolicyKind::Uncoordinated,
        PolicyKind::SemiCoordinated,
    ];
    for kind in policies {
        eprintln!("running {kind}...");
        let r = run_policy(cfg.clone(), kind);
        println!("\n=== {kind} ({} epochs) ===", r.epochs);
        println!(
            "{:>5}  {:>9}  {:>10}  bars: memory #### / core ====",
            "epoch", "mem (GHz)", "core (GHz)"
        );
        for rec in &r.records {
            let mem_ghz = cfg.mem.freq_grid[rec.plan.mem].as_ghz();
            let core_ghz: f64 = milc_cores
                .iter()
                .map(|&c| cfg.core_freqs[rec.plan.cores[c]].as_ghz())
                .sum::<f64>()
                / milc_cores.len() as f64;
            let mem_bar = "#".repeat((mem_ghz * 25.0).round() as usize);
            let core_bar = "=".repeat((core_ghz * 5.0).round() as usize);
            println!(
                "{:>5}  {:>9.3}  {:>10.2}  |{mem_bar:<20}|{core_bar:<20}|",
                rec.epoch, mem_ghz, core_ghz
            );
        }
    }
    println!(
        "\nExpected shape (paper Fig. 7): CoScale settles quickly and re-tracks\n\
         milc's three phases; Uncoordinated runs both frequencies too low;\n\
         Semi-coordinated oscillates before settling in a local minimum."
    );
}
