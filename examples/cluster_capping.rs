//! Cluster power capping: eight heterogeneous servers under one global
//! power budget, coordinated by the cluster-level cap redistributor.
//!
//! Compares the three splitting disciplines (uniform, demand-proportional,
//! FastCap-style marginal-utility) at the same budget, printing per-server
//! caps, total energy, and the Jain fairness index.
//!
//! Run with: `cargo run --release --example cluster_capping`

use coscale_repro::prelude::*;

fn fleet() -> Vec<ServerSpec> {
    // Big memory-bound servers next to small compute-bound ones — demand
    // spans roughly 57..97 W, so a uniform share over-provisions the small
    // servers (which saturate below it) while starving the big ones. The
    // faster servers get proportionally longer workloads so the whole
    // fleet stays busy together, as in steady-state server load.
    let mut f = vec![
        ServerSpec::small_with_cores("mem-8c-a", "MEM2", 1, 8),
        ServerSpec::small_with_cores("mem-8c-b", "MEM2", 2, 8),
        ServerSpec::small_with_cores("mem-8c-c", "MEM2", 3, 8),
        ServerSpec::small_with_cores("mid-4c", "MID1", 4, 4),
        ServerSpec::small_with_cores("ilp-2c-a", "ILP2", 5, 2),
        ServerSpec::small_with_cores("ilp-2c-b", "ILP2", 6, 2),
        ServerSpec::small_with_cores("ilp-2c-c", "ILP2", 7, 2),
        ServerSpec::small_with_cores("ilp-2c-d", "ILP2", 8, 2),
    ];
    f[3].config.target_instrs *= 2;
    for s in &mut f[4..] {
        s.config.target_instrs *= 3;
    }
    f
}

fn main() {
    let global_cap_w = 440.0; // ~75% of the fleet's uncapped demand
    println!(
        "cluster_capping: {} servers, global budget {global_cap_w} W\n",
        fleet().len()
    );

    let mut results: Vec<ClusterResult> = Vec::new();
    for split in [
        CapSplit::Uniform,
        CapSplit::DemandProportional,
        CapSplit::FastCap,
    ] {
        let cfg = ClusterConfig::new(fleet(), global_cap_w, split)
            .with_epochs_per_round(2)
            .with_threads(4);
        let r = run_cluster(cfg);

        println!("== {split} ==");
        println!(
            "  {:<10} {:>9} {:>9} {:>12} {:>11} {:>6}",
            "server", "mean cap", "final cap", "makespan", "energy", "viol"
        );
        for o in &r.outcomes {
            println!(
                "  {:<10} {:>7.1} W {:>7.1} W {:>9.2} ms {:>9.2} J {:>6}",
                o.name,
                o.mean_cap_w,
                o.final_cap_w,
                o.result.makespan.as_secs_f64() * 1e3,
                o.result.total_energy_j(),
                o.violation_rounds,
            );
        }
        println!(
            "  total energy {:.1} J | cluster makespan {:.2} ms | aggregate {:.2} GIPS",
            r.total_energy_j(),
            r.makespan().as_secs_f64() * 1e3,
            r.aggregate_throughput_ips() / 1e9,
        );
        println!(
            "  cap fairness (Jain) {:.3} | perf fairness {:.3} | rounds {} | violations {}\n",
            r.cap_fairness(),
            r.perf_fairness(),
            r.rounds,
            r.total_violations(),
        );
        results.push(r);
    }

    let uni = &results[0];
    let fc = &results[2];
    println!(
        "FastCap vs uniform at {global_cap_w} W: aggregate throughput {:+.1}%, \
         cluster makespan {:+.1}%",
        (fc.aggregate_throughput_ips() / uni.aggregate_throughput_ips() - 1.0) * 100.0,
        (fc.makespan().as_secs_f64() / uni.makespan().as_secs_f64() - 1.0) * 100.0,
    );
}
