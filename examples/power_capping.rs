//! The paper's §2.3 extension: running CoScale's machinery as a *power
//! capper* — maximize performance subject to a full-system power budget.
//!
//! Sweeps a range of caps on one mix and prints the resulting
//! power/performance frontier.
//!
//! ```text
//! cargo run --release --example power_capping [MIX_NAME]
//! ```

use coscale::PowerCapPolicy;
use coscale_repro::prelude::*;

fn main() {
    let mix_name = std::env::args().nth(1).unwrap_or_else(|| "MID2".into());
    let m = mix(&mix_name).unwrap_or_else(|| {
        eprintln!("unknown mix '{mix_name}'");
        std::process::exit(2);
    });
    let mut cfg = SimConfig::for_mix(m);
    cfg.target_instrs = 6_000_000;

    eprintln!("running uncapped baseline...");
    let base = run_policy(cfg.clone(), PolicyKind::StaticMax);
    let base_power = base.total_energy_j() / base.makespan.as_secs_f64();
    println!(
        "uncapped: {:.1} W average, makespan {}",
        base_power, base.makespan
    );
    println!(
        "\n{:>10} {:>12} {:>12} {:>12}",
        "cap (W)", "avg power", "within cap", "slowdown"
    );
    for frac in [0.95, 0.9, 0.85, 0.8, 0.75, 0.7] {
        let cap = base_power * frac;
        eprintln!("running cap = {cap:.1} W...");
        let r = Runner::new(cfg.clone(), PolicyKind::PowerCap)
            .with_policy(Box::new(PowerCapPolicy::new(cap)))
            .run();
        let avg = r.total_energy_j() / r.makespan.as_secs_f64();
        let slow = r.makespan.as_secs_f64() / base.makespan.as_secs_f64() - 1.0;
        println!(
            "{:>10.1} {:>11.1}W {:>12} {:>11.1}%",
            cap,
            avg,
            if avg <= cap * 1.05 { "yes" } else { "NO" },
            100.0 * slow
        );
    }
    println!("\nLower caps trade performance for a hard power ceiling — the dual\nof CoScale's energy-minimization-under-performance-bound objective.");
}
