#!/usr/bin/env bash
# Fleet-scale performance gate: runs the `fleet-scale-ns` criterion bench
# (ns per server-epoch at 1k/8k/32k synthetic servers) and fails when the
# scaling invariant (32k <= 2x 1k) or the committed baseline ratios in
# crates/bench/baselines/fleet_scale_ns.json regress by more than 20%.
# The bench binary itself enforces both gates and writes
# results/fleet_scale_ns.{json,tsv} for the CI artifact upload.
#
# Set FLEET_SCALE_SKIP=1 to skip (the bench exits 0 without measuring).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p bench --bench fleet_scale_ns --offline
