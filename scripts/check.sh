#!/usr/bin/env bash
# Full local CI gate: format, lint, test. Works offline — the workspace
# vendors its only external (dev) dependencies as local shim crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test =="
cargo test -q --workspace --offline

echo "== cargo test --release =="
cargo test -q --workspace --offline --release

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "All checks passed."
