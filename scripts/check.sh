#!/usr/bin/env bash
# Full local CI gate: format, lint, test. Works offline — the workspace
# vendors its only external (dev) dependencies as local shim crates.
# Each gate is wall-clock timed so slow suites are caught when they land,
# not when CI starts timing out.
set -euo pipefail
cd "$(dirname "$0")/.."

declare -a TIMINGS=()

step() {
    local label="$1"
    shift
    echo "== $label =="
    local start
    start=$(date +%s)
    "$@"
    local elapsed=$(($(date +%s) - start))
    TIMINGS+=("$(printf '%5ss  %s' "$elapsed" "$label")")
}

step "cargo fmt --check" cargo fmt --all -- --check
step "cargo clippy (deny warnings)" \
    cargo clippy --workspace --all-targets --offline -- -D warnings
step "cargo test" cargo test -q --workspace --offline
step "cargo test --release" cargo test -q --workspace --offline --release
step "cargo doc (deny warnings)" \
    env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet
step "fleet-scale-ns gate" ./scripts/fleet_scale_gate.sh

echo
echo "== wall-clock per gate =="
printf '%s\n' "${TIMINGS[@]}"
echo "All checks passed."
