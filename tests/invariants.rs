//! Cross-layer invariant suite: properties that must hold across the
//! service, cluster, and kernel layers *together* — request conservation
//! through the closed loop under churn, topology, and balancing; pinned
//! determinism digests; hierarchical budget bounds at every tree node; a
//! Little's-law concurrency bound on the client population; and
//! message-plane conservation (no grant double-applied, leased fleet power
//! within budget) under arbitrary loss, delay, duplication, and failover.

use cluster::{
    run_cluster, BudgetTree, ClusterConfig, EngineKind, RpcConfig, ServerDemand,
    ServerSpec as ClusterServerSpec, SlaSignal,
};
use proptest::prelude::*;
use service::{
    run_service, BalancePolicy, CapSplit, ChurnSchedule, ClientModel, ClosedLoopConfig,
    ServiceConfig, ServiceServerSpec, TierConfig, TierGraph,
};
use simkernel::Ps;

/// FNV-1a over the digest text: a stable 64-bit fingerprint that pins the
/// whole result (energies, caps, queue counters, latency buckets, client
/// summary) to a golden constant.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A small closed-loop fleet used by the pinned-digest tests.
fn golden_config(balance: BalancePolicy, threads: usize) -> ServiceConfig {
    let fleet = vec![
        ServiceServerSpec::small("g0", "MID1", 71, 0.0).with_p99_target_s(2e-3),
        ServiceServerSpec::small("g1", "MEM1", 72, 0.0).with_p99_target_s(2e-3),
    ];
    ServiceConfig::new(fleet, 120.0, CapSplit::FastCap)
        .with_rounds(10)
        .with_threads(threads)
        .with_closed_loop(ClosedLoopConfig::new(32, Ps::from_us(150), balance))
}

/// Golden digests: the full result of a closed-loop balanced run is pinned
/// to a constant, and stays bit-identical at 1, 2, 4, and 8 worker
/// threads. If an intentional change to the simulation shifts these
/// constants, re-pin them — the test exists to make such shifts loud.
#[test]
fn closed_loop_digests_are_pinned_across_thread_counts() {
    const GOLDEN_RR: u64 = 15891606353102054917;
    const GOLDEN_HEADROOM: u64 = 11847957108660972150;
    for (balance, golden) in [
        (BalancePolicy::RoundRobin, GOLDEN_RR),
        (BalancePolicy::PowerHeadroom, GOLDEN_HEADROOM),
    ] {
        let d1 = run_service(golden_config(balance, 1)).digest();
        for threads in [2, 4, 8] {
            let d = run_service(golden_config(balance, threads)).digest();
            assert_eq!(d1, d, "[{balance}] 1 vs {threads} threads");
        }
        assert_eq!(
            fnv1a(d1.as_bytes()),
            golden,
            "[{balance}] digest drifted from the pinned constant:\n{d1}"
        );
    }
}

/// The same fleet under the fluid client model, at a population three
/// orders of magnitude past what the exact pool's goldens use: pinned to
/// its own constants and bit-identical at 1, 2, 4, and 8 worker threads.
/// The fluid path samples cohorts from a single per-pool RNG stream and
/// accumulates delivery times order-independently, so thread scheduling
/// must never reach the digest.
#[test]
fn fluid_closed_loop_digests_are_pinned_across_thread_counts() {
    const GOLDEN_RR: u64 = 385556877408166161;
    const GOLDEN_HEADROOM: u64 = 12317322600907262873;
    let config = |balance, threads| {
        let fleet = vec![
            ServiceServerSpec::small("g0", "MID1", 71, 0.0).with_p99_target_s(2e-3),
            ServiceServerSpec::small("g1", "MEM1", 72, 0.0).with_p99_target_s(2e-3),
        ];
        ServiceConfig::new(fleet, 120.0, CapSplit::FastCap)
            .with_rounds(10)
            .with_threads(threads)
            .with_closed_loop(
                ClosedLoopConfig::new(50_000, Ps::from_ms(1), balance)
                    .with_model(ClientModel::Fluid),
            )
    };
    for (balance, golden) in [
        (BalancePolicy::RoundRobin, GOLDEN_RR),
        (BalancePolicy::PowerHeadroom, GOLDEN_HEADROOM),
    ] {
        let d1 = run_service(config(balance, 1)).digest();
        for threads in [2, 4, 8] {
            let d = run_service(config(balance, threads)).digest();
            assert_eq!(d1, d, "[{balance}] fluid digest: 1 vs {threads} threads");
        }
        assert_eq!(
            fnv1a(d1.as_bytes()),
            golden,
            "[{balance}] fluid digest drifted from the pinned constant:\n{d1}"
        );
    }
}

/// Little's law on the closed loop: with zero think time and one server,
/// the client population is a hard bound on concurrency — at most
/// `clients` requests are ever in the system, so the completed requests'
/// total sojourn time cannot exceed `clients x horizon`, and a saturated
/// server should keep mean concurrency near that ceiling.
#[test]
fn zero_think_population_bounds_concurrency() {
    let clients = 24;
    let rounds = 12;
    let fleet = vec![ServiceServerSpec::small("solo", "MID1", 81, 0.0)];
    let cfg = ServiceConfig::new(fleet, 50.0, CapSplit::Uniform)
        .with_rounds(rounds)
        .with_closed_loop(
            ClosedLoopConfig::new(clients, Ps::ZERO, BalancePolicy::RoundRobin)
                .with_mean_request_instrs(150_000.0),
        );
    let r = run_service(cfg);
    let cl = r.closed_loop.as_ref().unwrap();
    let solo = &r.outcomes[0];

    // The population caps in-flight requests and per-round arrivals.
    assert!(cl.waiting_at_end <= clients);
    assert_eq!(cl.thinking_at_end + cl.waiting_at_end, clients);
    assert!(solo.arrived <= (clients * rounds) as u64);

    // L = lambda * W: total sojourn time of completed requests never
    // exceeds population x horizon (the histogram's mean is exact).
    let horizon_s = 1e-3 * rounds as f64; // 250 µs epochs, 4 per round
    let hist = r.fleet_hist();
    let sojourn_integral_s = hist.mean() * 1e-12 * hist.count() as f64;
    assert!(
        sojourn_integral_s <= clients as f64 * horizon_s + 1e-9,
        "sojourn integral {sojourn_integral_s:.4}s exceeds {clients} clients x {horizon_s:.4}s"
    );
    // Zero think on a throttled server keeps the loop busy: mean
    // concurrency stays at a healthy fraction of the population.
    assert!(
        sojourn_integral_s >= 0.25 * clients as f64 * horizon_s,
        "mean concurrency {:.2} of {clients} — server not saturated?",
        sojourn_integral_s / horizon_s
    );
}

/// Fleet used by the failover-conservation test: heterogeneous mixes and
/// staggered work so demand (and therefore the cap split) shifts while
/// grants are in flight.
fn gap_fleet(seed: u64) -> Vec<ClusterServerSpec> {
    let mixes = ["ILP1", "MID1", "MEM2"];
    (0..3u64)
        .map(|i| {
            let mut s =
                ClusterServerSpec::small(&format!("s{i}"), mixes[i as usize], seed ^ (i + 1));
            s.config.target_instrs *= 4 + 3 * i;
            s
        })
        .collect()
}

/// The formerly-overshooting replication-gap schedule now conserves
/// strictly: this is the exact seed, fleet, loss/latency mix, and
/// partition window that DESIGN §10 once documented as a ~14% transient
/// overshoot (`replication_gap_overshoots_transiently_under_loss_and_failover`,
/// the old `#[ignore]`d reproducer this test replaces). The acked-state
/// handoff — heartbeat acks giving the primary a replication watermark,
/// deferred releases until confirmed, worst-case ledger reconstruction at
/// takeover, and a latency+jitter+lease quarantine horizon — closes the
/// gap, so the in-force caps must stay within budget (plus expired-lease
/// floors, zero here) **every** round, through the primary's death, the
/// standby's takeover, and the healed primary's step-down.
#[test]
fn failover_conserves_budget_under_loss_and_latency() {
    let budget = 90.0;
    let seed = 24;
    let partition = cluster::PartitionSpec {
        from_round: 13,
        to_round: 25,
        nodes: vec!["primary".into()],
    };
    let rpc = RpcConfig {
        latency_us: 1250.0, // one whole round
        jitter_us: 1250.0,
        loss: 0.35,
        seed,
        failover: true,
        lease_rounds: 10,
        partitions: vec![partition.clone()],
        ..RpcConfig::default()
    };
    let cfg = ClusterConfig::new(gap_fleet(seed), budget, cluster::CapSplit::FastCap).with_rpc(rpc);
    let r = run_cluster(cfg.clone());

    // Strict conservation, every round — the invariant the old reproducer
    // documented as broken. floor_cap_w is zero, so no floor allowance.
    for (round, caps) in r.cap_timeline.iter().enumerate() {
        let total: f64 = caps.iter().sum();
        assert!(
            total <= budget + 1e-6,
            "round {round}: in-force caps sum to {total:.6} W > {budget} W budget \
             — the replication-gap fix regressed"
        );
    }
    // The schedule still exercises the handoff path it was built for: the
    // standby takes over during the partition while the cut-off primary
    // still holds term 0 — so the conservation sweep above covers the
    // two-leader window, the hardest case for the handoff protocol. (The
    // deposed-primary step-down path has its own pinned test in
    // `ctrlplane`.)
    assert!(
        r.control.elections >= 1,
        "schedule no longer triggers a failover: {:?}",
        r.control
    );
    // The lossy failover run is still bit-identical across thread counts.
    let r4 = run_cluster(cfg.with_threads(4));
    assert_eq!(
        r.digest(),
        r4.digest(),
        "lossy failover broke thread determinism"
    );

    // Quarantine-sizing regression: at three whole rounds of latency a
    // dead primary's grants stay in flight long past the takeover, so a
    // quarantine of "one lease length" from the election round would end
    // before those grants' leases do. The horizon-sized quarantine
    // (latency + jitter + lease) must keep the fleet conserving anyway.
    let rpc_slow = RpcConfig {
        latency_us: 3750.0, // three whole rounds
        jitter_us: 1250.0,
        loss: 0.35,
        seed,
        failover: true,
        lease_rounds: 10,
        partitions: vec![partition.clone()],
        ..RpcConfig::default()
    };
    let c_slow =
        ClusterConfig::new(gap_fleet(seed), budget, cluster::CapSplit::FastCap).with_rpc(rpc_slow);
    let r_slow = run_cluster(c_slow);
    for (round, caps) in r_slow.cap_timeline.iter().enumerate() {
        let total: f64 = caps.iter().sum();
        assert!(
            total <= budget + 1e-6,
            "high-latency round {round}: in-force caps sum to {total:.6} W > {budget} W"
        );
    }

    // Control: the identical schedule at loopback (zero latency, zero
    // loss) also conserves strictly through the same failover, with the
    // tighter epsilon the deterministic path affords.
    let rpc0 = RpcConfig {
        failover: true,
        lease_rounds: 10,
        partitions: vec![partition],
        ..RpcConfig::default()
    };
    let c0 = ClusterConfig::new(gap_fleet(seed), budget, cluster::CapSplit::FastCap).with_rpc(rpc0);
    let r0 = run_cluster(c0);
    for (round, caps) in r0.cap_timeline.iter().enumerate() {
        let total: f64 = caps.iter().sum();
        assert!(
            total <= budget + 1e-9,
            "loopback failover must conserve strictly; round {round} sums to {total:.6} W"
        );
    }
}

/// Nightly-scale topology smoke: a 1024-server three-tier DAG fleet
/// (`fe[64] -> app[192]*2 -> st[768]*2@3`) under the critical-path split,
/// conserving every root and span, digest-equal between the round and
/// event engines at a zero dead-band, and bit-identical across worker
/// thread counts. Run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "1024-server DAG conservation smoke; run via cargo test --release -- --ignored"]
fn tier_dags_1024_conservation_smoke() {
    let graph: TierGraph = "fe[64] -> app[192]*2 -> st[768]*2@3".parse().unwrap();
    let mixes = ["MID1", "ILP1", "MEM1", "MID2"];
    let make = |threads: usize, engine: EngineKind| {
        let fleet: Vec<ServiceServerSpec> = graph
            .server_names()
            .iter()
            .enumerate()
            .map(|(i, n)| ServiceServerSpec::small(n, mixes[i % mixes.len()], 90 + i as u64, 0.0))
            .collect();
        let budget = 55.0 * fleet.len() as f64;
        let mut cfg = ServiceConfig::new(fleet, budget, CapSplit::FastCap)
            .with_rounds(6)
            .with_threads(threads)
            .with_engine(engine)
            .with_closed_loop(
                ClosedLoopConfig::new(512, Ps::from_us(150), BalancePolicy::LeastQueue)
                    .with_seed(9),
            )
            .with_tiers(TierConfig::new(graph.clone()));
        // Nightly-sized, like the 1024-server differential smoke: one
        // epoch per round and coarse quanta keep the run in minutes.
        cfg.epochs_per_round = 1;
        cfg.quantum_w = 20.0;
        cfg
    };
    let start = std::time::Instant::now();
    let r = run_service(make(8, EngineKind::Round));
    let t_round = start.elapsed();
    let t = r.tiers.as_ref().expect("tier summary");
    let s = &t.stats;

    assert!(s.roots_closed > 0, "no DAG closed at 1024-server scale");
    assert_eq!(s.roots_opened, s.roots_closed + s.open_roots);
    assert_eq!(s.spans_opened, s.spans_closed + s.open_spans);
    for (tier, &fanout) in graph.fanouts().iter().enumerate().skip(1) {
        assert_eq!(
            s.spawned_by_tier[tier],
            s.completed_by_tier[tier - 1] * fanout as u64,
            "fan-out conservation broken entering tier {tier}"
        );
    }
    assert!(s.sojourn_dominance, "a child outlived its root's sojourn");
    assert_eq!(t.e2e_hist.count(), s.roots_closed - s.roots_failed);
    let cl = r.closed_loop.as_ref().unwrap();
    assert_eq!(cl.generated, s.roots_opened);
    assert_eq!(cl.responses, s.roots_closed);
    assert_eq!(cl.waiting_at_end as u64, s.open_roots);

    // Engine and thread determinism at scale.
    let start = std::time::Instant::now();
    let event = run_service(make(8, EngineKind::Event));
    let t_event = start.elapsed();
    assert_eq!(
        r.digest(),
        event.digest(),
        "1024-server tier round vs event digests diverged"
    );
    let r4 = run_service(make(4, EngineKind::Round));
    assert_eq!(r.digest(), r4.digest(), "1024-server tier 8 vs 4 threads");
    println!(
        "1024-server tier smoke: {} DAGs closed, round {:.2}s, event {:.2}s",
        s.roots_closed,
        t_round.as_secs_f64(),
        t_event.as_secs_f64()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fleet-wide request conservation through the closed loop, whatever
    /// the seed, population, think time, balancer, split, churn, and
    /// topology — and whichever client model carries the population: every
    /// generated request ends exactly one of completed, shed, or
    /// abandoned-in-queue; every arrived request was generated; and every
    /// client ends the horizon either thinking or waiting. The fluid arm
    /// runs the population two orders of magnitude larger, where the exact
    /// pool would dominate the round cost.
    #[test]
    fn fleet_conserves_requests_under_churn_topology_and_balancing(
        seed in any::<u64>(),
        clients in 8usize..40,
        think_us in 0u64..400,
        policy in 0u8..3,
        split in 0u8..3,
        rounds in 6usize..10,
        churn in any::<bool>(),
        topo in any::<bool>(),
        fluid in any::<bool>(),
    ) {
        let (model, clients) = if fluid {
            (ClientModel::Fluid, clients * 250)
        } else {
            (ClientModel::Exact, clients)
        };
        let balance = [
            BalancePolicy::RoundRobin,
            BalancePolicy::LeastQueue,
            BalancePolicy::PowerHeadroom,
        ][policy as usize];
        let split = [CapSplit::Uniform, CapSplit::FastCap, CapSplit::SlaAware][split as usize];
        let fleet = vec![
            ServiceServerSpec::small("s0", "MID1", seed ^ 1, 0.0).with_p99_target_s(2e-3),
            ServiceServerSpec::small("s1", "ILP1", seed ^ 2, 0.0).with_p99_target_s(2e-3),
            ServiceServerSpec::small("s2", "MEM1", seed ^ 3, 0.0).with_p99_target_s(2e-3),
        ];
        let mut cfg = ServiceConfig::new(fleet, 140.0, split)
            .with_rounds(rounds)
            .with_threads(4)
            .with_closed_loop(
                ClosedLoopConfig::new(clients, Ps::from_us(think_us), balance)
                    .with_seed(seed)
                    .with_model(model),
            );
        if churn {
            let mut sched = ChurnSchedule::new();
            sched.join(2, "late", ServiceServerSpec::small("late", "ILP2", seed ^ 4, 0.0)
                .with_p99_target_s(2e-3)).unwrap();
            sched.leave(rounds - 2, "s1").unwrap();
            cfg = cfg.with_churn(sched);
        }
        if topo {
            let tree = BudgetTree::parse("f:uniform[a:fastcap[s0,s1],b:sla-aware[s2]]").unwrap();
            cfg = cfg.with_topology(tree);
        }
        let r = run_service(cfg);
        let cl = r.closed_loop.as_ref().unwrap();

        let terminal: u64 = r.outcomes.iter().map(|o| o.completed + o.shed + o.abandoned).sum();
        prop_assert_eq!(cl.generated, terminal, "generated != completed + shed + abandoned");
        let arrived: u64 = r.outcomes.iter().map(|o| o.arrived).sum();
        prop_assert_eq!(cl.generated, arrived, "a generated request never reached a server");
        prop_assert_eq!(
            cl.thinking_at_end + cl.waiting_at_end, clients,
            "a client is neither thinking nor waiting"
        );
        prop_assert_eq!(
            cl.responses + cl.waiting_at_end as u64, cl.generated,
            "responses + in-flight != generated"
        );
        // The fleet histogram carries exactly the completed requests.
        prop_assert_eq!(r.fleet_hist().count(), r.total_completed());
    }

    /// Multi-tier DAG conservation, whatever the seed, population, graph
    /// shape, engine, tier floor, and churn: every span a completed parent
    /// spawns is exactly its tier's fan-out (`spawned_by_tier[t] =
    /// completed_by_tier[t-1] x fanout[t]`), every root and span
    /// terminates or stays counted as open, the end-to-end sojourn
    /// dominates every child's, and the client population is released
    /// exactly once per closed DAG.
    #[test]
    fn tier_dags_conserve_spans_under_churn_and_both_engines(
        seed in any::<u64>(),
        clients in 8usize..40,
        think_us in 0u64..300,
        shape in 0u8..3,
        floor_frac in 0.0f64..0.3,
        event_engine in any::<bool>(),
        churn in any::<bool>(),
        rounds in 6usize..10,
    ) {
        let spec = [
            "fe[1] -> app[2]*2",
            "fe[2] -> app[2]*2 -> st[2]",
            "a[1] -> b[3]*3@2",
        ][shape as usize];
        let graph: TierGraph = spec.parse().unwrap();
        let mixes = ["MID1", "ILP1", "MEM1", "MID2"];
        let fleet: Vec<ServiceServerSpec> = graph
            .server_names()
            .iter()
            .enumerate()
            .map(|(i, n)| ServiceServerSpec::small(n, mixes[i % mixes.len()], seed ^ i as u64, 0.0))
            .collect();
        let budget = 50.0 * fleet.len() as f64;
        let engine = if event_engine { EngineKind::Event } else { EngineKind::Round };
        let mut cfg = ServiceConfig::new(fleet, budget, CapSplit::FastCap)
            .with_rounds(rounds)
            .with_threads(4)
            .with_engine(engine)
            .with_closed_loop(
                ClosedLoopConfig::new(clients, Ps::from_us(think_us), BalancePolicy::LeastQueue)
                    .with_seed(seed),
            )
            .with_tiers(TierConfig::new(graph.clone()).with_floor_frac(floor_frac));
        if churn {
            // The last tier loses its highest-numbered server and gains a
            // fresh one two rounds later, joining by tier-name prefix.
            let last = graph.tiers().last().unwrap();
            let mut sched = ChurnSchedule::new();
            sched.leave(2, &format!("{}{}", last.name, last.servers - 1)).unwrap();
            sched.join(4, &format!("{}{}", last.name, last.servers), ServiceServerSpec::small(
                &format!("{}{}", last.name, last.servers), "MEM2", seed ^ 77, 0.0,
            )).unwrap();
            cfg = cfg.with_churn(sched);
        }
        let r = run_service(cfg);
        let t = r.tiers.as_ref().expect("tier summary");
        let s = &t.stats;

        prop_assert_eq!(s.roots_opened, s.roots_closed + s.open_roots);
        prop_assert_eq!(s.spans_opened, s.spans_closed + s.open_spans);
        for (tier, &fanout) in graph.fanouts().iter().enumerate().skip(1) {
            prop_assert_eq!(
                s.spawned_by_tier[tier],
                s.completed_by_tier[tier - 1] * fanout as u64,
                "fan-out conservation broken entering tier {}", tier
            );
        }
        prop_assert!(s.sojourn_dominance, "a child outlived its root's sojourn");
        prop_assert_eq!(t.e2e_hist.count(), s.roots_closed - s.roots_failed);

        let cl = r.closed_loop.as_ref().unwrap();
        prop_assert_eq!(cl.generated, s.roots_opened, "a client request opened no DAG");
        prop_assert_eq!(cl.responses, s.roots_closed, "a closed DAG released no client");
        prop_assert_eq!(cl.waiting_at_end as u64, s.open_roots);
        prop_assert_eq!(cl.thinking_at_end + cl.waiting_at_end, clients);
    }

    /// Message-plane conservation under arbitrary loss, delay,
    /// duplication, and (since the acked-state handoff) failover:
    ///
    /// * no grant is ever applied twice — duplicated or reordered
    ///   deliveries are refused as stale, so the audit log holds no
    ///   repeated `(server, term, seq)`;
    /// * the caps **in force** across the fleet never exceed the budget
    ///   plus the expired-lease floors — lost decreases stay reserved at
    ///   the coordinator until acked or expired, releases are deferred
    ///   until the standby confirms them, and takeover reconstruction
    ///   reserves the worst case — so delivery failures and coordinator
    ///   churn can only under-use the budget, never over-commit it;
    /// * the run is bit-identical across worker thread counts even with
    ///   a lossy plane: message fates hash from the send counter, not
    ///   from delivery interleaving.
    #[test]
    fn message_plane_never_overcommits_the_budget(
        seed in any::<u64>(),
        loss in 0.0f64..0.4,
        duplicate in 0.0f64..0.2,
        latency_rounds in 0u64..3,
        floor_w in 0.0f64..3.0,
        event_engine in any::<bool>(),
        failover in any::<bool>(),
        // A randomized partition schedule: some subset of the servers
        // (possibly empty) cut off for a window of rounds. Partitioned
        // servers ride their lease to the floor; their watts stay
        // ledger-reserved until expiry, so conservation must not care.
        part_mask in 0u8..8,
        part_from in 2u64..12,
        part_len in 1u64..25,
    ) {
        let budget = 90.0;
        let fleet: Vec<ClusterServerSpec> = (0..3)
            .map(|i| {
                let mut s = ClusterServerSpec::small(&format!("s{i}"), "MID1", seed ^ (i + 1));
                s.config.target_instrs *= 8;
                s
            })
            .collect();
        let n = fleet.len();
        let part_nodes: Vec<String> = (0..n)
            .filter(|i| part_mask & (1 << i) != 0)
            .map(|i| format!("s{i}"))
            .collect();
        let partitions = if part_nodes.is_empty() {
            vec![]
        } else {
            vec![cluster::PartitionSpec {
                from_round: part_from,
                to_round: part_from + part_len,
                nodes: part_nodes,
            }]
        };
        let rpc = RpcConfig {
            latency_us: 1250.0 * latency_rounds as f64, // whole rounds at 5 x 250 µs
            loss,
            duplicate,
            seed,
            floor_cap_w: floor_w,
            audit: true,
            failover,
            partitions,
            ..RpcConfig::default()
        };
        let engine = if event_engine { EngineKind::Event } else { EngineKind::Round };
        let cfg = ClusterConfig::new(fleet, budget, cluster::CapSplit::FastCap)
            .with_engine(engine)
            .with_rpc(rpc);
        let r = run_cluster(cfg.clone());

        // No grant double-applied: the audit log is duplicate-free and
        // accounts for every applied grant.
        let mut seen = std::collections::HashSet::new();
        for g in &r.control.grant_log {
            prop_assert!(
                seen.insert((g.server, g.term, g.seq)),
                "grant (server {}, term {}, seq {}) applied twice", g.server, g.term, g.seq
            );
        }
        prop_assert_eq!(r.control.grant_log.len() as u64, r.control.grants_applied);

        // In-force caps stay under budget + floors, every round: a leased
        // cap is coordinator-reserved watts; a floored cap is not
        // coordinator money at all and is bounded separately.
        for (round, caps) in r.cap_timeline.iter().enumerate() {
            let total: f64 = caps.iter().sum();
            prop_assert!(
                total <= budget + n as f64 * floor_w + 1e-9,
                "round {round}: in-force caps sum to {total:.6} W > {budget} W budget \
                 (+ {n} x {floor_w} W floors)"
            );
        }

        // Lossy-plane runs are still deterministic across thread counts.
        let r4 = run_cluster(cfg.with_threads(4));
        prop_assert_eq!(r.digest(), r4.digest(), "lossy plane broke thread determinism");
    }

    /// Hierarchical budget safety at every node: for any demands, signals,
    /// budget, and any tree over the fleet, `split_trace` reports group
    /// shares where (a) the root is granted exactly the global budget,
    /// (b) each group's leaf caps sum to no more than the group's own
    /// budget, and (c) the resulting caps agree with `split`.
    #[test]
    fn budget_tree_groups_never_exceed_their_node_budget(
        global_cap_w in 40.0f64..400.0,
        raw in prop::collection::vec((20.0f64..120.0, 0.05f64..0.6, 0.0f64..5e-3), 6),
        quantum in 0.5f64..4.0,
        shape in 0u8..3,
    ) {
        let names = ["s0", "s1", "s2", "s3", "s4", "s5"];
        let demands: Vec<ServerDemand> = raw
            .iter()
            .map(|&(demand_w, floor_frac, _)| ServerDemand {
                demand_w,
                min_w: demand_w * floor_frac,
                active: true,
            })
            .collect();
        let sla: Vec<SlaSignal> = raw
            .iter()
            .map(|&(_, _, p99_s)| SlaSignal { p99_s, target_s: 1e-3 })
            .collect();
        let spec = [
            "f:uniform[a:fastcap[s0,s1,s2],b:sla-aware[s3,s4,s5]]",
            "f:demand[a:uniform[s0,s1],b:fastcap[s2,s3],c:sla[s4,s5]]",
            "f:fastcap[a:sla-aware[s0,s1,s2,s3],b:demand-proportional[s4,s5]]",
        ][shape as usize];
        let tree = BudgetTree::parse(spec).unwrap();

        let (caps, groups) = tree.split_trace(global_cap_w, &names, &demands, Some(&sla), quantum);
        let plain = tree.split(global_cap_w, &names, &demands, Some(&sla), quantum);
        prop_assert_eq!(caps.clone(), plain, "split_trace disagrees with split");

        let index = |n: &str| names.iter().position(|m| *m == n).unwrap();
        prop_assert!(!groups.is_empty());
        // Pre-order: the first share is the root, granted the full budget.
        prop_assert_eq!(groups[0].leaves.len(), 6, "root covers the whole fleet");
        prop_assert!((groups[0].budget_w - global_cap_w).abs() < 1e-9);
        for g in &groups {
            let granted: f64 = g.leaves.iter().map(|n| caps[index(n)]).sum();
            prop_assert!(
                granted <= g.budget_w + 1e-6,
                "group {} granted {granted:.3} W over its {:.3} W budget", g.label, g.budget_w
            );
        }
        let total: f64 = caps.iter().sum();
        prop_assert!(total <= global_cap_w + 1e-6, "fleet over the global budget");
    }
}
