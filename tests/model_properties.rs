//! Property-based tests of the CoScale model and policies over randomized
//! profiles: monotonicity, feasibility, and grid-validity invariants.

use coscale::{
    CoScalePolicy, EpochProfile, MemScalePolicy, Model, OfflinePolicy, Plan, Policy,
    SemiCoordinatedPolicy, SimConfig, StaticMaxPolicy, UncoordinatedPolicy,
};
use memsim::MemConfig;
use powermodel::{MemGeometry, PowerConfig};
use proptest::prelude::*;
use simkernel::Ps;

/// Strategy: a plausible random epoch profile for `n` cores.
fn profile_strategy(n: usize) -> impl Strategy<Value = EpochProfile> {
    let core = (
        0.9f64..3.0,     // cpu cycles per instruction
        0.0f64..300e-12, // l2 seconds per instruction
        0.0f64..3e-9,    // mem seconds per instruction
        50_000u64..800_000,
    )
        .prop_map(|(cpu, l2, mem, instrs)| coscale::CoreProfile {
            cpu_cycles_pi: cpu,
            l2_s_pi: l2,
            mem_s_pi: mem,
            instrs,
            cac_pi: [0.45, 0.02, 0.18, 0.35],
        });
    (
        prop::collection::vec(core, n),
        0.0f64..50e-9,
        0.0f64..20e-9,
        1_000u64..200_000,
    )
        .prop_map(move |(cores, bank_wait, bus_wait, reads)| EpochProfile {
            core_freq_idx: vec![9; cores.len()],
            cores,
            mem: coscale::MemProfile {
                bank_wait_s: bank_wait,
                bus_wait_s: bus_wait,
                reads,
                page_opens: reads + reads / 4,
                refreshes: 38,
                rank_active_s: 1e-4,
                l2_accesses: reads * 3,
            },
            window: Ps::from_us(300),
            mem_freq_idx: 9,
        })
}

struct Fixture {
    core_grid: Vec<simkernel::Freq>,
    mem_cfg: MemConfig,
    power: PowerConfig,
    geom: MemGeometry,
}

fn fixture() -> Fixture {
    let mem_cfg = MemConfig::default();
    Fixture {
        core_grid: SimConfig::core_grid_with_steps(10),
        geom: MemGeometry::of(&mem_cfg),
        power: PowerConfig::default(),
        mem_cfg,
    }
}

fn build_model<'a>(fx: &'a Fixture, p: &'a EpochProfile, slack: &[f64]) -> Model<'a> {
    Model::new(
        p,
        &fx.core_grid,
        &fx.mem_cfg.freq_grid,
        &fx.power,
        fx.geom,
        &fx.mem_cfg.timings,
        slack,
        Ps::from_ms(5),
        0.10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// tpi is monotone non-increasing in both frequencies.
    #[test]
    fn tpi_monotone_in_frequencies(p in profile_strategy(4)) {
        let fx = fixture();
        let slack = vec![0.0; 4];
        let m = build_model(&fx, &p, &slack);
        for i in 0..4 {
            for fc in 0..9 {
                prop_assert!(m.tpi(i, fc, 9) >= m.tpi(i, fc + 1, 9) - 1e-18);
            }
            for fm in 0..9 {
                prop_assert!(m.tpi(i, 9, fm) >= m.tpi(i, 9, fm + 1) - 1e-18);
            }
        }
    }

    /// SER of the all-max plan is exactly 1, and the worst slowdown at max
    /// is 1.
    #[test]
    fn ser_normalized_at_max(p in profile_strategy(4)) {
        let fx = fixture();
        let slack = vec![0.0; 4];
        let m = build_model(&fx, &p, &slack);
        let max = Plan::max(4, 10, 10);
        prop_assert!((m.ser(&max) - 1.0).abs() < 1e-9);
        prop_assert!((m.worst_slowdown(&max) - 1.0).abs() < 1e-12);
    }

    /// Every policy returns a plan inside the grids, and (for the
    /// slack-aware policies) a plan the model itself deems feasible.
    #[test]
    fn policies_return_valid_feasible_plans(p in profile_strategy(6)) {
        let fx = fixture();
        let slack = vec![0.0; 6];
        let m = build_model(&fx, &p, &slack);
        let current = Plan::max(6, 10, 10);
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(StaticMaxPolicy),
            Box::new(CoScalePolicy::default()),
            Box::new(CoScalePolicy { group_cores: false }),
            Box::new(MemScalePolicy),
            Box::new(coscale::CpuOnlyPolicy),
            Box::new(OfflinePolicy),
            Box::new(SemiCoordinatedPolicy::default()),
            Box::new(UncoordinatedPolicy),
        ];
        for pol in policies.iter_mut() {
            let plan = pol.decide(&m, &current);
            prop_assert_eq!(plan.cores.len(), 6);
            prop_assert!(plan.cores.iter().all(|&c| c < 10));
            prop_assert!(plan.mem < 10);
            // Slack-aware single-controller policies must respect the bound
            // under their own model.
            let name = format!("{}", pol.kind());
            if matches!(name.as_str(), "CoScale" | "MemScale" | "CPUOnly" | "Offline") {
                prop_assert!(m.plan_ok(&plan), "{} returned infeasible plan", name);
            }
        }
    }

    /// CoScale never does worse (in model SER) than the best single-knob
    /// policy, because their search spaces are subsets of its own walk's
    /// recorded configurations... at minimum it must not exceed MemScale's
    /// chosen SER.
    #[test]
    fn coscale_ser_not_worse_than_memscale(p in profile_strategy(5)) {
        let fx = fixture();
        let slack = vec![0.0; 5];
        let m = build_model(&fx, &p, &slack);
        let current = Plan::max(5, 10, 10);
        let co = CoScalePolicy::default().decide(&m, &current);
        let ms = MemScalePolicy.decide(&m, &current);
        prop_assert!(m.ser(&co) <= m.ser(&ms) + 1e-9,
            "CoScale SER {} vs MemScale SER {}", m.ser(&co), m.ser(&ms));
    }

    /// Offline's model-SER is a lower bound on CoScale's (it searches the
    /// exhaustive-equivalent space with the same model).
    #[test]
    fn offline_ser_lower_bounds_coscale(p in profile_strategy(5)) {
        let fx = fixture();
        let slack = vec![0.0; 5];
        let m = build_model(&fx, &p, &slack);
        let current = Plan::max(5, 10, 10);
        let co = CoScalePolicy::default().decide(&m, &current);
        let off = OfflinePolicy.decide(&m, &current);
        prop_assert!(m.ser(&off) <= m.ser(&co) + 1e-9,
            "Offline SER {} must not exceed CoScale SER {}", m.ser(&off), m.ser(&co));
    }

    /// Negative slack (accumulated debt) never loosens the plan: the chosen
    /// frequencies under debt are at least as high as with zero slack.
    #[test]
    fn debt_never_lowers_frequencies(p in profile_strategy(4), debt in 0.0f64..2e-3) {
        let fx = fixture();
        let zero = vec![0.0; 4];
        let owed = vec![-debt; 4];
        let m0 = build_model(&fx, &p, &zero);
        let m1 = build_model(&fx, &p, &owed);
        let current = Plan::max(4, 10, 10);
        let p0 = CoScalePolicy::default().decide(&m0, &current);
        let p1 = CoScalePolicy::default().decide(&m1, &current);
        prop_assert!(p1.mem >= p0.mem || p1.cores.iter().zip(&p0.cores).any(|(a, b)| a >= b),
            "debt should not produce a uniformly lower plan");
        // And the debt plan is feasible under the debt model — unless the
        // debt is so deep that even all-max violates the bound, in which
        // case running at max is the only (and correct) choice.
        prop_assert!(m1.plan_ok(&p1) || p1 == current);
    }
}
