//! Differential harness for the two fleet engines: the event-driven
//! coordinator (persistent worker pool, wake queue, dirty-set cap replay)
//! must be **bit-identical** to the legacy round engine — same energies,
//! caps, queue counters, latency buckets, and client summaries — for every
//! configuration, at every worker-thread count.
//!
//! Four layers of evidence:
//! 1. property tests sweeping fleet size, cap split, churn, topology,
//!    balancer, and open/closed loop, asserting digest equality between
//!    `--engine round` and `--engine event` at 1, 2, 4, and 8 threads;
//! 2. property tests pinning the hierarchical cap cache (`HierSplitter`)
//!    to `BudgetTree`: bit-identical caps and `GroupShare` transcripts at
//!    a zero dead-band, and dirty-subtree recompute blended with clean
//!    replay matching a full recompute at any band;
//! 3. pinned golden digests for the four fleet-level bench experiments
//!    (cluster capping, serving SLOs, hierarchical budgets, closed-loop
//!    balancing), so a drift in *either* engine is loud;
//! 4. `#[ignore]`d 1024- and 16384-server / 90%-idle differential smokes
//!    for the nightly `--release -- --ignored` job.

use cluster::{
    run_cluster, synthetic_fleet, BudgetNode, BudgetTree, ClusterConfig, EngineKind, GroupShare,
    HierSplitter, PartitionSpec, RpcConfig, ServerDemand, ServerSpec, SlaSignal, TreeSignals,
};
use proptest::prelude::*;
use service::{
    run_service, BalancePolicy, CapSplit, ChurnSchedule, ClosedLoopConfig, ServiceConfig,
    ServiceServerSpec,
};
use simkernel::{Ps, SimRng};

/// FNV-1a over the digest text (same constant-pinning scheme as
/// `tests/invariants.rs`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Runs `make()` under the round engine at one thread (the reference
/// semantics), then under the event engine across the thread sweep and the
/// round engine at four threads, asserting every digest matches. Returns
/// the reference digest for optional pinning.
fn assert_cluster_engines_agree(label: &str, make: &dyn Fn() -> ClusterConfig) -> String {
    let reference = run_cluster(make().with_engine(EngineKind::Round).with_threads(1)).digest();
    let round4 = run_cluster(make().with_engine(EngineKind::Round).with_threads(4)).digest();
    assert_eq!(reference, round4, "[{label}] round@1 vs round@4");
    for threads in THREAD_SWEEP {
        let event =
            run_cluster(make().with_engine(EngineKind::Event).with_threads(threads)).digest();
        assert_eq!(reference, event, "[{label}] round@1 vs event@{threads}");
    }
    reference
}

/// The serving-layer twin of [`assert_cluster_engines_agree`].
fn assert_service_engines_agree(label: &str, make: &dyn Fn() -> ServiceConfig) -> String {
    let reference = run_service(make().with_engine(EngineKind::Round).with_threads(1)).digest();
    let round4 = run_service(make().with_engine(EngineKind::Round).with_threads(4)).digest();
    assert_eq!(reference, round4, "[{label}] round@1 vs round@4");
    for threads in THREAD_SWEEP {
        let event =
            run_service(make().with_engine(EngineKind::Event).with_threads(threads)).digest();
        assert_eq!(reference, event, "[{label}] round@1 vs event@{threads}");
    }
    reference
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Batch fleets: any synthetic fleet (size, idle mix), any split, flat
    /// or tree-shaped budgets, any epochs-per-round — both engines produce
    /// the same digest at every thread count.
    #[test]
    fn batch_engines_agree_for_any_fleet(
        n in 2usize..5,
        idle_pct in 0u8..3,
        split in 0u8..3,
        epochs in 1usize..3,
        topo in any::<bool>(),
    ) {
        let split = [CapSplit::Uniform, CapSplit::DemandProportional, CapSplit::FastCap]
            [split as usize];
        let idle_fraction = [0.0, 0.5, 0.9][idle_pct as usize];
        let make = move || {
            let fleet = synthetic_fleet(n, idle_fraction);
            let cap_w = 55.0 * n as f64;
            let mut cfg = ClusterConfig::new(fleet, cap_w, split)
                .with_epochs_per_round(epochs);
            if topo && n >= 3 {
                let (a, b): (Vec<_>, Vec<_>) =
                    (0..n).map(|i| format!("s{i:04}")).partition(|s| s.as_str() < "s0002");
                let spec = format!(
                    "f:uniform[a:fastcap[{}],b:demand[{}]]",
                    a.join(","),
                    b.join(",")
                );
                cfg = cfg.with_topology(BudgetTree::parse(&spec).unwrap());
            }
            cfg
        };
        assert_cluster_engines_agree("batch-prop", &make);
    }

    /// Serving fleets: open- or closed-loop arrivals, every balancer and
    /// split, with and without churn and hierarchical budgets — digest
    /// equality again, at every thread count.
    #[test]
    fn serving_engines_agree_for_any_fleet(
        seed in any::<u64>(),
        split in 0u8..3,
        policy in 0u8..3,
        closed in any::<bool>(),
        churn in any::<bool>(),
        topo in any::<bool>(),
        rounds in 6usize..9,
    ) {
        let split = [CapSplit::Uniform, CapSplit::FastCap, CapSplit::SlaAware][split as usize];
        let balance = [
            BalancePolicy::RoundRobin,
            BalancePolicy::LeastQueue,
            BalancePolicy::PowerHeadroom,
        ][policy as usize];
        let make = move || {
            let rate = if closed { 0.0 } else { 30_000.0 };
            let fleet = vec![
                ServiceServerSpec::small("s0", "MID1", seed ^ 1, rate).with_p99_target_s(2e-3),
                ServiceServerSpec::small("s1", "ILP1", seed ^ 2, rate).with_p99_target_s(2e-3),
                ServiceServerSpec::small("s2", "MEM1", seed ^ 3, rate).with_p99_target_s(2e-3),
            ];
            let mut cfg = ServiceConfig::new(fleet, 140.0, split).with_rounds(rounds);
            if closed {
                cfg = cfg.with_closed_loop(
                    ClosedLoopConfig::new(24, Ps::from_us(120), balance).with_seed(seed),
                );
            }
            if churn {
                let mut sched = ChurnSchedule::new();
                sched
                    .join(
                        2,
                        "late",
                        ServiceServerSpec::small("late", "ILP2", seed ^ 4, rate)
                            .with_p99_target_s(2e-3),
                    )
                    .unwrap();
                sched.leave(rounds - 2, "s1").unwrap();
                cfg = cfg.with_churn(sched);
            }
            if topo {
                let tree =
                    BudgetTree::parse("f:uniform[a:fastcap[s0,s1],b:sla-aware[s2]]").unwrap();
                cfg = cfg.with_topology(tree);
            }
            cfg
        };
        assert_service_engines_agree("serve-prop", &make);
    }
}

/// The event engine's empty-barrier path: churn drains the whole fleet
/// mid-run, leaves it empty for two rounds, then refills it. Barriers must
/// keep firing over the empty fleet (the round engine's loop does) so the
/// late joiner is admitted on schedule.
#[test]
fn engines_agree_when_churn_empties_the_fleet() {
    let make = || {
        let fleet = vec![
            ServiceServerSpec::small("a", "MID1", 31, 25_000.0),
            ServiceServerSpec::small("b", "ILP1", 32, 25_000.0),
        ];
        let mut sched = ChurnSchedule::new();
        sched.leave(1, "a").unwrap();
        sched.leave(2, "b").unwrap();
        sched
            .join(
                5,
                "late",
                ServiceServerSpec::small("late", "MEM1", 33, 25_000.0),
            )
            .unwrap();
        ServiceConfig::new(fleet, 90.0, CapSplit::FastCap)
            .with_rounds(8)
            .with_churn(sched)
    };
    assert_service_engines_agree("empty-fleet", &make);
}

// ---------------------------------------------------------------------------
// Control-plane equivalence. Every test above already proves the loopback
// message plane reproduces the direct-call coordinator: all cluster and
// service traffic flows through `ControlPlane`, and the goldens below are
// the pre-plane constants. These tests pin the remaining failover claims.
// ---------------------------------------------------------------------------

/// A standby coordinator at loopback is a pure observer: with `failover`
/// on but no partition, heartbeats replicate state every barrier, no
/// election ever fires, and the digest is bit-identical to the
/// failover-less run — under both engines, at every thread count.
#[test]
fn loopback_standby_is_a_pure_observer() {
    let fleet = |rpc: RpcConfig| {
        let servers: Vec<ServerSpec> = (0..4)
            .map(|i| {
                let mut s = ServerSpec::small(&format!("s{i}"), "MID1", 1 + i);
                s.config.target_instrs *= 10;
                s
            })
            .collect();
        ClusterConfig::new(servers, 120.0, CapSplit::FastCap).with_rpc(rpc)
    };
    let plain = run_cluster(fleet(RpcConfig::default()));
    let watched = fleet(RpcConfig {
        failover: true,
        ..RpcConfig::default()
    });
    let reference = run_cluster(watched.clone());
    assert_eq!(
        plain.digest(),
        reference.digest(),
        "a heartbeating standby changed the physics"
    );
    assert_eq!(reference.control.elections, 0);
    assert_eq!(reference.control.terms, vec![0, 0]);
    for (engine, threads) in [
        (EngineKind::Round, 4),
        (EngineKind::Event, 1),
        (EngineKind::Event, 8),
    ] {
        let d = run_cluster(watched.clone().with_engine(engine).with_threads(threads));
        assert_eq!(
            reference.digest(),
            d.digest(),
            "standby loopback: round@1 vs {engine:?}@{threads}"
        );
    }
}

/// Loopback failover: partition the primary mid-run and the standby takes
/// over by exactly one election; at zero latency the replication gap is
/// empty (each heartbeat reflects its entire barrier, acks included), so
/// the in-force caps conserve the budget **strictly** through the
/// partition, the takeover, and the primary's post-heal step-down — and
/// the whole run stays bit-identical across engines and thread counts.
#[test]
fn loopback_failover_conserves_strictly_and_is_deterministic() {
    let budget = 120.0;
    let make = || {
        let servers: Vec<ServerSpec> = (0..4)
            .map(|i| {
                let mut s = ServerSpec::small(&format!("s{i}"), "MID1", 1 + i);
                s.config.target_instrs *= 30;
                s
            })
            .collect();
        let rpc = RpcConfig {
            failover: true,
            partitions: vec![PartitionSpec {
                from_round: 8,
                to_round: 24,
                nodes: vec!["primary".into()],
            }],
            ..RpcConfig::default()
        };
        ClusterConfig::new(servers, budget, CapSplit::FastCap).with_rpc(rpc)
    };
    let reference = run_cluster(make());
    assert!(
        reference.rounds > 26,
        "horizon too short ({} rounds) to cover the partition window",
        reference.rounds
    );
    assert_eq!(reference.control.elections, 1, "exactly one takeover");
    assert!(
        reference.control.step_downs >= 1,
        "the healed primary must step down"
    );
    assert_eq!(
        reference.control.terms,
        vec![1, 1],
        "both coordinators converge on the standby's term"
    );
    for (round, caps) in reference.cap_timeline.iter().enumerate() {
        let total: f64 = caps.iter().sum();
        assert!(
            total <= budget + 1e-9,
            "round {round}: in-force caps {total:.6} W exceed the {budget} W budget"
        );
    }
    for (engine, threads) in [
        (EngineKind::Round, 4),
        (EngineKind::Event, 1),
        (EngineKind::Event, 8),
    ] {
        let d = run_cluster(make().with_engine(engine).with_threads(threads));
        assert_eq!(
            reference.digest(),
            d.digest(),
            "failover loopback: round@1 vs {engine:?}@{threads}"
        );
    }
}

// ---------------------------------------------------------------------------
// Hierarchical cap cache. `HierSplitter` memoizes `BudgetTree` splits per
// interior node behind a telemetry dead-band: at a zero band it must be a
// pure bit-identical replay of the tree, and at any band a replayed node
// must reproduce a historical split verbatim while dirty subtrees are
// recomputed against live telemetry.
// ---------------------------------------------------------------------------

/// Every discipline a budget-tree node can run (the splitter must replay
/// all of them).
const GROUP_SPLITS: [CapSplit; 5] = [
    CapSplit::Uniform,
    CapSplit::DemandProportional,
    CapSplit::FastCap,
    CapSplit::SlaAware,
    CapSplit::CriticalPath,
];

/// A two-rack topology over `n` servers named `h0..h{n-1}`, split at
/// `n / 2`, with per-node disciplines.
fn two_rack_tree(
    n: usize,
    root: CapSplit,
    r0: CapSplit,
    r1: CapSplit,
) -> (BudgetTree, Vec<String>) {
    let names: Vec<String> = (0..n).map(|i| format!("h{i}")).collect();
    let rack = |label: &str, split: CapSplit, servers: &[String]| {
        BudgetNode::group(
            label,
            split,
            servers.iter().map(|s| BudgetNode::server(s)).collect(),
        )
    };
    let mid = n / 2;
    let tree = BudgetTree::new(BudgetNode::group(
        "fleet",
        root,
        vec![
            rack("rack0", r0, &names[..mid]),
            rack("rack1", r1, &names[mid..]),
        ],
    ));
    (tree, names)
}

/// A uniform root over FastCap racks of `rack_size` servers each — the
/// shape the fleet-scale smokes and benches use.
fn rack_tree(names: &[String], rack_size: usize) -> BudgetTree {
    let racks = names
        .chunks(rack_size)
        .enumerate()
        .map(|(r, chunk)| {
            BudgetNode::group(
                &format!("rack{r}"),
                CapSplit::FastCap,
                chunk.iter().map(|s| BudgetNode::server(s)).collect(),
            )
        })
        .collect();
    BudgetTree::new(BudgetNode::group("fleet", CapSplit::Uniform, racks))
}

/// Deterministic pseudo-random per-server telemetry.
fn random_telemetry(rng: &mut SimRng, n: usize) -> (Vec<ServerDemand>, Vec<SlaSignal>) {
    let demands = (0..n)
        .map(|_| ServerDemand {
            demand_w: 20.0 + 80.0 * rng.f64(),
            min_w: 5.0 + 10.0 * rng.f64(),
            active: rng.f64() > 0.15,
        })
        .collect();
    let sla = (0..n)
        .map(|_| SlaSignal {
            p99_s: if rng.f64() < 0.3 {
                0.0
            } else {
                1e-3 * (0.5 + rng.f64())
            },
            target_s: 1e-3,
        })
        .collect();
    (demands, sla)
}

/// Field-wise bit equality of two `split_trace` transcripts.
fn assert_traces_match(label: &str, got: &[GroupShare], want: &[GroupShare]) {
    assert_eq!(got.len(), want.len(), "[{label}] trace length");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.label, w.label, "[{label}] group order");
        assert_eq!(
            g.budget_w.to_bits(),
            w.budget_w.to_bits(),
            "[{label}] {}: {} W vs {} W",
            g.label,
            g.budget_w,
            w.budget_w
        );
        assert_eq!(g.leaves, w.leaves, "[{label}] {} leaves", g.label);
    }
}

/// FNV-1a over the caps' bit patterns — the "digest" the replay claims are
/// stated in.
fn caps_digest(caps: &[f64]) -> u64 {
    let mut text = String::new();
    for c in caps {
        text.push_str(&format!("{:016x} ", c.to_bits()));
    }
    fnv1a(text.as_bytes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// At a zero dead-band the hierarchical cache is a pure function: caps
    /// and the full `GroupShare` transcript bit-match `BudgetTree` for any
    /// discipline mix and telemetry sequence — and repeating a step
    /// verbatim must *replay* every node yet still bit-match a fresh split
    /// of that same telemetry.
    #[test]
    fn hier_cache_bit_matches_the_tree_at_zero_dead_band(
        seed in any::<u64>(),
        n in 4usize..9,
        root in 0u8..3,
        r0 in 0u8..5,
        r1 in 0u8..5,
        steps in 2usize..6,
    ) {
        let (tree, names) = two_rack_tree(
            n,
            GROUP_SPLITS[root as usize],
            GROUP_SPLITS[r0 as usize],
            GROUP_SPLITS[r1 as usize],
        );
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut h = HierSplitter::compile(&tree, &name_refs, 0.0);
        let mut rng = SimRng::new(seed);
        for step in 0..steps {
            let (demands, sla) = random_telemetry(&mut rng, n);
            let budget = 40.0 * n as f64 * (0.5 + rng.f64());
            let sig = TreeSignals { sla: Some(&sla), ..TreeSignals::default() };
            let (caps, trace, _) = h.split_with_trace(budget, &demands, &sig, 0.5).unwrap();
            let (want, want_trace) =
                tree.split_trace(budget, &name_refs, &demands, Some(&sla), 0.5);
            for (i, (a, b)) in caps.iter().zip(&want).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "step {} cap {}: {} vs {}", step, i, a, b);
            }
            assert_traces_match(&format!("step {step}"), &trace, &want_trace);
            // The verbatim repeat must be served by replay alone …
            let hits = h.node_hits();
            let (again, trace2, replayed) =
                h.split_with_trace(budget, &demands, &sig, 0.5).unwrap();
            prop_assert!(replayed.iter().all(|&r| r), "step {}: {:?}", step, replayed);
            prop_assert!(h.node_hits() > hits, "step {} repeat missed the cache", step);
            // … and every replayed node's `GroupShare` must still equal a
            // fresh split of the same telemetry.
            prop_assert_eq!(caps_digest(&again), caps_digest(&caps), "step {} replay caps", step);
            assert_traces_match(&format!("step {step} replay"), &trace2, &want_trace);
        }
    }

    /// At a positive dead-band, beyond-band churn confined to one rack
    /// recomputes that subtree against live telemetry while the sibling
    /// replays — and because the sibling's telemetry is bit-identical to
    /// its cached reference, the blended caps still digest-equal a full
    /// recompute. A later within-band wobble replays everything verbatim.
    #[test]
    fn hier_dirty_subtree_replay_digest_equals_full_recompute(
        seed in any::<u64>(),
        n in 4usize..9,
        r0 in 0u8..3,
        r1 in 0u8..3,
        band_sel in 0u8..3,
    ) {
        let band = [0.5, 1.0, 2.0][band_sel as usize];
        // A uniform root grants each rack a bit-identical budget every
        // step, so the clean rack's cache entry stays live.
        let (tree, names) = two_rack_tree(
            n,
            CapSplit::Uniform,
            GROUP_SPLITS[r0 as usize],
            GROUP_SPLITS[r1 as usize],
        );
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mid = n / 2;
        let mut h = HierSplitter::compile(&tree, &name_refs, band);
        let mut rng = SimRng::new(seed);
        let mut demands: Vec<ServerDemand> = (0..n)
            .map(|_| ServerDemand {
                demand_w: 20.0 + 80.0 * rng.f64(),
                min_w: 5.0 + 10.0 * rng.f64(),
                active: true,
            })
            .collect();
        let budget = 60.0 * n as f64;
        let sig = TreeSignals::default();
        // Prime the cache.
        let (first, _, _) = h.split_with_trace(budget, &demands, &sig, 0.5).unwrap();
        let fresh = tree.split(budget, &name_refs, &demands, None, 0.5);
        prop_assert_eq!(caps_digest(&first), caps_digest(&fresh), "cold split vs tree");
        // Dirty rack1 far beyond the band; rack0 stays bit-identical.
        for d in &mut demands[mid..] {
            d.demand_w += 10.0 * band;
        }
        let (caps, _, replayed) = h.split_with_trace(budget, &demands, &sig, 0.5).unwrap();
        prop_assert_eq!(
            &replayed,
            &vec![false, true, false],
            "fleet + rack1 must recompute, rack0 must replay"
        );
        let fresh = tree.split(budget, &name_refs, &demands, None, 0.5);
        prop_assert_eq!(
            caps_digest(&caps),
            caps_digest(&fresh),
            "replay-blended caps vs full recompute"
        );
        // A within-band wobble on one rack0 server replays every node and
        // reproduces the previous caps verbatim.
        demands[0].demand_w += 0.25 * band;
        let (again, _, replayed) = h.split_with_trace(budget, &demands, &sig, 0.5).unwrap();
        prop_assert!(replayed.iter().all(|&r| r), "{:?}", replayed);
        prop_assert_eq!(
            caps_digest(&again),
            caps_digest(&caps),
            "within-band wobble must replay the cached split"
        );
    }
}

/// End-to-end: on a topology-enabled cluster the event engine's
/// hierarchical dead-band replay must leave the physics (makespans,
/// violation counts, energies) bit-identical to the zero-band reference,
/// while both engines stay digest-equal at a zero band.
#[test]
fn cluster_hier_dead_band_replay_keeps_physics() {
    let make = |dead_band_w: f64| {
        let mut fleet = synthetic_fleet(16, 0.9);
        for s in &mut fleet {
            // Quarter-length workloads: completion comes sooner, keeping
            // the test cheap in debug builds.
            s.config.target_instrs = (s.config.target_instrs / 4).max(1);
        }
        let names: Vec<String> = fleet.iter().map(|s| s.name.clone()).collect();
        let mut c = ClusterConfig::new(fleet, 100.0 * 16.0, CapSplit::FastCap)
            .with_epochs_per_round(1)
            .with_dead_band(dead_band_w)
            .with_threads(4)
            .with_topology(rack_tree(&names, 4));
        c.quantum_w = 0.5;
        c
    };
    let round = run_cluster(make(0.0).with_engine(EngineKind::Round));
    let event = run_cluster(make(0.0).with_engine(EngineKind::Event));
    assert_eq!(
        round.digest(),
        event.digest(),
        "hier topology: round vs event at zero band"
    );
    let banded = run_cluster(make(5.0).with_engine(EngineKind::Event));
    for (a, b) in round.outcomes.iter().zip(&banded.outcomes) {
        assert_eq!(
            (a.name.as_str(), a.result.makespan, a.violation_rounds),
            (b.name.as_str(), b.result.makespan, b.violation_rounds),
            "hier dead-band replay changed the physics"
        );
        assert_eq!(
            a.result.total_energy_j().to_bits(),
            b.result.total_energy_j().to_bits(),
            "hier dead-band replay changed {}'s energy",
            a.name
        );
    }
}

// ---------------------------------------------------------------------------
// Pinned goldens for the four fleet-level bench experiments. These mirror
// the `--quick` configurations in `crates/bench/src/experiments.rs` (with
// shortened horizons where the full quick run would dominate the suite);
// one representative row of each table is pinned under BOTH engines. If an
// intentional simulation change shifts a constant, re-pin it — the test
// exists to make such shifts loud in the same commit that causes them.
// ---------------------------------------------------------------------------

/// `cluster_capping` (quick fleet, FastCap row).
#[test]
fn golden_cluster_capping_agrees_and_is_pinned() {
    const GOLDEN: u64 = 8740660264855400926;
    let make = || {
        let mut fleet = vec![
            ServerSpec::small_with_cores("mem-8c-a", "MEM2", 1, 8),
            ServerSpec::small_with_cores("mem-8c-b", "MEM2", 2, 8),
            ServerSpec::small_with_cores("ilp-2c-a", "ILP2", 5, 2),
            ServerSpec::small_with_cores("ilp-2c-b", "ILP2", 6, 2),
        ];
        for s in fleet.iter_mut().filter(|s| s.config.cores == 2) {
            s.config.target_instrs *= 3;
        }
        ClusterConfig::new(fleet, 250.0, CapSplit::FastCap).with_epochs_per_round(2)
    };
    let d = assert_cluster_engines_agree("cluster_capping", &make);
    println!("cluster_capping fnv = {}", fnv1a(d.as_bytes()));
    assert_eq!(fnv1a(d.as_bytes()), GOLDEN, "digest drifted:\n{d}");
}

/// `service_sla` (load 1.0, SLA-aware row, shortened horizon).
#[test]
fn golden_service_sla_agrees_and_is_pinned() {
    const GOLDEN: u64 = 3851301938566848033;
    let make = || {
        let fleet = vec![
            ServiceServerSpec::small_with_cores("heavy", "MEM2", 11, 230_000.0, 8)
                .with_p99_target_s(1e-3),
            ServiceServerSpec::small("light0", "ILP1", 12, 30_000.0).with_p99_target_s(1e-3),
            ServiceServerSpec::small("light1", "ILP2", 13, 30_000.0).with_p99_target_s(1e-3),
            ServiceServerSpec::small("light2", "MID2", 14, 30_000.0).with_p99_target_s(1e-3),
        ];
        ServiceConfig::new(fleet, 280.0, CapSplit::SlaAware).with_rounds(8)
    };
    let d = assert_service_engines_agree("service_sla", &make);
    println!("service_sla fnv = {}", fnv1a(d.as_bytes()));
    assert_eq!(fnv1a(d.as_bytes()), GOLDEN, "digest drifted:\n{d}");
}

/// `hierarchical_capping` (tree row, shortened horizon).
#[test]
fn golden_hierarchical_capping_agrees_and_is_pinned() {
    use service::ArrivalKind;
    const GOLDEN: u64 = 6114866557331418861;
    let make = || {
        let fleet = vec![
            ServiceServerSpec::small_with_cores("h0", "MEM2", 11, 200_000.0, 8)
                .with_p99_target_s(1e-3)
                .with_arrivals(ArrivalKind::Mmpp {
                    rate_hz: 200_000.0,
                    burst_factor: 1.2,
                    mean_calm: Ps::from_ms(3),
                    mean_burst: Ps::from_ms(2),
                    diurnal_period: Ps::ZERO,
                    diurnal_depth: 0.0,
                }),
            ServiceServerSpec::small("m0", "MID1", 12, 25_000.0).with_p99_target_s(1e-3),
            ServiceServerSpec::small("q0", "ILP1", 13, 30_000.0).with_p99_target_s(1e-3),
            ServiceServerSpec::small("q1", "MID2", 14, 30_000.0).with_p99_target_s(1e-3),
        ];
        let tree =
            BudgetTree::parse("dc:uniform[rack:sla-aware[h0,m0],pod:fastcap[q0,q1]]").unwrap();
        ServiceConfig::new(fleet, 280.0, CapSplit::Uniform)
            .with_rounds(10)
            .with_topology(tree)
    };
    let d = assert_service_engines_agree("hierarchical_capping", &make);
    println!("hierarchical_capping fnv = {}", fnv1a(d.as_bytes()));
    assert_eq!(fnv1a(d.as_bytes()), GOLDEN, "digest drifted:\n{d}");
}

/// `closed_loop_balancing` (power-headroom row, shortened horizon).
#[test]
fn golden_closed_loop_balancing_agrees_and_is_pinned() {
    const GOLDEN: u64 = 2262805444707370977;
    let make = || {
        let fleet = vec![
            ServiceServerSpec::small_with_cores("big", "MEM2", 11, 0.0, 8).with_p99_target_s(2e-3),
            ServiceServerSpec::small("small0", "ILP1", 12, 0.0).with_p99_target_s(2e-3),
            ServiceServerSpec::small("small1", "ILP2", 13, 0.0).with_p99_target_s(2e-3),
            ServiceServerSpec::small("small2", "ILP1", 14, 0.0).with_p99_target_s(2e-3),
        ];
        ServiceConfig::new(fleet, 200.0, CapSplit::Uniform)
            .with_rounds(8)
            .with_closed_loop(
                ClosedLoopConfig::new(320, Ps::from_us(100), BalancePolicy::PowerHeadroom)
                    .with_mean_request_instrs(120_000.0),
            )
    };
    let d = assert_service_engines_agree("closed_loop_balancing", &make);
    println!("closed_loop_balancing fnv = {}", fnv1a(d.as_bytes()));
    assert_eq!(fnv1a(d.as_bytes()), GOLDEN, "digest drifted:\n{d}");
}

/// Nightly-scale differential smoke: a 1024-server fleet at 90% idle, both
/// engines digest-equal at a zero dead-band, and the dead-banded event
/// engine leaving the physics (makespans, energies, violations) untouched
/// while skipping most splits. Run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "1024-server differential smoke; run via cargo test --release -- --ignored"]
fn fleet_1024_differential_smoke() {
    let make = |dead_band_w: f64| {
        let mut c = ClusterConfig::new(
            synthetic_fleet(1024, 0.9),
            100.0 * 1024.0,
            CapSplit::FastCap,
        )
        .with_epochs_per_round(1)
        .with_dead_band(dead_band_w)
        .with_threads(8);
        c.quantum_w = 0.02;
        c
    };
    let start = std::time::Instant::now();
    let round = run_cluster(make(0.0).with_engine(EngineKind::Round));
    let t_round = start.elapsed();
    let start = std::time::Instant::now();
    let event = run_cluster(make(0.0).with_engine(EngineKind::Event));
    let t_event = start.elapsed();
    assert_eq!(
        round.digest(),
        event.digest(),
        "1024-server round vs event digests diverged"
    );
    let start = std::time::Instant::now();
    let banded = run_cluster(make(5.0).with_engine(EngineKind::Event));
    let t_banded = start.elapsed();
    for (a, b) in round.outcomes.iter().zip(&banded.outcomes) {
        assert_eq!(
            (a.name.as_str(), a.result.makespan, a.violation_rounds),
            (b.name.as_str(), b.result.makespan, b.violation_rounds),
            "dead-band run changed the physics"
        );
        assert_eq!(
            a.result.total_energy_j().to_bits(),
            b.result.total_energy_j().to_bits(),
            "dead-band run changed {}'s energy",
            a.name
        );
    }
    println!(
        "1024-server smoke: round {:.2}s, event {:.2}s ({:.1}x), event +5W dead-band {:.2}s ({:.1}x)",
        t_round.as_secs_f64(),
        t_event.as_secs_f64(),
        t_round.as_secs_f64() / t_event.as_secs_f64().max(1e-9),
        t_banded.as_secs_f64(),
        t_round.as_secs_f64() / t_banded.as_secs_f64().max(1e-9)
    );
}

/// Nightly-scale sharded-wake-queue smoke: 16384 servers at 90% idle under
/// a 256-rack budget tree. Round and event engines must be digest-equal at
/// a zero dead-band — at *any* wake-shard count — and the 5 W dead-banded
/// event run must conserve the budget every round while leaving makespans,
/// violation counts, and energies bit-identical. Run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "16384-server differential smoke; run via cargo test --release -- --ignored"]
fn fleet_16384_differential_smoke() {
    let n = 16_384usize;
    let budget = 100.0 * n as f64;
    let make = |dead_band_w: f64, wake_shards: usize| {
        let mut fleet = synthetic_fleet(n, 0.9);
        for s in &mut fleet {
            // Eighth-length workloads keep the 16k fleet's horizon (and
            // the nightly job's wall-clock) bounded.
            s.config.target_instrs = (s.config.target_instrs / 8).max(1);
        }
        let names: Vec<String> = fleet.iter().map(|s| s.name.clone()).collect();
        let mut c = ClusterConfig::new(fleet, budget, CapSplit::FastCap)
            .with_epochs_per_round(1)
            .with_dead_band(dead_band_w)
            .with_threads(8)
            .with_wake_shards(wake_shards)
            .with_topology(rack_tree(&names, 64));
        c.quantum_w = 1.0;
        c
    };
    let start = std::time::Instant::now();
    let round = run_cluster(make(0.0, 0).with_engine(EngineKind::Round));
    let t_round = start.elapsed();
    let start = std::time::Instant::now();
    let event = run_cluster(make(0.0, 8).with_engine(EngineKind::Event));
    let t_event = start.elapsed();
    assert_eq!(
        round.digest(),
        event.digest(),
        "16384-server round vs event@8-shards digests diverged"
    );
    let odd_shards = run_cluster(make(0.0, 3).with_engine(EngineKind::Event));
    assert_eq!(
        round.digest(),
        odd_shards.digest(),
        "wake-shard count changed the digest"
    );
    let start = std::time::Instant::now();
    let banded = run_cluster(make(5.0, 8).with_engine(EngineKind::Event));
    let t_banded = start.elapsed();
    for (r, caps) in banded.cap_timeline.iter().enumerate() {
        let total: f64 = caps.iter().sum();
        assert!(
            total <= budget + 1e-3,
            "round {r}: dead-banded in-force caps {total:.3} W exceed the {budget} W budget"
        );
    }
    for (a, b) in round.outcomes.iter().zip(&banded.outcomes) {
        assert_eq!(
            (a.name.as_str(), a.result.makespan, a.violation_rounds),
            (b.name.as_str(), b.result.makespan, b.violation_rounds),
            "16k dead-band run changed the physics"
        );
        assert_eq!(
            a.result.total_energy_j().to_bits(),
            b.result.total_energy_j().to_bits(),
            "16k dead-band run changed {}'s energy",
            a.name
        );
    }
    println!(
        "16384-server smoke: round {:.2}s, event {:.2}s ({:.1}x), +5W dead-band {:.2}s ({:.1}x)",
        t_round.as_secs_f64(),
        t_event.as_secs_f64(),
        t_round.as_secs_f64() / t_event.as_secs_f64().max(1e-9),
        t_banded.as_secs_f64(),
        t_round.as_secs_f64() / t_banded.as_secs_f64().max(1e-9)
    );
}

/// Nightly-scale control-plane smoke: a 1024-server fleet on a loopback
/// plane with a live standby and a mid-run primary partition. Both engines
/// must agree bit-for-bit through the election and step-down, and the
/// in-force caps must conserve the budget strictly (zero-latency failover
/// has no replication gap). Run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "1024-server control-plane smoke; run via cargo test --release -- --ignored"]
fn fleet_1024_control_plane_failover_smoke() {
    let budget = 100.0 * 1024.0;
    let make = || {
        let mut c = ClusterConfig::new(synthetic_fleet(1024, 0.9), budget, CapSplit::FastCap)
            .with_epochs_per_round(1)
            .with_threads(8)
            .with_rpc(RpcConfig {
                failover: true,
                partitions: vec![PartitionSpec {
                    from_round: 20,
                    to_round: 45,
                    nodes: vec!["primary".into()],
                }],
                ..RpcConfig::default()
            });
        c.quantum_w = 0.02;
        c
    };
    let start = std::time::Instant::now();
    let round = run_cluster(make().with_engine(EngineKind::Round));
    let t_round = start.elapsed();
    let start = std::time::Instant::now();
    let event = run_cluster(make().with_engine(EngineKind::Event));
    let t_event = start.elapsed();
    assert_eq!(
        round.digest(),
        event.digest(),
        "1024-server failover round vs event digests diverged"
    );
    assert!(
        round.rounds > 48,
        "horizon ({} rounds) too short: the partition must heal well before the run ends",
        round.rounds
    );
    assert_eq!(round.control.elections, 1, "exactly one takeover");
    assert_eq!(round.control.terms, vec![1, 1]);
    for (r, caps) in round.cap_timeline.iter().enumerate() {
        let total: f64 = caps.iter().sum();
        assert!(
            total <= budget + 1e-6,
            "round {r}: in-force caps {total:.3} W exceed the {budget} W budget"
        );
    }
    println!(
        "1024-server failover smoke: round {:.2}s, event {:.2}s, {} grants, {} heartbeat msgs in flight at end",
        t_round.as_secs_f64(),
        t_event.as_secs_f64(),
        round.control.grants_sent,
        round.control.in_flight_at_end,
    );
}

/// Nightly-scale handoff smoke: the same 1024-server primary outage on a
/// hostile plane — one round of latency, one of jitter, 25% loss, 5%
/// duplication — the regime where failover used to overshoot the budget
/// (DESIGN §10). With the acked-state handoff the in-force caps must stay
/// within budget every round, including the takeover round, at fleet
/// scale; the run must stay bit-identical across thread counts. Run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "1024-server lossy-failover conservation smoke; run via cargo test --release -- --ignored"]
fn fleet_1024_lossy_failover_conserves() {
    let budget = 100.0 * 1024.0;
    let make = |threads: usize| {
        let mut c = ClusterConfig::new(synthetic_fleet(1024, 0.9), budget, CapSplit::FastCap)
            .with_epochs_per_round(1)
            .with_threads(threads)
            .with_rpc(RpcConfig {
                latency_us: 1250.0,
                jitter_us: 1250.0,
                loss: 0.25,
                duplicate: 0.05,
                failover: true,
                partitions: vec![PartitionSpec {
                    from_round: 20,
                    to_round: 45,
                    nodes: vec!["primary".into()],
                }],
                ..RpcConfig::default()
            });
        c.quantum_w = 0.02;
        c
    };
    let start = std::time::Instant::now();
    let r = run_cluster(make(8));
    let elapsed = start.elapsed();
    assert!(
        r.control.elections >= 1,
        "the outage must elect the standby: {:?}",
        r.control
    );
    for (round, caps) in r.cap_timeline.iter().enumerate() {
        let total: f64 = caps.iter().sum();
        assert!(
            total <= budget + 1e-6,
            "round {round}: in-force caps {total:.3} W exceed the {budget} W budget \
             under lossy failover"
        );
    }
    let r4 = run_cluster(make(4));
    assert_eq!(
        r.digest(),
        r4.digest(),
        "1024-server lossy failover 8 vs 4 threads"
    );
    println!(
        "1024-server lossy-failover smoke: {:.2}s, {} elections, {}/{} grants applied",
        elapsed.as_secs_f64(),
        r.control.elections,
        r.control.grants_applied,
        r.control.grants_sent,
    );
}
