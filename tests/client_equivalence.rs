//! Differential harness: the fluid (aggregated) closed-loop client model
//! against the exact per-client pool, at the scales where both are
//! tractable (10²–10⁴ clients).
//!
//! This is the same credibility play that made the event engine
//! trustworthy (`tests/engine_equivalence.rs`): the fast path is only
//! allowed to exist because it is continuously proven against the exact
//! reference where they overlap. The fluid model is *statistically*
//! equivalent, not bit-equal — cohort sampling replaces per-client draws —
//! so the comparison is on aggregate statistics within declared
//! tolerances:
//!
//! * **Offered load** (requests generated over the horizon) and
//!   **in-flight mass** (the sojourn integral, Little's `L × T`):
//!   relative error bounded by a `1/√N` sampling term plus a small model
//!   bias floor ([`rel_tol`]).
//! * **p99 sojourn**: ratio-bounded ([`P99_RATIO`]) — tail quantiles sit
//!   on queueing nonlinearities, so they get the loosest bound.
//! * **Energy**: under latency-blind splits the engine's power trajectory
//!   is independent of the request path, so fleet energy must agree to
//!   float noise ([`ENERGY_EXACT_TOL`]); under the SLA-aware split the
//!   p99 feedback couples the two, and the bound is statistical
//!   ([`ENERGY_SLA_TOL`]).
//!
//! Exact-match properties hold with no tolerance at all: request
//! conservation (generated = completed + shed + abandoned, population
//! constant under churn) and bit-identical fluid digests across worker
//! thread counts and both fleet engines.

use proptest::prelude::*;
use service::{
    run_service, BalancePolicy, CapSplit, ChurnSchedule, ClientModel, ClosedLoopConfig, EngineKind,
    ServiceConfig, ServiceResult, ServiceServerSpec,
};
use simkernel::Ps;

/// Relative tolerance for offered-load and in-flight agreement at
/// population `n`: a `1.5/√N` sampling band (per-round binomial noise,
/// partially averaged over the 12-round horizon) plus a 2 % floor for
/// the fluid model's cohort-mean bias. Measured deviations are ≤ 4.2 %
/// at N=100 and ≤ 1 % at N=10⁴ — roughly 3–4× inside this bound.
fn rel_tol(n: usize) -> f64 {
    0.02 + 1.5 / (n as f64).sqrt()
}

/// p99 sojourns must agree within this ratio (either direction), unless
/// both sit below one epoch (250 µs) where bucket granularity dominates.
/// The shared log-bucketed histogram quantizes both models onto the same
/// grid — measured runs agree bit-for-bit — so this bound only has to
/// absorb a single bucket step.
const P99_RATIO: f64 = 1.5;

/// Fleet energy under latency-blind splits: the engines never see the
/// request path, so the trajectories are identical up to float noise.
const ENERGY_EXACT_TOL: f64 = 1e-9;

/// Fleet energy under the SLA-aware split, where the p99 feedback loop
/// couples caps to the (statistically different) request path. Because
/// the feedback reads the bucket-quantized p99, measured runs agree
/// exactly; the tolerance absorbs a cap step from a p99 bucket flip.
const ENERGY_SLA_TOL: f64 = 0.02;

fn fleet(seed: u64) -> Vec<ServiceServerSpec> {
    vec![
        ServiceServerSpec::small("e0", "MID1", seed ^ 1, 0.0).with_p99_target_s(2e-3),
        ServiceServerSpec::small("e1", "ILP1", seed ^ 2, 0.0).with_p99_target_s(2e-3),
        ServiceServerSpec::small("e2", "MEM1", seed ^ 3, 0.0).with_p99_target_s(2e-3),
    ]
}

#[allow(clippy::too_many_arguments)]
fn config(
    model: ClientModel,
    clients: usize,
    think_us: u64,
    seed: u64,
    split: CapSplit,
    balance: BalancePolicy,
    threads: usize,
    engine: EngineKind,
) -> ServiceConfig {
    ServiceConfig::new(fleet(seed), 150.0, split)
        .with_rounds(12)
        .with_threads(threads)
        .with_engine(engine)
        .with_closed_loop(
            ClosedLoopConfig::new(clients, Ps::from_us(think_us), balance)
                .with_seed(seed)
                .with_model(model),
        )
}

/// The aggregate statistics the two models are compared on.
struct Stats {
    generated: u64,
    /// Total sojourn time of completed requests, seconds — Little's
    /// `L × T`, the run's integrated in-flight mass.
    sojourn_integral_s: f64,
    p99_s: f64,
    energy_j: f64,
}

fn stats(r: &ServiceResult) -> Stats {
    let hist = r.fleet_hist();
    Stats {
        generated: r.closed_loop.as_ref().expect("closed loop").generated,
        sojourn_integral_s: hist.mean() * 1e-12 * hist.count() as f64,
        p99_s: r.fleet_percentile_s(0.99),
        energy_j: r.total_energy_j(),
    }
}

fn assert_conserved(r: &ServiceResult, clients: usize, label: &str) {
    let cl = r.closed_loop.as_ref().expect("closed loop");
    let terminal: u64 = r
        .outcomes
        .iter()
        .map(|o| o.completed + o.shed + o.abandoned)
        .sum();
    assert_eq!(
        cl.generated, terminal,
        "[{label}] generated != completed + shed + abandoned"
    );
    let arrived: u64 = r.outcomes.iter().map(|o| o.arrived).sum();
    assert_eq!(
        cl.generated, arrived,
        "[{label}] request lost before a server"
    );
    assert_eq!(
        cl.thinking_at_end + cl.waiting_at_end,
        clients,
        "[{label}] population not conserved"
    );
    assert_eq!(
        cl.responses + cl.waiting_at_end as u64,
        cl.generated,
        "[{label}] responses + in-flight != generated"
    );
}

fn rel_diff(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        return 0.0;
    }
    (a - b).abs() / a.abs().max(b.abs())
}

/// The headline comparison: at 10², 10³ and 10⁴ clients, under a
/// latency-blind and the SLA-aware split, the fluid model reproduces the
/// exact pool's offered load, in-flight mass, p99 tail and energy within
/// the declared tolerances — and both conserve requests exactly.
#[test]
fn fluid_matches_exact_across_scales_and_splits() {
    // Think times scale with the population so the operating point stays
    // interesting: issue fractions well inside (0, 1) and offered load
    // within reach of the fleet's service capacity.
    let cases = [
        (100usize, 300u64, 11u64),
        (1_000, 1_500, 12),
        (10_000, 5_000, 13),
    ];
    for (clients, think_us, seed) in cases {
        for split in [CapSplit::FastCap, CapSplit::SlaAware] {
            let run = |model| {
                run_service(config(
                    model,
                    clients,
                    think_us,
                    seed,
                    split,
                    BalancePolicy::LeastQueue,
                    4,
                    EngineKind::Round,
                ))
            };
            let exact = run(ClientModel::Exact);
            let fluid = run(ClientModel::Fluid);
            assert_conserved(&exact, clients, &format!("exact n={clients} {split}"));
            assert_conserved(&fluid, clients, &format!("fluid n={clients} {split}"));

            let (e, f) = (stats(&exact), stats(&fluid));
            let tol = rel_tol(clients);
            let label = format!("n={clients} split={split}");
            println!(
                "[{label}] generated {} vs {} ({:.3}), sojourn {:.6} vs {:.6} ({:.3}), \
                 p99 {:.6} vs {:.6} (x{:.3}), energy {:.6} vs {:.6} ({:.2e})",
                e.generated,
                f.generated,
                rel_diff(e.generated as f64, f.generated as f64),
                e.sojourn_integral_s,
                f.sojourn_integral_s,
                rel_diff(e.sojourn_integral_s, f.sojourn_integral_s),
                e.p99_s,
                f.p99_s,
                (f.p99_s / e.p99_s.max(1e-12)).max(e.p99_s / f.p99_s.max(1e-12)),
                e.energy_j,
                f.energy_j,
                rel_diff(e.energy_j, f.energy_j),
            );

            assert!(
                rel_diff(e.generated as f64, f.generated as f64) <= tol,
                "[{label}] offered load: exact {} vs fluid {} (tol {tol:.3})",
                e.generated,
                f.generated
            );
            assert!(
                rel_diff(e.sojourn_integral_s, f.sojourn_integral_s) <= tol,
                "[{label}] in-flight mass: exact {:.6}s vs fluid {:.6}s (tol {tol:.3})",
                e.sojourn_integral_s,
                f.sojourn_integral_s
            );
            let epoch_s = 250e-6;
            if e.p99_s.max(f.p99_s) > epoch_s {
                let ratio = (f.p99_s / e.p99_s.max(1e-12)).max(e.p99_s / f.p99_s.max(1e-12));
                assert!(
                    ratio <= P99_RATIO,
                    "[{label}] p99: exact {:.6}s vs fluid {:.6}s (x{ratio:.3} > x{P99_RATIO})",
                    e.p99_s,
                    f.p99_s
                );
            }
            let energy_tol = match split {
                CapSplit::SlaAware => ENERGY_SLA_TOL,
                _ => ENERGY_EXACT_TOL,
            };
            assert!(
                rel_diff(e.energy_j, f.energy_j) <= energy_tol,
                "[{label}] energy: exact {:.9} J vs fluid {:.9} J (tol {energy_tol:.1e})",
                e.energy_j,
                f.energy_j
            );
        }
    }
}

/// The fluid path keeps the serving layer's bedrock determinism: one
/// configuration, bit-identical digests at 1/2/4/8 worker threads and
/// between the round and event engines — the single-RNG cohort sampling
/// and order-independent delivery accounting cannot leak scheduling.
#[test]
fn fluid_digests_are_thread_and_engine_invariant() {
    for balance in [BalancePolicy::PowerHeadroom, BalancePolicy::LeastQueue] {
        let mk = |threads, engine| {
            run_service(config(
                ClientModel::Fluid,
                2_000,
                400,
                21,
                CapSplit::FastCap,
                balance,
                threads,
                engine,
            ))
            .digest()
        };
        let d1 = mk(1, EngineKind::Round);
        for threads in [2, 4, 8] {
            assert_eq!(
                d1,
                mk(threads, EngineKind::Round),
                "[{balance}] fluid digest differs at {threads} threads"
            );
        }
        assert_eq!(
            d1,
            mk(4, EngineKind::Event),
            "[{balance}] fluid digest differs between engines"
        );
        assert!(
            d1.contains("closed fluid "),
            "fluid runs must be marked in the digest:\n{d1}"
        );
    }
}

/// Satellite fix: a leaving server's orphaned in-flight mass re-credits
/// the fluid think pool at the barrier, mirroring the exact model's
/// orphan re-delivery — the churned requests count as abandoned on the
/// server and as responses to the population, and nobody leaks.
#[test]
fn churn_leave_recredits_the_fluid_think_pool() {
    // Enough clients that every server carries a queue backlog across the
    // round-3 barrier, so the departure actually orphans requests.
    let clients = 3_000;
    for model in [ClientModel::Exact, ClientModel::Fluid] {
        let mut cfg = config(
            model,
            clients,
            200,
            31,
            CapSplit::FastCap,
            BalancePolicy::RoundRobin,
            2,
            EngineKind::Round,
        );
        let mut sched = ChurnSchedule::new();
        sched.leave(3, "e1").unwrap();
        cfg = cfg.with_churn(sched);
        let r = run_service(cfg);
        assert_conserved(&r, clients, &format!("churn {model}"));
        let departed = r
            .outcomes
            .iter()
            .find(|o| o.name == "e1" && o.departed)
            .expect("e1 departs");
        assert!(
            departed.abandoned > 0,
            "[{model}] the departing server should orphan queued requests \
             (otherwise this test exercises nothing)"
        );
        // The orphans were re-credited: at the end of the run the only
        // undelivered requests are the ones still sitting in the
        // *surviving* servers' queues — every request the departed server
        // abandoned went back to the think pool at the barrier.
        let cl = r.closed_loop.as_ref().unwrap();
        let end_abandoned: u64 = r
            .outcomes
            .iter()
            .filter(|o| !o.departed)
            .map(|o| o.abandoned)
            .sum();
        assert_eq!(
            cl.waiting_at_end as u64, end_abandoned,
            "[{model}] a churn orphan was never delivered back to the population"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized fluid-path conservation and determinism: any population,
    /// think time, balancer, split, engine, and thread count — requests
    /// conserve exactly and the digest is independent of the thread count.
    #[test]
    fn fluid_conserves_and_stays_deterministic(
        seed in any::<u64>(),
        clients in 64usize..4_000,
        think_us in 0u64..2_000,
        policy in 0u8..3,
        split in 0u8..3,
        event_engine in any::<bool>(),
    ) {
        let balance = [
            BalancePolicy::RoundRobin,
            BalancePolicy::LeastQueue,
            BalancePolicy::PowerHeadroom,
        ][policy as usize];
        let split = [CapSplit::Uniform, CapSplit::FastCap, CapSplit::SlaAware][split as usize];
        let engine = if event_engine { EngineKind::Event } else { EngineKind::Round };
        let mk = |threads| {
            run_service(config(
                ClientModel::Fluid, clients, think_us, seed, split, balance, threads, engine,
            ))
        };
        let r = mk(3);
        assert_conserved(&r, clients, "fluid proptest");
        prop_assert_eq!(r.fleet_hist().count(), r.total_completed());
        prop_assert_eq!(mk(1).digest(), r.digest(), "fluid digest thread-variant");
    }
}

/// Nightly 10⁶-client smoke: the fluid model carries a million-client
/// population with diurnal think modulation through both engines —
/// conservation exact, digests bit-identical across thread counts and
/// engines, at a per-round cost that scales with issued requests. Run
/// via `cargo test --release -- --ignored`.
#[test]
#[ignore = "million-client fluid smoke; run via cargo test --release -- --ignored"]
fn million_client_fluid_smoke() {
    let clients = 1_000_000;
    let mk = |threads, engine| {
        let mut cfg = ServiceConfig::new(fleet(41), 150.0, CapSplit::FastCap)
            .with_rounds(10)
            .with_threads(threads)
            .with_engine(engine)
            .with_closed_loop(
                ClosedLoopConfig::new(clients, Ps::from_ms(100), BalancePolicy::LeastQueue)
                    .with_seed(41)
                    .with_model(ClientModel::Fluid)
                    .with_think_diurnal(Ps::from_ms(5), 0.8),
            );
        cfg.epochs_per_round = 2;
        cfg
    };
    let start = std::time::Instant::now();
    let r = run_service(mk(4, EngineKind::Round));
    let elapsed = start.elapsed();
    assert_conserved(&r, clients, "million-client fluid");
    let cl = r.closed_loop.as_ref().unwrap();
    assert!(
        cl.generated >= clients as u64,
        "round 0 issues the whole ready population"
    );
    let event = run_service(mk(8, EngineKind::Event));
    assert_eq!(
        r.digest(),
        event.digest(),
        "million-client fluid digests diverged across threads/engines"
    );
    println!(
        "million-client fluid smoke: {} generated, {} responses, {:.2}s/run",
        cl.generated,
        cl.responses,
        elapsed.as_secs_f64()
    );
}
