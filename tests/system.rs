//! Workspace-level integration tests: the full system assembled from all
//! crates, exercised through the facade.

use coscale_repro::prelude::*;

fn cfg(mix_name: &str) -> SimConfig {
    let mut c = SimConfig::small(mix(mix_name).unwrap());
    c.target_instrs = 1_000_000;
    c
}

#[test]
fn system_advances_time_and_instructions() {
    let mut sys = System::new(cfg("MID1"));
    assert_eq!(sys.now(), Ps::ZERO);
    sys.run_until(Ps::from_us(200));
    assert_eq!(sys.now(), Ps::from_us(200));
    let instrs = sys.instrs();
    assert!(
        instrs.iter().all(|&i| i > 10_000),
        "all cores should progress: {instrs:?}"
    );
}

#[test]
fn snapshots_are_monotone() {
    let mut sys = System::new(cfg("MEM1"));
    sys.run_until(Ps::from_us(100));
    let a = sys.snapshot();
    sys.run_until(Ps::from_us(300));
    let b = sys.snapshot();
    for (x, y) in a.cores.iter().zip(&b.cores) {
        let d = y.delta(x); // panics in debug if not monotone
        assert!(d.tic > 0);
    }
    let dm = b.mem.delta(&a.mem);
    assert!(dm.reads > 0, "MEM mix must touch memory");
    assert!(b.l2_accesses > a.l2_accesses);
}

#[test]
fn apply_plan_changes_frequencies_and_slows_execution() {
    let mut fast = System::new(cfg("ILP1"));
    let mut slow = System::new(cfg("ILP1"));
    let n = fast.plan().cores.len();
    slow.run_until(Ps::from_us(10));
    let low = Plan {
        cores: vec![0; n],
        mem: 0,
    };
    slow.apply_plan(&low);
    assert_eq!(slow.plan(), &low);
    fast.run_until(Ps::from_ms(2));
    slow.run_until(Ps::from_ms(2));
    let fi: u64 = fast.instrs().iter().sum();
    let si: u64 = slow.instrs().iter().sum();
    assert!(
        si < fi * 8 / 10,
        "lowest frequencies must slow ILP work: fast {fi}, slow {si}"
    );
}

#[test]
fn cloned_system_diverges_identically() {
    let mut a = System::new(cfg("MIX3"));
    a.run_until(Ps::from_us(500));
    let mut b = a.clone();
    a.run_until(Ps::from_ms(2));
    b.run_until(Ps::from_ms(2));
    assert_eq!(a.instrs(), b.instrs());
    assert_eq!(
        a.snapshot().mem.reads,
        b.snapshot().mem.reads,
        "checkpoint/replay must be exact (Offline oracle depends on it)"
    );
}

#[test]
fn run_result_accounts_energy_components() {
    let r = run_policy(cfg("MID3"), PolicyKind::CoScale);
    assert!(r.cpu_energy_j > 0.0);
    assert!(r.mem_energy_j > 0.0);
    assert!(r.l2_energy_j > 0.0);
    assert!(r.rest_energy_j > 0.0);
    let sum = r.cpu_energy_j + r.mem_energy_j + r.l2_energy_j + r.rest_energy_j;
    assert!((sum - r.total_energy_j()).abs() < 1e-9);
    // CPU should dominate per the 60/30/10 calibration.
    assert!(r.cpu_energy_j > r.mem_energy_j);
    assert!(r.cpu_energy_j > r.rest_energy_j);
}

#[test]
fn mem_mixes_stress_memory_more_than_ilp() {
    let mem = run_policy(cfg("MEM1"), PolicyKind::StaticMax);
    let ilp = run_policy(cfg("ILP1"), PolicyKind::StaticMax);
    assert!(
        mem.mpki > ilp.mpki * 5.0,
        "mem {} ilp {}",
        mem.mpki,
        ilp.mpki
    );
    assert!(mem.bus_utilization > ilp.bus_utilization);
    // Memory-bound work takes longer for the same instruction count.
    assert!(mem.makespan > ilp.makespan);
}

#[test]
fn facade_prelude_reexports_work() {
    // Compile-time check that the prelude surface is usable end to end.
    let grid = SimConfig::core_grid_with_steps(4);
    assert_eq!(grid.len(), 4);
    let f: Freq = grid[0];
    assert!(f.as_ghz() > 2.0);
    let classes = all_mixes()
        .iter()
        .filter(|m| m.class == MixClass::Mem)
        .count();
    assert_eq!(classes, 4);
}

#[test]
fn prefetch_and_mlp_configs_run_through_facade() {
    let mut c = cfg("MEM2");
    c.core.prefetch = true;
    let pref = run_policy(c.clone(), PolicyKind::StaticMax);
    assert!(
        pref.prefetch_accuracy > 0.2,
        "accuracy {}",
        pref.prefetch_accuracy
    );

    let mut c2 = cfg("MEM2");
    c2.core.pipeline = PipelineMode::MlpWindow(128);
    let ooo = run_policy(c2, PolicyKind::StaticMax);
    let inorder = run_policy(cfg("MEM2"), PolicyKind::StaticMax);
    assert!(
        ooo.makespan < inorder.makespan,
        "MLP window should speed up a MEM mix: {} vs {}",
        ooo.makespan,
        inorder.makespan
    );
}
