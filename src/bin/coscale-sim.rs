//! `coscale-sim` — the command-line front end of the simulator.
//!
//! ```text
//! coscale-sim [OPTIONS]
//!
//!   --mix NAME          workload mix (Table 1 name; default MIX2)
//!   --policy NAME       baseline|coscale|memscale|cpuonly|uncoordinated|
//!                       semi|offline|powercap (default coscale)
//!   --gamma PCT         performance bound in percent (default 10)
//!   --instrs N          instructions per application (default 10000000)
//!   --cores N           number of cores, 1..=16 (default 16)
//!   --prefetch          enable the next-line prefetcher
//!   --ooo               MLP-window (out-of-order emulation) pipeline
//!   --open-page         open-page row-buffer policy (+ row-interleaved map)
//!   --cap WATTS         power budget for --policy powercap (default 150)
//!   --seed N            workload seed
//!   --timeline FILE     write the per-epoch decision timeline as TSV
//!   --compare           also run the no-DVFS baseline and report savings
//!
//! coscale-sim cluster [OPTIONS]     multi-server fleet under one budget
//!
//!   --servers LIST      comma-separated name=mix[:cores][@rate] entries
//!   --fleet-size N      synthetic N-server batch fleet instead of --servers
//!   --idle-fraction F   share of the synthetic fleet that is near-idle
//!                       (default 0.9)
//!   --engine NAME       coordination engine: round|event (default round;
//!                       event = wake queue + persistent worker pool,
//!                       digest-identical, built for 1000-server fleets)
//!   --cap WATTS         global power budget (default 280)
//!   --split NAME        uniform|demand-proportional|fastcap|sla-aware|
//!                       critical-path (default fastcap; sla-aware needs
//!                       --serve, critical-path needs --tiers)
//!   --topology SPEC     hierarchical budget tree, e.g.
//!                       dc:uniform[rack:sla-aware[a,b],pod:fastcap[c,d]]
//!                       (flat splitting by --split is the default)
//!   --threads N         round worker threads (default 4)
//!   --serve             request-serving mode: open-loop arrivals, queues,
//!                       p99 SLOs (batch completion mode otherwise)
//!   --rounds N          serving rounds in --serve mode (default 40)
//!   --rate HZ           default arrival rate per server (default 30000)
//!   --p99-target MS     p99 SLO in milliseconds (default 1.0)
//!   --join R:SPEC       server SPEC joins at round R (--serve only)
//!   --leave R:NAME      server NAME leaves at round R (--serve only)
//!   --clients N         closed-loop client population instead of open-loop
//!                       arrivals (--serve only; 0 = open loop, the default)
//!   --think-ms F        mean client think time in milliseconds (default 0.2)
//!   --client-model NAME exact per-client pool or the aggregated fluid
//!                       model for 10^6+ populations: exact|fluid
//!                       (default exact)
//!   --think-diurnal P:D sinusoidal think-rate modulation, period P ms at
//!                       depth D in [0,1] (fluid model only)
//!   --balance NAME      front-end balancer: round-robin|least-queue|
//!                       power-headroom (default round-robin)
//!   --tiers SPEC        multi-tier request topology, e.g.
//!                       "fe[2] -> app[4]*2 -> storage[3]" (--serve with
//!                       --clients only); requests fan out as sub-request
//!                       DAGs and per-tier critical-path traces drive the
//!                       budget split
//!   --tier-floor F      per-tier budget floor as a fraction of the global
//!                       cap (default 0.1; --tiers only)
//!   --e2e-target MS     end-to-end p99 SLO for multi-tier requests in
//!                       milliseconds (default 5.0; --tiers only)
//! ```

use coscale::PowerCapPolicy;
use coscale_repro::prelude::*;

struct Args {
    mix: String,
    policy: String,
    gamma: f64,
    instrs: u64,
    cores: usize,
    prefetch: bool,
    ooo: bool,
    open_page: bool,
    cap: f64,
    seed: Option<u64>,
    timeline: Option<String>,
    compare: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: coscale-sim [--mix NAME] [--policy NAME] [--gamma PCT] \
         [--instrs N] [--cores N] [--prefetch] [--ooo] [--open-page] \
         [--cap WATTS] [--seed N] [--timeline FILE] [--compare]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        mix: "MIX2".into(),
        policy: "coscale".into(),
        gamma: 10.0,
        instrs: 10_000_000,
        cores: 16,
        prefetch: false,
        ooo: false,
        open_page: false,
        cap: 150.0,
        seed: None,
        timeline: None,
        compare: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--mix" => a.mix = val("--mix"),
            "--policy" => a.policy = val("--policy"),
            "--gamma" => a.gamma = val("--gamma").parse().unwrap_or_else(|_| usage()),
            "--instrs" => a.instrs = val("--instrs").parse().unwrap_or_else(|_| usage()),
            "--cores" => a.cores = val("--cores").parse().unwrap_or_else(|_| usage()),
            "--prefetch" => a.prefetch = true,
            "--ooo" => a.ooo = true,
            "--open-page" => a.open_page = true,
            "--cap" => a.cap = val("--cap").parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = Some(val("--seed").parse().unwrap_or_else(|_| usage())),
            "--timeline" => a.timeline = Some(val("--timeline")),
            "--compare" => a.compare = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    a
}

// ---------------------------------------------------------------------------
// `coscale-sim cluster` — fleet runs without the bench harness.
// ---------------------------------------------------------------------------

struct ClusterArgs {
    servers: String,
    fleet_size: usize,
    idle_fraction: f64,
    cap: Option<f64>,
    quantum: f64,
    dead_band: f64,
    epochs_per_round: usize,
    split: CapSplit,
    topology: Option<BudgetTree>,
    threads: usize,
    engine: EngineKind,
    wake_shards: usize,
    serve: bool,
    rounds: usize,
    rate: f64,
    p99_target_ms: f64,
    seed: u64,
    joins: Vec<String>,
    leaves: Vec<String>,
    clients: usize,
    think_ms: f64,
    client_model: ClientModel,
    think_diurnal: Option<(f64, f64)>,
    balance: BalancePolicy,
    tiers: Option<TierGraph>,
    tier_floor: f64,
    e2e_target_ms: f64,
    servers_set: bool,
    rpc: RpcConfig,
    rpc_flags_used: bool,
}

fn cluster_usage() -> ! {
    eprintln!(
        "usage: coscale-sim cluster [--servers LIST] [--fleet-size N] [--idle-fraction F] \
         [--cap WATTS] [--quantum W] [--dead-band W] [--epochs-per-round N] [--split NAME] \
         [--topology SPEC] [--threads N] [--engine NAME] [--wake-shards N] \
         [--serve] [--rounds N] [--rate HZ] \
         [--p99-target MS] [--seed N] [--join R:SPEC]... [--leave R:NAME]... \
         [--clients N] [--think-ms F] [--client-model NAME] [--think-diurnal P:D] \
         [--balance NAME] \
         [--tiers SPEC] [--tier-floor F] [--e2e-target MS] \
         [--rpc-latency-us F] [--rpc-jitter-us F] [--rpc-loss P] [--rpc-dup P] \
         [--rpc-seed N] [--lease-rounds N] [--floor-cap W] [--failover] \
         [--quarantine-rounds N] [--partition FROM:TO:NODES]...\n\
         \x20 LIST entries: name=mix[:cores][@rate], e.g. heavy=MEM2:8@230000\n\
         \x20 --fleet-size N replaces --servers with a synthetic N-server fleet\n\
         \x20   (batch only); --idle-fraction F makes that share of it near-idle (default 0.9);\n\
         \x20   the default budget scales to 100 W per server (named fleets default to 280 W)\n\
         \x20 splits: uniform demand-proportional fastcap sla-aware critical-path\n\
         \x20   (sla-aware needs --serve; critical-path needs --tiers)\n\
         \x20 --engine picks the coordination engine: round (reference) or event\n\
         \x20   (wake queue + worker pool; digest-identical, scales to 1000+ servers)\n\
         \x20 --dead-band W lets the event engine replay the cached cap split while no\n\
         \x20   server's telemetry moved more than W watts (0, the default, re-splits\n\
         \x20   whenever any telemetry bit changes and stays digest-identical)\n\
         \x20 --wake-shards N shards the event engine's wake queue N ways (0, the\n\
         \x20   default, is one shard per worker thread; any count is digest-identical)\n\
         \x20 --topology splits the budget down a tree instead of flat, e.g.\n\
         \x20   dc:uniform[rack:sla-aware[heavy,light0],pod:fastcap[light1,light2]]\n\
         \x20 --join/--leave change the fleet at round boundaries (--serve only)\n\
         \x20 --clients N replaces open-loop arrivals with a closed-loop client\n\
         \x20   population (--serve only); --balance picks the front-end policy:\n\
         \x20   round-robin least-queue power-headroom\n\
         \x20 --client-model exact|fluid: fluid swaps the per-client pool for\n\
         \x20   aggregated population counters (statistically equivalent, scales\n\
         \x20   past 10^6 clients); --think-diurnal P:D modulates the fluid think\n\
         \x20   rate sinusoidally with period P ms and depth D in [0,1]\n\
         \x20 --tiers SPEC turns each client request into a DAG of sub-requests\n\
         \x20   across tiers, e.g. \"fe[2] -> app[4]*2 -> storage[3]\" (--serve\n\
         \x20   with --clients only). With --tiers, --servers entries name TIERS\n\
         \x20   (tier=mix[:cores][@rate], one per tier) and are expanded to the\n\
         \x20   graph's servers; omit --servers for an all-MID1 fleet. Budgets\n\
         \x20   split per tier by critical-path share, floored at --tier-floor\n\
         \x20   of the global cap per tier; --e2e-target MS sets the\n\
         \x20   end-to-end p99 SLO\n\
         \x20 --rpc-* shape the coordinator<->server message plane (batch only):\n\
         \x20   one-way latency and jitter in µs, loss and duplication probabilities\n\
         \x20   in [0, 1]; the default is a perfect loopback plane\n\
         \x20 --lease-rounds N: cap grants stay in force N rounds unrenewed (default 8);\n\
         \x20   --floor-cap W is the safe cap after a lease expires (default 0)\n\
         \x20 --failover runs a standby coordinator with heartbeat takeover;\n\
         \x20   --quarantine-rounds N holds a new leader's free pool at zero for N\n\
         \x20   rounds after takeover (default 0 = auto: max latency + jitter + lease;\n\
         \x20   shorter values are raised to that handoff horizon)\n\
         \x20 --partition FROM:TO:NODES cuts the comma-separated nodes off for\n\
         \x20   rounds FROM..TO (server names, or 'primary'/'standby'), e.g.\n\
         \x20   --partition 10:30:primary or --partition 20:40:light1,light2"
    );
    std::process::exit(2);
}

fn cluster_fail(msg: &str) -> ! {
    eprintln!("{msg}");
    cluster_usage();
}

/// Parses one `name=mix[:cores][@rate]` fleet entry.
fn parse_server_entry(entry: &str, default_rate: f64) -> (String, String, usize, f64) {
    let (head, rate) = match entry.split_once('@') {
        Some((head, r)) => {
            let rate: f64 = r
                .parse()
                .unwrap_or_else(|_| cluster_fail(&format!("bad rate in server entry '{entry}'")));
            (head, rate)
        }
        None => (entry, default_rate),
    };
    let Some((name, mix_spec)) = head.split_once('=') else {
        cluster_fail(&format!(
            "server entry '{entry}' must look like name=mix[:cores][@rate]"
        ));
    };
    let (mix_name, cores) = match mix_spec.split_once(':') {
        Some((m, c)) => {
            let cores: usize = c
                .parse()
                .unwrap_or_else(|_| cluster_fail(&format!("bad core count in '{entry}'")));
            (m, cores)
        }
        None => (mix_spec, 4),
    };
    if mix(mix_name).is_none() {
        cluster_fail(&format!(
            "unknown mix '{mix_name}' in server entry '{entry}'"
        ));
    }
    if name.is_empty() {
        cluster_fail(&format!("empty server name in entry '{entry}'"));
    }
    (name.to_string(), mix_name.to_string(), cores, rate)
}

/// Parses a `--join ROUND:name=mix[:cores][@rate]` or `--leave ROUND:name`
/// payload into its round and the rest.
fn parse_round_prefix(s: &str, flag: &str) -> (usize, String) {
    let Some((round, rest)) = s.split_once(':') else {
        cluster_fail(&format!("{flag} value '{s}' must look like ROUND:..."));
    };
    let round: usize = round
        .parse()
        .unwrap_or_else(|_| cluster_fail(&format!("bad round number in {flag} '{s}'")));
    (round, rest.to_string())
}

/// Parses a `--partition FROM:TO:NODES` payload: the half-open round window
/// and the comma-separated node names cut off during it.
fn parse_partition(s: &str) -> PartitionSpec {
    let parts: Vec<&str> = s.splitn(3, ':').collect();
    let [from, to, nodes] = parts[..] else {
        cluster_fail(&format!(
            "--partition value '{s}' must look like FROM:TO:NODES (e.g. 10:30:primary)"
        ));
    };
    let from_round: u64 = from
        .parse()
        .unwrap_or_else(|_| cluster_fail(&format!("bad FROM round in --partition '{s}'")));
    let to_round: u64 = to
        .parse()
        .unwrap_or_else(|_| cluster_fail(&format!("bad TO round in --partition '{s}'")));
    let nodes: Vec<String> = nodes
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .map(str::to_string)
        .collect();
    if nodes.is_empty() {
        cluster_fail(&format!("--partition '{s}' names no nodes"));
    }
    PartitionSpec {
        from_round,
        to_round,
        nodes,
    }
}

fn parse_cluster_args() -> ClusterArgs {
    let mut a = ClusterArgs {
        servers: "heavy=MEM2:8@230000,light0=ILP1,light1=ILP2,light2=MID2".into(),
        fleet_size: 0,
        idle_fraction: 0.9,
        cap: None,
        quantum: 1.0,
        dead_band: 0.0,
        epochs_per_round: 0,
        split: CapSplit::FastCap,
        topology: None,
        threads: 4,
        engine: EngineKind::Round,
        wake_shards: 0,
        serve: false,
        rounds: 40,
        rate: 30_000.0,
        p99_target_ms: 1.0,
        seed: 11,
        joins: Vec::new(),
        leaves: Vec::new(),
        clients: 0,
        think_ms: 0.2,
        client_model: ClientModel::Exact,
        think_diurnal: None,
        balance: BalancePolicy::RoundRobin,
        tiers: None,
        tier_floor: 0.1,
        e2e_target_ms: 5.0,
        servers_set: false,
        rpc: RpcConfig::default(),
        rpc_flags_used: false,
    };
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| cluster_fail(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--servers" => {
                a.servers = val("--servers");
                a.servers_set = true;
            }
            "--cap" => a.cap = Some(val("--cap").parse().unwrap_or_else(|_| cluster_usage())),
            "--quantum" => a.quantum = val("--quantum").parse().unwrap_or_else(|_| cluster_usage()),
            "--dead-band" => {
                a.dead_band = val("--dead-band")
                    .parse()
                    .unwrap_or_else(|_| cluster_usage())
            }
            "--epochs-per-round" => {
                a.epochs_per_round = val("--epochs-per-round")
                    .parse()
                    .unwrap_or_else(|_| cluster_usage())
            }
            "--split" => {
                a.split = match val("--split").as_str() {
                    "uniform" => CapSplit::Uniform,
                    "demand-proportional" | "demand" => CapSplit::DemandProportional,
                    "fastcap" => CapSplit::FastCap,
                    "sla-aware" | "sla" => CapSplit::SlaAware,
                    "critical-path" | "crit" => CapSplit::CriticalPath,
                    other => cluster_fail(&format!("unknown split '{other}'")),
                }
            }
            "--topology" => {
                let spec = val("--topology");
                a.topology = Some(BudgetTree::parse(&spec).unwrap_or_else(|e| cluster_fail(&e)));
            }
            "--threads" => a.threads = val("--threads").parse().unwrap_or_else(|_| cluster_usage()),
            "--engine" => {
                a.engine = val("--engine")
                    .parse::<EngineKind>()
                    .unwrap_or_else(|e: String| cluster_fail(&e))
            }
            "--wake-shards" => {
                a.wake_shards = val("--wake-shards")
                    .parse()
                    .unwrap_or_else(|_| cluster_usage())
            }
            "--fleet-size" => {
                a.fleet_size = val("--fleet-size")
                    .parse()
                    .unwrap_or_else(|_| cluster_usage())
            }
            "--idle-fraction" => {
                a.idle_fraction = val("--idle-fraction")
                    .parse()
                    .unwrap_or_else(|_| cluster_usage())
            }
            "--serve" => a.serve = true,
            "--rounds" => a.rounds = val("--rounds").parse().unwrap_or_else(|_| cluster_usage()),
            "--rate" => a.rate = val("--rate").parse().unwrap_or_else(|_| cluster_usage()),
            "--p99-target" => {
                a.p99_target_ms = val("--p99-target")
                    .parse()
                    .unwrap_or_else(|_| cluster_usage())
            }
            "--seed" => a.seed = val("--seed").parse().unwrap_or_else(|_| cluster_usage()),
            "--join" => a.joins.push(val("--join")),
            "--leave" => a.leaves.push(val("--leave")),
            "--clients" => a.clients = val("--clients").parse().unwrap_or_else(|_| cluster_usage()),
            "--think-ms" => {
                a.think_ms = val("--think-ms")
                    .parse()
                    .unwrap_or_else(|_| cluster_usage())
            }
            "--client-model" => {
                a.client_model = val("--client-model")
                    .parse::<ClientModel>()
                    .unwrap_or_else(|e: String| cluster_fail(&e))
            }
            "--think-diurnal" => {
                let spec = val("--think-diurnal");
                let (p, d) = spec
                    .split_once(':')
                    .unwrap_or_else(|| cluster_fail("--think-diurnal wants PERIOD_MS:DEPTH"));
                let period: f64 = p
                    .parse()
                    .unwrap_or_else(|_| cluster_fail("--think-diurnal period must be a number"));
                let depth: f64 = d
                    .parse()
                    .unwrap_or_else(|_| cluster_fail("--think-diurnal depth must be a number"));
                a.think_diurnal = Some((period, depth));
            }
            "--balance" => {
                a.balance = val("--balance")
                    .parse::<BalancePolicy>()
                    .unwrap_or_else(|e: String| cluster_fail(&e))
            }
            "--tiers" => {
                let spec = val("--tiers");
                a.tiers = Some(
                    spec.parse::<TierGraph>()
                        .unwrap_or_else(|e: String| cluster_fail(&e)),
                );
            }
            "--tier-floor" => {
                a.tier_floor = val("--tier-floor")
                    .parse()
                    .unwrap_or_else(|_| cluster_fail("--tier-floor must be a fraction in [0, 1)"))
            }
            "--e2e-target" => {
                a.e2e_target_ms = val("--e2e-target")
                    .parse()
                    .unwrap_or_else(|_| cluster_fail("--e2e-target must be milliseconds"))
            }
            "--rpc-latency-us" => {
                a.rpc.latency_us = val("--rpc-latency-us")
                    .parse()
                    .unwrap_or_else(|_| cluster_fail("--rpc-latency-us must be a number (µs)"));
                a.rpc_flags_used = true;
            }
            "--rpc-jitter-us" => {
                a.rpc.jitter_us = val("--rpc-jitter-us")
                    .parse()
                    .unwrap_or_else(|_| cluster_fail("--rpc-jitter-us must be a number (µs)"));
                a.rpc_flags_used = true;
            }
            "--rpc-loss" => {
                a.rpc.loss = val("--rpc-loss")
                    .parse()
                    .unwrap_or_else(|_| cluster_fail("--rpc-loss must be a probability in [0, 1]"));
                a.rpc_flags_used = true;
            }
            "--rpc-dup" => {
                a.rpc.duplicate = val("--rpc-dup")
                    .parse()
                    .unwrap_or_else(|_| cluster_fail("--rpc-dup must be a probability in [0, 1]"));
                a.rpc_flags_used = true;
            }
            "--rpc-seed" => {
                a.rpc.seed = val("--rpc-seed")
                    .parse()
                    .unwrap_or_else(|_| cluster_fail("--rpc-seed must be an integer"));
                a.rpc_flags_used = true;
            }
            "--lease-rounds" => {
                a.rpc.lease_rounds = val("--lease-rounds")
                    .parse()
                    .unwrap_or_else(|_| cluster_fail("--lease-rounds must be a positive integer"));
                a.rpc_flags_used = true;
            }
            "--floor-cap" => {
                a.rpc.floor_cap_w = val("--floor-cap")
                    .parse()
                    .unwrap_or_else(|_| cluster_fail("--floor-cap must be a wattage"));
                a.rpc_flags_used = true;
            }
            "--failover" => {
                a.rpc.failover = true;
                a.rpc_flags_used = true;
            }
            "--quarantine-rounds" => {
                a.rpc.quarantine_rounds = val("--quarantine-rounds").parse().unwrap_or_else(|_| {
                    cluster_fail("--quarantine-rounds must be a non-negative integer")
                });
                a.rpc_flags_used = true;
            }
            "--partition" => {
                a.rpc.partitions.push(parse_partition(&val("--partition")));
                a.rpc_flags_used = true;
            }
            "--help" | "-h" => cluster_usage(),
            other => cluster_fail(&format!("unknown flag {other}")),
        }
    }
    if a.serve && a.rpc_flags_used {
        cluster_fail(
            "the --rpc-*/--lease-rounds/--floor-cap/--failover/--partition plane flags \
             apply to batch cluster runs; the serving layer does not route through the \
             message plane yet",
        );
    }
    if !a.serve && (!a.joins.is_empty() || !a.leaves.is_empty()) {
        cluster_fail("--join/--leave require --serve (batch fleets run to completion)");
    }
    if !a.serve && a.clients > 0 {
        cluster_fail("--clients requires --serve (batch fleets take no requests)");
    }
    if a.serve && a.fleet_size > 0 {
        cluster_fail("--fleet-size builds a synthetic batch fleet; it does not mix with --serve");
    }
    if !(0.0..=1.0).contains(&a.idle_fraction) {
        cluster_fail("--idle-fraction must be in [0, 1]");
    }
    if a.think_ms < 0.0 || !a.think_ms.is_finite() {
        cluster_fail("--think-ms must be a finite non-negative number");
    }
    if !a.serve && a.split == CapSplit::SlaAware {
        eprintln!(
            "note: sla-aware without --serve has no latency signal; using the fastcap fallback"
        );
    }
    if a.tiers.is_some() && (!a.serve || a.clients == 0) {
        cluster_fail("--tiers needs --serve and a closed-loop --clients population");
    }
    if a.tiers.is_some() && a.topology.is_some() {
        cluster_fail(
            "--tiers builds its own per-tier budget tree; it does not mix with --topology",
        );
    }
    if a.tiers.is_some() && a.fleet_size > 0 {
        cluster_fail(
            "--tiers derives the fleet from the tier graph; it does not mix with --fleet-size",
        );
    }
    if a.tiers.is_none() && a.split == CapSplit::CriticalPath {
        cluster_fail("the critical-path split needs per-tier traces; pass --tiers");
    }
    a
}

fn cluster_batch_main(args: &ClusterArgs) {
    let fleet = if args.fleet_size > 0 {
        synthetic_fleet(args.fleet_size, args.idle_fraction)
    } else {
        let mut fleet = Vec::new();
        for (i, entry) in args.servers.split(',').enumerate() {
            let (name, mix_name, cores, _rate) = parse_server_entry(entry, args.rate);
            fleet.push(ServerSpec::small_with_cores(
                &name,
                &mix_name,
                args.seed + i as u64,
                cores,
            ));
        }
        fleet
    };
    // A synthetic fleet's budget scales with its size — the fixed 280 W
    // default that fits a 4-server named fleet would starve a thousand.
    let cap = match args.cap {
        Some(w) => w,
        None if args.fleet_size > 0 => 100.0 * args.fleet_size as f64,
        None => 280.0,
    };
    let mut cfg = ClusterConfig::new(fleet, cap, args.split)
        .with_threads(args.threads)
        .with_engine(args.engine)
        .with_dead_band(args.dead_band)
        .with_wake_shards(args.wake_shards);
    cfg.quantum_w = args.quantum;
    if args.epochs_per_round > 0 {
        cfg = cfg.with_epochs_per_round(args.epochs_per_round);
    }
    cfg.topology = args.topology.clone();
    cfg.rpc = args.rpc.clone();
    if let Err(e) = cfg.validate() {
        cluster_fail(&format!("invalid cluster configuration: {e}"));
    }

    eprintln!(
        "running {}-server batch fleet / {} @ {} W ({} engine) ...",
        cfg.servers.len(),
        args.split,
        cap,
        args.engine,
    );
    let r = run_cluster(cfg);

    println!("split          : {}", r.split);
    if let Some(t) = &r.topology {
        println!("topology       : {t}");
    }
    println!("global cap     : {:.1} W", r.global_cap_w);
    println!("rounds         : {}", r.rounds);
    println!();
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>12} {:>6}",
        "server", "makespan", "energy", "mean cap", "throughput", "viol"
    );
    for o in &r.outcomes {
        println!(
            "{:<10} {:>9.3} ms {:>8.3} J {:>8.1} W {:>6.1} Minst/s {:>6}",
            o.name,
            o.result.makespan.as_secs_f64() * 1e3,
            o.result.total_energy_j(),
            o.mean_cap_w,
            o.throughput_ips() / 1e6,
            o.violation_rounds,
        );
    }
    println!();
    println!("fleet energy   : {:.3} J", r.total_energy_j());
    println!(
        "fleet makespan : {:.3} ms",
        r.makespan().as_secs_f64() * 1e3
    );
    println!(
        "fairness       : caps {:.3}, perf {:.3} (Jain index)",
        r.cap_fairness(),
        r.perf_fairness()
    );
    println!("cap violations : {}", r.total_violations());
    if args.rpc_flags_used {
        let c = &r.control;
        println!();
        println!(
            "control plane  : {} msgs sent, {} delivered, {} lost, {} cut by partition, {} duplicated",
            c.plane.sent,
            c.plane.delivered,
            c.plane.dropped_loss,
            c.plane.dropped_partition,
            c.plane.duplicated
        );
        println!(
            "grants         : {} sent ({} applied, {} stale, {} expired), {} acks, {} nacks",
            c.grants_sent, c.grants_applied, c.grants_stale, c.grants_expired, c.acks, c.nacks
        );
        println!(
            "leases         : {} expirations, {} server-rounds on the floor cap",
            c.lease_expirations, c.floor_rounds
        );
        if args.rpc.failover {
            println!(
                "failover       : {} elections, {} step-downs, final terms {:?}",
                c.elections, c.step_downs, c.terms
            );
        }
    }
}

/// Builds one serving-fleet spec from a `name=mix[:cores][@rate]` entry,
/// advancing the shared seed counter.
fn serve_spec(entry: &str, default_rate: f64, target_s: f64, seed: &mut u64) -> ServiceServerSpec {
    let (name, mix_name, cores, rate) = parse_server_entry(entry, default_rate);
    *seed += 1;
    ServiceServerSpec::small_with_cores(&name, &mix_name, *seed, rate, cores)
        .with_p99_target_s(target_s)
}

/// Expands a tier graph into the `{tier}{index}` serving fleet it implies.
/// With `--tiers`, each `--servers` entry names a TIER (`tier=mix[:cores]
/// [@rate]`) and styles every server in it; unnamed tiers default to MID1.
fn tier_serve_fleet(
    args: &ClusterArgs,
    graph: &TierGraph,
    target_s: f64,
    seed: &mut u64,
) -> Vec<ServiceServerSpec> {
    let mut style: Vec<(String, usize, f64)> = graph
        .tiers()
        .iter()
        .map(|_| ("MID1".to_string(), 4, args.rate))
        .collect();
    if args.servers_set {
        for entry in args.servers.split(',') {
            let (name, mix_name, cores, rate) = parse_server_entry(entry, args.rate);
            let Some(ti) = graph.tiers().iter().position(|t| t.name == name) else {
                cluster_fail(&format!(
                    "--servers entry '{entry}' names no tier of the --tiers graph \
                     (with --tiers, entries look like tier=mix[:cores][@rate])"
                ));
            };
            style[ti] = (mix_name, cores, rate);
        }
    }
    let mut fleet = Vec::new();
    for (ti, tier) in graph.tiers().iter().enumerate() {
        let (mix_name, cores, rate) = style[ti].clone();
        for i in 0..tier.servers {
            *seed += 1;
            fleet.push(
                ServiceServerSpec::small_with_cores(
                    &format!("{}{}", tier.name, i),
                    &mix_name,
                    *seed,
                    rate,
                    cores,
                )
                .with_p99_target_s(target_s),
            );
        }
    }
    fleet
}

fn cluster_serve_main(args: &ClusterArgs) {
    let target_s = args.p99_target_ms * 1e-3;
    let mut seed = args.seed;

    let fleet: Vec<ServiceServerSpec> = match &args.tiers {
        Some(graph) => tier_serve_fleet(args, graph, target_s, &mut seed),
        None => args
            .servers
            .split(',')
            .map(|entry| serve_spec(entry, args.rate, target_s, &mut seed))
            .collect(),
    };
    let mut churn = ChurnSchedule::new();
    for j in &args.joins {
        let (round, rest) = parse_round_prefix(j, "--join");
        let spec = serve_spec(&rest, args.rate, target_s, &mut seed);
        let name = spec.name.clone();
        if let Err(e) = churn.join(round, &name, spec) {
            cluster_fail(&e);
        }
    }
    for l in &args.leaves {
        let (round, name) = parse_round_prefix(l, "--leave");
        if let Err(e) = churn.leave(round, &name) {
            cluster_fail(&e);
        }
    }

    let cap = args.cap.unwrap_or(280.0);
    let mut cfg = ServiceConfig::new(fleet, cap, args.split)
        .with_rounds(args.rounds)
        .with_threads(args.threads)
        .with_engine(args.engine)
        .with_churn(churn);
    if args.clients > 0 {
        let mut closed = ClosedLoopConfig::new(
            args.clients,
            Ps::from_secs_f64(args.think_ms * 1e-3),
            args.balance,
        )
        .with_model(args.client_model);
        if let Some((period_ms, depth)) = args.think_diurnal {
            closed = closed.with_think_diurnal(Ps::from_secs_f64(period_ms * 1e-3), depth);
        }
        cfg = cfg.with_closed_loop(closed);
    }
    cfg.topology = args.topology.clone();
    if let Some(graph) = &args.tiers {
        cfg = cfg.with_tiers(
            TierConfig::new(graph.clone())
                .with_floor_frac(args.tier_floor)
                .with_e2e_target_s(args.e2e_target_ms * 1e-3),
        );
    }
    if let Err(e) = cfg.validate() {
        cluster_fail(&format!("invalid service configuration: {e}"));
    }

    eprintln!(
        "running {}-server serving fleet / {} @ {} W for {} rounds ...",
        cfg.servers.len(),
        args.split,
        cap,
        args.rounds
    );
    let r = run_service(cfg);

    println!("split          : {}", r.split);
    if let Some(t) = &r.topology {
        println!("topology       : {t}");
    }
    println!("global cap     : {:.1} W", r.global_cap_w);
    println!("rounds         : {}", r.rounds);
    println!();
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>10} {:>10} {:>5} {:>9} {:>5}",
        "server", "mean cap", "done", "shed", "p50", "p99", "SLO", "energy", "note"
    );
    for o in &r.outcomes {
        println!(
            "{:<10} {:>7.1} W {:>9} {:>7} {:>7.0} µs {:>7.0} µs {:>5} {:>7.2} J {:>5}",
            o.name,
            o.mean_cap_w,
            o.completed,
            o.shed,
            o.percentile_s(0.50) * 1e6,
            o.p99_s() * 1e6,
            if o.meets_slo() { "met" } else { "MISS" },
            o.energy_j,
            if o.departed { "left" } else { "" },
        );
    }
    println!();
    println!("fleet energy   : {:.3} J", r.total_energy_j());
    println!(
        "fleet p99      : {:.3} ms (target {:.3} ms)",
        r.fleet_percentile_s(0.99) * 1e3,
        args.p99_target_ms
    );
    println!(
        "SLO            : {} ({} violation rounds)",
        if r.all_meet_slo() {
            "every server meets its p99 target"
        } else {
            "MISSED on at least one server"
        },
        r.total_violation_rounds()
    );
    println!(
        "requests       : {} completed, {} shed, {} abandoned in queue",
        r.total_completed(),
        r.total_shed(),
        r.outcomes.iter().map(|o| o.abandoned).sum::<u64>()
    );
    if let Some(cl) = &r.closed_loop {
        println!(
            "closed loop    : {} clients ({} model) / {} balancer, {:.3} ms mean think",
            cl.clients,
            cl.model,
            cl.balance,
            cl.mean_think.as_secs_f64() * 1e3
        );
        println!(
            "clients at end : {} generated, {} responses; {} thinking, {} waiting",
            cl.generated, cl.responses, cl.thinking_at_end, cl.waiting_at_end
        );
    }
    if let Some(t) = &r.tiers {
        let shares = t.crit_shares();
        println!();
        println!("tier graph     : {}", t.graph);
        println!(
            "request DAGs   : {} opened, {} closed ({} failed), {} still open; {} spans done",
            t.stats.roots_opened,
            t.stats.roots_closed,
            t.stats.roots_failed,
            t.stats.open_roots,
            t.stats.spans_closed,
        );
        for (ti, name) in t.tier_names.iter().enumerate() {
            println!(
                "  {:<12} crit share {:.3}, slowest in {:>6} DAGs, {:>8} sub-requests done",
                name, shares[ti], t.slowest_counts[ti], t.stats.completed_by_tier[ti],
            );
        }
        println!(
            "end-to-end     : p50 {:.3} ms, p99 {:.3} ms over {} DAGs (target {:.3} ms, {})",
            t.e2e_percentile_s(0.50) * 1e3,
            t.e2e_p99_s() * 1e3,
            t.e2e_hist.count(),
            t.e2e_target_s * 1e3,
            if t.meets_e2e_slo() { "met" } else { "MISSED" },
        );
    }
}

fn cluster_main() {
    let args = parse_cluster_args();
    if args.serve {
        cluster_serve_main(&args);
    } else {
        cluster_batch_main(&args);
    }
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("cluster") {
        cluster_main();
        return;
    }
    let args = parse_args();
    let Some(m) = mix(&args.mix) else {
        eprintln!(
            "unknown mix '{}'; known: {:?}",
            args.mix,
            all_mixes().iter().map(|m| m.name).collect::<Vec<_>>()
        );
        std::process::exit(2);
    };

    let mut cfg = SimConfig::for_mix(m);
    cfg.gamma = args.gamma / 100.0;
    cfg.target_instrs = args.instrs;
    cfg.cores = args.cores;
    cfg.core.prefetch = args.prefetch;
    if args.ooo {
        cfg.core.pipeline = PipelineMode::MlpWindow(128);
    }
    if args.open_page {
        cfg.mem.page_policy = memsim::PagePolicy::Open;
        cfg.mem.addr_map = memsim::AddrMap::RowInterleaved;
    }
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }

    let (kind, custom): (PolicyKind, Option<Box<dyn coscale::Policy>>) = match args.policy.as_str()
    {
        "baseline" | "static" => (PolicyKind::StaticMax, None),
        "coscale" => (PolicyKind::CoScale, None),
        "memscale" => (PolicyKind::MemScale, None),
        "cpuonly" => (PolicyKind::CpuOnly, None),
        "uncoordinated" => (PolicyKind::Uncoordinated, None),
        "semi" => (PolicyKind::SemiCoordinated, None),
        "offline" => (PolicyKind::Offline, None),
        "powercap" => (
            PolicyKind::PowerCap,
            Some(Box::new(PowerCapPolicy::new(args.cap))),
        ),
        other => {
            eprintln!("unknown policy '{other}'");
            usage();
        }
    };

    eprintln!("running {} / {kind} ...", args.mix);
    let mut runner = Runner::new(cfg.clone(), kind);
    if let Some(p) = custom {
        runner = runner.with_policy(p);
    }
    let r = runner.run();

    println!("mix            : {}", r.mix);
    println!("policy         : {}", r.policy);
    println!("epochs         : {}", r.epochs);
    println!("makespan       : {}", r.makespan);
    println!(
        "energy         : {:.3} J (cpu {:.3}, l2 {:.3}, mem {:.3}, rest {:.3})",
        r.total_energy_j(),
        r.cpu_energy_j,
        r.l2_energy_j,
        r.mem_energy_j,
        r.rest_energy_j
    );
    println!(
        "avg power      : {:.1} W",
        r.total_energy_j() / r.makespan.as_secs_f64()
    );
    println!("workload MPKI  : {:.2}   WPKI: {:.2}", r.mpki, r.wpki);
    if args.prefetch {
        println!("pref. accuracy : {:.1}%", 100.0 * r.prefetch_accuracy);
    }
    if args.open_page {
        println!("row hit rate   : {:.1}%", 100.0 * r.row_hit_rate);
    }
    println!("bus utilization: {:.1}%", 100.0 * r.bus_utilization);
    println!(
        "read latency   : avg {:.1} ns, p50 {:.0}, p95 {:.0}, p99 {:.0}",
        r.avg_read_latency_ns, r.read_lat_p50_ns, r.read_lat_p95_ns, r.read_lat_p99_ns
    );

    if args.compare {
        eprintln!("running {} / baseline ...", args.mix);
        let base = coscale::run_policy(cfg, PolicyKind::StaticMax);
        let d = r.degradation_vs(&base);
        let worst = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "vs baseline    : {:.1}% energy savings, worst slowdown {:.1}%",
            100.0 * r.energy_savings_vs(&base),
            100.0 * worst
        );
    }

    if let Some(path) = args.timeline {
        let f = std::fs::File::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        r.write_timeline(std::io::BufWriter::new(f))
            .unwrap_or_else(|e| {
                eprintln!("cannot write timeline: {e}");
                std::process::exit(1);
            });
        println!("timeline       : {path}");
    }
}
