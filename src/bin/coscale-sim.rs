//! `coscale-sim` — the command-line front end of the simulator.
//!
//! ```text
//! coscale-sim [OPTIONS]
//!
//!   --mix NAME          workload mix (Table 1 name; default MIX2)
//!   --policy NAME       baseline|coscale|memscale|cpuonly|uncoordinated|
//!                       semi|offline|powercap (default coscale)
//!   --gamma PCT         performance bound in percent (default 10)
//!   --instrs N          instructions per application (default 10000000)
//!   --cores N           number of cores, 1..=16 (default 16)
//!   --prefetch          enable the next-line prefetcher
//!   --ooo               MLP-window (out-of-order emulation) pipeline
//!   --open-page         open-page row-buffer policy (+ row-interleaved map)
//!   --cap WATTS         power budget for --policy powercap (default 150)
//!   --seed N            workload seed
//!   --timeline FILE     write the per-epoch decision timeline as TSV
//!   --compare           also run the no-DVFS baseline and report savings
//! ```

use coscale::PowerCapPolicy;
use coscale_repro::prelude::*;

struct Args {
    mix: String,
    policy: String,
    gamma: f64,
    instrs: u64,
    cores: usize,
    prefetch: bool,
    ooo: bool,
    open_page: bool,
    cap: f64,
    seed: Option<u64>,
    timeline: Option<String>,
    compare: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: coscale-sim [--mix NAME] [--policy NAME] [--gamma PCT] \
         [--instrs N] [--cores N] [--prefetch] [--ooo] [--open-page] \
         [--cap WATTS] [--seed N] [--timeline FILE] [--compare]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        mix: "MIX2".into(),
        policy: "coscale".into(),
        gamma: 10.0,
        instrs: 10_000_000,
        cores: 16,
        prefetch: false,
        ooo: false,
        open_page: false,
        cap: 150.0,
        seed: None,
        timeline: None,
        compare: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--mix" => a.mix = val("--mix"),
            "--policy" => a.policy = val("--policy"),
            "--gamma" => a.gamma = val("--gamma").parse().unwrap_or_else(|_| usage()),
            "--instrs" => a.instrs = val("--instrs").parse().unwrap_or_else(|_| usage()),
            "--cores" => a.cores = val("--cores").parse().unwrap_or_else(|_| usage()),
            "--prefetch" => a.prefetch = true,
            "--ooo" => a.ooo = true,
            "--open-page" => a.open_page = true,
            "--cap" => a.cap = val("--cap").parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = Some(val("--seed").parse().unwrap_or_else(|_| usage())),
            "--timeline" => a.timeline = Some(val("--timeline")),
            "--compare" => a.compare = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    a
}

fn main() {
    let args = parse_args();
    let Some(m) = mix(&args.mix) else {
        eprintln!(
            "unknown mix '{}'; known: {:?}",
            args.mix,
            all_mixes().iter().map(|m| m.name).collect::<Vec<_>>()
        );
        std::process::exit(2);
    };

    let mut cfg = SimConfig::for_mix(m);
    cfg.gamma = args.gamma / 100.0;
    cfg.target_instrs = args.instrs;
    cfg.cores = args.cores;
    cfg.core.prefetch = args.prefetch;
    if args.ooo {
        cfg.core.pipeline = PipelineMode::MlpWindow(128);
    }
    if args.open_page {
        cfg.mem.page_policy = memsim::PagePolicy::Open;
        cfg.mem.addr_map = memsim::AddrMap::RowInterleaved;
    }
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(2);
    }

    let (kind, custom): (PolicyKind, Option<Box<dyn coscale::Policy>>) = match args.policy.as_str()
    {
        "baseline" | "static" => (PolicyKind::StaticMax, None),
        "coscale" => (PolicyKind::CoScale, None),
        "memscale" => (PolicyKind::MemScale, None),
        "cpuonly" => (PolicyKind::CpuOnly, None),
        "uncoordinated" => (PolicyKind::Uncoordinated, None),
        "semi" => (PolicyKind::SemiCoordinated, None),
        "offline" => (PolicyKind::Offline, None),
        "powercap" => (
            PolicyKind::PowerCap,
            Some(Box::new(PowerCapPolicy::new(args.cap))),
        ),
        other => {
            eprintln!("unknown policy '{other}'");
            usage();
        }
    };

    eprintln!("running {} / {kind} ...", args.mix);
    let mut runner = Runner::new(cfg.clone(), kind);
    if let Some(p) = custom {
        runner = runner.with_policy(p);
    }
    let r = runner.run();

    println!("mix            : {}", r.mix);
    println!("policy         : {}", r.policy);
    println!("epochs         : {}", r.epochs);
    println!("makespan       : {}", r.makespan);
    println!(
        "energy         : {:.3} J (cpu {:.3}, l2 {:.3}, mem {:.3}, rest {:.3})",
        r.total_energy_j(),
        r.cpu_energy_j,
        r.l2_energy_j,
        r.mem_energy_j,
        r.rest_energy_j
    );
    println!(
        "avg power      : {:.1} W",
        r.total_energy_j() / r.makespan.as_secs_f64()
    );
    println!("workload MPKI  : {:.2}   WPKI: {:.2}", r.mpki, r.wpki);
    if args.prefetch {
        println!("pref. accuracy : {:.1}%", 100.0 * r.prefetch_accuracy);
    }
    if args.open_page {
        println!("row hit rate   : {:.1}%", 100.0 * r.row_hit_rate);
    }
    println!("bus utilization: {:.1}%", 100.0 * r.bus_utilization);
    println!(
        "read latency   : avg {:.1} ns, p50 {:.0}, p95 {:.0}, p99 {:.0}",
        r.avg_read_latency_ns, r.read_lat_p50_ns, r.read_lat_p95_ns, r.read_lat_p99_ns
    );

    if args.compare {
        eprintln!("running {} / baseline ...", args.mix);
        let base = coscale::run_policy(cfg, PolicyKind::StaticMax);
        let d = r.degradation_vs(&base);
        let worst = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "vs baseline    : {:.1}% energy savings, worst slowdown {:.1}%",
            100.0 * r.energy_savings_vs(&base),
            100.0 * worst
        );
    }

    if let Some(path) = args.timeline {
        let f = std::fs::File::create(&path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        r.write_timeline(std::io::BufWriter::new(f))
            .unwrap_or_else(|e| {
                eprintln!("cannot write timeline: {e}");
                std::process::exit(1);
            });
        println!("timeline       : {path}");
    }
}
