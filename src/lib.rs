//! # coscale-repro — a reproduction of CoScale (MICRO 2012)
//!
//! This facade crate re-exports the whole workspace so examples and
//! downstream users need a single dependency:
//!
//! * [`simkernel`] — deterministic discrete-event kernel (picosecond time,
//!   event queue, PRNG, statistics).
//! * [`workloads`] — synthetic SPEC-like traces and the paper's 16 mixes.
//! * [`cpusim`] — shared L2, prefetcher, in-order / MLP-window cores, and
//!   CoScale's performance counters.
//! * [`memsim`] — the DDR3 channel/rank/bank simulator with bus DVFS.
//! * [`powermodel`] — core/DRAM/MC/PLL/system power models.
//! * [`coscale`] — the performance/energy models, the CoScale controller,
//!   the five comparison policies, and the epoch engine.
//! * [`cluster`] — N servers under one global power budget, coordinated by
//!   a cluster-level cap redistributor (uniform / demand-proportional /
//!   FastCap-style / SLA-aware splitting), with fleet-churn schedules and
//!   hierarchical fleet → pod → rack budget trees mixing disciplines per
//!   level.
//! * [`service`] — the request-serving layer: open-loop Poisson/MMPP
//!   arrivals or a closed-loop client population (request → response →
//!   exponential think) routed by a front-end load balancer, bounded
//!   queues with admission control, fluid request draining at the engine's
//!   measured throughput, and tail-latency SLOs driving the SLA-aware cap
//!   splitting.
//!
//! # Example
//!
//! ```no_run
//! use coscale_repro::prelude::*;
//!
//! let cfg = SimConfig::small(mix("MID1").unwrap());
//! let base = run_policy(cfg.clone(), PolicyKind::StaticMax);
//! let co = run_policy(cfg, PolicyKind::CoScale);
//! assert!(co.energy_savings_vs(&base) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cluster;
pub use coscale;
pub use cpusim;
pub use memsim;
pub use powermodel;
pub use service;
pub use simkernel;
pub use workloads;

/// The most common imports for driving simulations.
pub mod prelude {
    pub use cluster::{
        run_cluster, synthetic_fleet, BalancePolicy, BudgetNode, BudgetTree, CapSplit,
        ChurnSchedule, ClusterConfig, ClusterResult, ClusterSim, ControlStats, EngineKind,
        FleetEngine, LoadBalancer, PartitionSpec, RpcConfig, ServerLoad, ServerSpec,
    };
    pub use coscale::{
        run_policy, CoScalePolicy, Model, Plan, Policy, PolicyKind, RunResult, Runner, SimConfig,
        System,
    };
    pub use cpusim::{CoreConfig, PipelineMode};
    pub use service::{
        run_service, ArrivalKind, ClientModel, ClientPool, ClosedLoopConfig, FluidPool,
        ServiceConfig, ServiceResult, ServiceServerSpec, ServiceSim, TierConfig, TierGraph,
        TierSummary,
    };
    pub use simkernel::{Freq, Ps};
    pub use workloads::{all_mixes, mix, Mix, MixClass};
}
