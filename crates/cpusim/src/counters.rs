//! CoScale's per-core performance counters (§3.3 of the paper).
//!
//! Beyond MemScale's two per-core counters, CoScale adds L2 and activity
//! counters so the OS can split CPI into core-, L2- and memory-attributable
//! time and estimate core power:
//!
//! * **TIC** — Total Instructions Committed
//! * **TMS** — Total L1 Miss Stalls (stalls satisfied by the L2)
//! * **TLA / TLM / TLS** — Total L2 Accesses / Misses / Miss Stalls
//! * **CAC** — four Core Activity Counters (ALU, FPU, branch, load/store)
//!
//! We additionally accumulate the stall *times* the simulator knows exactly;
//! a real implementation derives them from the counts and latencies, and the
//! analytic model in the `coscale` crate consumes them the same way.

use simkernel::Ps;

/// Cumulative counters for one core. Snapshot-and-subtract for windows.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoreCounters {
    /// Total instructions committed.
    pub tic: u64,
    /// Instructions that stalled on an L1 miss that hit in the L2.
    pub tms: u64,
    /// Total L2 accesses.
    pub tla: u64,
    /// Total L2 misses.
    pub tlm: u64,
    /// Instructions that stalled on an L2 miss (equals `tlm` on the in-order
    /// pipeline; on the MLP-window pipeline misses may be fully hidden).
    pub tls: u64,
    /// Committed ALU instructions (CAC).
    pub cac_alu: f64,
    /// Committed FPU instructions (CAC).
    pub cac_fpu: f64,
    /// Committed branches (CAC).
    pub cac_branch: f64,
    /// Committed loads/stores (CAC).
    pub cac_loadstore: f64,
    /// Time the core spent executing instructions (frequency-dependent).
    pub busy_time: Ps,
    /// Time stalled on L2 hits (uncore clock: frequency-independent).
    pub l2_stall_time: Ps,
    /// Time stalled waiting for memory.
    pub mem_stall_time: Ps,
    /// Time halted for DVFS transitions.
    pub halt_time: Ps,
}

impl CoreCounters {
    /// Component-wise `self - earlier`.
    pub fn delta(&self, earlier: &CoreCounters) -> CoreCounters {
        CoreCounters {
            tic: self.tic - earlier.tic,
            tms: self.tms - earlier.tms,
            tla: self.tla - earlier.tla,
            tlm: self.tlm - earlier.tlm,
            tls: self.tls - earlier.tls,
            cac_alu: self.cac_alu - earlier.cac_alu,
            cac_fpu: self.cac_fpu - earlier.cac_fpu,
            cac_branch: self.cac_branch - earlier.cac_branch,
            cac_loadstore: self.cac_loadstore - earlier.cac_loadstore,
            busy_time: self.busy_time - earlier.busy_time,
            l2_stall_time: self.l2_stall_time - earlier.l2_stall_time,
            mem_stall_time: self.mem_stall_time - earlier.mem_stall_time,
            halt_time: self.halt_time - earlier.halt_time,
        }
    }

    /// α in Eq. (1): fraction of instructions that stall on an L2 access.
    pub fn alpha(&self) -> f64 {
        if self.tic == 0 {
            0.0
        } else {
            self.tms as f64 / self.tic as f64
        }
    }

    /// β in Eq. (1): fraction of instructions that miss the L2 and stall.
    pub fn beta(&self) -> f64 {
        if self.tic == 0 {
            0.0
        } else {
            self.tls as f64 / self.tic as f64
        }
    }

    /// E\[TPI_CPU\]: average core-attributable time per instruction at the
    /// frequency the window executed at.
    pub fn tpi_cpu(&self) -> Ps {
        if self.tic == 0 {
            Ps::ZERO
        } else {
            self.busy_time / self.tic
        }
    }

    /// E\[TPI_L2\]: average stall per L2-hit stall.
    pub fn tpi_l2(&self) -> Ps {
        if self.tms == 0 {
            Ps::ZERO
        } else {
            self.l2_stall_time / self.tms
        }
    }

    /// E\[TPI_Mem\]: average stall per stalled L2 miss.
    pub fn tpi_mem(&self) -> Ps {
        if self.tls == 0 {
            Ps::ZERO
        } else {
            self.mem_stall_time / self.tls
        }
    }

    /// LLC misses per kilo-instruction in this window.
    pub fn mpki(&self) -> f64 {
        if self.tic == 0 {
            0.0
        } else {
            self.tlm as f64 * 1000.0 / self.tic as f64
        }
    }

    /// Total wall-clock time this window accounts for (busy + stalls +
    /// transition halts).
    pub fn total_time(&self) -> Ps {
        self.busy_time + self.l2_stall_time + self.mem_stall_time + self.halt_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoreCounters {
        CoreCounters {
            tic: 1000,
            tms: 100,
            tla: 120,
            tlm: 20,
            tls: 20,
            cac_alu: 450.0,
            cac_fpu: 20.0,
            cac_branch: 180.0,
            cac_loadstore: 350.0,
            busy_time: Ps::from_ns(300),
            l2_stall_time: Ps::from_ns(750),
            mem_stall_time: Ps::from_ns(1200),
            halt_time: Ps::ZERO,
        }
    }

    #[test]
    fn ratios() {
        let c = sample();
        assert!((c.alpha() - 0.1).abs() < 1e-12);
        assert!((c.beta() - 0.02).abs() < 1e-12);
        assert!((c.mpki() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn per_instruction_times() {
        let c = sample();
        assert_eq!(c.tpi_cpu(), Ps::new(300));
        assert_eq!(c.tpi_l2(), Ps::new(7_500));
        assert_eq!(c.tpi_mem(), Ps::from_ns(60));
        assert_eq!(c.total_time(), Ps::from_ns(2250));
    }

    #[test]
    fn zero_window_is_all_zeros() {
        let c = CoreCounters::default();
        assert_eq!(c.alpha(), 0.0);
        assert_eq!(c.beta(), 0.0);
        assert_eq!(c.tpi_cpu(), Ps::ZERO);
        assert_eq!(c.tpi_l2(), Ps::ZERO);
        assert_eq!(c.tpi_mem(), Ps::ZERO);
        assert_eq!(c.mpki(), 0.0);
    }

    #[test]
    fn delta_is_componentwise() {
        let a = sample();
        let mut b = a;
        b.tic += 500;
        b.busy_time += Ps::from_ns(100);
        b.cac_alu += 225.0;
        let d = b.delta(&a);
        assert_eq!(d.tic, 500);
        assert_eq!(d.busy_time, Ps::from_ns(100));
        assert!((d.cac_alu - 225.0).abs() < 1e-9);
        assert_eq!(d.tms, 0);
    }
}
