//! The trace-driven core model: an in-order, single-issue pipeline with one
//! outstanding miss (Table 2), plus the paper's two §4.2.4 extensions — a
//! next-line prefetcher and an "MLP window" emulation of out-of-order
//! latency hiding.

use crate::{Access, CoreCounters, L2Cache};
use memsim::LineAddr;
use simkernel::{Freq, Ps};
use workloads::{AppProfile, TraceGen, TraceOp};

/// Pipeline behavior on L2 misses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineMode {
    /// Stall on every L2 miss (one outstanding miss).
    InOrder,
    /// Emulate out-of-order latency hiding: all memory operations within an
    /// `n`-instruction window are assumed independent, so the core keeps
    /// executing until the oldest outstanding miss falls `n` instructions
    /// behind (the paper uses 128).
    MlpWindow(u64),
}

/// Static per-core configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// L2 hit latency in wall-clock time. The L2 sits in a fixed uncore
    /// clock domain (30 cycles at the nominal 4 GHz = 7.5 ns), so this does
    /// not scale with core frequency.
    pub l2_hit_time: Ps,
    /// Miss-handling behavior.
    pub pipeline: PipelineMode,
    /// Enable the tagged next-line prefetcher.
    pub prefetch: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            l2_hit_time: Ps::new(7_500),
            pipeline: PipelineMode::InOrder,
            prefetch: false,
        }
    }
}

/// What the core needs next from its driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wake {
    /// Call [`CoreSim::advance`] again at this time.
    At(Ps),
    /// The core is blocked on memory; a completion will un-block it.
    Blocked,
}

/// Requests emitted by a core step, filled into caller-owned buffers.
#[derive(Clone, Debug, Default)]
pub struct CoreOutput {
    /// Demand reads to issue to the memory system.
    pub reads: Vec<LineAddr>,
    /// Prefetch reads to issue (fill-only; never block the core).
    pub prefetches: Vec<LineAddr>,
    /// Dirty evictions to drain to memory.
    pub writebacks: Vec<LineAddr>,
}

impl CoreOutput {
    /// Empties all buffers; call before reuse.
    pub fn clear(&mut self) {
        self.reads.clear();
        self.prefetches.clear();
        self.writebacks.clear();
    }
}

#[derive(Clone, Copy, Debug)]
enum State {
    /// Ready to fetch the next trace operation.
    Idle,
    /// Executing `instrs` instructions, finishing at `end`, then performing
    /// the L2 reference of `op`.
    Computing {
        start: Ps,
        end: Ps,
        instrs: u64,
        op: TraceOp,
    },
    /// Pipeline stalled on an L2 hit.
    L2Stall { end: Ps },
    /// In-order: blocked on the single outstanding demand miss.
    WaitMem,
    /// MLP window full: blocked until the oldest outstanding miss returns.
    WaitWindow,
}

/// One simulated core executing one application trace.
///
/// The core is driven externally: [`CoreSim::advance`] runs it forward at
/// the current simulated time and reports when to call again (or that it is
/// blocked); [`CoreSim::complete_read`] / [`CoreSim::complete_prefetch`]
/// deliver memory completions. All L2 interaction goes through the shared
/// [`L2Cache`] handed in by the driver.
#[derive(Clone, Debug)]
pub struct CoreSim {
    id: usize,
    config: CoreConfig,
    freq: Freq,
    gen: TraceGen,
    state: State,
    /// Core may not execute before this time (DVFS transition).
    halt_until: Ps,
    /// When the current memory block began, for stall accounting.
    block_start: Ps,
    /// Outstanding demand misses: (line, instruction index at issue, store).
    outstanding: Vec<(LineAddr, u64, bool)>,
    /// Lines with an in-flight prefetch (dedup, bounded).
    outstanding_prefetches: Vec<LineAddr>,
    counters: CoreCounters,
}

/// Upper bound on in-flight prefetches per core; beyond this the prefetcher
/// simply skips (real prefetchers have finite request queues).
const MAX_INFLIGHT_PREFETCHES: usize = 32;

impl CoreSim {
    /// Creates a core executing `profile`, clocked at `freq`.
    pub fn new(id: usize, profile: AppProfile, seed: u64, freq: Freq, config: CoreConfig) -> Self {
        CoreSim {
            id,
            config,
            freq,
            gen: TraceGen::new(profile, id, seed),
            state: State::Idle,
            halt_until: Ps::ZERO,
            block_start: Ps::ZERO,
            outstanding: Vec::new(),
            outstanding_prefetches: Vec::new(),
            counters: CoreCounters::default(),
        }
    }

    /// This core's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current core clock.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// Cumulative performance counters.
    pub fn counters(&self) -> &CoreCounters {
        &self.counters
    }

    /// Instructions committed so far.
    pub fn instrs(&self) -> u64 {
        self.counters.tic
    }

    /// The application profile this core runs.
    pub fn profile(&self) -> &AppProfile {
        self.gen.profile()
    }

    /// Whether the core is blocked waiting on memory.
    pub fn is_blocked(&self) -> bool {
        matches!(self.state, State::WaitMem | State::WaitWindow)
    }

    /// Pre-installs this core's hot footprint into the shared L2, emulating
    /// the warmup phase the paper's SimPoint traces include. Call once at
    /// simulation start; filling is clean, so no writebacks result.
    pub fn warm_l2(&self, l2: &mut L2Cache) {
        for line in self.gen.hot_footprint() {
            l2.fill(line, false, false);
        }
    }

    fn compute_span(&self, instrs: u64) -> Ps {
        let cycles = instrs as f64 * self.gen.profile().cpi_base;
        Ps::new((cycles * self.freq.period().as_ps() as f64).round() as u64)
    }

    fn commit(&mut self, instrs: u64, span: Ps) {
        let c = &mut self.counters;
        c.tic += instrs;
        c.busy_time += span;
        let mix = self.gen.profile().mix;
        let n = instrs as f64;
        c.cac_alu += n * mix.alu;
        c.cac_fpu += n * mix.fpu;
        c.cac_branch += n * mix.branch;
        c.cac_loadstore += n * mix.loadstore;
    }

    fn window_full(&self) -> bool {
        match self.config.pipeline {
            PipelineMode::InOrder => !self.outstanding.is_empty(),
            PipelineMode::MlpWindow(w) => self
                .outstanding
                .first()
                .is_some_and(|&(_, at, _)| self.counters.tic.saturating_sub(at) >= w),
        }
    }

    fn maybe_prefetch(&mut self, line: LineAddr, l2: &L2Cache, out: &mut CoreOutput) {
        if !self.config.prefetch
            || self.outstanding_prefetches.len() >= MAX_INFLIGHT_PREFETCHES
            || l2.contains(line)
            || self.outstanding_prefetches.contains(&line)
        {
            return;
        }
        self.outstanding_prefetches.push(line);
        out.prefetches.push(line);
    }

    /// Runs the core forward at time `now`. Emits memory requests into
    /// `out` and returns when to call again.
    ///
    /// Calling `advance` before the time it previously asked for is allowed
    /// and harmless (it re-reports the pending wake time), which lets the
    /// driver use a simple event queue with stale-event re-delivery.
    pub fn advance(&mut self, now: Ps, l2: &mut L2Cache, out: &mut CoreOutput) -> Wake {
        if now < self.halt_until {
            return Wake::At(self.halt_until);
        }
        loop {
            match self.state {
                State::Idle => {
                    if self.window_full() {
                        self.state = State::WaitWindow;
                        self.block_start = now;
                        return Wake::Blocked;
                    }
                    let op = self.gen.next_op();
                    let instrs = op.gap + 1;
                    let span = self.compute_span(instrs);
                    self.state = State::Computing {
                        start: now,
                        end: now + span,
                        instrs,
                        op,
                    };
                    return Wake::At(now + span);
                }
                State::Computing {
                    start,
                    end,
                    instrs,
                    op,
                } => {
                    if now < end {
                        return Wake::At(end);
                    }
                    self.commit(instrs, end - start);
                    self.counters.tla += 1;
                    match l2.access(op.line, op.is_store) {
                        Access::Hit {
                            first_use_of_prefetch,
                        } => {
                            self.counters.tms += 1;
                            self.counters.l2_stall_time += self.config.l2_hit_time;
                            if first_use_of_prefetch {
                                self.maybe_prefetch(LineAddr(op.line.0 + 1), l2, out);
                            }
                            self.state = State::L2Stall {
                                end: now + self.config.l2_hit_time,
                            };
                            return Wake::At(now + self.config.l2_hit_time);
                        }
                        Access::Miss => {
                            self.counters.tlm += 1;
                            self.counters.tls += 1;
                            // MSHR-style merge: if a prefetch for this line
                            // is already in flight, piggyback on it instead
                            // of issuing a duplicate read.
                            if !self.outstanding_prefetches.contains(&op.line) {
                                out.reads.push(op.line);
                            }
                            self.outstanding
                                .push((op.line, self.counters.tic, op.is_store));
                            // Stride-1 stream filter: only prefetch when the
                            // preceding line is resident, i.e. the miss looks
                            // like a sequential walk. Prefetching every miss
                            // wastes bandwidth on random accesses, which on a
                            // loaded 16-core memory system costs more than
                            // the hits gain.
                            if op.line.0 > 0 && l2.contains(LineAddr(op.line.0 - 1)) {
                                self.maybe_prefetch(LineAddr(op.line.0 + 1), l2, out);
                            }
                            match self.config.pipeline {
                                PipelineMode::InOrder => {
                                    self.state = State::WaitMem;
                                    self.block_start = now;
                                    return Wake::Blocked;
                                }
                                PipelineMode::MlpWindow(_) => {
                                    self.state = State::Idle;
                                    // Loop: the Idle arm re-checks the window.
                                }
                            }
                        }
                    }
                }
                State::L2Stall { end } => {
                    if now < end {
                        return Wake::At(end);
                    }
                    self.state = State::Idle;
                }
                State::WaitMem | State::WaitWindow => return Wake::Blocked,
            }
        }
    }

    /// Delivers a demand-read completion for `line` at time `now`, filling
    /// the L2 (possibly emitting a writeback into `out`). Returns `true` if
    /// the core became runnable and the driver should call
    /// [`CoreSim::advance`].
    ///
    /// # Panics
    ///
    /// Panics if `line` was never requested by this core.
    pub fn complete_read(
        &mut self,
        now: Ps,
        line: LineAddr,
        l2: &mut L2Cache,
        out: &mut CoreOutput,
    ) -> bool {
        let pos = self
            .outstanding
            .iter()
            .position(|&(l, _, _)| l == line)
            .unwrap_or_else(|| panic!("core {}: completion for unknown line {line:?}", self.id));
        let (_, _, is_store) = self.outstanding.remove(pos);
        if let Some(victim) = l2.fill(line, is_store, false) {
            out.writebacks.push(victim);
        }
        self.unblock_after_fill(now)
    }

    /// Re-evaluates blocking after a fill satisfied an outstanding miss.
    fn unblock_after_fill(&mut self, now: Ps) -> bool {
        match self.state {
            State::WaitMem => {
                self.counters.mem_stall_time += now - self.block_start;
                self.state = State::Idle;
                true
            }
            State::WaitWindow => {
                if self.window_full() {
                    false
                } else {
                    self.counters.mem_stall_time += now - self.block_start;
                    self.state = State::Idle;
                    true
                }
            }
            _ => false,
        }
    }

    /// Delivers a prefetch completion: fills the line tagged as prefetched.
    /// If a demand miss merged into this prefetch (MSHR behavior), the fill
    /// is treated as the demand's and the core may become runnable; returns
    /// `true` when the driver should call [`CoreSim::advance`].
    pub fn complete_prefetch(
        &mut self,
        now: Ps,
        line: LineAddr,
        l2: &mut L2Cache,
        out: &mut CoreOutput,
    ) -> bool {
        self.outstanding_prefetches.retain(|&l| l != line);
        if let Some(pos) = self.outstanding.iter().position(|&(l, _, _)| l == line) {
            let (_, _, is_store) = self.outstanding.remove(pos);
            if let Some(victim) = l2.fill(line, is_store, false) {
                out.writebacks.push(victim);
            }
            return self.unblock_after_fill(now);
        }
        if let Some(victim) = l2.fill(line, false, true) {
            out.writebacks.push(victim);
        }
        false
    }

    /// Applies a DVFS transition at `now`: the core halts for `halt` (it
    /// executes no instructions during a voltage/frequency change, §3) and
    /// resumes at `new_freq`. Returns the next wake time if the core has a
    /// timed continuation; blocked cores stay blocked.
    pub fn apply_dvfs(&mut self, now: Ps, new_freq: Freq, halt: Ps) -> Option<Wake> {
        self.counters.halt_time += halt;
        self.halt_until = now + halt;
        self.freq = new_freq;
        match self.state {
            State::Computing {
                start,
                end,
                instrs,
                op,
            } => {
                // Commit the completed fraction at the old frequency and
                // reschedule the remainder at the new one.
                let total = (end - start).as_ps() as f64;
                let done_frac = if total == 0.0 {
                    1.0
                } else {
                    ((now - start).as_ps() as f64 / total).min(1.0)
                };
                let done_instrs = (instrs as f64 * done_frac).floor() as u64;
                self.commit(done_instrs, now - start);
                let remaining = instrs - done_instrs;
                let span = self.compute_span(remaining);
                self.state = State::Computing {
                    start: self.halt_until,
                    end: self.halt_until + span,
                    instrs: remaining,
                    op,
                };
                Some(Wake::At(self.halt_until + span))
            }
            State::L2Stall { end } => {
                let remaining = end.saturating_sub(now);
                let new_end = self.halt_until + remaining;
                self.state = State::L2Stall { end: new_end };
                Some(Wake::At(new_end))
            }
            State::Idle => Some(Wake::At(self.halt_until)),
            State::WaitMem | State::WaitWindow => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheConfig;
    use workloads::{AppProfile, InstrMix, PhaseProfile};

    fn always_hit_app() -> AppProfile {
        AppProfile::simple(
            "hit",
            1.0,
            InstrMix::INT,
            PhaseProfile::uniform(10.0, 0.0, 0.0, 0.0),
        )
    }

    fn always_miss_app() -> AppProfile {
        AppProfile::simple(
            "miss",
            1.0,
            InstrMix::INT,
            PhaseProfile::uniform(10.0, 1.0, 0.0, 0.0),
        )
    }

    fn l2() -> L2Cache {
        L2Cache::new(CacheConfig::default())
    }

    fn core(profile: AppProfile, mode: PipelineMode, prefetch: bool) -> CoreSim {
        CoreSim::new(
            0,
            profile,
            42,
            Freq::from_ghz(4.0),
            CoreConfig {
                pipeline: mode,
                prefetch,
                ..CoreConfig::default()
            },
        )
    }

    /// Drive a lone core against a trivially fast "memory" that answers
    /// reads after `mem_lat`.
    fn run_solo(core: &mut CoreSim, l2: &mut L2Cache, mem_lat: Ps, until: Ps) {
        core.warm_l2(l2);
        let mut now = Ps::ZERO;
        let mut out = CoreOutput::default();
        // (finish_time, line) of in-flight reads.
        let mut inflight: Vec<(Ps, LineAddr)> = Vec::new();
        loop {
            out.clear();
            let wake = core.advance(now, l2, &mut out);
            for &line in &out.reads {
                inflight.push((now + mem_lat, line));
            }
            for &line in &out.prefetches.clone() {
                let mut o2 = CoreOutput::default();
                core.complete_prefetch(now, line, l2, &mut o2);
            }
            let next = match wake {
                Wake::At(t) => t,
                Wake::Blocked => inflight
                    .iter()
                    .map(|&(t, _)| t)
                    .min()
                    .expect("blocked with nothing in flight"),
            };
            now = next;
            if now > until {
                return;
            }
            inflight.sort_by_key(|&(t, _)| t);
            while let Some(&(t, line)) = inflight.first() {
                if t > now {
                    break;
                }
                inflight.remove(0);
                let mut o2 = CoreOutput::default();
                core.complete_read(t, line, l2, &mut o2);
            }
        }
    }

    #[test]
    fn hit_workload_splits_time_between_compute_and_l2() {
        let mut c = core(always_hit_app(), PipelineMode::InOrder, false);
        let mut cache = l2();
        run_solo(&mut c, &mut cache, Ps::from_ns(40), Ps::from_us(200));
        let ctr = c.counters();
        assert!(ctr.tic > 100_000);
        assert_eq!(ctr.tlm, 0, "hot footprint should stay resident");
        assert!(ctr.tms > 0);
        // alpha ~= 10 accesses per kiloinstruction = 0.01.
        assert!((ctr.alpha() - 0.01).abs() < 0.002, "alpha {}", ctr.alpha());
        assert_eq!(ctr.mem_stall_time, Ps::ZERO);
        assert_eq!(ctr.tpi_l2(), Ps::new(7_500));
    }

    #[test]
    fn miss_workload_stalls_on_memory() {
        let mut c = core(always_miss_app(), PipelineMode::InOrder, false);
        let mut cache = l2();
        run_solo(&mut c, &mut cache, Ps::from_ns(40), Ps::from_us(100));
        let ctr = c.counters();
        assert!(ctr.tlm > 0);
        assert_eq!(ctr.tls, ctr.tlm);
        // Every miss stalled for the full memory latency.
        assert_eq!(ctr.tpi_mem(), Ps::from_ns(40));
        assert!((ctr.beta() - 0.01).abs() < 0.002, "beta {}", ctr.beta());
    }

    #[test]
    fn mlp_window_hides_memory_latency() {
        let run = |mode| {
            let mut c = core(always_miss_app(), mode, false);
            let mut cache = l2();
            run_solo(&mut c, &mut cache, Ps::from_ns(100), Ps::from_us(100));
            let ctr = *c.counters();
            ctr.tic as f64 / (Ps::from_us(100).as_secs_f64() * 4e9) // IPC
        };
        let ipc_inorder = run(PipelineMode::InOrder);
        let ipc_ooo = run(PipelineMode::MlpWindow(128));
        assert!(
            ipc_ooo > ipc_inorder * 1.3,
            "MLP window should raise IPC: {ipc_inorder} vs {ipc_ooo}"
        );
    }

    #[test]
    fn window_limits_outstanding_misses() {
        // Window of 1 behaves like in-order for a miss-every-instruction
        // stream: cannot run more than ~1 op ahead.
        let mut c = core(always_miss_app(), PipelineMode::MlpWindow(1), false);
        let mut cache = l2();
        run_solo(&mut c, &mut cache, Ps::from_ns(100), Ps::from_us(50));
        assert!(c.counters().mem_stall_time > Ps::ZERO);
    }

    #[test]
    fn prefetcher_reduces_misses_on_streaming_workload() {
        let streaming = AppProfile::simple(
            "stream",
            1.0,
            InstrMix::FP,
            PhaseProfile::uniform(20.0, 1.0, 1.0, 0.0),
        );
        let run = |prefetch| {
            let mut c = core(streaming.clone(), PipelineMode::InOrder, prefetch);
            let mut cache = l2();
            run_solo(&mut c, &mut cache, Ps::from_ns(60), Ps::from_us(200));
            let ctr = *c.counters();
            ctr.mpki()
        };
        let mpki_off = run(false);
        let mpki_on = run(true);
        assert!(
            mpki_on < mpki_off * 0.6,
            "next-line prefetch should cut streaming MPKI: {mpki_off} -> {mpki_on}"
        );
    }

    #[test]
    fn lower_frequency_slows_compute_but_not_l2() {
        let run = |ghz| {
            let mut c = CoreSim::new(
                0,
                always_hit_app(),
                42,
                Freq::from_ghz(ghz),
                CoreConfig::default(),
            );
            let mut cache = l2();
            run_solo(&mut c, &mut cache, Ps::from_ns(40), Ps::from_us(100));
            let ctr = *c.counters();
            (ctr.tic, ctr.tpi_l2())
        };
        let (tic_fast, l2_fast) = run(4.0);
        let (tic_slow, l2_slow) = run(2.2);
        assert!(tic_fast as f64 > tic_slow as f64 * 1.4);
        assert_eq!(l2_fast, l2_slow, "L2 latency is uncore-clocked");
    }

    #[test]
    fn dvfs_transition_halts_and_rescales() {
        let mut c = core(always_hit_app(), PipelineMode::InOrder, false);
        let mut cache = l2();
        let mut out = CoreOutput::default();
        let wake = c.advance(Ps::ZERO, &mut cache, &mut out);
        let Wake::At(first_end) = wake else {
            panic!("expected timed wake")
        };
        // Halt mid-segment.
        let mid = first_end / 2;
        let wake = c
            .apply_dvfs(mid, Freq::from_ghz(2.0), Ps::from_us(20))
            .unwrap();
        let Wake::At(resumed) = wake else {
            panic!("expected timed wake")
        };
        assert!(resumed >= mid + Ps::from_us(20));
        assert_eq!(c.counters().halt_time, Ps::from_us(20));
        assert_eq!(c.freq(), Freq::from_ghz(2.0));
        // Advancing during the halt just re-reports the wake time.
        let w = c.advance(mid + Ps::from_ns(1), &mut cache, &mut out);
        assert_eq!(w, Wake::At(mid + Ps::from_us(20)));
    }

    #[test]
    #[should_panic(expected = "unknown line")]
    fn unknown_completion_panics() {
        let mut c = core(always_miss_app(), PipelineMode::InOrder, false);
        let mut cache = l2();
        let mut out = CoreOutput::default();
        c.complete_read(Ps::ZERO, LineAddr(1), &mut cache, &mut out);
    }

    #[test]
    fn determinism_across_clones() {
        let mut a = core(always_miss_app(), PipelineMode::MlpWindow(128), true);
        let mut b = a.clone();
        let mut ca = l2();
        let mut cb = l2();
        run_solo(&mut a, &mut ca, Ps::from_ns(50), Ps::from_us(50));
        run_solo(&mut b, &mut cb, Ps::from_ns(50), Ps::from_us(50));
        assert_eq!(a.counters(), b.counters());
    }
}
