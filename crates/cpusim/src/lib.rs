//! Trace-driven CPU model for the CoScale reproduction.
//!
//! The paper's first simulation step runs SPEC applications through M5 to
//! collect L1-miss/writeback traces; its second step replays those traces
//! through a detailed LLC/memory model. This crate is the Rust rebuild of
//! the CPU side of that second step:
//!
//! * [`L2Cache`] — the shared 16 MiB, 16-way LLC with LRU replacement,
//!   writeback tracking, and prefetch-accuracy bookkeeping.
//! * [`CoreSim`] — a single-issue core replaying a synthetic trace
//!   ([`workloads::TraceGen`]), stalling on L2 hits (fixed uncore latency)
//!   and on L2 misses; per-core DVFS with transition halts.
//! * [`PipelineMode::MlpWindow`] — the §4.2.4 out-of-order emulation: all
//!   memory operations within a 128-instruction window are independent.
//! * [`CoreConfig::prefetch`] — the §4.2.4 tagged next-line prefetcher.
//! * [`CoreCounters`] — CoScale's per-core counters (TIC/TMS/TLA/TLM/TLS and
//!   the four Core Activity Counters) that feed the performance and power
//!   models in the `coscale` crate.
//!
//! # Example
//!
//! ```
//! use cpusim::{CacheConfig, CoreConfig, CoreOutput, CoreSim, L2Cache, Wake};
//! use simkernel::{Freq, Ps};
//! use workloads::app;
//!
//! let mut l2 = L2Cache::new(CacheConfig::default());
//! let mut core = CoreSim::new(0, app("milc"), 1, Freq::from_ghz(4.0), CoreConfig::default());
//! let mut out = CoreOutput::default();
//! match core.advance(Ps::ZERO, &mut l2, &mut out) {
//!     Wake::At(t) => assert!(t > Ps::ZERO),
//!     Wake::Blocked => unreachable!("first step is always compute"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod core;
mod counters;

pub use crate::core::{CoreConfig, CoreOutput, CoreSim, PipelineMode, Wake};
pub use cache::{Access, CacheConfig, CacheStats, L2Cache};
pub use counters::CoreCounters;
