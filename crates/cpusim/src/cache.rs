//! The shared last-level (L2) cache: set-associative, LRU, writeback, with
//! next-line-prefetch bookkeeping.

use memsim::LineAddr;

/// Shared L2 configuration. Defaults match Table 2: 16 MiB, 16-way, 64-byte
/// blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Block size in bytes.
    pub line_bytes: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }
}

impl CacheConfig {
    /// Number of sets implied by the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two set count or
    /// zero ways).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0, "cache needs at least one way");
        let sets = self.size_bytes / (self.line_bytes * self.ways as u64);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count {sets} must be a nonzero power of two"
        );
        sets as usize
    }
}

/// Cumulative cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Dirty evictions (writebacks produced).
    pub writebacks: u64,
    /// Lines installed by the prefetcher.
    pub prefetch_fills: u64,
    /// Prefetched lines that saw a demand access before eviction (useful
    /// prefetches).
    pub prefetch_useful: u64,
    /// Prefetched lines evicted without ever being referenced.
    pub prefetch_unused: u64,
}

impl CacheStats {
    /// Demand miss ratio; zero when no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Prefetch accuracy: useful / (useful + unused); zero when no
    /// prefetches have been evaluated yet.
    pub fn prefetch_accuracy(&self) -> f64 {
        let judged = self.prefetch_useful + self.prefetch_unused;
        if judged == 0 {
            0.0
        } else {
            self.prefetch_useful as f64 / judged as f64
        }
    }

    /// Component-wise difference.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            writebacks: self.writebacks - earlier.writebacks,
            prefetch_fills: self.prefetch_fills - earlier.prefetch_fills,
            prefetch_useful: self.prefetch_useful - earlier.prefetch_useful,
            prefetch_unused: self.prefetch_unused - earlier.prefetch_unused,
        }
    }
}

/// Result of a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Line present. `first_use_of_prefetch` is true exactly once per
    /// prefetched line — the trigger for tagged next-line prefetching.
    Hit {
        /// First demand touch of a prefetched line.
        first_use_of_prefetch: bool,
    },
    /// Line absent; the caller must fetch it from memory and later call
    /// [`L2Cache::fill`].
    Miss,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    prefetched: bool,
    lru: u64,
}

const INVALID: Way = Way {
    tag: 0,
    valid: false,
    dirty: false,
    prefetched: false,
    lru: 0,
};

/// A set-associative writeback LRU cache over [`LineAddr`]s.
///
/// The set index is hash-folded from the full line address so that each
/// core's private footprint (cores own disjoint high-order address slices)
/// spreads over all sets instead of aliasing into the low sets.
///
/// # Example
///
/// ```
/// use cpusim::{Access, CacheConfig, L2Cache};
/// use memsim::LineAddr;
///
/// let mut l2 = L2Cache::new(CacheConfig::default());
/// assert_eq!(l2.access(LineAddr(7), false), Access::Miss);
/// assert_eq!(l2.fill(LineAddr(7), false, false), None);
/// assert!(matches!(l2.access(LineAddr(7), false), Access::Hit { .. }));
/// ```
#[derive(Clone, Debug)]
pub struct L2Cache {
    config: CacheConfig,
    sets: Vec<Way>,
    set_mask: u64,
    ways: usize,
    stamp: u64,
    stats: CacheStats,
}

impl L2Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration geometry is inconsistent.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        L2Cache {
            config,
            sets: vec![INVALID; sets * config.ways],
            set_mask: sets as u64 - 1,
            ways: config.ways,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration used to build this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        // Fold the high bits down so disjoint per-core regions spread across
        // all sets.
        let x = line.0;
        ((x ^ (x >> 14) ^ (x >> 28) ^ (x >> 42)) & self.set_mask) as usize
    }

    #[inline]
    fn set_slice_mut(&mut self, idx: usize) -> &mut [Way] {
        let start = idx * self.ways;
        &mut self.sets[start..start + self.ways]
    }

    /// Performs a demand access. On a hit the line's LRU position is
    /// refreshed and, for stores, the dirty bit set. On a miss nothing is
    /// installed — fetch the line and call [`L2Cache::fill`].
    pub fn access(&mut self, line: LineAddr, is_store: bool) -> Access {
        self.stamp += 1;
        let stamp = self.stamp;
        let idx = self.set_index(line);
        let set = self.set_slice_mut(idx);
        for way in set.iter_mut() {
            if way.valid && way.tag == line.0 {
                way.lru = stamp;
                way.dirty |= is_store;
                let first_use = way.prefetched;
                way.prefetched = false;
                self.stats.hits += 1;
                if first_use {
                    self.stats.prefetch_useful += 1;
                }
                return Access::Hit {
                    first_use_of_prefetch: first_use,
                };
            }
        }
        self.stats.misses += 1;
        Access::Miss
    }

    /// Whether `line` is currently resident (no LRU/stat side effects).
    pub fn contains(&self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        let start = idx * self.ways;
        self.sets[start..start + self.ways]
            .iter()
            .any(|w| w.valid && w.tag == line.0)
    }

    /// Installs `line`, evicting the LRU way if the set is full. Returns the
    /// victim's address if it was dirty (the caller owes a writeback).
    ///
    /// `dirty` marks the fill itself dirty (store miss); `prefetched` tags
    /// the line for prefetch-accuracy accounting.
    pub fn fill(&mut self, line: LineAddr, dirty: bool, prefetched: bool) -> Option<LineAddr> {
        self.stamp += 1;
        let stamp = self.stamp;
        let idx = self.set_index(line);
        let set = self.set_slice_mut(idx);

        // Already present (e.g. a demand fill racing a prefetch fill):
        // merge flags rather than duplicating the line.
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == line.0) {
            way.dirty |= dirty;
            way.lru = stamp;
            return None;
        }

        let victim = match set.iter_mut().find(|w| !w.valid) {
            Some(way) => way,
            None => set
                .iter_mut()
                .min_by_key(|w| w.lru)
                .expect("ways > 0 by construction"),
        };

        let evicted = *victim;
        *victim = Way {
            tag: line.0,
            valid: true,
            dirty,
            prefetched,
            lru: stamp,
        };

        let mut writeback = None;
        if evicted.valid {
            if evicted.prefetched {
                self.stats.prefetch_unused += 1;
            }
            if evicted.dirty {
                self.stats.writebacks += 1;
                writeback = Some(LineAddr(evicted.tag));
            }
        }
        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        writeback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L2Cache {
        // 4 sets x 2 ways x 64B = 512B.
        L2Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    /// Lines that map to set 0 of the tiny cache.
    fn same_set_lines(cache: &L2Cache, n: usize) -> Vec<LineAddr> {
        let target = cache.set_index(LineAddr(0));
        (0u64..)
            .map(LineAddr)
            .filter(|l| cache.set_index(*l) == target)
            .take(n)
            .collect()
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(LineAddr(5), false), Access::Miss);
        assert_eq!(c.fill(LineAddr(5), false, false), None);
        assert!(matches!(c.access(LineAddr(5), false), Access::Hit { .. }));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        let lines = same_set_lines(&c, 3);
        c.fill(lines[0], false, false);
        c.fill(lines[1], false, false);
        // Touch line 0 so line 1 is LRU.
        let _ = c.access(lines[0], false);
        c.fill(lines[2], false, false);
        assert!(c.contains(lines[0]));
        assert!(!c.contains(lines[1]));
        assert!(c.contains(lines[2]));
    }

    #[test]
    fn dirty_eviction_returns_writeback() {
        let mut c = tiny();
        let lines = same_set_lines(&c, 3);
        c.fill(lines[0], true, false);
        c.fill(lines[1], false, false);
        // Fill a third line: evicts lines[0] (LRU, dirty).
        let wb = c.fill(lines[2], false, false);
        assert_eq!(wb, Some(lines[0]));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = tiny();
        let lines = same_set_lines(&c, 3);
        c.fill(lines[0], false, false);
        let _ = c.access(lines[0], true); // store hit
        c.fill(lines[1], false, false);
        let wb = c.fill(lines[2], false, false);
        // lines[1] is... touch order: fill0, access0, fill1, fill2 evicts
        // lines[0]? No: lru(l0)=access stamp 2 > fill1... victim = l1.
        // Evicting clean l1 yields no writeback; fill again to evict dirty l0.
        let wb2 = c.fill(same_set_lines(&c, 4)[3], false, false);
        assert!(wb.is_some() || wb2.is_some());
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn prefetch_accuracy_accounting() {
        let mut c = tiny();
        let lines = same_set_lines(&c, 4);
        c.fill(lines[0], false, true); // prefetch, will be used
        c.fill(lines[1], false, true); // prefetch, never used
        match c.access(lines[0], false) {
            Access::Hit {
                first_use_of_prefetch,
            } => assert!(first_use_of_prefetch),
            other => panic!("expected hit, got {other:?}"),
        }
        // Second touch is no longer a "first use".
        match c.access(lines[0], false) {
            Access::Hit {
                first_use_of_prefetch,
            } => assert!(!first_use_of_prefetch),
            other => panic!("expected hit, got {other:?}"),
        }
        // Evict the unused prefetch.
        c.fill(lines[2], false, false);
        c.fill(lines[3], false, false);
        let s = c.stats();
        assert_eq!(s.prefetch_fills, 2);
        assert_eq!(s.prefetch_useful, 1);
        assert!(s.prefetch_unused >= 1);
        assert!((s.prefetch_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_fill_merges() {
        let mut c = tiny();
        c.fill(LineAddr(9), false, false);
        assert_eq!(c.fill(LineAddr(9), true, false), None);
        // Dirty flag merged: evicting it must produce a writeback.
        let lines = same_set_lines(&c, 8);
        let set9 = (0u64..)
            .map(LineAddr)
            .filter(|l| {
                l.0 != 9 && {
                    let probe = tiny();
                    probe.set_index(*l) == probe.set_index(LineAddr(9))
                }
            })
            .take(2)
            .collect::<Vec<_>>();
        let mut wb = None;
        for l in set9 {
            wb = wb.or(c.fill(l, false, false));
        }
        assert_eq!(wb, Some(LineAddr(9)));
        let _ = lines;
    }

    #[test]
    fn default_geometry() {
        let c = CacheConfig::default();
        assert_eq!(c.sets(), 16_384);
        let cache = L2Cache::new(c);
        assert_eq!(cache.sets.len(), 16_384 * 16);
    }

    #[test]
    fn miss_ratio_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = L2Cache::new(CacheConfig {
            size_bytes: 3 * 64 * 2,
            ways: 2,
            line_bytes: 64,
        });
    }
}
