//! Property-based tests for the cache and core models.

use cpusim::{Access, CacheConfig, CoreConfig, CoreOutput, CoreSim, L2Cache, PipelineMode, Wake};
use memsim::LineAddr;
use proptest::prelude::*;
use simkernel::{Freq, Ps};
use workloads::{AppProfile, InstrMix, PhaseProfile};

fn tiny_cache() -> L2Cache {
    L2Cache::new(CacheConfig {
        size_bytes: 8 * 1024,
        ways: 4,
        line_bytes: 64,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After a fill, the line is resident until evicted; a hit immediately
    /// after a fill is guaranteed.
    #[test]
    fn fill_then_access_hits(lines in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut c = tiny_cache();
        for &l in &lines {
            c.fill(LineAddr(l), false, false);
            prop_assert!(c.contains(LineAddr(l)));
            let hit = matches!(c.access(LineAddr(l), false), Access::Hit { .. });
            prop_assert!(hit);
        }
    }

    /// Stats identities: hits + misses equals accesses; writebacks never
    /// exceed fills of dirty data.
    #[test]
    fn cache_stats_identities(ops in prop::collection::vec((0u64..4096, any::<bool>()), 1..500)) {
        let mut c = tiny_cache();
        let mut accesses = 0u64;
        for &(line, is_store) in &ops {
            accesses += 1;
            if let Access::Miss = c.access(LineAddr(line), is_store) {
                c.fill(LineAddr(line), is_store, false);
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, accesses);
        // Store hits also dirty lines, so writebacks ≤ all stores, but they
        // can never exceed total misses (each writeback needs an eviction).
        prop_assert!(s.writebacks <= s.misses);
    }

    /// The cache never reports more prefetch-useful events than prefetch
    /// fills.
    #[test]
    fn prefetch_accounting_bounded(ops in prop::collection::vec((0u64..2048, any::<bool>()), 1..300)) {
        let mut c = tiny_cache();
        for &(line, pf) in &ops {
            if pf {
                c.fill(LineAddr(line), false, true);
            } else if let Access::Miss = c.access(LineAddr(line), false) {
                c.fill(LineAddr(line), false, false);
            }
        }
        let s = c.stats();
        prop_assert!(s.prefetch_useful + s.prefetch_unused <= s.prefetch_fills + 1);
        let acc = s.prefetch_accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    /// A core's committed-instruction count only grows, and its counter
    /// identities hold at every step, for any memory latency.
    #[test]
    fn core_counters_are_consistent(
        seed in any::<u64>(),
        lat_ns in 20u64..400,
        miss_frac in 0.0f64..1.0,
    ) {
        let profile = AppProfile::simple(
            "prop",
            1.1,
            InstrMix::INT,
            PhaseProfile::uniform(25.0, miss_frac, 0.3, 0.3),
        );
        let mut core = CoreSim::new(0, profile, seed, Freq::from_ghz(3.0), CoreConfig::default());
        let mut l2 = L2Cache::new(CacheConfig::default());
        core.warm_l2(&mut l2);
        let mut out = CoreOutput::default();
        let mut now = Ps::ZERO;
        let mut inflight: Vec<(Ps, LineAddr)> = Vec::new();
        let mut last_tic = 0u64;
        for _ in 0..300 {
            out.clear();
            let wake = core.advance(now, &mut l2, &mut out);
            for &line in &out.reads {
                inflight.push((now + Ps::from_ns(lat_ns), line));
            }
            prop_assert!(core.instrs() >= last_tic);
            last_tic = core.instrs();
            let c = core.counters();
            prop_assert!(c.tms + c.tlm <= c.tla, "stalls exceed accesses");
            prop_assert!(c.tls <= c.tlm);
            prop_assert!(c.tla <= c.tic.max(1));
            now = match wake {
                Wake::At(t) => t,
                Wake::Blocked => {
                    let (t, line) = inflight.remove(0);
                    let mut o = CoreOutput::default();
                    core.complete_read(t.max(now), line, &mut l2, &mut o);
                    t.max(now)
                }
            };
        }
        // CAC fractions sum to the committed instruction count.
        let c = core.counters();
        let cac_sum = c.cac_alu + c.cac_fpu + c.cac_branch + c.cac_loadstore;
        prop_assert!((cac_sum - c.tic as f64).abs() < 1.0);
    }

    /// The MLP window is a relaxation: for the same trace and latency, an
    /// MLP-window core always commits at least as many instructions as the
    /// in-order core by any deadline.
    #[test]
    fn mlp_window_never_slower(seed in any::<u64>(), window in 2u64..256) {
        let profile = AppProfile::simple(
            "prop",
            1.0,
            InstrMix::FP,
            PhaseProfile::uniform(30.0, 0.8, 0.2, 0.3),
        );
        let run = |mode: PipelineMode| {
            let mut core = CoreSim::new(0, profile.clone(), seed, Freq::from_ghz(4.0), CoreConfig {
                pipeline: mode,
                ..CoreConfig::default()
            });
            let mut l2 = L2Cache::new(CacheConfig::default());
            core.warm_l2(&mut l2);
            let mut out = CoreOutput::default();
            let mut now = Ps::ZERO;
            let deadline = Ps::from_us(50);
            let mut inflight: Vec<(Ps, LineAddr)> = Vec::new();
            loop {
                out.clear();
                let wake = core.advance(now, &mut l2, &mut out);
                for &line in &out.reads {
                    inflight.push((now + Ps::from_ns(80), line));
                }
                inflight.sort_by_key(|&(t, _)| t);
                let next = match wake {
                    Wake::At(t) => t,
                    Wake::Blocked => inflight.first().map(|&(t, _)| t).unwrap_or(deadline),
                };
                if next > deadline {
                    break;
                }
                now = next;
                while let Some(&(t, line)) = inflight.first() {
                    if t > now { break; }
                    inflight.remove(0);
                    let mut o = CoreOutput::default();
                    core.complete_read(t, line, &mut l2, &mut o);
                }
            }
            core.instrs()
        };
        let inorder = run(PipelineMode::InOrder);
        let ooo = run(PipelineMode::MlpWindow(window));
        prop_assert!(ooo + 2_000 >= inorder,
            "window {window} slower than in-order: {ooo} vs {inorder}");
    }
}
