//! Integration tests for engine features beyond the core reproduction:
//! timeline export, latency percentiles, open-page and idle-state memory
//! configurations driven end to end, and voltage-domain accounting.

use coscale::{run_policy, PolicyKind, SimConfig};
use memsim::{AddrMap, IdleMemPolicy, IdleMode, PagePolicy};
use simkernel::Ps;
use workloads::mix;

fn cfg(name: &str) -> SimConfig {
    let mut c = SimConfig::small(mix(name).unwrap());
    c.target_instrs = 1_000_000;
    c
}

#[test]
fn timeline_export_has_one_row_per_epoch() {
    let r = run_policy(cfg("MID1"), PolicyKind::CoScale);
    let mut buf = Vec::new();
    r.write_timeline(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), r.epochs + 1, "header + one row per epoch");
    assert!(lines[0].starts_with("epoch\tstart_us\tmem_idx"));
    assert!(lines[0].contains("core0"));
    // Each data row has header-many fields.
    let cols = lines[0].split('\t').count();
    for l in &lines[1..] {
        assert_eq!(l.split('\t').count(), cols, "ragged row: {l}");
    }
}

#[test]
fn latency_percentiles_are_ordered_and_plausible() {
    let r = run_policy(cfg("MEM1"), PolicyKind::StaticMax);
    assert!(r.read_lat_p50_ns > 20.0, "p50 {}", r.read_lat_p50_ns);
    assert!(r.read_lat_p50_ns <= r.read_lat_p95_ns);
    assert!(r.read_lat_p95_ns <= r.read_lat_p99_ns);
    assert!(r.read_lat_p99_ns < 100_000.0, "p99 {}", r.read_lat_p99_ns);
    // The mean must lie within the distribution.
    assert!(r.avg_read_latency_ns >= r.read_lat_p50_ns / 4.0);
    assert!(r.avg_read_latency_ns <= r.read_lat_p99_ns * 4.0);
}

#[test]
fn open_page_system_runs_and_reports_row_hits() {
    let mut c = cfg("MEM1");
    c.mem.page_policy = PagePolicy::Open;
    c.mem.addr_map = AddrMap::RowInterleaved;
    let r = run_policy(c, PolicyKind::StaticMax);
    assert!(r.row_hit_rate > 0.0, "streaming mixes must hit open rows");
    assert!(r.row_hit_rate < 1.0);
}

#[test]
fn closed_page_beats_open_page_at_multicore_scale() {
    // The §4.1 configuration claim is specifically about *multi-core* CPUs:
    // with 16 cores' interleaved traffic, closed page + channel interleave
    // wins; at low core counts open-page row locality can still pay off.
    let mut base_cfg = SimConfig::for_mix(mix("MEM1").unwrap());
    base_cfg.target_instrs = 1_500_000;
    let closed = run_policy(base_cfg.clone(), PolicyKind::StaticMax);
    let mut oc = base_cfg;
    oc.mem.page_policy = PagePolicy::Open;
    oc.mem.addr_map = AddrMap::RowInterleaved;
    let open = run_policy(oc, PolicyKind::StaticMax);
    assert!(
        closed.makespan <= open.makespan,
        "closed page should win at 16 cores: {} vs {}",
        closed.makespan,
        open.makespan
    );
}

#[test]
fn idle_states_sleep_on_light_workloads() {
    let mut c = cfg("ILP1");
    c.mem.idle_policy = Some(IdleMemPolicy {
        threshold: Ps::from_us(2),
        mode: IdleMode::Powerdown,
    });
    let r = run_policy(c, PolicyKind::StaticMax);
    assert!(
        r.mem_sleep_fraction > 0.05,
        "light traffic must let ranks sleep, got {}",
        r.mem_sleep_fraction
    );
    // Powerdown's cheap exit must not blow up performance.
    let base = run_policy(cfg("ILP1"), PolicyKind::StaticMax);
    let slow = r.makespan.as_secs_f64() / base.makespan.as_secs_f64() - 1.0;
    assert!(slow < 0.10, "powerdown slowdown {slow}");
}

#[test]
fn shared_voltage_domains_reduce_coscale_savings() {
    let base = run_policy(cfg("MID1"), PolicyKind::StaticMax);
    let per_core = run_policy(cfg("MID1"), PolicyKind::CoScale);
    let mut dc = cfg("MID1");
    dc.voltage_domain_cores = 4;
    let shared = run_policy(dc, PolicyKind::CoScale);
    let s_ind = per_core.energy_savings_vs(&base);
    let s_shared = shared.energy_savings_vs(&base);
    assert!(
        s_shared <= s_ind + 0.01,
        "shared domains cannot beat per-core: {s_ind} vs {s_shared}"
    );
}

#[test]
fn prefetch_speeds_up_streaming_mix_end_to_end() {
    let base = run_policy(cfg("MEM4"), PolicyKind::StaticMax);
    let mut pc = cfg("MEM4");
    pc.core.prefetch = true;
    let pref = run_policy(pc, PolicyKind::StaticMax);
    assert!(
        pref.makespan < base.makespan,
        "prefetching should speed up a streaming mix: {} vs {}",
        pref.makespan,
        base.makespan
    );
    assert!(
        pref.prefetch_accuracy > 0.5,
        "accuracy {}",
        pref.prefetch_accuracy
    );
}

#[test]
fn seeds_change_results_but_not_structure() {
    let a = run_policy(cfg("MIX1"), PolicyKind::CoScale);
    let mut c2 = cfg("MIX1");
    c2.seed = 0xDEADBEEF;
    let b = run_policy(c2, PolicyKind::CoScale);
    assert_ne!(a.makespan, b.makespan, "different seeds should differ");
    // But the workload class characteristics stay close.
    assert!((a.mpki - b.mpki).abs() / a.mpki < 0.2);
}
