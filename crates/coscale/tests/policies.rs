//! Integration tests over the full engine: every policy runs a small
//! workload end to end, and the paper's qualitative claims hold.

use coscale::{run_policy, PolicyKind, Runner, SimConfig};
use simkernel::Ps;
use workloads::mix;

fn small(mix_name: &str) -> SimConfig {
    SimConfig::small(mix(mix_name).unwrap())
}

fn degradations(policy: PolicyKind, mix_name: &str) -> (f64, f64, f64) {
    let base = run_policy(small(mix_name), PolicyKind::StaticMax);
    let run = run_policy(small(mix_name), policy);
    let degr = run.degradation_vs(&base);
    let avg = degr.iter().sum::<f64>() / degr.len() as f64;
    let worst = degr.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (avg, worst, run.energy_savings_vs(&base))
}

#[test]
fn every_policy_completes_every_class() {
    for m in ["ILP1", "MID1", "MEM1", "MIX2"] {
        for p in [
            PolicyKind::StaticMax,
            PolicyKind::CoScale,
            PolicyKind::MemScale,
            PolicyKind::CpuOnly,
            PolicyKind::Uncoordinated,
            PolicyKind::SemiCoordinated,
        ] {
            let r = run_policy(small(m), p);
            assert!(r.epochs > 0, "{m}/{p}: no epochs");
            assert!(
                r.completion.iter().all(|t| *t > Ps::ZERO),
                "{m}/{p}: missing completions"
            );
            assert!(r.total_energy_j() > 0.0, "{m}/{p}: no energy");
        }
    }
}

#[test]
fn baseline_stays_at_max_frequencies() {
    let r = run_policy(small("MID1"), PolicyKind::StaticMax);
    for rec in &r.records {
        assert!(rec.plan.cores.iter().all(|&c| c == 9));
        assert_eq!(rec.plan.mem, 9);
    }
}

#[test]
fn coscale_saves_energy_within_bound() {
    for m in ["MID1", "MIX2"] {
        let (avg, worst, savings) = degradations(PolicyKind::CoScale, m);
        assert!(
            worst <= 0.115,
            "{m}: CoScale must respect the 10% bound (+tolerance), got {worst}"
        );
        assert!(
            savings > 0.02,
            "{m}: CoScale should save energy, got {savings}"
        );
        assert!(avg <= worst + 1e-12);
    }
}

#[test]
fn semi_coordinated_respects_bound() {
    let (_, worst, savings) = degradations(PolicyKind::SemiCoordinated, "MID1");
    assert!(worst <= 0.115, "Semi-coordinated bound violated: {worst}");
    assert!(savings > 0.0, "Semi-coordinated should still save energy");
}

#[test]
fn uncoordinated_violates_bound_on_balanced_mix() {
    // The paper: Uncoordinated consumes the slack twice and exceeds the
    // bound (up to 19% on a 10% target). The effect needs the full 16-core
    // contention to show, so this test runs the paper-scale configuration
    // with a reduced instruction budget.
    let mut cfg = SimConfig::for_mix(mix("MID1").unwrap());
    cfg.target_instrs = 4_000_000;
    let base = run_policy(cfg.clone(), PolicyKind::StaticMax);
    let r = run_policy(cfg, PolicyKind::Uncoordinated);
    let worst = r
        .degradation_vs(&base)
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        worst > 0.105,
        "Uncoordinated should overshoot the 10% bound, got {worst}"
    );
}

#[test]
fn component_policies_save_less_than_coscale() {
    let base = run_policy(small("MID1"), PolicyKind::StaticMax);
    let co = run_policy(small("MID1"), PolicyKind::CoScale);
    let ms = run_policy(small("MID1"), PolicyKind::MemScale);
    let cp = run_policy(small("MID1"), PolicyKind::CpuOnly);
    let co_s = co.energy_savings_vs(&base);
    let ms_s = ms.energy_savings_vs(&base);
    let cp_s = cp.energy_savings_vs(&base);
    assert!(
        co_s > ms_s - 1e-9,
        "CoScale ({co_s}) should beat MemScale ({ms_s})"
    );
    assert!(
        co_s > cp_s - 1e-9,
        "CoScale ({co_s}) should beat CPUOnly ({cp_s})"
    );
}

#[test]
fn offline_bounds_coscale_from_above_approximately() {
    let base = run_policy(small("MID2"), PolicyKind::StaticMax);
    let co = run_policy(small("MID2"), PolicyKind::CoScale);
    let off = run_policy(small("MID2"), PolicyKind::Offline);
    let co_s = co.energy_savings_vs(&base);
    let off_s = off.energy_savings_vs(&base);
    // Offline is an oracle upper bound for the greedy search; allow a small
    // tolerance since its oracle profile is still one epoch's measurement.
    assert!(
        off_s >= co_s - 0.03,
        "Offline ({off_s}) should not trail CoScale ({co_s}) by much"
    );
    let worst = off
        .degradation_vs(&base)
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        worst <= 0.115,
        "Offline must respect the bound too: {worst}"
    );
}

#[test]
fn memscale_only_touches_memory_and_cpuonly_only_cores() {
    let ms = run_policy(small("MID1"), PolicyKind::MemScale);
    for rec in &ms.records {
        assert!(rec.plan.cores.iter().all(|&c| c == 9));
    }
    let cp = run_policy(small("MID1"), PolicyKind::CpuOnly);
    for rec in &cp.records {
        assert_eq!(rec.plan.mem, 9);
    }
}

#[test]
fn memory_bound_mix_prefers_cpu_scaling() {
    // MEM workloads keep the memory bus busy with 16 cores' traffic, so
    // CoScale should scale the CPU much more aggressively than memory
    // (§4.2.1: "greater memory channel traffic reduces the opportunities
    // for memory subsystem DVFS").
    let mut cfg = SimConfig::for_mix(mix("MEM1").unwrap());
    cfg.target_instrs = 4_000_000;
    let r = run_policy(cfg, PolicyKind::CoScale);
    let (mut core_steps, mut mem_steps) = (0usize, 0usize);
    for rec in &r.records {
        core_steps += rec.plan.cores.iter().map(|&c| 9 - c).sum::<usize>();
        mem_steps += 9 - rec.plan.mem;
    }
    let per_core = core_steps as f64 / 16.0;
    assert!(
        per_core > mem_steps as f64,
        "MEM mix should lean on core scaling: {per_core} per-core steps vs {mem_steps} mem steps"
    );
}

#[test]
fn compute_bound_mix_scales_memory_deep() {
    let r = run_policy(small("ILP2"), PolicyKind::CoScale);
    let deepest_mem = r.records.iter().map(|rec| rec.plan.mem).min().unwrap();
    assert!(
        deepest_mem <= 3,
        "ILP mix should scale memory deeply, reached only index {deepest_mem}"
    );
}

#[test]
fn runs_are_deterministic() {
    let a = run_policy(small("MIX3"), PolicyKind::CoScale);
    let b = run_policy(small("MIX3"), PolicyKind::CoScale);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.completion, b.completion);
    assert!((a.total_energy_j() - b.total_energy_j()).abs() < 1e-12);
    assert_eq!(a.epochs, b.epochs);
}

#[test]
fn tighter_bound_means_less_savings_and_less_degradation() {
    let mut tight = small("MID1");
    tight.gamma = 0.01;
    let mut loose = small("MID1");
    loose.gamma = 0.20;
    let base = run_policy(small("MID1"), PolicyKind::StaticMax);
    let rt = run_policy(tight, PolicyKind::CoScale);
    let rl = run_policy(loose, PolicyKind::CoScale);
    let st = rt.energy_savings_vs(&base);
    let sl = rl.energy_savings_vs(&base);
    assert!(sl > st, "looser bound should save more: {st} vs {sl}");
    let wt = rt
        .degradation_vs(&base)
        .into_iter()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(wt <= 0.03, "1% bound must hold tightly, got {wt}");
}

#[test]
fn oscillation_of_semi_exceeds_coscale() {
    // Count frequency-plan changes epoch to epoch as an oscillation proxy.
    let flips = |r: &coscale::RunResult| {
        r.records
            .windows(2)
            .map(|w| {
                let a = &w[0].plan;
                let b = &w[1].plan;
                let core_moves: usize = a
                    .cores
                    .iter()
                    .zip(&b.cores)
                    .map(|(x, y)| x.abs_diff(*y))
                    .sum();
                core_moves + a.mem.abs_diff(b.mem)
            })
            .sum::<usize>() as f64
            / r.records.len().max(1) as f64
    };
    let semi = run_policy(small("MID1"), PolicyKind::SemiCoordinated);
    let co = run_policy(small("MID1"), PolicyKind::CoScale);
    assert!(
        flips(&semi) >= flips(&co),
        "semi should move at least as much: semi {} vs co {}",
        flips(&semi),
        flips(&co)
    );
}

#[test]
fn runner_with_custom_policy_variant() {
    // The no-grouping CoScale ablation plugs in through with_policy.
    let r = Runner::new(small("MID3"), PolicyKind::CoScale)
        .with_policy(Box::new(coscale::CoScalePolicy { group_cores: false }))
        .run();
    assert!(r.epochs > 0);
}

#[test]
fn power_cap_holds_average_power_near_budget() {
    let base = run_policy(small("MID2"), PolicyKind::StaticMax);
    let base_power = base.total_energy_j() / base.makespan.as_secs_f64();
    let cap = base_power * 0.85;
    let capped = Runner::new(small("MID2"), PolicyKind::PowerCap)
        .with_policy(Box::new(coscale::PowerCapPolicy::new(cap)))
        .run();
    let avg_power = capped.total_energy_j() / capped.makespan.as_secs_f64();
    assert!(
        avg_power <= cap * 1.08,
        "average power {avg_power:.1} W should track the {cap:.1} W cap"
    );
    // Capping costs performance; it must not be faster than the baseline.
    assert!(capped.makespan >= base.makespan);
}

#[test]
fn generous_power_cap_changes_nothing() {
    let base = run_policy(small("ILP3"), PolicyKind::StaticMax);
    let capped = Runner::new(small("ILP3"), PolicyKind::PowerCap)
        .with_policy(Box::new(coscale::PowerCapPolicy::new(10_000.0)))
        .run();
    // With an unreachable cap the system stays at max frequencies.
    for rec in &capped.records {
        assert!(rec.plan.cores.iter().all(|&c| c == 9));
        assert_eq!(rec.plan.mem, 9);
    }
    assert_eq!(capped.makespan, base.makespan);
}
