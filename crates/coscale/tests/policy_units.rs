//! Focused unit tests of the individual policies against hand-constructed
//! profiles, where the correct decisions can be reasoned out by hand.

use coscale::{
    CoScalePolicy, CoreProfile, CpuOnlyPolicy, EpochProfile, MemProfile, MemScalePolicy, Model,
    OfflinePolicy, Plan, Policy, PowerCapPolicy, SimConfig, StaticMaxPolicy,
};
use memsim::MemConfig;
use powermodel::{MemGeometry, PowerConfig};
use simkernel::{Freq, Ps};

/// A profile where core 0 is strongly compute-bound and core 1 strongly
/// memory-bound, with light memory traffic overall.
fn contrast_profile() -> EpochProfile {
    EpochProfile {
        cores: vec![
            CoreProfile {
                cpu_cycles_pi: 1.3,
                l2_s_pi: 30e-12,
                mem_s_pi: 5e-12,
                instrs: 800_000,
                cac_pi: [0.45, 0.02, 0.18, 0.35],
            },
            CoreProfile {
                cpu_cycles_pi: 1.1,
                l2_s_pi: 150e-12,
                mem_s_pi: 1500e-12,
                instrs: 200_000,
                cac_pi: [0.28, 0.32, 0.08, 0.32],
            },
        ],
        mem: MemProfile {
            bank_wait_s: 5e-9,
            bus_wait_s: 1e-9,
            reads: 8_000,
            page_opens: 10_000,
            refreshes: 38,
            rank_active_s: 3e-5,
            l2_accesses: 40_000,
        },
        window: Ps::from_us(300),
        core_freq_idx: vec![9, 9],
        mem_freq_idx: 9,
    }
}

struct Fix {
    core_grid: Vec<Freq>,
    mem_cfg: MemConfig,
    power: PowerConfig,
    geom: MemGeometry,
}

fn fix() -> Fix {
    let mem_cfg = MemConfig::default();
    Fix {
        core_grid: SimConfig::core_grid_with_steps(10),
        geom: MemGeometry::of(&mem_cfg),
        power: PowerConfig::default(),
        mem_cfg,
    }
}

fn model<'a>(f: &'a Fix, p: &'a EpochProfile, slack: &'a [f64], gamma: f64) -> Model<'a> {
    Model::new(
        p,
        &f.core_grid,
        &f.mem_cfg.freq_grid,
        &f.power,
        f.geom,
        &f.mem_cfg.timings,
        slack,
        Ps::from_ms(1),
        gamma,
    )
}

#[test]
fn coscale_scales_memory_bound_core_deeper() {
    let f = fix();
    let p = contrast_profile();
    let slack = [0.0, 0.0];
    let m = model(&f, &p, &slack, 0.10);
    let plan = CoScalePolicy::default().decide(&m, &Plan::max(2, 10, 10));
    assert!(
        plan.cores[1] < plan.cores[0],
        "memory-bound core should drop further: {:?}",
        plan.cores
    );
    assert!(m.plan_ok(&plan));
}

#[test]
fn coscale_visits_max_plan_when_nothing_is_feasible() {
    let f = fix();
    let p = contrast_profile();
    // Deep debt: even one step breaks the bound.
    let slack = [-1.0, -1.0];
    let m = model(&f, &p, &slack, 0.01);
    let plan = CoScalePolicy::default().decide(&m, &Plan::max(2, 10, 10));
    assert_eq!(plan, Plan::max(2, 10, 10));
}

#[test]
fn coscale_with_zero_gamma_and_surplus_still_bounded() {
    let f = fix();
    let p = contrast_profile();
    // One epoch of pure surplus lets it scale despite gamma = 0.
    let slack = [5e-4, 5e-4];
    let m = model(&f, &p, &slack, 0.0);
    let plan = CoScalePolicy::default().decide(&m, &Plan::max(2, 10, 10));
    assert!(m.plan_ok(&plan));
}

#[test]
fn grouping_off_never_beats_grouping_on_in_model_ser() {
    let f = fix();
    let p = contrast_profile();
    let slack = [0.0, 0.0];
    let m = model(&f, &p, &slack, 0.10);
    let max = Plan::max(2, 10, 10);
    let with = CoScalePolicy { group_cores: true }.decide(&m, &max);
    let without = CoScalePolicy { group_cores: false }.decide(&m, &max);
    assert!(
        m.ser(&with) <= m.ser(&without) + 1e-9,
        "grouping should not hurt: {} vs {}",
        m.ser(&with),
        m.ser(&without)
    );
}

#[test]
fn memscale_walks_only_memory_and_stays_feasible() {
    let f = fix();
    let p = contrast_profile();
    let slack = [0.0, 0.0];
    let m = model(&f, &p, &slack, 0.10);
    let plan = MemScalePolicy.decide(&m, &Plan::max(2, 10, 10));
    assert_eq!(plan.cores, vec![9, 9]);
    assert!(plan.mem < 9, "light traffic leaves memory headroom");
    assert!(m.plan_ok(&plan));
}

#[test]
fn cpuonly_leaves_memory_at_max() {
    let f = fix();
    let p = contrast_profile();
    let slack = [0.0, 0.0];
    let m = model(&f, &p, &slack, 0.10);
    let plan = CpuOnlyPolicy.decide(&m, &Plan::max(2, 10, 10));
    assert_eq!(plan.mem, 9);
    assert!(plan.cores.iter().any(|&c| c < 9));
    assert!(m.plan_ok(&plan));
}

#[test]
fn offline_dominates_every_other_policy_in_model_ser() {
    let f = fix();
    let p = contrast_profile();
    let slack = [0.0, 0.0];
    let m = model(&f, &p, &slack, 0.10);
    let max = Plan::max(2, 10, 10);
    let off = OfflinePolicy.decide(&m, &max);
    let off_ser = m.ser(&off);
    for plan in [
        CoScalePolicy::default().decide(&m, &max),
        MemScalePolicy.decide(&m, &max),
        CpuOnlyPolicy.decide(&m, &max),
        StaticMaxPolicy.decide(&m, &max),
    ] {
        assert!(
            off_ser <= m.ser(&plan) + 1e-9,
            "Offline ({off_ser}) must dominate {plan:?} ({})",
            m.ser(&plan)
        );
    }
}

#[test]
fn power_cap_reaches_budget_or_bottom() {
    let f = fix();
    let p = contrast_profile();
    let slack = [0.0, 0.0];
    let m = model(&f, &p, &slack, 0.10);
    let max = Plan::max(2, 10, 10);
    let p_max = m.power(&max).total();
    // A cap 10% under the max-plan power must be met.
    let cap = p_max * 0.9;
    let plan = PowerCapPolicy::new(cap).decide(&m, &max);
    assert!(
        m.power(&plan).total() <= cap + 1e-9,
        "cap not met: {} > {cap}",
        m.power(&plan).total()
    );
    // An impossible cap bottoms out at the minimum plan.
    let plan = PowerCapPolicy::new(1.0).decide(&m, &max);
    assert!(plan.cores.iter().all(|&c| c == 0));
    assert_eq!(plan.mem, 0);
}

#[test]
fn power_cap_prefers_cheap_performance() {
    let f = fix();
    let p = contrast_profile();
    let slack = [0.0, 0.0];
    let m = model(&f, &p, &slack, 0.10);
    let max = Plan::max(2, 10, 10);
    let cap = m.power(&max).total() * 0.85;
    let plan = PowerCapPolicy::new(cap).decide(&m, &max);
    // The memory-bound core is the cheap place to shed watts: it must not
    // stay at max while the compute-bound core is pushed down.
    assert!(
        plan.cores[1] <= plan.cores[0],
        "capper should shed from the insensitive core first: {:?}",
        plan.cores
    );
}

#[test]
fn power_cap_sub_minimum_budget_returns_all_min_plan() {
    // A cap below even the all-minimum plan's power (leakage + idle DRAM is
    // tens of watts) is unreachable: decide must terminate and hand back
    // the all-minimum plan, never loop or panic.
    let f = fix();
    let p = contrast_profile();
    let slack = [0.0, 0.0];
    let m = model(&f, &p, &slack, 0.10);
    let max = Plan::max(2, 10, 10);
    let all_min = Plan {
        cores: vec![0; 2],
        mem: 0,
    };
    assert!(
        m.power(&all_min).total() > f64::MIN_POSITIVE,
        "test premise: even all-min draws real power"
    );
    for cap in [f64::MIN_POSITIVE, 1e-9, 0.5] {
        let plan = PowerCapPolicy::new(cap).decide(&m, &max);
        assert_eq!(plan, all_min, "cap {cap} should bottom out at all-min");
    }
}

#[test]
#[should_panic(expected = "positive")]
fn power_cap_rejects_nonpositive_budget() {
    let _ = PowerCapPolicy::new(0.0);
}
