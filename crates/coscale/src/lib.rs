//! # CoScale: coordinated CPU and memory-system DVFS
//!
//! A full reproduction of *CoScale: Coordinating CPU and Memory System DVFS
//! in Server Systems* (Deng et al., MICRO 2012). CoScale is an epoch-based
//! OS-level controller that jointly selects per-core CPU frequencies and
//! the memory-bus frequency to minimize full-system energy while keeping
//! every application within a user-chosen slowdown bound γ.
//!
//! This crate contains the paper's contribution and its comparison points:
//!
//! * [`Model`] — the online performance model (CPI decomposition over core,
//!   L2 and memory time; the MemScale queueing model for memory latency at
//!   any bus frequency) and the full-system energy model (SER, Eq. 2).
//! * [`CoScalePolicy`] — the greedy gradient-descent search of Figures 2–3,
//!   with core grouping.
//! * [`MemScalePolicy`], [`CpuOnlyPolicy`], [`UncoordinatedPolicy`],
//!   [`SemiCoordinatedPolicy`], [`OfflinePolicy`], [`StaticMaxPolicy`] —
//!   the five alternatives of §3.2 plus the no-management baseline.
//! * [`System`] / [`Runner`] — the event-driven 16-core + DDR3 simulation
//!   engine with profiling windows, DVFS transition penalties, per-epoch
//!   slack accounting, and per-component energy integration.
//!
//! # Quick start
//!
//! ```no_run
//! use coscale::{run_policy, PolicyKind, SimConfig};
//! use workloads::mix;
//!
//! let cfg = SimConfig::small(mix("MIX2").unwrap());
//! let baseline = run_policy(cfg.clone(), PolicyKind::StaticMax);
//! let managed = run_policy(cfg, PolicyKind::CoScale);
//! println!("energy savings: {:.1}%", 100.0 * managed.energy_savings_vs(&baseline));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod model;
mod policy;

pub use config::{PolicyKind, SimConfig};
pub use engine::{run_policy, EpochRecord, RunResult, Runner, Snapshot, System};
pub use model::{
    extract_profile, normalize_profile, CoreProfile, EpochProfile, MemProfile, Model, Plan,
    StepUtility,
};
pub use policy::{
    make_policy, CoScalePolicy, CpuOnlyPolicy, MemScalePolicy, OfflinePolicy, Policy,
    PowerCapPolicy, SemiCoordinatedPolicy, StaticMaxPolicy, UncoordinatedPolicy,
};
