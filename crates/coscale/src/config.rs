//! Top-level simulation configuration.

use cpusim::{CacheConfig, CoreConfig};
use memsim::MemConfig;
use powermodel::PowerConfig;
use simkernel::{Freq, Ps};
use workloads::Mix;

/// Which energy-management policy drives the system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// No energy management: everything pinned at maximum frequency.
    StaticMax,
    /// CoScale's coordinated gradient-descent search (the contribution).
    CoScale,
    /// Memory-subsystem DVFS only (MemScale).
    MemScale,
    /// Per-core CPU DVFS only.
    CpuOnly,
    /// Fully independent CPU and memory managers, each assuming it alone
    /// owns the slack.
    Uncoordinated,
    /// Independent managers sharing one slack estimate.
    SemiCoordinated,
    /// Oracle: perfect epoch profile plus exhaustive-equivalent search.
    Offline,
    /// Extension (§2.3): maximize performance under a full-system power
    /// budget instead of minimizing energy under a performance bound.
    PowerCap,
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::StaticMax => "Baseline",
            PolicyKind::CoScale => "CoScale",
            PolicyKind::MemScale => "MemScale",
            PolicyKind::CpuOnly => "CPUOnly",
            PolicyKind::Uncoordinated => "Uncoordinated",
            PolicyKind::SemiCoordinated => "Semi-coordinated",
            PolicyKind::Offline => "Offline",
            PolicyKind::PowerCap => "PowerCap",
        };
        write!(f, "{s}")
    }
}

/// Complete configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The workload mix to execute.
    pub mix: Mix,
    /// Number of cores (the paper's CMP has 16; the mixes assume 16).
    pub cores: usize,
    /// Per-core frequency grid, ascending (paper: 10 steps, 2.2–4.0 GHz).
    pub core_freqs: Vec<Freq>,
    /// Memory/cache/power sub-configurations.
    pub mem: MemConfig,
    /// Shared L2 geometry.
    pub cache: CacheConfig,
    /// Per-core pipeline/prefetch settings.
    pub core: CoreConfig,
    /// Power-model calibration.
    pub power: PowerConfig,
    /// Epoch length (paper default 5 ms).
    pub epoch: Ps,
    /// Profiling window at the start of each epoch (paper default 300 µs).
    pub profile_window: Ps,
    /// Maximum allowed per-application slowdown γ (paper default 0.10).
    pub gamma: f64,
    /// Core DVFS transition halt ("a few 10's of microseconds").
    pub core_transition: Ps,
    /// Instructions each application must commit for the workload to end
    /// (paper: 100 M; scaled down by default for wall-clock reasons —
    /// see DESIGN.md).
    pub target_instrs: u64,
    /// Hard cap on epochs, guarding against non-terminating configurations.
    pub max_epochs: usize,
    /// Workload generator seed.
    pub seed: u64,
    /// Cores per voltage domain. 1 (the paper's assumption, after [21, 40])
    /// means fully independent per-core V/f; larger values make slow cores
    /// pay the fastest domain member's voltage (§3.4 discusses this
    /// hardware limitation).
    pub voltage_domain_cores: usize,
}

impl SimConfig {
    /// The paper's configuration for `mix`, with the time scale reduced
    /// uniformly for wall-clock reasons: 25 M instructions per application
    /// (paper: 100 M) and 1 ms epochs with a 100 µs profiling window
    /// (paper: 5 ms / 300 µs). The scaling keeps per-class epoch counts in
    /// the paper's ratios (MEM ≈ 40+, ILP ≈ 10); see DESIGN.md.
    pub fn for_mix(mix: Mix) -> Self {
        SimConfig {
            mix,
            cores: 16,
            core_freqs: Self::default_core_grid(),
            mem: MemConfig::default(),
            cache: CacheConfig::default(),
            core: CoreConfig::default(),
            power: PowerConfig::default(),
            epoch: Ps::from_ms(1),
            profile_window: Ps::from_us(100),
            gamma: 0.10,
            core_transition: Ps::from_us(20),
            target_instrs: 25_000_000,
            max_epochs: 400,
            seed: 0xC05CA1E,
            voltage_domain_cores: 1,
        }
    }

    /// A reduced configuration for fast tests: 4 cores, 2 M instructions,
    /// 1 ms epochs.
    pub fn small(mix: Mix) -> Self {
        let mut c = Self::for_mix(mix);
        c.cores = 4;
        c.target_instrs = 2_000_000;
        c.epoch = Ps::from_ms(1);
        c.profile_window = Ps::from_us(100);
        c.max_epochs = 200;
        c
    }

    /// The paper's 10-point core frequency grid: 2.2–4.0 GHz, equally
    /// spaced.
    pub fn default_core_grid() -> Vec<Freq> {
        Self::core_grid_with_steps(10)
    }

    /// `n` equally spaced core frequencies between 2.2 and 4.0 GHz
    /// (Figure 15 uses 4, 7 and 10).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn core_grid_with_steps(n: usize) -> Vec<Freq> {
        assert!(n >= 2, "need at least two core frequencies");
        (0..n)
            .map(|k| {
                let ghz = 2.2 + 1.8 * k as f64 / (n - 1) as f64;
                Freq::from_hz((ghz * 1e9).round() as u64)
            })
            .collect()
    }

    /// Index of the maximum core frequency.
    pub fn max_core_idx(&self) -> usize {
        self.core_freqs.len() - 1
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 || self.cores > 16 {
            return Err(format!(
                "cores {} out of 1..=16 (mixes define 16)",
                self.cores
            ));
        }
        if self.core_freqs.is_empty() {
            return Err("empty core frequency grid".into());
        }
        if self.core_freqs.windows(2).any(|w| w[0] >= w[1]) {
            return Err("core frequency grid must be strictly ascending".into());
        }
        if self.profile_window >= self.epoch {
            return Err("profiling window must be shorter than the epoch".into());
        }
        if !(0.0..1.0).contains(&self.gamma) {
            return Err(format!("gamma {} out of [0,1)", self.gamma));
        }
        if self.target_instrs == 0 {
            return Err("target_instrs must be positive".into());
        }
        if self.voltage_domain_cores == 0 {
            return Err("voltage_domain_cores must be positive".into());
        }
        self.mem.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::mix;

    #[test]
    fn default_config_is_valid() {
        let c = SimConfig::for_mix(mix("MEM1").unwrap());
        assert!(c.validate().is_ok());
        assert_eq!(c.core_freqs.len(), 10);
        assert_eq!(c.core_freqs[0], Freq::from_ghz(2.2));
        assert_eq!(c.core_freqs[9], Freq::from_ghz(4.0));
    }

    #[test]
    fn grid_steps_span_range() {
        for n in [4, 7, 10] {
            let g = SimConfig::core_grid_with_steps(n);
            assert_eq!(g.len(), n);
            assert_eq!(g[0], Freq::from_ghz(2.2));
            assert_eq!(*g.last().unwrap(), Freq::from_ghz(4.0));
        }
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let base = SimConfig::for_mix(mix("ILP1").unwrap());

        let mut c = base.clone();
        c.cores = 0;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.gamma = 1.5;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.profile_window = c.epoch;
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.core_freqs = vec![];
        assert!(c.validate().is_err());

        let mut c = base;
        c.target_instrs = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn policy_kind_display() {
        assert_eq!(PolicyKind::CoScale.to_string(), "CoScale");
        assert_eq!(PolicyKind::StaticMax.to_string(), "Baseline");
        assert_eq!(PolicyKind::SemiCoordinated.to_string(), "Semi-coordinated");
    }
}
