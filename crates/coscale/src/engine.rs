//! The full-system simulation engine: 16 cores + shared L2 + DDR3 memory
//! under one event queue, driven in profiling/decision/execution epochs.

use crate::{
    extract_profile, make_policy, normalize_profile, EpochProfile, Model, Plan, Policy, PolicyKind,
    SimConfig,
};
use cpusim::{CoreCounters, CoreOutput, CoreSim, L2Cache, Wake};
use memsim::{LineAddr, MemCounters, MemEvent, MemorySystem, Outcome};
use powermodel::{system_power, MemGeometry, SystemPower};
use simkernel::{EventQueue, Freq, Ps};
use std::collections::HashMap;

/// Events flowing through the engine's queue.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Wake core `id`; ignored unless `gen` matches the core's current
    /// generation (stale-event invalidation).
    Core { id: usize, gen: u64 },
    /// Deliver a memory-system event.
    Mem(MemEvent),
    /// A demand/prefetch read finished; look up the tag.
    MemDone { tag: u64 },
}

/// What a read tag refers to.
#[derive(Clone, Copy, Debug)]
struct ReadInfo {
    core: usize,
    line: LineAddr,
    prefetch: bool,
}

/// The complete simulated system. `Clone` on purpose: the Offline oracle
/// checkpoints the whole system, looks one epoch ahead, and rewinds.
#[derive(Clone)]
pub struct System {
    config: SimConfig,
    cores: Vec<CoreSim>,
    core_gen: Vec<u64>,
    l2: L2Cache,
    mem: MemorySystem,
    queue: EventQueue<Ev>,
    now: Ps,
    tags: HashMap<u64, ReadInfo>,
    next_tag: u64,
    plan: Plan,
    completion: Vec<Option<Ps>>,
    // Reused buffers.
    core_out: CoreOutput,
    mem_out: Outcome,
}

/// A snapshot of every counter at one instant, for window deltas.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Time the snapshot was taken.
    pub at: Ps,
    /// Per-core counters.
    pub cores: Vec<CoreCounters>,
    /// Memory counters.
    pub mem: MemCounters,
    /// L2 demand accesses (hits + misses).
    pub l2_accesses: u64,
    /// L2 writebacks so far.
    pub l2_writebacks: u64,
}

impl System {
    /// Builds the system for `config`, warms the L2, and schedules initial
    /// events.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SimConfig) -> System {
        if let Err(e) = config.validate() {
            panic!("invalid simulation config: {e}");
        }
        let n = config.cores;
        let max_core = config.max_core_idx();
        let fmax = config.core_freqs[max_core];
        let cores: Vec<CoreSim> = (0..n)
            .map(|i| {
                CoreSim::new(
                    i,
                    config.mix.app_for_core(i),
                    config.seed,
                    fmax,
                    config.core,
                )
            })
            .collect();
        let mut l2 = L2Cache::new(config.cache);
        for c in &cores {
            c.warm_l2(&mut l2);
        }
        let mem = MemorySystem::new(config.mem.clone());
        let mut queue = EventQueue::new();
        for (t, e) in mem.initial_events() {
            queue.push(t, Ev::Mem(e));
        }
        for i in 0..n {
            queue.push(Ps::ZERO, Ev::Core { id: i, gen: 0 });
        }
        let plan = Plan::max(n, config.core_freqs.len(), config.mem.freq_grid.len());
        System {
            config,
            core_gen: vec![0; n],
            completion: vec![None; n],
            cores,
            l2,
            mem,
            queue,
            now: Ps::ZERO,
            tags: HashMap::new(),
            next_tag: 0,
            plan,
            core_out: CoreOutput::default(),
            mem_out: Outcome::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Ps {
        self.now
    }

    /// The frequency plan currently applied.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Per-core completion times (first instant each core reached the
    /// instruction target).
    pub fn completion(&self) -> &[Option<Ps>] {
        &self.completion
    }

    /// Whether every application has reached the instruction target.
    pub fn all_done(&self) -> bool {
        self.completion.iter().all(Option::is_some)
    }

    /// Snapshots all counters.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            at: self.now,
            cores: self.cores.iter().map(|c| *c.counters()).collect(),
            mem: *self.mem.counters(),
            l2_accesses: self.l2.stats().hits + self.l2.stats().misses,
            l2_writebacks: self.l2.stats().writebacks,
        }
    }

    /// Runs the event loop until simulated time `t_end`.
    pub fn run_until(&mut self, t_end: Ps) {
        while let Some(t) = self.queue.peek_time() {
            if t > t_end {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked");
            self.now = t;
            match ev {
                Ev::Core { id, gen } => {
                    if gen == self.core_gen[id] {
                        self.step_core(id);
                    }
                }
                Ev::Mem(me) => {
                    self.mem_out.clear();
                    let mut out = std::mem::take(&mut self.mem_out);
                    self.mem.handle(t, me, &mut out);
                    self.absorb_mem_out(&mut out);
                    self.mem_out = out;
                }
                Ev::MemDone { tag } => self.finish_read(tag),
            }
        }
        self.now = t_end;
    }

    fn absorb_mem_out(&mut self, out: &mut Outcome) {
        for c in out.completions.drain(..) {
            self.queue.push(c.finish, Ev::MemDone { tag: c.tag });
        }
        for (t, e) in out.wakeups.drain(..) {
            self.queue.push(t, Ev::Mem(e));
        }
    }

    fn issue_read(&mut self, core: usize, line: LineAddr, prefetch: bool) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.tags.insert(
            tag,
            ReadInfo {
                core,
                line,
                prefetch,
            },
        );
        let mut out = std::mem::take(&mut self.mem_out);
        out.clear();
        self.mem.enqueue_read(self.now, line, tag, &mut out);
        self.absorb_mem_out(&mut out);
        self.mem_out = out;
    }

    fn issue_writeback(&mut self, line: LineAddr) {
        let mut out = std::mem::take(&mut self.mem_out);
        out.clear();
        self.mem.enqueue_writeback(self.now, line, &mut out);
        self.absorb_mem_out(&mut out);
        self.mem_out = out;
    }

    /// Drains `self.core_out` into the memory system.
    fn dispatch_core_output(&mut self, core: usize) {
        let reads: Vec<LineAddr> = self.core_out.reads.drain(..).collect();
        let prefetches: Vec<LineAddr> = self.core_out.prefetches.drain(..).collect();
        let writebacks: Vec<LineAddr> = self.core_out.writebacks.drain(..).collect();
        for line in reads {
            self.issue_read(core, line, false);
        }
        for line in prefetches {
            self.issue_read(core, line, true);
        }
        for line in writebacks {
            self.issue_writeback(line);
        }
    }

    fn step_core(&mut self, id: usize) {
        self.core_out.clear();
        let mut out = std::mem::take(&mut self.core_out);
        let wake = self.cores[id].advance(self.now, &mut self.l2, &mut out);
        self.core_out = out;
        self.dispatch_core_output(id);
        if let Wake::At(t) = wake {
            self.core_gen[id] += 1;
            self.queue.push(
                t,
                Ev::Core {
                    id,
                    gen: self.core_gen[id],
                },
            );
        }
        if self.completion[id].is_none() && self.cores[id].instrs() >= self.config.target_instrs {
            self.completion[id] = Some(self.now);
        }
    }

    fn finish_read(&mut self, tag: u64) {
        let info = self.tags.remove(&tag).expect("completion for unknown tag");
        self.core_out.clear();
        let mut out = std::mem::take(&mut self.core_out);
        let runnable = if info.prefetch {
            self.cores[info.core].complete_prefetch(self.now, info.line, &mut self.l2, &mut out)
        } else {
            self.cores[info.core].complete_read(self.now, info.line, &mut self.l2, &mut out)
        };
        self.core_out = out;
        self.dispatch_core_output(info.core);
        if runnable {
            self.step_core(info.core);
        }
    }

    /// Applies a frequency plan at the current time, halting changed cores
    /// for the transition and recalibrating memory if its frequency moved.
    pub fn apply_plan(&mut self, plan: &Plan) {
        assert_eq!(plan.cores.len(), self.cores.len(), "plan size mismatch");
        for i in 0..self.cores.len() {
            if plan.cores[i] != self.plan.cores[i] {
                let freq = self.config.core_freqs[plan.cores[i]];
                if let Some(Wake::At(t)) =
                    self.cores[i].apply_dvfs(self.now, freq, self.config.core_transition)
                {
                    self.core_gen[i] += 1;
                    self.queue.push(
                        t,
                        Ev::Core {
                            id: i,
                            gen: self.core_gen[i],
                        },
                    );
                }
            }
        }
        if plan.mem != self.plan.mem {
            let mut out = std::mem::take(&mut self.mem_out);
            out.clear();
            self.mem.set_frequency(self.now, plan.mem, &mut out);
            self.absorb_mem_out(&mut out);
            self.mem_out = out;
        }
        self.plan = plan.clone();
    }

    /// Per-core frequencies of the current plan.
    pub fn core_freqs(&self) -> Vec<Freq> {
        self.plan
            .cores
            .iter()
            .map(|&i| self.config.core_freqs[i])
            .collect()
    }

    /// The L2 cache (for statistics).
    pub fn l2(&self) -> &L2Cache {
        &self.l2
    }

    /// The memory system (for statistics).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Per-core instruction counts.
    pub fn instrs(&self) -> Vec<u64> {
        self.cores.iter().map(|c| c.instrs()).collect()
    }
}

/// Energy integrated over one plan segment.
#[derive(Clone, Debug)]
struct Segment {
    start: Ps,
    end: Ps,
    power: SystemPower,
}

/// One epoch's decision record, for timeline figures and for cluster-level
/// coordinators that need each server's power demand.
#[derive(Clone, Debug)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Epoch start time.
    pub start: Ps,
    /// Plan selected for the epoch (post-profiling).
    pub plan: Plan,
    /// Per-core slack after the epoch's settlement, seconds.
    pub slack: Vec<f64>,
    /// The model's predicted SER for the chosen plan.
    pub predicted_ser: f64,
    /// The model's predicted full-system power for the chosen plan, watts.
    pub predicted_power_w: f64,
    /// Predicted power at the all-maximum plan — the server's uncapped
    /// demand this epoch, watts.
    pub demand_power_w: f64,
    /// Predicted power at the all-minimum plan — the floor below which no
    /// cap is reachable, watts.
    pub min_power_w: f64,
}

/// Everything a single run produces.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The policy that ran.
    pub policy: PolicyKind,
    /// Workload mix name.
    pub mix: String,
    /// Number of epochs executed.
    pub epochs: usize,
    /// Per-core completion time of the instruction target.
    pub completion: Vec<Ps>,
    /// Time the whole workload completed (slowest application).
    pub makespan: Ps,
    /// Energy to workload completion, joules: CPU cores.
    pub cpu_energy_j: f64,
    /// Energy: shared L2.
    pub l2_energy_j: f64,
    /// Energy: memory subsystem (DRAM + MC + PLL/register).
    pub mem_energy_j: f64,
    /// Energy: rest of system.
    pub rest_energy_j: f64,
    /// Per-epoch decisions.
    pub records: Vec<EpochRecord>,
    /// Workload-level misses per kilo-instruction observed.
    pub mpki: f64,
    /// Workload-level writebacks per kilo-instruction observed.
    pub wpki: f64,
    /// Prefetch accuracy (0 when prefetching is off).
    pub prefetch_accuracy: f64,
    /// Average memory bus utilization over the run.
    pub bus_utilization: f64,
    /// Fraction of memory accesses served from an open row (0 under the
    /// closed-page policy).
    pub row_hit_rate: f64,
    /// Average demand-read latency over the run, nanoseconds.
    pub avg_read_latency_ns: f64,
    /// Fraction of rank-time spent in a managed idle low-power state.
    pub mem_sleep_fraction: f64,
    /// Median demand-read latency, nanoseconds.
    pub read_lat_p50_ns: f64,
    /// 95th-percentile demand-read latency, nanoseconds.
    pub read_lat_p95_ns: f64,
    /// 99th-percentile demand-read latency, nanoseconds.
    pub read_lat_p99_ns: f64,
}

impl RunResult {
    /// Total energy, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.cpu_energy_j + self.l2_energy_j + self.mem_energy_j + self.rest_energy_j
    }

    /// Per-application completion-time degradation versus a baseline run:
    /// `t/t_base - 1` per core.
    pub fn degradation_vs(&self, base: &RunResult) -> Vec<f64> {
        self.completion
            .iter()
            .zip(&base.completion)
            .map(|(t, b)| t.as_secs_f64() / b.as_secs_f64() - 1.0)
            .collect()
    }

    /// Full-system energy savings versus a baseline run, as a fraction.
    pub fn energy_savings_vs(&self, base: &RunResult) -> f64 {
        1.0 - self.total_energy_j() / base.total_energy_j()
    }

    /// Writes the per-epoch decision timeline as TSV: epoch, start time,
    /// memory frequency index, each core's frequency index, predicted SER,
    /// and the minimum per-core slack.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_timeline<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        write!(w, "epoch	start_us	mem_idx	pred_ser	min_slack_us")?;
        let n = self.records.first().map_or(0, |r| r.plan.cores.len());
        for i in 0..n {
            write!(w, "	core{i}")?;
        }
        writeln!(w)?;
        for rec in &self.records {
            let min_slack = rec.slack.iter().cloned().fold(f64::INFINITY, f64::min);
            write!(
                w,
                "{}	{:.1}	{}	{:.4}	{:.2}",
                rec.epoch,
                rec.start.as_secs_f64() * 1e6,
                rec.plan.mem,
                rec.predicted_ser,
                min_slack * 1e6,
            )?;
            for &c in &rec.plan.cores {
                write!(w, "	{c}")?;
            }
            writeln!(w)?;
        }
        Ok(())
    }
}

/// Runs one complete workload under `policy`.
///
/// A runner can either be driven to completion in one call ([`Runner::run`])
/// or stepped epoch by epoch ([`Runner::step_epoch`]) so an external
/// coordinator — such as the cluster-level power capper in the `cluster`
/// crate — can observe telemetry and adjust the policy between epochs.
pub struct Runner {
    sys: System,
    policy: Box<dyn Policy>,
    slack: Vec<f64>,
    segments: Vec<Segment>,
    records: Vec<EpochRecord>,
    geom: MemGeometry,
    epoch: usize,
}

impl Runner {
    /// Creates a runner for `config` under the given policy kind.
    pub fn new(config: SimConfig, kind: PolicyKind) -> Runner {
        let geom = MemGeometry::of(&config.mem);
        let n = config.cores;
        Runner {
            sys: System::new(config),
            policy: make_policy(kind),
            slack: vec![0.0; n],
            segments: Vec::new(),
            records: Vec::new(),
            geom,
            epoch: 0,
        }
    }

    /// Replaces the policy object (for ablation variants such as
    /// no-grouping CoScale or out-of-phase Semi-coordinated).
    pub fn with_policy(mut self, policy: Box<dyn Policy>) -> Runner {
        self.policy = policy;
        self
    }

    /// Builds an [`EpochProfile`] over `[a, b]`, attributing core busy
    /// cycles across the frequency segments recorded in `freqs_during`.
    fn profile_between(&self, a: &Snapshot, b: &Snapshot, plan: &Plan) -> EpochProfile {
        let deltas: Vec<(usize, CoreCounters)> = (0..a.cores.len())
            .map(|i| (plan.cores[i], b.cores[i].delta(&a.cores[i])))
            .collect();
        let mem_delta = b.mem.delta(&a.mem);
        let mut p = extract_profile(
            &deltas,
            &mem_delta,
            b.l2_accesses - a.l2_accesses,
            plan.mem,
            b.at - a.at,
        );
        normalize_profile(&mut p, &deltas, &self.sys.config.core_freqs);
        p
    }

    /// Integrates energy for the window `[a, b]` under `plan`.
    fn add_segment(&mut self, a: &Snapshot, b: &Snapshot, plan: &Plan) {
        let window = b.at - a.at;
        if window == Ps::ZERO {
            return;
        }
        let cfg = &self.sys.config;
        let cores: Vec<(Freq, CoreCounters)> = (0..a.cores.len())
            .map(|i| (cfg.core_freqs[plan.cores[i]], b.cores[i].delta(&a.cores[i])))
            .collect();
        let mut power = system_power(
            &cfg.power,
            &self.geom,
            &cores,
            b.l2_accesses - a.l2_accesses,
            cfg.mem.freq_grid[plan.mem],
            &b.mem.delta(&a.mem),
            window,
        );
        if cfg.voltage_domain_cores > 1 {
            // Under shared voltage domains a slow core pays the fastest
            // domain member's voltage.
            let ds = cfg.voltage_domain_cores;
            for (i, (f, ctr)) in cores.iter().enumerate() {
                let lo = (i / ds) * ds;
                let hi = (lo + ds).min(plan.cores.len());
                let vmax_idx = plan.cores[lo..hi].iter().copied().max().unwrap_or(0);
                power.cores_w[i] = powermodel::core_power_shared_domain(
                    &cfg.power,
                    *f,
                    cfg.core_freqs[vmax_idx],
                    ctr,
                    window,
                );
            }
        }
        self.segments.push(Segment {
            start: a.at,
            end: b.at,
            power,
        });
    }

    /// Whether every application has reached its instruction target.
    pub fn is_done(&self) -> bool {
        self.sys.all_done()
    }

    /// Number of epochs executed so far.
    pub fn epochs_run(&self) -> usize {
        self.epoch
    }

    /// The per-epoch decision records so far.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// The underlying system (for telemetry).
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// The policy driving decisions (for coordinators adjusting it between
    /// epochs).
    pub fn policy_mut(&mut self) -> &mut dyn Policy {
        self.policy.as_mut()
    }

    /// Full-system energy integrated over all segments so far, joules.
    ///
    /// Unlike the final [`RunResult`] energies this is not prorated to the
    /// makespan — it is live telemetry for coordinators while the workload
    /// is still running.
    pub fn energy_so_far_j(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.power.total() * (s.end - s.start).as_secs_f64())
            .sum()
    }

    /// Runs to completion and produces the result.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to complete within `max_epochs` (a
    /// configuration error).
    pub fn run(mut self) -> RunResult {
        while !self.is_done() {
            self.step_epoch();
        }
        self.finalize()
    }

    /// Executes one profiling/decision/execution epoch. No-op once the
    /// workload is complete.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails to complete within `max_epochs` (a
    /// configuration error).
    pub fn step_epoch(&mut self) {
        if self.sys.all_done() {
            return;
        }
        let cfg = self.sys.config.clone();
        let n = cfg.cores;
        let epoch = self.epoch;
        assert!(
            epoch < cfg.max_epochs,
            "workload did not complete in {} epochs",
            cfg.max_epochs
        );
        let start_snap = self.sys.snapshot();
        let epoch_start = start_snap.at;
        let old_plan = self.sys.plan().clone();

        // --- profiling phase ---
        self.sys.run_until(epoch_start + cfg.profile_window);
        let prof_snap = self.sys.snapshot();
        self.add_segment(&start_snap, &prof_snap, &old_plan);

        // --- decision ---
        let profile = if self.policy.needs_oracle() {
            // Perfect lookahead: run a checkpoint to the epoch end at
            // the current frequencies, profile the whole epoch, rewind.
            let mut oracle = self.sys.clone();
            oracle.run_until(epoch_start + cfg.epoch);
            let end = oracle.snapshot();
            self.oracle_profile(&start_snap, &end, &old_plan)
        } else {
            self.profile_between(&start_snap, &prof_snap, &old_plan)
        };
        let model = Model::new(
            &profile,
            &cfg.core_freqs,
            &cfg.mem.freq_grid,
            &cfg.power,
            self.geom,
            &cfg.mem.timings,
            &self.slack,
            cfg.epoch,
            cfg.gamma,
        )
        .with_voltage_domains(cfg.voltage_domain_cores);
        let plan = self.policy.decide(&model, &old_plan);
        let predicted_ser = model.ser(&plan);
        let predicted_power_w = model.power(&plan).total();
        let demand_power_w = model
            .power(&Plan::max(n, cfg.core_freqs.len(), cfg.mem.freq_grid.len()))
            .total();
        let min_power_w = model
            .power(&Plan {
                cores: vec![0; n],
                mem: 0,
            })
            .total();
        drop(model);
        self.sys.apply_plan(&plan);

        // --- execution phase ---
        self.sys.run_until(epoch_start + cfg.epoch);
        let end_snap = self.sys.snapshot();
        self.add_segment(&prof_snap, &end_snap, &plan);

        // --- slack settlement (paper §3: estimate what performance
        // would have been at maximum frequencies and bank the
        // difference) ---
        let epoch_profile = self.profile_between(&start_snap, &end_snap, &plan);
        let settle = Model::new(
            &epoch_profile,
            &cfg.core_freqs,
            &cfg.mem.freq_grid,
            &cfg.power,
            self.geom,
            &cfg.mem.timings,
            &self.slack,
            cfg.epoch,
            cfg.gamma,
        );
        let epoch_s = cfg.epoch.as_secs_f64();
        for i in 0..n {
            let instrs = (end_snap.cores[i].tic - start_snap.cores[i].tic) as f64;
            let tpi_max = settle.tpi(i, cfg.max_core_idx(), cfg.mem.max_freq_idx());
            let target = instrs * tpi_max * (1.0 + cfg.gamma);
            self.slack[i] += target - epoch_s;
            // Bound the bank so numeric drift cannot hide real debt and
            // surpluses cannot grow without bound.
            self.slack[i] = self.slack[i].clamp(-4.0 * epoch_s, 4.0 * epoch_s);
        }

        self.records.push(EpochRecord {
            epoch,
            start: epoch_start,
            plan,
            slack: self.slack.clone(),
            predicted_ser,
            predicted_power_w,
            demand_power_w,
            min_power_w,
        });
        self.epoch += 1;
    }

    /// Consumes the runner and produces the result.
    ///
    /// # Panics
    ///
    /// Panics if the workload has not completed yet (drive it with
    /// [`Runner::run`] or [`Runner::step_epoch`] first).
    pub fn finalize(self) -> RunResult {
        assert!(self.sys.all_done(), "finalize() before workload completion");
        let epochs = self.epoch;
        self.finish(epochs)
    }

    /// Oracle profile over the full epoch (start snapshot to the lookahead
    /// end snapshot, all at the pre-decision plan).
    fn oracle_profile(&self, a: &Snapshot, b: &Snapshot, plan: &Plan) -> EpochProfile {
        self.profile_between(a, b, plan)
    }

    fn finish(self, epochs: usize) -> RunResult {
        let sys = &self.sys;
        let cfg = sys.config();
        let completion: Vec<Ps> = sys
            .completion()
            .iter()
            .map(|c| c.expect("all_done checked"))
            .collect();
        let makespan = completion.iter().copied().fold(Ps::ZERO, Ps::max);

        // Energy until the makespan: whole segments before it plus a
        // prorated share of the segment containing it.
        let mut cpu = 0.0;
        let mut l2 = 0.0;
        let mut mem = 0.0;
        let mut rest = 0.0;
        for seg in &self.segments {
            if seg.start >= makespan {
                break;
            }
            let span = seg.end.min(makespan) - seg.start;
            let secs = span.as_secs_f64();
            cpu += seg.power.cpu_total() * secs;
            l2 += seg.power.l2_w * secs;
            mem += seg.power.mem.total() * secs;
            rest += seg.power.rest_w * secs;
        }

        let total_instrs: u64 = sys.instrs().iter().sum();
        let stats = sys.l2().stats();
        let kinst = (total_instrs as f64 / 1000.0).max(1.0);
        let mem_ctr = sys.mem().counters();
        let mem_accesses = (mem_ctr.row_hits + mem_ctr.page_opens).max(1);
        RunResult {
            policy: self.policy.kind(),
            mix: cfg.mix.name.to_string(),
            epochs,
            completion,
            makespan,
            cpu_energy_j: cpu,
            l2_energy_j: l2,
            mem_energy_j: mem,
            rest_energy_j: rest,
            records: self.records,
            mpki: stats.misses as f64 / kinst,
            wpki: stats.writebacks as f64 / kinst,
            prefetch_accuracy: stats.prefetch_accuracy(),
            bus_utilization: mem_ctr.bus_utilization(makespan, cfg.mem.channels),
            row_hit_rate: mem_ctr.row_hits as f64 / mem_accesses as f64,
            avg_read_latency_ns: mem_ctr.avg_read_latency().as_ps() as f64 / 1e3,
            mem_sleep_fraction: mem_ctr.rank_sleep_fraction(makespan, cfg.mem.total_ranks()),
            read_lat_p50_ns: sys.mem().read_latency_histogram().percentile(0.50) as f64 / 1e3,
            read_lat_p95_ns: sys.mem().read_latency_histogram().percentile(0.95) as f64 / 1e3,
            read_lat_p99_ns: sys.mem().read_latency_histogram().percentile(0.99) as f64 / 1e3,
        }
    }
}

/// Convenience: run `mix` under `policy` with `config`.
pub fn run_policy(config: SimConfig, kind: PolicyKind) -> RunResult {
    Runner::new(config, kind).run()
}
