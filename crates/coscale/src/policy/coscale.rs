//! CoScale's greedy gradient-descent frequency selection — Figures 2 and 3
//! of the paper.
//!
//! Starting from all-maximum frequencies, the search repeatedly applies the
//! single down-step with the greatest marginal utility
//! (Δpower/Δperformance): either one memory-bus step, or one step on a
//! *group* of cores. Groups are formed greedily over the cores sorted by
//! ascending performance loss (Figure 3) — considering groups is what stops
//! the search from always preferring memory first and getting stuck in
//! local minima. Every visited configuration's System Energy Ratio is
//! recorded, and the minimum-SER configuration wins.

use crate::{Model, Plan, Policy, PolicyKind, StepUtility};

/// The CoScale controller.
///
/// `group_cores` can be disabled for the ablation study (DESIGN.md): without
/// grouping, the heuristic only ever weighs single-core steps against a
/// memory step, reproducing the local-minimum pathology §3.1 describes.
#[derive(Clone, Copy, Debug)]
pub struct CoScalePolicy {
    /// Form core groups per Figure 3 (`true` is the paper's algorithm).
    pub group_cores: bool,
}

impl Default for CoScalePolicy {
    fn default() -> Self {
        CoScalePolicy { group_cores: true }
    }
}

/// An entry in the Figure 3 candidate list: a core and the utility of its
/// next one-step reduction.
#[derive(Clone, Copy, Debug)]
struct CoreStep {
    core: usize,
    utility: StepUtility,
}

impl CoScalePolicy {
    /// Rebuilds the candidate entries for `cores_to_update` under `plan`,
    /// leaving other entries untouched, then restores ascending Δperf order
    /// (Figure 3, lines 1–2).
    fn refresh_list(
        model: &Model<'_>,
        plan: &Plan,
        list: &mut Vec<CoreStep>,
        cores_to_update: impl Iterator<Item = usize>,
    ) {
        for core in cores_to_update {
            list.retain(|e| e.core != core);
            if let Some(utility) = model.core_step_utility(core, plan) {
                list.push(CoreStep { core, utility });
            }
        }
        // Drop entries whose step became infeasible since they were scored
        // (e.g. a memory move consumed the remaining slack).
        list.retain(|e| {
            plan.cores[e.core] > 0 && model.core_ok(e.core, plan.cores[e.core] - 1, plan.mem)
        });
        list.sort_by(|a, b| {
            a.utility
                .d_perf
                .partial_cmp(&b.utility.d_perf)
                .expect("Δperf is never NaN")
                .then(a.core.cmp(&b.core))
        });
    }

    /// Figure 3, lines 3–7: greedy group formation over the sorted list.
    /// Returns the best group (as list prefix length) and its utility.
    fn best_group(&self, list: &[CoreStep]) -> Option<(usize, f64)> {
        if list.is_empty() {
            return None;
        }
        let limit = if self.group_cores { list.len() } else { 1 };
        let mut d_power_sum = 0.0;
        let mut best: Option<(usize, f64)> = None;
        for (k, entry) in list.iter().take(limit).enumerate() {
            d_power_sum += entry.utility.d_power;
            // The group's Δperf is the worst (= largest = last, by sort
            // order) per-core Δperf in the group.
            let group_utility = StepUtility {
                d_power: d_power_sum,
                d_perf: entry.utility.d_perf,
            }
            .value();
            if best.is_none_or(|(_, u)| group_utility > u) {
                best = Some((k + 1, group_utility));
            }
        }
        best
    }
}

impl Policy for CoScalePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::CoScale
    }

    fn decide(&mut self, model: &Model<'_>, _current: &Plan) -> Plan {
        let n = model.n_cores();
        // Line 1: start with everything at the highest frequency.
        let mut plan = Plan::max(n, model.core_grid_len(), model.mem_grid_len());
        let mut best_plan = plan.clone();
        let mut best_ser = model.ser(&plan);

        let mut list: Vec<CoreStep> = Vec::with_capacity(n);
        Self::refresh_list(model, &plan, &mut list, 0..n);
        let mut marginal_mem = model.mem_step_utility(&plan);

        // Line 2: while any component can still scale down within slack.
        loop {
            // Re-validate the cached memory step against the current plan
            // (its utility is only recomputed when memory last moved, per
            // Figure 2 line 4, but feasibility must hold now).
            let mem_ok = marginal_mem.is_some()
                && plan.mem > 0
                && (0..n).all(|i| model.core_ok(i, plan.cores[i], plan.mem - 1));
            let group = self.best_group(&list);

            let take_mem = match (mem_ok, group) {
                (false, None) => break,
                (true, None) => true,
                (false, Some(_)) => false,
                // Lines 9–12: pick the higher marginal utility.
                (true, Some((_, group_utility))) => {
                    marginal_mem.expect("checked above").value() > group_utility
                }
            };

            if take_mem {
                plan.mem -= 1;
                // Figure 2 lines 4–5: memory changed, so recompute its
                // marginal utility for the next iteration.
                marginal_mem = model.mem_step_utility(&plan);
                // Core utilities are *not* recomputed (their frequencies
                // did not change), but infeasible entries get dropped on
                // the next refresh; prune them here cheaply.
                list.retain(|e| {
                    plan.cores[e.core] > 0
                        && model.core_ok(e.core, plan.cores[e.core] - 1, plan.mem)
                });
            } else {
                let (k, _) = group.expect("checked above");
                let members: Vec<usize> = list[..k].iter().map(|e| e.core).collect();
                for &c in &members {
                    plan.cores[c] -= 1;
                }
                // Figure 2 lines 6–8 / Figure 3 lines 1–2: only the moved
                // cores are rescored and re-inserted.
                Self::refresh_list(model, &plan, &mut list, members.into_iter());
            }

            // Line 20: record the SER of the configuration just reached.
            let ser = model.ser(&plan);
            if ser < best_ser {
                best_ser = ser;
                best_plan = plan.clone();
            }
        }

        // Line 21: the minimum-SER configuration seen wins.
        best_plan
    }
}
