//! Shared building blocks for the Uncoordinated and Semi-coordinated
//! policies: a CPU-side manager and a memory-side manager, each of which
//! optimizes its own component while *assuming the other stays put*.

use crate::{Model, Plan};

/// The CPU power manager: chooses per-core frequencies minimizing SER with
/// memory fixed at `mem_fixed`, subject to `allowed(i)` (the manager's own
/// notion of each core's permissible time-per-instruction).
///
/// Uses the same epoch-time-cap enumeration as CPUOnly (see `cpuonly.rs`);
/// the difference is the feasibility bound and the frozen memory index.
pub(crate) fn cpu_manager_plan(
    model: &Model<'_>,
    mem_fixed: usize,
    allowed: impl Fn(usize) -> f64,
) -> Vec<usize> {
    let n = model.n_cores();
    let cmax = model.core_grid_len() - 1;
    let ok = |i: usize, fc: usize| model.tpi(i, fc, mem_fixed) <= allowed(i);

    let mut taus: Vec<f64> = vec![1.0];
    for i in 0..n {
        for fc in 0..=cmax {
            if ok(i, fc) {
                taus.push(model.slowdown(i, fc, mem_fixed));
            }
        }
    }
    taus.sort_by(|a, b| a.partial_cmp(b).expect("slowdowns are never NaN"));
    taus.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut best: Option<(Vec<usize>, f64)> = None;
    for &tau in &taus {
        let mut cores = Vec::with_capacity(n);
        let mut feasible = true;
        for i in 0..n {
            match (0..=cmax)
                .find(|&fc| ok(i, fc) && model.slowdown(i, fc, mem_fixed) <= tau + 1e-12)
            {
                Some(fc) => cores.push(fc),
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if !feasible {
            continue;
        }
        let ser = model.ser(&Plan {
            cores: cores.clone(),
            mem: mem_fixed,
        });
        if best.as_ref().is_none_or(|(_, s)| ser < *s) {
            best = Some((cores, ser));
        }
    }
    best.map(|(c, _)| c).unwrap_or_else(|| vec![cmax; n])
}

/// The memory power manager: walks the bus frequency down with cores frozen
/// at `cores_fixed`, subject to `allowed(i)`, picking the minimum-SER stop.
pub(crate) fn mem_manager_plan(
    model: &Model<'_>,
    cores_fixed: &[usize],
    allowed: impl Fn(usize) -> f64,
) -> usize {
    let n = model.n_cores();
    let mmax = model.mem_grid_len() - 1;
    let mut best_mem = mmax;
    let mut best_ser = model.ser(&Plan {
        cores: cores_fixed.to_vec(),
        mem: mmax,
    });
    let mut mem = mmax;
    while mem > 0 {
        let next = mem - 1;
        if !(0..n).all(|i| model.tpi(i, cores_fixed[i], next) <= allowed(i)) {
            break;
        }
        mem = next;
        let ser = model.ser(&Plan {
            cores: cores_fixed.to_vec(),
            mem,
        });
        if ser < best_ser {
            best_ser = ser;
            best_mem = mem;
        }
    }
    best_mem
}
