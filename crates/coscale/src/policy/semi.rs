//! The Semi-coordinated comparison policy (§3.2): independent CPU and
//! memory managers that *share one slack estimate*.
//!
//! Sharing the slack keeps performance bounded — each manager knows the CPI
//! degradation the other has already caused. But each still tries to
//! consume the entire remaining slack in the same epoch while assuming the
//! other component stays put, so they over-correct in tandem: both scale
//! down together (overshooting the target), then both scale up to repay the
//! debt, oscillating or settling into local minima (Figures 1, 4, 7c).

use crate::policy::managers::{cpu_manager_plan, mem_manager_plan};
use crate::{Model, Plan, Policy, PolicyKind};

/// Independent managers over a shared slack pool.
#[derive(Clone, Copy, Debug, Default)]
pub struct SemiCoordinatedPolicy {
    /// When true the managers act on alternating epochs instead of
    /// simultaneously — the paper's "out of phase" variant, which trades
    /// oscillation for settling in local minima even sooner (§4.2.2).
    pub out_of_phase: bool,
    epoch_parity: bool,
}

impl SemiCoordinatedPolicy {
    /// The out-of-phase ablation variant.
    pub fn out_of_phase() -> Self {
        SemiCoordinatedPolicy {
            out_of_phase: true,
            epoch_parity: false,
        }
    }
}

impl Policy for SemiCoordinatedPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::SemiCoordinated
    }

    fn decide(&mut self, model: &Model<'_>, current: &Plan) -> Plan {
        // Both managers honour the true accumulated slack (the "mild form
        // of coordination"), via the model's slack-adjusted bound.
        let allowed = |i: usize| model.allowed_tpi(i);

        let run_cpu = !self.out_of_phase || !self.epoch_parity;
        let run_mem = !self.out_of_phase || self.epoch_parity;
        self.epoch_parity = !self.epoch_parity;

        let cores = if run_cpu {
            cpu_manager_plan(model, current.mem, allowed)
        } else {
            current.cores.clone()
        };
        let mem = if run_mem {
            mem_manager_plan(model, &current.cores, allowed)
        } else {
            current.mem
        };
        Plan { cores, mem }
    }
}
