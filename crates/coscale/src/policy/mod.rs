//! The frequency-selection policies compared in the paper (§3.2).
//!
//! All policies consume the same [`Model`](crate::Model) — they differ only
//! in how they search the frequency space and what slack/baseline
//! assumptions they make, so experimental differences isolate exactly the
//! paper's subject: *coordination*.

mod coscale;
mod cpuonly;
mod managers;
mod memscale;
mod offline;
mod powercap;
mod semi;
mod uncoordinated;

pub use coscale::CoScalePolicy;
pub use cpuonly::CpuOnlyPolicy;
pub use memscale::MemScalePolicy;
pub use offline::OfflinePolicy;
pub use powercap::PowerCapPolicy;
pub use semi::SemiCoordinatedPolicy;
pub use uncoordinated::UncoordinatedPolicy;

use crate::{Model, Plan, PolicyKind};

/// A frequency-selection policy, invoked once per epoch after profiling.
pub trait Policy: Send {
    /// Which paper policy this implements.
    fn kind(&self) -> PolicyKind;

    /// Whether the engine should supply a perfect full-epoch lookahead
    /// profile instead of the 300 µs profiling window (the Offline oracle).
    fn needs_oracle(&self) -> bool {
        false
    }

    /// Chooses the frequency plan for the remainder of the epoch.
    ///
    /// `model` is bound to the profiling (or oracle) window and the current
    /// slack state; `current` is the plan the system is running now.
    fn decide(&mut self, model: &Model<'_>, current: &Plan) -> Plan;
}

/// No energy management: always the all-max plan. The paper's baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticMaxPolicy;

impl Policy for StaticMaxPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::StaticMax
    }

    fn decide(&mut self, model: &Model<'_>, _current: &Plan) -> Plan {
        Plan::max(model.n_cores(), model.core_grid_len(), model.mem_grid_len())
    }
}

/// Constructs the policy implementation for `kind`.
pub fn make_policy(kind: PolicyKind) -> Box<dyn Policy> {
    match kind {
        PolicyKind::StaticMax => Box::new(StaticMaxPolicy),
        PolicyKind::CoScale => Box::new(CoScalePolicy::default()),
        PolicyKind::MemScale => Box::new(MemScalePolicy),
        PolicyKind::CpuOnly => Box::new(CpuOnlyPolicy),
        PolicyKind::Uncoordinated => Box::new(UncoordinatedPolicy),
        PolicyKind::SemiCoordinated => Box::new(SemiCoordinatedPolicy::default()),
        PolicyKind::Offline => Box::new(OfflinePolicy),
        // Default budget: ~75% of the ~200 W baseline system power.
        PolicyKind::PowerCap => Box::new(PowerCapPolicy::new(150.0)),
    }
}
