//! The Uncoordinated comparison policy (§3.2): completely independent CPU
//! and memory power managers.
//!
//! Each manager believes it alone influences the slack: the CPU manager
//! assumes the memory subsystem stays at last epoch's frequency *and* that
//! no CPI degradation has accumulated; the memory manager assumes the same
//! about the cores. Both then consume the entire γ budget independently,
//! which compounds to roughly `(1+γ)² − 1` slowdown — the bound violation
//! Figure 9 shows.

use crate::policy::managers::{cpu_manager_plan, mem_manager_plan};
use crate::{Model, Plan, Policy, PolicyKind};

/// Fully independent per-component managers.
#[derive(Clone, Copy, Debug, Default)]
pub struct UncoordinatedPolicy;

impl Policy for UncoordinatedPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Uncoordinated
    }

    fn decide(&mut self, model: &Model<'_>, current: &Plan) -> Plan {
        let gamma = model.gamma();
        let cmax = model.core_grid_len() - 1;
        let mmax = model.mem_grid_len() - 1;

        // CPU manager: baseline is "cores at max, memory as it is now";
        // no accumulated slack is consulted (it assumes none exists).
        let cpu_allowed = |i: usize| model.tpi(i, cmax, current.mem) * (1.0 + gamma);
        let cores = cpu_manager_plan(model, current.mem, cpu_allowed);

        // Memory manager: baseline is "memory at max, cores as they are
        // now"; also consumes the full budget.
        let mem_allowed = |i: usize| model.tpi(i, current.cores[i], mmax) * (1.0 + gamma);
        let mem = mem_manager_plan(model, &current.cores, mem_allowed);

        Plan { cores, mem }
    }
}
