//! The Offline oracle (§3.2): a perfect per-epoch performance trace plus a
//! search equivalent to enumerating every core/memory frequency combination.
//!
//! The engine supplies a *full-epoch* lookahead profile (by checkpointing
//! the simulation, running the epoch ahead, and rewinding), so the model's
//! inputs are exact rather than extrapolated from a 300 µs window. Given a
//! memory frequency and an epoch-time cap τ, per-core choices decouple
//! under the model (see `cpuonly.rs`), so enumerating (memory frequency ×
//! achievable τ) searches the full `M × Cᴺ` space without approximation.
//! Offline remains greedy epoch-by-epoch, exactly as the paper notes — it
//! is an upper bound for CoScale, not a global optimum.

use crate::policy::cpuonly::best_cores_for_mem;
use crate::{Model, Plan, Policy, PolicyKind};

/// The oracle policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct OfflinePolicy;

impl Policy for OfflinePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Offline
    }

    fn needs_oracle(&self) -> bool {
        true
    }

    fn decide(&mut self, model: &Model<'_>, _current: &Plan) -> Plan {
        let mut best: Option<(Plan, f64)> = None;
        for mem in 0..model.mem_grid_len() {
            let (plan, ser) = best_cores_for_mem(model, mem);
            if !model.plan_ok(&plan) {
                continue;
            }
            if best.as_ref().is_none_or(|(_, s)| ser < *s) {
                best = Some((plan, ser));
            }
        }
        best.map(|(p, _)| p).unwrap_or_else(|| {
            Plan::max(model.n_cores(), model.core_grid_len(), model.mem_grid_len())
        })
    }
}
