//! Power capping — the extension the paper sketches in §2.3: "CoScale can
//! be readily extended to cap power with appropriate changes to its
//! decision algorithm and epoch length."
//!
//! Instead of minimizing energy under a performance bound, the capping
//! controller maximizes performance under a full-system power bound: it
//! starts from all-maximum frequencies and, while the model predicts power
//! above the cap, applies the down-step losing the *least* performance per
//! watt shed (the same marginal-utility machinery as CoScale, with the
//! selection criterion inverted). The slack/γ bound is ignored — under a
//! cap, staying below the budget is the hard constraint.

use crate::{Model, Plan, Policy, PolicyKind};

/// Performance-maximizing full-system power capping.
#[derive(Clone, Copy, Debug)]
pub struct PowerCapPolicy {
    /// The full-system power budget, watts.
    pub cap_w: f64,
}

impl PowerCapPolicy {
    /// Creates a capping policy with the given budget.
    ///
    /// # Panics
    ///
    /// Panics if the cap is not positive.
    pub fn new(cap_w: f64) -> Self {
        assert!(cap_w > 0.0, "power cap must be positive");
        PowerCapPolicy { cap_w }
    }
}

impl Policy for PowerCapPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::PowerCap
    }

    fn decide(&mut self, model: &Model<'_>, _current: &Plan) -> Plan {
        let n = model.n_cores();
        let mut plan = Plan::max(n, model.core_grid_len(), model.mem_grid_len());
        let mut cur_power = model.power(&plan).total();
        let mut cur_slow = model.worst_slowdown(&plan);

        // Each accepted step lowers exactly one grid index, so the walk
        // takes at most n·(core grid − 1) + (mem grid − 1) iterations.
        while cur_power > self.cap_w {
            // Candidate single steps: each core one step down, or memory one
            // step down. Pick the one shedding the most watts per unit of
            // performance lost. Feasibility here is only grid bounds — the
            // cap overrides the performance slack.
            //
            // (knob, utility, power after, slowdown after); knob None = mem.
            let mut best: Option<(Option<usize>, f64, f64, f64)> = None;

            for i in 0..n {
                if plan.cores[i] == 0 {
                    continue;
                }
                plan.cores[i] -= 1;
                let power = model.power(&plan).total();
                let slow = model.worst_slowdown(&plan);
                plan.cores[i] += 1;
                let d_power = cur_power - power;
                let utility = d_power / (slow - cur_slow).max(1e-12);
                if d_power > 0.0 && best.is_none_or(|(_, u, _, _)| utility > u) {
                    best = Some((Some(i), utility, power, slow));
                }
            }
            if plan.mem > 0 {
                plan.mem -= 1;
                let power = model.power(&plan).total();
                let slow = model.worst_slowdown(&plan);
                plan.mem += 1;
                let d_power = cur_power - power;
                let utility = d_power / (slow - cur_slow).max(1e-12);
                if d_power > 0.0 && best.is_none_or(|(_, u, _, _)| utility > u) {
                    best = Some((None, utility, power, slow));
                }
            }

            match best {
                Some((knob, _, power, slow)) => {
                    match knob {
                        Some(i) => plan.cores[i] -= 1,
                        None => plan.mem -= 1,
                    }
                    cur_power = power;
                    cur_slow = slow;
                }
                // No remaining down-step sheds power: the cap is
                // unreachable. Degrade to the all-minimum plan — the
                // lowest-power configuration under a monotone power model —
                // rather than reporting a higher-frequency plan that is
                // still above budget.
                None => {
                    return Plan {
                        cores: vec![0; n],
                        mem: 0,
                    };
                }
            }
        }
        plan
    }
}
