//! Power capping — the extension the paper sketches in §2.3: "CoScale can
//! be readily extended to cap power with appropriate changes to its
//! decision algorithm and epoch length."
//!
//! Instead of minimizing energy under a performance bound, the capping
//! controller maximizes performance under a full-system power bound: it
//! starts from all-maximum frequencies and, while the model predicts power
//! above the cap, applies the down-step losing the *least* performance per
//! watt shed (the same marginal-utility machinery as CoScale, with the
//! selection criterion inverted). The slack/γ bound is ignored — under a
//! cap, staying below the budget is the hard constraint.

use crate::{Model, Plan, Policy, PolicyKind};

/// Performance-maximizing full-system power capping.
#[derive(Clone, Copy, Debug)]
pub struct PowerCapPolicy {
    /// The full-system power budget, watts.
    pub cap_w: f64,
}

impl PowerCapPolicy {
    /// Creates a capping policy with the given budget.
    ///
    /// # Panics
    ///
    /// Panics if the cap is not positive.
    pub fn new(cap_w: f64) -> Self {
        assert!(cap_w > 0.0, "power cap must be positive");
        PowerCapPolicy { cap_w }
    }
}

impl Policy for PowerCapPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::PowerCap
    }

    fn decide(&mut self, model: &Model<'_>, _current: &Plan) -> Plan {
        let n = model.n_cores();
        let mut plan = Plan::max(n, model.core_grid_len(), model.mem_grid_len());

        while model.power(&plan).total() > self.cap_w {
            // Candidate single steps: each core one step down, or memory one
            // step down. Pick the one shedding the most watts per unit of
            // performance lost. Feasibility here is only grid bounds — the
            // cap overrides the performance slack.
            let mut best: Option<(Option<usize>, f64)> = None;

            for i in 0..n {
                if plan.cores[i] == 0 {
                    continue;
                }
                let mut next = plan.clone();
                next.cores[i] -= 1;
                let d_power = model.power(&plan).total() - model.power(&next).total();
                let d_perf = (model.worst_slowdown(&next) - model.worst_slowdown(&plan))
                    .max(1e-12);
                let utility = d_power / d_perf;
                if d_power > 0.0 && best.as_ref().is_none_or(|&(_, u)| utility > u) {
                    best = Some((Some(i), utility));
                }
            }
            if plan.mem > 0 {
                let mut next = plan.clone();
                next.mem -= 1;
                let d_power = model.power(&plan).total() - model.power(&next).total();
                let d_perf = (model.worst_slowdown(&next) - model.worst_slowdown(&plan))
                    .max(1e-12);
                let utility = d_power / d_perf;
                if d_power > 0.0 && best.as_ref().is_none_or(|&(_, u)| utility > u) {
                    best = Some((None, utility));
                }
            }

            match best {
                Some((Some(i), _)) => plan.cores[i] -= 1,
                Some((None, _)) => plan.mem -= 1,
                // Nothing sheds power anymore: everything is at minimum.
                None => break,
            }
        }
        plan
    }
}
