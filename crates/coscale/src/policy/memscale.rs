//! The MemScale comparison policy: memory-subsystem DVFS only (§3.2).

use crate::{Model, Plan, Policy, PolicyKind};

/// Memory-only DVFS. Cores stay pinned at maximum; the bus frequency walks
/// down one step at a time while every application stays within its slack,
/// and the minimum-SER setting visited is chosen.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemScalePolicy;

impl Policy for MemScalePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::MemScale
    }

    fn decide(&mut self, model: &Model<'_>, _current: &Plan) -> Plan {
        let n = model.n_cores();
        let mut plan = Plan::max(n, model.core_grid_len(), model.mem_grid_len());
        let mut best = plan.clone();
        let mut best_ser = model.ser(&plan);

        while plan.mem > 0 {
            let next = Plan {
                cores: plan.cores.clone(),
                mem: plan.mem - 1,
            };
            if !model.plan_ok(&next) {
                break;
            }
            plan = next;
            let ser = model.ser(&plan);
            if ser < best_ser {
                best_ser = ser;
                best = plan.clone();
            }
        }
        best
    }
}
