//! The CPUOnly comparison policy: per-core CPU DVFS only (§3.2).
//!
//! The paper is "optimistic about this alternative": it assumes CPUOnly
//! considers all combinations of core frequencies and picks the best.
//! Under the model, given a fixed memory frequency and a fixed epoch-time
//! cap τ (set by the worst core), each core's energy-minimal choice is
//! independent: the lowest feasible frequency with slowdown ≤ τ. Searching
//! all-core combinations therefore reduces *exactly* to searching the
//! discrete set of achievable τ values — which is what this implementation
//! does, making it equivalent to the paper's exhaustive CPUOnly.

use crate::{Model, Plan, Policy, PolicyKind};

/// Exhaustive-equivalent per-core CPU DVFS with memory pinned at maximum.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuOnlyPolicy;

/// Searches core settings for a fixed memory index by enumerating epoch-time
/// caps; shared with the Offline oracle. Returns the best plan and its SER.
pub(crate) fn best_cores_for_mem(model: &Model<'_>, mem: usize) -> (Plan, f64) {
    let n = model.n_cores();
    let cmax = model.core_grid_len() - 1;

    // Candidate caps: every achievable per-core slowdown at this memory
    // frequency (deduplicated); τ = 1.0 (all max) is always included.
    let mut taus: Vec<f64> = vec![1.0];
    for i in 0..n {
        for fc in 0..=cmax {
            if model.core_ok(i, fc, mem) {
                taus.push(model.slowdown(i, fc, mem));
            }
        }
    }
    taus.sort_by(|a, b| a.partial_cmp(b).expect("slowdowns are never NaN"));
    taus.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut best: Option<(Plan, f64)> = None;
    for &tau in &taus {
        let mut cores = Vec::with_capacity(n);
        let mut ok = true;
        for i in 0..n {
            // Lowest frequency whose slowdown fits under both τ and the
            // slack bound; tpi is monotone in frequency so scan upward.
            let choice = (0..=cmax)
                .find(|&fc| model.core_ok(i, fc, mem) && model.slowdown(i, fc, mem) <= tau + 1e-12);
            match choice {
                Some(fc) => cores.push(fc),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let plan = Plan { cores, mem };
        let ser = model.ser(&plan);
        if best.as_ref().is_none_or(|(_, s)| ser < *s) {
            best = Some((plan, ser));
        }
    }
    best.unwrap_or_else(|| {
        let plan = Plan {
            cores: vec![cmax; n],
            mem,
        };
        let ser = model.ser(&plan);
        (plan, ser)
    })
}

impl Policy for CpuOnlyPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::CpuOnly
    }

    fn decide(&mut self, model: &Model<'_>, _current: &Plan) -> Plan {
        let (plan, _) = best_cores_for_mem(model, model.mem_grid_len() - 1);
        plan
    }
}
