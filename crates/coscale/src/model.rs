//! The online performance and energy models (§3.3 of the paper).
//!
//! From one profiling window's performance counters the models predict, for
//! any candidate frequency plan:
//!
//! * each application's time-per-instruction (Eq. 1 restated in time units:
//!   `tpi = cpu_cycles/f_core + α·TPI_L2 + β·TPI_Mem(f_mem)`);
//! * the memory stall time at any bus frequency, via the MemScale queueing
//!   decomposition `E[TPI_Mem] = ξ_bank·S_Bank + S + ξ_bus·S_Bus`;
//! * full-system power (through the `powermodel` crate) and the System
//!   Energy Ratio of Eq. 2, using the worst per-core slowdown as the time
//!   estimate.
//!
//! Every policy uses this same model; they differ only in how they search.

use cpusim::CoreCounters;
use memsim::{DdrTimings, MemCounters};
use powermodel::{system_power, MemGeometry, PowerConfig, SystemPower};
use simkernel::{Freq, Ps};

/// A complete frequency assignment: one grid index per core plus the memory
/// bus grid index.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Plan {
    /// Core frequency indices into the core grid.
    pub cores: Vec<usize>,
    /// Memory bus frequency index into the memory grid.
    pub mem: usize,
}

impl Plan {
    /// The all-maximum plan (the baseline operating point).
    pub fn max(n_cores: usize, core_grid_len: usize, mem_grid_len: usize) -> Plan {
        Plan {
            cores: vec![core_grid_len - 1; n_cores],
            mem: mem_grid_len - 1,
        }
    }
}

/// Per-core profile distilled from a window of counters; all quantities are
/// per instruction and frequency-normalized where possible.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoreProfile {
    /// Core cycles per instruction (frequency-invariant).
    pub cpu_cycles_pi: f64,
    /// Seconds per instruction stalled on L2 hits (uncore; invariant).
    pub l2_s_pi: f64,
    /// Seconds per instruction stalled on memory at the profiled bus
    /// frequency.
    pub mem_s_pi: f64,
    /// Instructions committed in the window.
    pub instrs: u64,
    /// Per-instruction activity counters (ALU, FPU, branch, load/store).
    pub cac_pi: [f64; 4],
}

/// Memory-subsystem profile for the window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemProfile {
    /// Average bank-queueing wait per read, seconds.
    pub bank_wait_s: f64,
    /// Average bus wait per read, seconds.
    pub bus_wait_s: f64,
    /// Reads completed in the window.
    pub reads: u64,
    /// Page-open events (reads + writes).
    pub page_opens: u64,
    /// Refreshes issued.
    pub refreshes: u64,
    /// Rank-active time (rank-seconds).
    pub rank_active_s: f64,
    /// Shared-L2 accesses in the window.
    pub l2_accesses: u64,
}

/// Everything the models saw in one profiling window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpochProfile {
    /// Per-core profiles.
    pub cores: Vec<CoreProfile>,
    /// Memory profile.
    pub mem: MemProfile,
    /// Window length.
    pub window: Ps,
    /// Core frequency indices during the window.
    pub core_freq_idx: Vec<usize>,
    /// Memory frequency index during the window.
    pub mem_freq_idx: usize,
}

/// Builds an [`EpochProfile`] from counter deltas.
///
/// `cores` pairs each core's counter delta with the core-grid index it ran
/// at during the window.
pub fn extract_profile(
    cores: &[(usize, CoreCounters)],
    mem: &MemCounters,
    l2_accesses: u64,
    mem_freq_idx: usize,
    window: Ps,
) -> EpochProfile {
    let core_profiles = cores
        .iter()
        .map(|&(_, c)| {
            let tic = c.tic.max(1) as f64;
            CoreProfile {
                cpu_cycles_pi: 0.0, // placeholder, fixed below with frequency
                l2_s_pi: c.l2_stall_time.as_secs_f64() / tic,
                mem_s_pi: c.mem_stall_time.as_secs_f64() / tic,
                instrs: c.tic,
                cac_pi: [
                    c.cac_alu / tic,
                    c.cac_fpu / tic,
                    c.cac_branch / tic,
                    c.cac_loadstore / tic,
                ],
            }
        })
        .collect::<Vec<_>>();

    EpochProfile {
        cores: core_profiles,
        mem: MemProfile {
            bank_wait_s: mem.avg_bank_wait().as_secs_f64(),
            bus_wait_s: mem.avg_bus_wait().as_secs_f64(),
            reads: mem.reads,
            page_opens: mem.page_opens,
            refreshes: mem.refreshes,
            rank_active_s: mem.rank_active.as_secs_f64(),
            l2_accesses,
        },
        window,
        core_freq_idx: cores.iter().map(|&(i, _)| i).collect(),
        mem_freq_idx,
    }
}

/// Finalizes the frequency-dependent part of a profile: converts measured
/// busy time into frequency-invariant cycles per instruction.
pub fn normalize_profile(
    profile: &mut EpochProfile,
    cores: &[(usize, CoreCounters)],
    grid: &[Freq],
) {
    for (cp, &(fidx, c)) in profile.cores.iter_mut().zip(cores) {
        let tic = c.tic.max(1) as f64;
        cp.cpu_cycles_pi = c.busy_time.as_secs_f64() * grid[fidx].as_hz() as f64 / tic;
    }
}

/// The prediction model bound to one profile and one configuration.
///
/// All methods are pure; policies call them thousands of times per decision
/// (the whole search is still far under the paper's 5 µs-at-16-cores
/// budget — see the `bench` crate).
pub struct Model<'a> {
    profile: &'a EpochProfile,
    core_grid: &'a [Freq],
    mem_grid: &'a [Freq],
    power_cfg: &'a PowerConfig,
    geom: MemGeometry,
    /// Frequency-independent read service time, seconds.
    fixed_service_s: f64,
    /// Burst time per memory grid point, seconds.
    burst_s: Vec<f64>,
    /// Allowed time-per-instruction per core (slack-adjusted).
    allowed_tpi: Vec<f64>,
    /// The degradation bound γ.
    gamma: f64,
    /// Baseline (all-max) tpi per core.
    base_tpi: Vec<f64>,
    /// Baseline power, for SER normalization.
    base_power: f64,
    /// Cores per shared voltage domain (1 = per-core domains).
    domain_size: usize,
}

impl<'a> Model<'a> {
    /// Builds the model.
    ///
    /// `slack` is each core's accumulated slack in seconds (positive = the
    /// application is ahead of its bound); `epoch` the upcoming epoch
    /// length; `gamma` the degradation bound.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        profile: &'a EpochProfile,
        core_grid: &'a [Freq],
        mem_grid: &'a [Freq],
        power_cfg: &'a PowerConfig,
        geom: MemGeometry,
        timings: &DdrTimings,
        slack: &[f64],
        epoch: Ps,
        gamma: f64,
    ) -> Model<'a> {
        let fixed_service_s = timings.fixed_read_service().as_secs_f64();
        let burst_s: Vec<f64> = mem_grid
            .iter()
            .map(|f| timings.burst_time(*f).as_secs_f64())
            .collect();

        let mut m = Model {
            profile,
            core_grid,
            mem_grid,
            power_cfg,
            geom,
            fixed_service_s,
            burst_s,
            allowed_tpi: Vec::new(),
            gamma,
            base_tpi: Vec::new(),
            base_power: 1.0,
            domain_size: 1,
        };

        let n = profile.cores.len();
        let max_plan = Plan::max(n, core_grid.len(), mem_grid.len());
        m.base_tpi = (0..n)
            .map(|i| m.tpi(i, core_grid.len() - 1, mem_grid.len() - 1))
            .collect();
        m.base_power = m.power(&max_plan).total();

        let epoch_s = epoch.as_secs_f64();
        m.allowed_tpi = (0..n)
            .map(|i| {
                let denom = 1.0 - slack.get(i).copied().unwrap_or(0.0) / epoch_s;
                if denom <= 1e-9 {
                    f64::INFINITY // enormous surplus: any setting is fine
                } else {
                    m.base_tpi[i] * (1.0 + gamma) / denom
                }
            })
            .collect();
        m
    }

    /// Configures shared voltage domains of `size` cores (§3.4). Returns
    /// `self` for builder-style use after [`Model::new`].
    pub fn with_voltage_domains(mut self, size: usize) -> Self {
        assert!(size > 0, "domain size must be positive");
        self.domain_size = size;
        // The baseline is all-max, where domain sharing changes nothing,
        // so base_power stays valid.
        self
    }

    /// The voltage-setting frequency for core `i` under `plan`: the fastest
    /// clock in its voltage domain.
    fn domain_vfreq(&self, plan: &Plan, i: usize) -> Freq {
        if self.domain_size <= 1 {
            return self.core_grid[plan.cores[i]];
        }
        let d = i / self.domain_size;
        let lo = d * self.domain_size;
        let hi = (lo + self.domain_size).min(plan.cores.len());
        let max_idx = plan.cores[lo..hi].iter().copied().max().unwrap_or(0);
        self.core_grid[max_idx]
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.profile.cores.len()
    }

    /// Number of core frequency grid points.
    pub fn core_grid_len(&self) -> usize {
        self.core_grid.len()
    }

    /// Number of memory frequency grid points.
    pub fn mem_grid_len(&self) -> usize {
        self.mem_grid.len()
    }

    /// The performance-degradation bound γ this model was built with.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Predicted average memory read latency at memory grid index `fm`.
    pub fn mem_latency(&self, fm: usize) -> f64 {
        let p = &self.profile.mem;
        let s_now = self.fixed_service_s + self.burst_s[self.profile.mem_freq_idx];
        let s_new = self.fixed_service_s + self.burst_s[fm];
        if p.reads == 0 {
            return s_new;
        }
        // Queueing waits scale with the service times they queue behind
        // (constant-ξ assumption inherited from MemScale).
        let bank_wait = p.bank_wait_s * s_new / s_now;
        let bus_wait = p.bus_wait_s * self.burst_s[fm] / self.burst_s[self.profile.mem_freq_idx];
        bank_wait + s_new + bus_wait
    }

    /// Predicted time per instruction of core `i` at plan point
    /// `(fc, fm)` (grid indices), in seconds.
    pub fn tpi(&self, i: usize, fc: usize, fm: usize) -> f64 {
        let cp = &self.profile.cores[i];
        let cpu = cp.cpu_cycles_pi / self.core_grid[fc].as_hz() as f64;
        let mem = if cp.mem_s_pi == 0.0 {
            0.0
        } else {
            let l_now = self.mem_latency(self.profile.mem_freq_idx);
            if l_now <= 0.0 {
                cp.mem_s_pi
            } else {
                cp.mem_s_pi * self.mem_latency(fm) / l_now
            }
        };
        cpu + cp.l2_s_pi + mem
    }

    /// Predicted slowdown of core `i` relative to its all-max baseline.
    pub fn slowdown(&self, i: usize, fc: usize, fm: usize) -> f64 {
        let b = self.base_tpi[i];
        if b <= 0.0 {
            1.0
        } else {
            self.tpi(i, fc, fm) / b
        }
    }

    /// The slack-adjusted maximum tpi core `i` may run at this epoch.
    pub fn allowed_tpi(&self, i: usize) -> f64 {
        self.allowed_tpi[i]
    }

    /// Whether core `i` stays within its bound at `(fc, fm)`.
    pub fn core_ok(&self, i: usize, fc: usize, fm: usize) -> bool {
        self.tpi(i, fc, fm) <= self.allowed_tpi[i]
    }

    /// Whether every core stays within its bound under `plan`.
    pub fn plan_ok(&self, plan: &Plan) -> bool {
        (0..self.n_cores()).all(|i| self.core_ok(i, plan.cores[i], plan.mem))
    }

    /// The worst predicted slowdown of any core under `plan`.
    pub fn worst_slowdown(&self, plan: &Plan) -> f64 {
        (0..self.n_cores())
            .map(|i| self.slowdown(i, plan.cores[i], plan.mem))
            .fold(1.0, f64::max)
    }

    /// Synthesizes the per-core counter window the power model needs for a
    /// hypothetical plan.
    fn synth_core_counters(&self, i: usize, fc: usize, fm: usize) -> (Freq, CoreCounters) {
        let cp = &self.profile.cores[i];
        let w = self.profile.window.as_secs_f64();
        let tpi = self.tpi(i, fc, fm).max(1e-15);
        let instrs = w / tpi;
        let f = self.core_grid[fc];
        let busy = instrs * cp.cpu_cycles_pi / f.as_hz() as f64;
        (
            f,
            CoreCounters {
                tic: instrs as u64,
                busy_time: Ps::from_secs_f64(busy.min(w)),
                cac_alu: instrs * cp.cac_pi[0],
                cac_fpu: instrs * cp.cac_pi[1],
                cac_branch: instrs * cp.cac_pi[2],
                cac_loadstore: instrs * cp.cac_pi[3],
                ..CoreCounters::default()
            },
        )
    }

    /// Ratio of predicted total instruction throughput under `plan` to the
    /// profiled throughput; memory traffic is assumed proportional.
    fn throughput_ratio(&self, plan: &Plan) -> f64 {
        let w = self.profile.window.as_secs_f64();
        let prof_rate: f64 = self.profile.cores.iter().map(|c| c.instrs as f64 / w).sum();
        if prof_rate <= 0.0 {
            return 1.0;
        }
        let new_rate: f64 = (0..self.n_cores())
            .map(|i| 1.0 / self.tpi(i, plan.cores[i], plan.mem).max(1e-15))
            .sum();
        new_rate / prof_rate
    }

    /// Predicted full-system power under `plan`.
    pub fn power(&self, plan: &Plan) -> SystemPower {
        let w = self.profile.window;
        let rho = self.throughput_ratio(plan);
        let cores: Vec<(Freq, CoreCounters)> = (0..self.n_cores())
            .map(|i| self.synth_core_counters(i, plan.cores[i], plan.mem))
            .collect();

        let p = &self.profile.mem;
        let page_opens = (p.page_opens as f64 * rho) as u64;
        let bus_busy = Ps::from_secs_f64(page_opens as f64 * self.burst_s[plan.mem]);
        let rank_cap = w.as_secs_f64() * self.geom.ranks as f64;
        let mem_ctr = MemCounters {
            reads: (p.reads as f64 * rho) as u64,
            page_opens,
            page_closes: page_opens,
            refreshes: p.refreshes,
            rank_active: Ps::from_secs_f64((p.rank_active_s * rho).min(rank_cap)),
            bus_busy,
            ..MemCounters::default()
        };
        let mut sys = system_power(
            self.power_cfg,
            &self.geom,
            &cores,
            (p.l2_accesses as f64 * rho) as u64,
            self.mem_grid[plan.mem],
            &mem_ctr,
            w,
        );
        if self.domain_size > 1 {
            for (i, (f, ctr)) in cores.iter().enumerate() {
                sys.cores_w[i] = powermodel::core_power_shared_domain(
                    self.power_cfg,
                    *f,
                    self.domain_vfreq(plan, i),
                    ctr,
                    w,
                );
            }
        }
        sys
    }

    /// The System Energy Ratio of Eq. 2: predicted epoch time (worst-core
    /// slowdown) × predicted power, normalized to the all-max baseline.
    /// Values below 1 mean the plan saves energy.
    pub fn ser(&self, plan: &Plan) -> f64 {
        self.worst_slowdown(plan) * self.power(plan).total() / self.base_power
    }

    /// Marginal utility of one *core* step `fc → fc-1` for core `i` under
    /// `plan`: `(power saved) / (performance lost)`. The performance loss is
    /// the core's slowdown increase.
    pub fn core_step_utility(&self, i: usize, plan: &Plan) -> Option<StepUtility> {
        let fc = plan.cores[i];
        if fc == 0 || !self.core_ok(i, fc - 1, plan.mem) {
            return None;
        }
        let (f_hi, c_hi) = self.synth_core_counters(i, fc, plan.mem);
        let (f_lo, c_lo) = self.synth_core_counters(i, fc - 1, plan.mem);
        let w = self.profile.window;
        let v_hi = self.domain_vfreq(plan, i);
        let mut lower = plan.clone();
        lower.cores[i] -= 1;
        let v_lo = self.domain_vfreq(&lower, i);
        let p_hi = powermodel::core_power_shared_domain(self.power_cfg, f_hi, v_hi, &c_hi, w);
        let p_lo = powermodel::core_power_shared_domain(self.power_cfg, f_lo, v_lo, &c_lo, w);
        let d_perf = self.slowdown(i, fc - 1, plan.mem) - self.slowdown(i, fc, plan.mem);
        Some(StepUtility {
            d_power: (p_hi - p_lo).max(0.0),
            d_perf: d_perf.max(0.0),
        })
    }

    /// Marginal utility of one *memory* step `fm → fm-1` under `plan`.
    /// Δperformance is the worst per-core slowdown increase (§3.1); the
    /// step is infeasible if any core would violate its bound.
    pub fn mem_step_utility(&self, plan: &Plan) -> Option<StepUtility> {
        if plan.mem == 0 {
            return None;
        }
        let mut lower = plan.clone();
        lower.mem -= 1;
        if !self.plan_ok(&lower) {
            return None;
        }
        let p_hi = self.power(plan).total();
        let p_lo = self.power(&lower).total();
        let d_perf = (0..self.n_cores())
            .map(|i| {
                self.slowdown(i, plan.cores[i], lower.mem)
                    - self.slowdown(i, plan.cores[i], plan.mem)
            })
            .fold(0.0, f64::max);
        Some(StepUtility {
            d_power: (p_hi - p_lo).max(0.0),
            d_perf: d_perf.max(0.0),
        })
    }
}

/// A candidate move's power/performance trade-off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepUtility {
    /// Power saved by the move, watts (≥ 0).
    pub d_power: f64,
    /// Performance lost (slowdown increase, ≥ 0).
    pub d_perf: f64,
}

impl StepUtility {
    /// Δpower/Δperformance; a zero-cost move has infinite utility.
    pub fn value(&self) -> f64 {
        if self.d_perf <= 0.0 {
            if self.d_power > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.d_power / self.d_perf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::MemConfig;

    /// A hand-built profile: core 0 compute-bound, core 1 memory-bound.
    fn profile() -> EpochProfile {
        EpochProfile {
            cores: vec![
                CoreProfile {
                    cpu_cycles_pi: 1.2,
                    l2_s_pi: 50e-12,
                    mem_s_pi: 20e-12,
                    instrs: 900_000,
                    cac_pi: [0.45, 0.02, 0.18, 0.35],
                },
                CoreProfile {
                    cpu_cycles_pi: 1.1,
                    l2_s_pi: 100e-12,
                    mem_s_pi: 900e-12,
                    instrs: 350_000,
                    cac_pi: [0.28, 0.32, 0.08, 0.32],
                },
            ],
            mem: MemProfile {
                bank_wait_s: 20e-9,
                bus_wait_s: 5e-9,
                reads: 20_000,
                page_opens: 25_000,
                refreshes: 38,
                rank_active_s: 80e-6,
                l2_accesses: 60_000,
            },
            window: Ps::from_us(300),
            core_freq_idx: vec![9, 9],
            mem_freq_idx: 9,
        }
    }

    fn fixtures() -> (Vec<Freq>, Vec<Freq>, PowerConfig, MemGeometry, DdrTimings) {
        let mem_cfg = MemConfig::default();
        (
            crate::SimConfig::core_grid_with_steps(10),
            mem_cfg.freq_grid.clone(),
            PowerConfig::default(),
            MemGeometry::of(&mem_cfg),
            mem_cfg.timings,
        )
    }

    fn model<'a>(
        p: &'a EpochProfile,
        cg: &'a [Freq],
        mg: &'a [Freq],
        pc: &'a PowerConfig,
        geom: MemGeometry,
        t: &DdrTimings,
        slack: &[f64],
    ) -> Model<'a> {
        Model::new(p, cg, mg, pc, geom, t, slack, Ps::from_ms(5), 0.10)
    }

    #[test]
    fn tpi_increases_as_frequencies_drop() {
        let p = profile();
        let (cg, mg, pc, geom, t) = fixtures();
        let m = model(&p, &cg, &mg, &pc, geom, &t, &[0.0, 0.0]);
        for i in 0..2 {
            let base = m.tpi(i, 9, 9);
            assert!(m.tpi(i, 0, 9) > base);
            assert!(m.tpi(i, 9, 0) >= base);
            assert!(m.tpi(i, 0, 0) > m.tpi(i, 0, 9));
        }
    }

    #[test]
    fn memory_bound_core_is_more_sensitive_to_mem_freq() {
        let p = profile();
        let (cg, mg, pc, geom, t) = fixtures();
        let m = model(&p, &cg, &mg, &pc, geom, &t, &[0.0, 0.0]);
        let d0 = m.slowdown(0, 9, 0) - 1.0;
        let d1 = m.slowdown(1, 9, 0) - 1.0;
        assert!(
            d1 > d0 * 3.0,
            "memory-bound core should suffer more: {d0} vs {d1}"
        );
    }

    #[test]
    fn compute_bound_core_is_more_sensitive_to_core_freq() {
        let p = profile();
        let (cg, mg, pc, geom, t) = fixtures();
        let m = model(&p, &cg, &mg, &pc, geom, &t, &[0.0, 0.0]);
        let d0 = m.slowdown(0, 0, 9) - 1.0;
        let d1 = m.slowdown(1, 0, 9) - 1.0;
        assert!(
            d0 > d1,
            "compute-bound core should suffer more: {d0} vs {d1}"
        );
    }

    #[test]
    fn slowdown_at_max_is_one_and_ser_at_max_is_one() {
        let p = profile();
        let (cg, mg, pc, geom, t) = fixtures();
        let m = model(&p, &cg, &mg, &pc, geom, &t, &[0.0, 0.0]);
        let max = Plan::max(2, cg.len(), mg.len());
        assert!((m.worst_slowdown(&max) - 1.0).abs() < 1e-12);
        assert!((m.ser(&max) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lower_frequencies_reduce_predicted_power() {
        let p = profile();
        let (cg, mg, pc, geom, t) = fixtures();
        let m = model(&p, &cg, &mg, &pc, geom, &t, &[0.0, 0.0]);
        let hi = m.power(&Plan::max(2, cg.len(), mg.len())).total();
        let lo = m
            .power(&Plan {
                cores: vec![0, 0],
                mem: 0,
            })
            .total();
        assert!(lo < hi * 0.8, "lo {lo}, hi {hi}");
    }

    #[test]
    fn slack_expands_and_debt_contracts_the_bound() {
        let p = profile();
        let (cg, mg, pc, geom, t) = fixtures();
        let neutral = model(&p, &cg, &mg, &pc, geom, &t, &[0.0, 0.0]);
        let surplus = model(&p, &cg, &mg, &pc, geom, &t, &[1e-3, 1e-3]);
        let debt = model(&p, &cg, &mg, &pc, geom, &t, &[-1e-3, -1e-3]);
        for i in 0..2 {
            assert!(surplus.allowed_tpi(i) > neutral.allowed_tpi(i));
            assert!(debt.allowed_tpi(i) < neutral.allowed_tpi(i));
        }
    }

    #[test]
    fn feasibility_respects_bound() {
        let p = profile();
        let (cg, mg, pc, geom, t) = fixtures();
        let m = model(&p, &cg, &mg, &pc, geom, &t, &[0.0, 0.0]);
        assert!(m.plan_ok(&Plan::max(2, cg.len(), mg.len())));
        // Dropping everything to minimum should violate a 10% bound for the
        // compute-bound core (2.2/4.0 alone is a 45% slowdown).
        assert!(!m.plan_ok(&Plan {
            cores: vec![0, 0],
            mem: 0
        }));
    }

    #[test]
    fn step_utilities_have_expected_signs() {
        let p = profile();
        let (cg, mg, pc, geom, t) = fixtures();
        let m = model(&p, &cg, &mg, &pc, geom, &t, &[0.0, 0.0]);
        let plan = Plan::max(2, cg.len(), mg.len());
        let cu = m
            .core_step_utility(0, &plan)
            .expect("step must be feasible");
        assert!(cu.d_power > 0.0);
        assert!(cu.d_perf > 0.0);
        assert!(cu.value() > 0.0);
        let mu = m.mem_step_utility(&plan).expect("step must be feasible");
        assert!(mu.d_power > 0.0);
        assert!(mu.d_perf > 0.0);
    }

    #[test]
    fn utility_of_free_move_is_infinite() {
        let u = StepUtility {
            d_power: 1.0,
            d_perf: 0.0,
        };
        assert!(u.value().is_infinite());
        let z = StepUtility {
            d_power: 0.0,
            d_perf: 0.0,
        };
        assert_eq!(z.value(), 0.0);
    }

    #[test]
    fn shared_voltage_domains_raise_power_of_mixed_plans() {
        let p = profile();
        let (cg, mg, pc, geom, t) = fixtures();
        let per_core = model(&p, &cg, &mg, &pc, geom, &t, &[0.0, 0.0]);
        let shared = Model::new(
            &p,
            &cg,
            &mg,
            &pc,
            geom,
            &t,
            &[0.0, 0.0],
            Ps::from_ms(5),
            0.10,
        )
        .with_voltage_domains(2);
        // One fast + one slow core: with a shared domain the slow core pays
        // the fast core's voltage.
        let plan = Plan {
            cores: vec![9, 0],
            mem: 9,
        };
        let p_ind = per_core.power(&plan).total();
        let p_shared = shared.power(&plan).total();
        assert!(
            p_shared > p_ind + 0.1,
            "shared domain must cost power: {p_ind} vs {p_shared}"
        );
        // A uniform plan is unaffected.
        let uniform = Plan {
            cores: vec![3, 3],
            mem: 9,
        };
        let u_ind = per_core.power(&uniform).total();
        let u_shared = shared.power(&uniform).total();
        assert!((u_ind - u_shared).abs() < 1e-9);
    }

    #[test]
    fn extract_and_normalize_roundtrip() {
        let (cg, ..) = fixtures();
        let ctr = CoreCounters {
            tic: 1000,
            busy_time: Ps::from_ns(300), // 300ns at 4GHz = 1200 cycles
            l2_stall_time: Ps::from_ns(75),
            mem_stall_time: Ps::from_ns(400),
            cac_alu: 450.0,
            ..CoreCounters::default()
        };
        let cores = vec![(9usize, ctr)];
        let mem = MemCounters::default();
        let mut p = extract_profile(&cores, &mem, 120, 9, Ps::from_us(1));
        normalize_profile(&mut p, &cores, &cg);
        let cp = &p.cores[0];
        assert!((cp.cpu_cycles_pi - 1.2).abs() < 1e-9);
        assert!((cp.l2_s_pi - 75e-12).abs() < 1e-15);
        assert!((cp.mem_s_pi - 400e-12).abs() < 1e-15);
        assert!((cp.cac_pi[0] - 0.45).abs() < 1e-12);
        assert_eq!(p.mem.l2_accesses, 120);
    }
}
