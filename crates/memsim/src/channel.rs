//! Per-channel scheduling: queues, bank/rank timing state, and the
//! closed-page FCFS command issue logic.

use crate::{DdrTimings, Location, MemConfig, MemCounters, PagePolicy, SchedPolicy};
use simkernel::{Freq, Ps};
use std::collections::VecDeque;

/// A queued memory request.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Request {
    /// Caller-chosen identifier returned with the completion (reads only).
    pub tag: u64,
    /// Mapped location of the line.
    pub loc: Location,
    /// When the request entered the controller.
    pub arrival: Ps,
    /// Writeback (no completion is reported) vs demand read.
    pub is_write: bool,
}

/// Timing state of one bank.
#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    /// Earliest time the next command (ACT, or CAS under open page) may
    /// start on this bank.
    next_free: Ps,
    /// The currently open row (open-page policy only).
    open_row: Option<u64>,
    /// When the open row was activated (tRAS gate for its precharge).
    last_act: Ps,
    /// Earliest legal precharge (read-to-precharge / write recovery).
    earliest_pre: Ps,
}

/// Timing state shared by all banks of a rank.
#[derive(Clone, Debug)]
struct RankState {
    /// Last ACT issue time (tRRD); `None` before the first ACT.
    last_act: Option<Ps>,
    /// Rolling window of the last four ACT times (tFAW).
    act_window: VecDeque<Ps>,
    /// End of the current "some bank is active" interval, for exact
    /// active-time union accounting (power model input; closed page).
    active_until: Ps,
    /// Number of banks with an open row (open-page active accounting).
    open_banks: u32,
    /// When `open_banks` last rose from zero.
    active_since: Ps,
    /// End of the rank's most recent activity (idle-state management).
    last_activity: Ps,
}

impl RankState {
    fn new() -> Self {
        RankState {
            last_act: None,
            act_window: VecDeque::with_capacity(4),
            active_until: Ps::ZERO,
            open_banks: 0,
            active_since: Ps::ZERO,
            last_activity: Ps::ZERO,
        }
    }

    /// Open-page accounting: a row opened at `t`.
    fn row_opened(&mut self, t: Ps) {
        if self.open_banks == 0 {
            self.active_since = t;
        }
        self.open_banks += 1;
    }

    /// Open-page accounting: a row closed at `t`; returns the newly
    /// completed active span, if the rank went fully idle.
    fn row_closed(&mut self, t: Ps) -> Ps {
        debug_assert!(self.open_banks > 0, "row_closed with no open rows");
        self.open_banks -= 1;
        if self.open_banks == 0 {
            t.saturating_sub(self.active_since)
        } else {
            Ps::ZERO
        }
    }

    /// Earliest ACT permitted by tRRD and tFAW.
    fn act_constraint(&self, t: &DdrTimings) -> Ps {
        let rrd = match self.last_act {
            Some(last) => last + t.t_rrd,
            None => Ps::ZERO,
        };
        let faw = if self.act_window.len() == 4 {
            self.act_window[0] + t.t_faw
        } else {
            Ps::ZERO
        };
        rrd.max(faw)
    }

    fn record_act(&mut self, act: Ps) {
        self.last_act = Some(act);
        if self.act_window.len() == 4 {
            self.act_window.pop_front();
        }
        self.act_window.push_back(act);
    }

    /// Adds `[start, end)` to the rank-active union and returns the newly
    /// covered span. ACT issue times are non-decreasing per channel, so a
    /// simple high-water mark computes the exact union.
    fn extend_active(&mut self, start: Ps, end: Ps) -> Ps {
        let covered = if start >= self.active_until {
            end - start
        } else if end > self.active_until {
            end - self.active_until
        } else {
            Ps::ZERO
        };
        self.active_until = self.active_until.max(end);
        covered
    }
}

/// The result of issuing one request.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Issued {
    /// For reads: `(tag, completion_time, latency)` to report to the core.
    pub completion: Option<(u64, Ps, Ps)>,
    /// When the channel should make its next scheduling decision.
    pub next_decision: Ps,
}

/// One memory channel: request queues plus all bank/rank/bus timing state.
#[derive(Clone, Debug)]
pub(crate) struct Channel {
    reads: VecDeque<Request>,
    writes: VecDeque<Request>,
    banks: Vec<Bank>,
    ranks: Vec<RankState>,
    banks_per_rank: usize,
    /// Earliest time the shared data bus is free.
    bus_free: Ps,
    /// Last ACT issue time on this channel; command issue stays FCFS.
    last_act_issue: Option<Ps>,
    /// Time of the currently pending Schedule event, if any (dedup).
    pub next_schedule: Option<Ps>,
}

impl Channel {
    pub fn new(config: &MemConfig) -> Self {
        let nbanks = config.ranks_per_channel() * config.banks_per_rank;
        Channel {
            reads: VecDeque::new(),
            writes: VecDeque::new(),
            banks: vec![Bank::default(); nbanks],
            ranks: (0..config.ranks_per_channel())
                .map(|_| RankState::new())
                .collect(),
            banks_per_rank: config.banks_per_rank,
            bus_free: Ps::ZERO,
            last_act_issue: None,
            next_schedule: None,
        }
    }

    pub fn push_read(&mut self, req: Request) {
        debug_assert!(!req.is_write);
        self.reads.push_back(req);
    }

    pub fn push_write(&mut self, req: Request) {
        debug_assert!(req.is_write);
        self.writes.push_back(req);
    }

    pub fn has_pending(&self) -> bool {
        !self.reads.is_empty() || !self.writes.is_empty()
    }

    pub fn queued_reads(&self) -> usize {
        self.reads.len()
    }

    pub fn queued_writes(&self) -> usize {
        self.writes.len()
    }

    /// Picks the next request. Reads have priority over writebacks until
    /// the writeback queue reaches its threshold (the paper's policy);
    /// under FR-FCFS, the oldest *row-hitting* read bypasses older
    /// conflicting reads.
    fn pick(&mut self, wb_threshold: usize, sched: SchedPolicy) -> Option<Request> {
        if self.writes.len() >= wb_threshold {
            return self.writes.pop_front();
        }
        if sched == SchedPolicy::FrFcfs {
            let hit = self.reads.iter().position(|r| {
                let bank_idx = r.loc.rank * self.banks_per_rank + r.loc.bank;
                self.banks[bank_idx].open_row == Some(r.loc.row)
            });
            if let Some(i) = hit {
                return self.reads.remove(i);
            }
        }
        if let Some(r) = self.reads.pop_front() {
            Some(r)
        } else {
            self.writes.pop_front()
        }
    }

    /// Issues the next request (if any) no earlier than `now`, updating all
    /// timing state and counters. Returns `None` when both queues are empty.
    pub fn issue_next(
        &mut self,
        now: Ps,
        config: &MemConfig,
        bus: Freq,
        counters: &mut MemCounters,
    ) -> Option<Issued> {
        let req = self.pick(config.wb_priority_threshold, config.sched)?;
        match config.page_policy {
            PagePolicy::Closed => Some(self.issue_closed(now, req, config, bus, counters)),
            PagePolicy::Open => Some(self.issue_open(now, req, config, bus, counters)),
        }
    }

    /// Closed-page service: ACT, column access, immediate precharge.
    fn issue_closed(
        &mut self,
        now: Ps,
        req: Request,
        config: &MemConfig,
        bus: Freq,
        counters: &mut MemCounters,
    ) -> Issued {
        let t = &config.timings;
        let rank = req.loc.rank;
        let bank_idx = rank * self.banks_per_rank + req.loc.bank;

        let cmd_cycle = bus.period();
        let act_issue_floor = match self.last_act_issue {
            Some(last) => last + cmd_cycle,
            None => Ps::ZERO,
        };
        // A request cannot be serviced before it arrives; drivers that
        // enqueue future arrivals up front (tests, trace replay) rely on
        // this clamp.
        let act_start = now
            .max(req.arrival)
            .max(self.banks[bank_idx].next_free)
            .max(self.ranks[rank].act_constraint(t))
            .max(act_issue_floor);
        let act_start = self.wake_rank(rank, act_start, config, counters);

        let burst = t.burst_time(bus);
        let cas_done = act_start + t.t_rcd + t.t_cl;
        let data_start = cas_done.max(self.bus_free);
        let data_end = data_start + burst;

        // Closed-page policy: precharge immediately after the access obeying
        // tRAS and read-to-precharge / write-recovery constraints.
        let pre_start = if req.is_write {
            (act_start + t.t_ras).max(data_end + t.t_wr)
        } else {
            (act_start + t.t_ras).max(data_start + t.t_rtp)
        };
        let bank_free = pre_start + t.t_rp;

        self.banks[bank_idx].next_free = bank_free;
        self.ranks[rank].record_act(act_start);
        self.bus_free = data_end;
        self.last_act_issue = Some(act_start);

        counters.page_opens += 1;
        counters.page_closes += 1;
        counters.bus_busy += burst;
        counters.rank_active += self.ranks[rank].extend_active(act_start, bank_free);
        self.touch_rank(rank, bank_free);

        let completion = if req.is_write {
            counters.writes += 1;
            None
        } else {
            let done = data_end + t.mc_overhead;
            counters.reads += 1;
            counters.read_latency_sum += done - req.arrival;
            counters.bank_wait_sum += act_start - req.arrival;
            counters.bus_wait_sum += data_start - cas_done;
            counters.bank_service_sum += t.t_rcd + t.t_cl + burst + t.mc_overhead;
            Some((req.tag, done, done - req.arrival))
        };

        Issued {
            completion,
            next_decision: act_start + cmd_cycle,
        }
    }

    /// Open-page service: row hits skip the ACT entirely; conflicts pay a
    /// precharge before the new activation; rows stay open afterwards.
    fn issue_open(
        &mut self,
        now: Ps,
        req: Request,
        config: &MemConfig,
        bus: Freq,
        counters: &mut MemCounters,
    ) -> Issued {
        let t = &config.timings;
        let rank = req.loc.rank;
        let bank_idx = rank * self.banks_per_rank + req.loc.bank;
        let cmd_cycle = bus.period();
        let burst = t.burst_time(bus);
        let floor = now.max(req.arrival);
        let floor = self.wake_rank(rank, floor, config, counters);

        let bank = self.banks[bank_idx];
        let (cas_start, service_floor, opened_act) = match bank.open_row {
            Some(row) if row == req.loc.row => {
                // Row hit: column command as soon as the bank is ready.
                counters.row_hits += 1;
                let cas = floor.max(bank.next_free);
                (cas, t.t_cl, None)
            }
            Some(_) => {
                // Row conflict: precharge (honouring tRAS and read/write
                // recovery), then activate the new row.
                counters.row_conflicts += 1;
                counters.page_closes += 1;
                counters.page_opens += 1;
                let pre_start = floor
                    .max(bank.next_free)
                    .max(bank.last_act + t.t_ras)
                    .max(bank.earliest_pre);
                counters.rank_active += self.ranks[rank].row_closed(pre_start);
                let act = (pre_start + t.t_rp)
                    .max(self.ranks[rank].act_constraint(t))
                    .max(self.act_issue_floor(cmd_cycle));
                (act + t.t_rcd, t.t_rp + t.t_rcd + t.t_cl, Some(act))
            }
            None => {
                // Row empty (initial state or just refreshed): activate.
                counters.page_opens += 1;
                let act = floor
                    .max(bank.next_free)
                    .max(self.ranks[rank].act_constraint(t))
                    .max(self.act_issue_floor(cmd_cycle));
                (act + t.t_rcd, t.t_rcd + t.t_cl, Some(act))
            }
        };

        let cas_done = cas_start + t.t_cl;
        let data_start = cas_done.max(self.bus_free);
        let data_end = data_start + burst;

        if let Some(act) = opened_act {
            self.ranks[rank].record_act(act);
            self.ranks[rank].row_opened(act);
            self.last_act_issue = Some(act);
            self.banks[bank_idx].last_act = act;
        }
        self.banks[bank_idx].open_row = Some(req.loc.row);
        self.banks[bank_idx].next_free = data_end;
        self.banks[bank_idx].earliest_pre = if req.is_write {
            data_end + t.t_wr
        } else {
            data_start + t.t_rtp
        };
        self.bus_free = data_end;
        self.touch_rank(rank, data_end);

        counters.bus_busy += burst;

        let completion = if req.is_write {
            counters.writes += 1;
            None
        } else {
            let done = data_end + t.mc_overhead;
            counters.reads += 1;
            counters.read_latency_sum += done - req.arrival;
            // Queue wait: everything before the column/activate sequence
            // could begin.
            let service = service_floor + burst + t.mc_overhead;
            counters.bank_wait_sum += (done - req.arrival)
                .saturating_sub(service)
                .saturating_sub(data_start - cas_done);
            counters.bus_wait_sum += data_start - cas_done;
            counters.bank_service_sum += service;
            Some((req.tag, done, done - req.arrival))
        };

        Issued {
            completion,
            next_decision: cas_start.max(now) + cmd_cycle,
        }
    }

    /// Idle-state management: if the rank slept past its idle threshold,
    /// account the sleep span and delay `start` by the exit penalty.
    /// Returns the possibly-delayed start time.
    fn wake_rank(
        &mut self,
        rank: usize,
        start: Ps,
        config: &MemConfig,
        counters: &mut MemCounters,
    ) -> Ps {
        let Some(policy) = config.idle_policy else {
            return start;
        };
        let r = &mut self.ranks[rank];
        let sleep_from = r.last_activity + policy.threshold;
        if start > sleep_from {
            counters.rank_sleep += start - sleep_from;
            counters.sleep_wakeups += 1;
            start + policy.mode.exit_penalty()
        } else {
            start
        }
    }

    /// Records the end of an access on `rank` for idle-state tracking.
    fn touch_rank(&mut self, rank: usize, end: Ps) {
        let r = &mut self.ranks[rank];
        r.last_activity = r.last_activity.max(end);
    }

    fn act_issue_floor(&self, cmd_cycle: Ps) -> Ps {
        match self.last_act_issue {
            Some(last) => last + cmd_cycle,
            None => Ps::ZERO,
        }
    }

    /// Blocks every bank in `rank` for one refresh cycle starting no earlier
    /// than `now` (and no earlier than any in-flight access to the rank).
    pub fn refresh_rank(
        &mut self,
        now: Ps,
        rank: usize,
        t: &DdrTimings,
        counters: &mut MemCounters,
    ) {
        let base = rank * self.banks_per_rank;
        let mut start = now;
        for b in 0..self.banks_per_rank {
            start = start.max(self.banks[base + b].next_free);
        }
        let end = start + t.t_rfc;
        for b in 0..self.banks_per_rank {
            let bank = &mut self.banks[base + b];
            bank.next_free = end;
            if bank.open_row.take().is_some() {
                counters.page_closes += 1;
                counters.rank_active += self.ranks[rank].row_closed(start);
            }
        }
        counters.refreshes += 1;
    }

    /// Closes every open row at `now` (entering powerdown for a frequency
    /// recalibration implies precharging, §3).
    pub fn close_all_rows(&mut self, now: Ps, counters: &mut MemCounters) {
        for rank in 0..self.ranks.len() {
            for b in 0..self.banks_per_rank {
                let bank = &mut self.banks[rank * self.banks_per_rank + b];
                if bank.open_row.take().is_some() {
                    counters.page_closes += 1;
                    counters.rank_active += self.ranks[rank].row_closed(now);
                }
            }
        }
    }

    /// Pushes all timing state past a frequency-recalibration stall ending
    /// at `until`.
    pub fn stall_until(&mut self, until: Ps) {
        self.bus_free = self.bus_free.max(until);
        for b in &mut self.banks {
            b.next_free = b.next_free.max(until);
        }
    }
}

#[cfg(test)]
// Tests build counter/config fixtures incrementally from defaults on purpose.
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::map_line;
    use crate::LineAddr;

    fn setup() -> (MemConfig, Channel, MemCounters) {
        let config = MemConfig::default();
        let ch = Channel::new(&config);
        (config, ch, MemCounters::default())
    }

    fn read_to(config: &MemConfig, line: u64, arrival: Ps) -> Request {
        Request {
            tag: line,
            loc: map_line(config, LineAddr(line)),
            arrival,
            is_write: false,
        }
    }

    #[test]
    fn empty_channel_issues_nothing() {
        let (config, mut ch, mut c) = setup();
        assert!(ch
            .issue_next(Ps::ZERO, &config, Freq::from_mhz(800), &mut c)
            .is_none());
    }

    #[test]
    fn single_read_latency_is_unloaded_service_time() {
        let (config, mut ch, mut c) = setup();
        ch.push_read(read_to(&config, 0, Ps::ZERO));
        let issued = ch
            .issue_next(Ps::ZERO, &config, Freq::from_mhz(800), &mut c)
            .unwrap();
        let (tag, done, _lat) = issued.completion.unwrap();
        assert_eq!(tag, 0);
        // tRCD(15) + tCL(15) + burst(5 @ 800MHz) + overhead(5) = 40 ns.
        assert_eq!(done, Ps::from_ns(40));
        assert_eq!(c.reads, 1);
        assert_eq!(c.avg_read_latency(), Ps::from_ns(40));
        assert_eq!(c.bank_wait_sum, Ps::ZERO);
        assert_eq!(c.bus_wait_sum, Ps::ZERO);
    }

    #[test]
    fn lower_frequency_lengthens_burst_only() {
        let (config, mut ch, mut c) = setup();
        ch.push_read(read_to(&config, 0, Ps::ZERO));
        let done = ch
            .issue_next(Ps::ZERO, &config, Freq::from_mhz(200), &mut c)
            .unwrap()
            .completion
            .unwrap()
            .1;
        // Burst grows from 5 ns to 20 ns => 55 ns total.
        assert_eq!(done, Ps::from_ns(55));
    }

    #[test]
    fn same_bank_requests_serialize_on_trc() {
        let (config, mut ch, mut c) = setup();
        // Lines 0 and 64 both map to channel 0; make both hit bank 0 rank 0:
        // line k*4*8*4 advances the row only.
        let stride = (config.channels * config.banks_per_rank * config.ranks_per_channel()) as u64;
        ch.push_read(read_to(&config, 0, Ps::ZERO));
        ch.push_read(read_to(&config, stride, Ps::ZERO));
        let f = Freq::from_mhz(800);
        let first = ch.issue_next(Ps::ZERO, &config, f, &mut c).unwrap();
        let second = ch
            .issue_next(first.next_decision, &config, f, &mut c)
            .unwrap();
        let t = &config.timings;
        // Bank is busy until pre_start + tRP; for a read issued at 0:
        // pre = max(tRAS, tRCD+tCL+bus_wait(0)... data_start(30)+tRTP).
        let pre = (t.t_ras).max(t.t_rcd + t.t_cl + t.t_rtp);
        let bank_free = pre + t.t_rp;
        let expected_done = bank_free + t.t_rcd + t.t_cl + t.burst_time(f) + t.mc_overhead;
        assert_eq!(second.completion.unwrap().1, expected_done);
        // The second read observed a bank wait.
        assert!(c.bank_wait_sum > Ps::ZERO);
    }

    #[test]
    fn different_banks_overlap_but_share_bus() {
        let (config, mut ch, mut c) = setup();
        // Lines 0 and 4 are channel 0, banks 0 and 1.
        ch.push_read(read_to(&config, 0, Ps::ZERO));
        ch.push_read(read_to(&config, 4, Ps::ZERO));
        let f = Freq::from_mhz(800);
        let first = ch.issue_next(Ps::ZERO, &config, f, &mut c).unwrap();
        let second = ch
            .issue_next(first.next_decision, &config, f, &mut c)
            .unwrap();
        let d1 = first.completion.unwrap().1;
        let d2 = second.completion.unwrap().1;
        // Overlapped in the banks: far less than full serialization, but
        // bursts cannot overlap on the bus.
        let burst = config.timings.burst_time(f);
        assert!(d2 >= d1 + burst - config.timings.mc_overhead);
        assert!(d2 < d1 + Ps::from_ns(20));
    }

    #[test]
    fn bus_conflict_is_counted_as_bus_wait() {
        let (config, mut ch, mut c) = setup();
        for k in 0..4u64 {
            ch.push_read(read_to(&config, k * 4, Ps::ZERO)); // banks 0..3
        }
        let f = Freq::from_mhz(200); // long 20ns bursts force bus conflicts
        let mut now = Ps::ZERO;
        for _ in 0..4 {
            let i = ch.issue_next(now, &config, f, &mut c).unwrap();
            now = i.next_decision;
        }
        assert!(c.bus_wait_sum > Ps::ZERO, "expected bus queueing");
    }

    #[test]
    fn writeback_priority_kicks_in_at_threshold() {
        let (mut config, mut ch, mut c) = setup();
        config.wb_priority_threshold = 2;
        ch.push_read(read_to(&config, 0, Ps::ZERO));
        for k in 0..2u64 {
            ch.push_write(Request {
                tag: 100 + k,
                loc: map_line(&config, LineAddr(4 * k)),
                arrival: Ps::ZERO,
                is_write: true,
            });
        }
        // Threshold reached: the write goes first even though a read waits.
        let first = ch
            .issue_next(Ps::ZERO, &config, Freq::from_mhz(800), &mut c)
            .unwrap();
        assert!(first.completion.is_none());
        assert_eq!(c.writes, 1);
        // Below threshold again: the read goes next.
        let second = ch
            .issue_next(first.next_decision, &config, Freq::from_mhz(800), &mut c)
            .unwrap();
        assert!(second.completion.is_some());
    }

    #[test]
    fn reads_beat_writes_below_threshold() {
        let (config, mut ch, mut c) = setup();
        ch.push_write(Request {
            tag: 1,
            loc: map_line(&config, LineAddr(0)),
            arrival: Ps::ZERO,
            is_write: true,
        });
        ch.push_read(read_to(&config, 4, Ps::ZERO));
        let first = ch
            .issue_next(Ps::ZERO, &config, Freq::from_mhz(800), &mut c)
            .unwrap();
        assert!(first.completion.is_some(), "read should issue first");
    }

    #[test]
    fn tfaw_limits_act_rate() {
        let (config, mut ch, mut c) = setup();
        // Five requests to five different banks of rank 0 (channel 0).
        for k in 0..5u64 {
            ch.push_read(read_to(&config, k * 4, Ps::ZERO));
        }
        let f = Freq::from_mhz(800);
        let mut now = Ps::ZERO;
        let mut acts = Vec::new();
        for _ in 0..5 {
            let i = ch.issue_next(now, &config, f, &mut c).unwrap();
            // next_decision = act + one bus cycle, so recover the ACT time.
            acts.push(i.next_decision - f.period());
            now = i.next_decision;
        }
        // The fifth ACT must start at least tFAW after the first.
        assert!(acts[4] >= acts[0] + config.timings.t_faw);
        // And consecutive ACTs obey tRRD.
        for w in acts.windows(2) {
            assert!(w[1] >= w[0] + config.timings.t_rrd);
        }
    }

    #[test]
    fn refresh_blocks_all_banks_of_rank() {
        let (config, mut ch, mut c) = setup();
        ch.refresh_rank(Ps::from_ns(100), 0, &config.timings, &mut c);
        assert_eq!(c.refreshes, 1);
        ch.push_read(read_to(&config, 0, Ps::from_ns(100)));
        let done = ch
            .issue_next(Ps::from_ns(100), &config, Freq::from_mhz(800), &mut c)
            .unwrap()
            .completion
            .unwrap()
            .1;
        // Can't start until refresh ends at 100 + 110 = 210 ns.
        assert_eq!(done, Ps::from_ns(210 + 40));
    }

    #[test]
    fn stall_pushes_all_timing_state() {
        let (config, mut ch, mut c) = setup();
        ch.stall_until(Ps::from_us(3));
        ch.push_read(read_to(&config, 0, Ps::ZERO));
        let done = ch
            .issue_next(Ps::ZERO, &config, Freq::from_mhz(800), &mut c)
            .unwrap()
            .completion
            .unwrap()
            .1;
        assert!(done >= Ps::from_us(3));
    }

    fn open_config() -> MemConfig {
        let mut c = MemConfig::default();
        c.page_policy = crate::PagePolicy::Open;
        c.addr_map = crate::AddrMap::RowInterleaved;
        c
    }

    #[test]
    fn open_page_row_hit_skips_activation() {
        let config = open_config();
        let mut ch = Channel::new(&config);
        let mut c = MemCounters::default();
        let f = Freq::from_mhz(800);
        // Two consecutive lines share a row under row interleaving.
        ch.push_read(read_to(&config, 0, Ps::ZERO));
        ch.push_read(read_to(&config, 1, Ps::ZERO));
        let first = ch.issue_next(Ps::ZERO, &config, f, &mut c).unwrap();
        let d1 = first.completion.unwrap().1;
        // First access: row empty -> ACT + CAS: 15 + 15 + 5 + 5 = 40 ns.
        assert_eq!(d1, Ps::from_ns(40));
        assert_eq!(c.page_opens, 1);
        assert_eq!(c.row_hits, 0);
        let second = ch
            .issue_next(first.next_decision, &config, f, &mut c)
            .unwrap();
        let d2 = second.completion.unwrap().1;
        assert_eq!(c.row_hits, 1);
        // Hit pays only CAS + burst (+ overhead) once the bus frees up.
        assert!(d2 <= d1 + Ps::from_ns(25), "hit too slow: {d2}");
        // No extra activation happened.
        assert_eq!(c.page_opens, 1);
    }

    #[test]
    fn open_page_conflict_pays_precharge() {
        let config = open_config();
        let mut ch = Channel::new(&config);
        let mut c = MemCounters::default();
        let f = Freq::from_mhz(800);
        // Same channel+bank, different row: lines 0 and lines_per_row*chunk
        // where chunk advances past all channels/banks/ranks.
        let stride = config.lines_per_row
            * (config.channels * config.banks_per_rank * config.ranks_per_channel()) as u64;
        ch.push_read(read_to(&config, 0, Ps::ZERO));
        ch.push_read(read_to(&config, stride, Ps::ZERO));
        let first = ch.issue_next(Ps::ZERO, &config, f, &mut c).unwrap();
        let second = ch
            .issue_next(first.next_decision, &config, f, &mut c)
            .unwrap();
        assert_eq!(c.row_conflicts, 1);
        let d1 = first.completion.unwrap().1;
        let d2 = second.completion.unwrap().1;
        // Conflict waits for tRAS (35ns from ACT), precharges (15ns), then
        // re-activates (15+15+5+5).
        assert!(
            d2 >= d1 + Ps::from_ns(40),
            "conflict too fast: {d1} -> {d2}"
        );
    }

    #[test]
    fn frfcfs_promotes_row_hits() {
        let mut config = open_config();
        config.sched = crate::SchedPolicy::FrFcfs;
        let mut ch = Channel::new(&config);
        let mut c = MemCounters::default();
        let f = Freq::from_mhz(800);
        let stride = config.lines_per_row
            * (config.channels * config.banks_per_rank * config.ranks_per_channel()) as u64;
        // Open row 0 with the first request, then queue a conflicting
        // request followed by a row hit: FR-FCFS services the hit first.
        ch.push_read(read_to(&config, 0, Ps::ZERO));
        let first = ch.issue_next(Ps::ZERO, &config, f, &mut c).unwrap();
        ch.push_read(read_to(&config, stride, Ps::ZERO)); // conflict, older
        ch.push_read(read_to(&config, 1, Ps::ZERO)); // hit, younger
        let second = ch
            .issue_next(first.next_decision, &config, f, &mut c)
            .unwrap();
        assert_eq!(second.completion.unwrap().0, 1, "row hit must go first");
        assert_eq!(c.row_hits, 1);
    }

    #[test]
    fn open_page_refresh_closes_rows() {
        let config = open_config();
        let mut ch = Channel::new(&config);
        let mut c = MemCounters::default();
        let f = Freq::from_mhz(800);
        ch.push_read(read_to(&config, 0, Ps::ZERO));
        let first = ch.issue_next(Ps::ZERO, &config, f, &mut c).unwrap();
        ch.refresh_rank(first.completion.unwrap().1, 0, &config.timings, &mut c);
        assert_eq!(c.page_closes, 1);
        // The next access to the same row must re-activate.
        ch.push_read(read_to(&config, 1, Ps::from_us(1)));
        let _ = ch.issue_next(Ps::from_us(1), &config, f, &mut c).unwrap();
        assert_eq!(c.page_opens, 2);
        assert_eq!(c.row_hits, 0);
    }

    #[test]
    fn open_page_rank_active_tracks_open_rows() {
        let config = open_config();
        let mut ch = Channel::new(&config);
        let mut c = MemCounters::default();
        let f = Freq::from_mhz(800);
        ch.push_read(read_to(&config, 0, Ps::ZERO));
        let first = ch.issue_next(Ps::ZERO, &config, f, &mut c).unwrap();
        // While the row is open, rank_active has not been credited yet.
        assert_eq!(c.rank_active, Ps::ZERO);
        let close_at = Ps::from_us(3);
        ch.close_all_rows(close_at, &mut c);
        // Row was open from ACT (t=0) until the forced close.
        assert_eq!(c.rank_active, close_at);
        let _ = first;
    }

    #[test]
    fn idle_policy_sleeps_and_pays_wake_penalty() {
        let mut config = MemConfig::default();
        config.idle_policy = Some(crate::IdleMemPolicy {
            threshold: Ps::from_us(1),
            mode: crate::IdleMode::SelfRefresh,
        });
        let mut ch = Channel::new(&config);
        let mut c = MemCounters::default();
        let f = Freq::from_mhz(800);
        // Rank idle since t=0; access at t = 10 µs: slept 9 µs, pays exit.
        let at = Ps::from_us(10);
        ch.push_read(read_to(&config, 0, at));
        let done = ch
            .issue_next(at, &config, f, &mut c)
            .unwrap()
            .completion
            .unwrap()
            .1;
        assert_eq!(c.sleep_wakeups, 1);
        assert_eq!(c.rank_sleep, Ps::from_us(9));
        // 640 ns exit penalty + 40 ns unloaded service.
        assert_eq!(done, at + Ps::from_ns(640) + Ps::from_ns(40));
    }

    #[test]
    fn busy_rank_never_sleeps() {
        let mut config = MemConfig::default();
        config.idle_policy = Some(crate::IdleMemPolicy {
            threshold: Ps::from_us(1),
            mode: crate::IdleMode::Powerdown,
        });
        let mut ch = Channel::new(&config);
        let mut c = MemCounters::default();
        let f = Freq::from_mhz(800);
        // Back-to-back accesses to rank 0 (banks 0..8), gaps far under the
        // threshold.
        let mut now = Ps::ZERO;
        for i in 0..8u64 {
            ch.push_read(read_to(&config, i * 4, now));
            let issued = ch.issue_next(now, &config, f, &mut c).unwrap();
            now = issued.completion.unwrap().1 + Ps::from_ns(100);
        }
        // The first access arrives at t=0, before the rank could sleep, and
        // every gap stays under the threshold: no wakeups at all.
        assert_eq!(c.sleep_wakeups, 0);
        assert_eq!(c.rank_sleep, Ps::ZERO);
    }

    #[test]
    fn powerdown_exit_is_cheaper_than_self_refresh() {
        let run = |mode: crate::IdleMode| {
            let mut config = MemConfig::default();
            config.idle_policy = Some(crate::IdleMemPolicy {
                threshold: Ps::from_us(1),
                mode,
            });
            let mut ch = Channel::new(&config);
            let mut c = MemCounters::default();
            let at = Ps::from_us(50);
            ch.push_read(read_to(&config, 0, at));
            ch.issue_next(at, &config, Freq::from_mhz(800), &mut c)
                .unwrap()
                .completion
                .unwrap()
                .1
        };
        assert!(run(crate::IdleMode::Powerdown) < run(crate::IdleMode::SelfRefresh));
    }

    #[test]
    fn rank_active_union_does_not_double_count() {
        let mut r = RankState::new();
        assert_eq!(
            r.extend_active(Ps::from_ns(0), Ps::from_ns(50)),
            Ps::from_ns(50)
        );
        // Fully contained: adds nothing.
        assert_eq!(r.extend_active(Ps::from_ns(10), Ps::from_ns(40)), Ps::ZERO);
        // Partial overlap: only the new tail counts.
        assert_eq!(
            r.extend_active(Ps::from_ns(30), Ps::from_ns(80)),
            Ps::from_ns(30)
        );
        // Disjoint: full span counts.
        assert_eq!(
            r.extend_active(Ps::from_ns(100), Ps::from_ns(120)),
            Ps::from_ns(20)
        );
    }
}
