//! Event-driven DDR3 memory-subsystem simulator for the CoScale
//! reproduction.
//!
//! The paper evaluates CoScale on a detailed in-house LLC/memory simulator;
//! no equivalent exists as reusable Rust open source, so this crate rebuilds
//! the pieces its results depend on:
//!
//! * **Geometry** — 4 channels × 2 dual-rank DIMMs × 8 banks (Table 2),
//!   cache-line channel interleaving then bank interleaving ([`map_line`]).
//! * **Timing** — closed-page accesses obeying tRCD/tCL/tRP/tRAS/tRRD/tRTP/
//!   tFAW/tWR, shared-data-bus serialization, periodic refresh
//!   ([`DdrTimings`]).
//! * **Scheduling** — FCFS per channel with reads prioritized over
//!   writebacks until the writeback queue is half full (§4.1).
//! * **DVFS** — bus/DIMM frequency scaling over the paper's 200–800 MHz
//!   grid with the 512-cycle + 28 ns recalibration stall
//!   ([`MemorySystem::set_frequency`]).
//! * **Counters** — the MemScale queueing/service/page-event counters the
//!   CoScale models consume ([`MemCounters`]).
//!
//! The simulator is deterministic and `Clone`; the `Offline` oracle policy
//! in the `coscale` crate relies on checkpoint/rewind of the whole system.
//!
//! # Example
//!
//! ```
//! use memsim::{MemConfig, MemorySystem, Outcome, LineAddr};
//! use simkernel::Ps;
//!
//! let mut mem = MemorySystem::new(MemConfig::default());
//! let mut out = Outcome::default();
//! mem.enqueue_read(Ps::ZERO, LineAddr(0), 1, &mut out);
//! assert_eq!(mem.outstanding_reads(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod channel;
mod config;
mod counters;
mod system;

pub use addr::{map_line, LineAddr, Location};
pub use config::{
    AddrMap, DdrTimings, IdleMemPolicy, IdleMode, MemConfig, PagePolicy, SchedPolicy,
};
pub use counters::MemCounters;
pub use system::{Completion, MemEvent, MemorySystem, Outcome};

// The read-latency histogram type began life in this crate; it now lives in
// `simkernel::stats` so the service layer can share one implementation.
// Re-exported to keep this crate's API stable.
pub use simkernel::stats::Histogram;
