//! Memory-system geometry, DDR3 timing parameters and the DVFS grid.

use simkernel::{Freq, Ps};

/// DDR3 device timing constraints.
///
/// DRAM-core timings (`t_rcd`, `t_rp`, `t_cl`, `t_ras`, `t_rrd`, `t_rtp`,
/// `t_faw`, `t_wr`, `t_rfc`) are **fixed in absolute time**: when the bus is
/// frequency-scaled, a real controller reprograms the corresponding cycle
/// counts so that the analog constraints stay constant, exactly as MemScale
/// assumes. Only data-burst time (`burst_cycles` bus cycles) scales with bus
/// frequency. Values follow Table 2 of the paper (converted from cycles at
/// 800 MHz where the paper lists cycles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DdrTimings {
    /// Row-activate to column command (15 ns in the paper).
    pub t_rcd: Ps,
    /// Precharge latency (15 ns).
    pub t_rp: Ps,
    /// Column-access (CAS) latency (15 ns).
    pub t_cl: Ps,
    /// Minimum row-active time; 28 bus cycles at 800 MHz = 35 ns.
    pub t_ras: Ps,
    /// Activate-to-activate, same rank; 4 cycles at 800 MHz = 5 ns.
    pub t_rrd: Ps,
    /// Read-to-precharge; 5 cycles at 800 MHz = 6.25 ns.
    pub t_rtp: Ps,
    /// Four-activate window, per rank; 20 cycles at 800 MHz = 25 ns.
    pub t_faw: Ps,
    /// Write recovery before precharge (15 ns, DDR3 typical).
    pub t_wr: Ps,
    /// Data burst length in bus clock cycles (BL8 on a DDR bus = 4 cycles).
    pub burst_cycles: u64,
    /// Average refresh-command interval per rank (7.8 µs for 64 ms/8192).
    pub t_refi: Ps,
    /// Refresh cycle time, rank blocked (110 ns for 1 Gb devices).
    pub t_rfc: Ps,
    /// Fixed memory-controller pipeline overhead added to every read's
    /// completion (command decode, response queueing).
    pub mc_overhead: Ps,
}

impl Default for DdrTimings {
    fn default() -> Self {
        DdrTimings {
            t_rcd: Ps::from_ns(15),
            t_rp: Ps::from_ns(15),
            t_cl: Ps::from_ns(15),
            t_ras: Ps::from_ns(35),
            t_rrd: Ps::from_ns(5),
            t_rtp: Ps::new(6_250),
            t_faw: Ps::from_ns(25),
            t_wr: Ps::from_ns(15),
            burst_cycles: 4,
            t_refi: Ps::from_ns(7_800),
            t_rfc: Ps::from_ns(110),
            mc_overhead: Ps::from_ns(5),
        }
    }
}

impl DdrTimings {
    /// Duration of one data burst at bus frequency `bus`.
    pub fn burst_time(&self, bus: Freq) -> Ps {
        bus.cycles_to_ps(self.burst_cycles)
    }

    /// The frequency-independent part of a closed-page read's service time:
    /// ACT→CAS→data-start plus controller overhead (tRCD + tCL + overhead).
    pub fn fixed_read_service(&self) -> Ps {
        self.t_rcd + self.t_cl + self.mc_overhead
    }
}

/// Row-buffer management policy.
///
/// The paper's controller runs on a closed-page system ("closed-page row
/// buffer management ... outperforms open-page policies for multi-core
/// CPUs", §4.1); the open-page mode exists to reproduce exactly that
/// comparison (see the `ablation-page-policy` experiment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Precharge immediately after every access.
    #[default]
    Closed,
    /// Leave rows open; precharge on conflict or refresh.
    Open,
}

/// Request scheduling policy within a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// First-come first-served (the paper's configuration).
    #[default]
    Fcfs,
    /// First-ready FCFS: row-buffer hits bypass older conflicting reads.
    /// Only meaningful with [`PagePolicy::Open`].
    FrFcfs,
}

/// Physical address mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AddrMap {
    /// Consecutive lines rotate across channels, then banks (maximum
    /// parallelism; the mapping closed-page systems prefer).
    #[default]
    ChannelInterleaved,
    /// Consecutive lines fill a row before moving to the next channel
    /// (maximum row locality; the mapping open-page systems prefer).
    RowInterleaved,
}

/// Idle low-power state management — the *alternative* to memory DVFS that
/// prior work explored ([Fan'03], [Li'07]; §2.2 of the paper argues active
/// low-power modes beat these for server workloads). When configured, a
/// rank that stays idle longer than `threshold` drops into the given state
/// and pays `exit_penalty` on its next access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdleMemPolicy {
    /// Idle time before the rank transitions into the low-power state.
    pub threshold: Ps,
    /// Which state to enter.
    pub mode: IdleMode,
}

/// The idle state a rank drops into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdleMode {
    /// Fast-exit precharge powerdown: cheap to leave, moderate savings.
    Powerdown,
    /// Self-refresh: deepest savings, but exit requires DLL re-lock.
    SelfRefresh,
}

impl IdleMode {
    /// Exit latency paid by the first access after sleep.
    pub fn exit_penalty(self) -> Ps {
        match self {
            // tXP-class exit for fast-exit powerdown.
            IdleMode::Powerdown => Ps::from_ns(20),
            // tXSDLL-class exit (DLL re-lock) for self-refresh.
            IdleMode::SelfRefresh => Ps::from_ns(640),
        }
    }
}

/// Geometry and policy parameters of the simulated memory subsystem.
///
/// Defaults mirror the paper: 4 DDR3 channels, two dual-rank DIMMs per
/// channel, 8 banks per rank, 64-byte lines, bus frequencies 800 MHz down to
/// 200 MHz in ~66 MHz steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of independent memory channels.
    pub channels: usize,
    /// DIMMs on each channel.
    pub dimms_per_channel: usize,
    /// Ranks on each DIMM.
    pub ranks_per_dimm: usize,
    /// Banks in each rank.
    pub banks_per_rank: usize,
    /// Cache-line (memory burst) size in bytes.
    pub line_bytes: u64,
    /// Available bus frequencies, ascending. The memory controller runs at
    /// twice the bus frequency; DIMM clocks lock to the bus frequency.
    pub freq_grid: Vec<Freq>,
    /// Device timing constraints.
    pub timings: DdrTimings,
    /// Writebacks are serviced ahead of reads once this many are queued on a
    /// channel (the paper: "until the writeback queue is half-full", cap 64).
    pub wb_priority_threshold: usize,
    /// Extra penalty added on top of the 512-cycle DLL resync when changing
    /// bus frequency (28 ns in the paper: fast-exit precharge powerdown).
    pub recal_extra: Ps,
    /// DLL re-lock time in bus cycles (tDLLK ≈ 512).
    pub recal_cycles: u64,
    /// Row-buffer management.
    pub page_policy: PagePolicy,
    /// Request scheduling.
    pub sched: SchedPolicy,
    /// Physical address mapping.
    pub addr_map: AddrMap,
    /// Cache lines per DRAM row (8 KiB row / 64 B line = 128).
    pub lines_per_row: u64,
    /// Optional idle low-power state management (off in the paper's
    /// CoScale configuration; used by the idle-states ablation).
    pub idle_policy: Option<IdleMemPolicy>,
}

impl MemConfig {
    /// The paper's default 10-point frequency grid: 800 MHz down to 200 MHz.
    pub fn default_freq_grid() -> Vec<Freq> {
        // 200 + k*66 for k = 0..9 gives 200..794; the paper's endpoints are
        // 200 and 800, so we pin the top step to exactly 800 MHz.
        let mut grid: Vec<Freq> = (0..9).map(|k| Freq::from_mhz(200 + 66 * k)).collect();
        grid.push(Freq::from_mhz(800));
        grid
    }

    /// A reduced frequency grid with `n` equally spaced points between
    /// 200 and 800 MHz (used by the Figure 15 sensitivity study).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn freq_grid_with_steps(n: usize) -> Vec<Freq> {
        assert!(n >= 2, "need at least two frequency steps");
        (0..n)
            .map(|k| {
                let mhz = 200.0 + 600.0 * k as f64 / (n - 1) as f64;
                Freq::from_mhz(mhz.round() as u64)
            })
            .collect()
    }

    /// Total ranks per channel.
    pub fn ranks_per_channel(&self) -> usize {
        self.dimms_per_channel * self.ranks_per_dimm
    }

    /// Total ranks in the system.
    pub fn total_ranks(&self) -> usize {
        self.channels * self.ranks_per_channel()
    }

    /// Total DIMMs in the system.
    pub fn total_dimms(&self) -> usize {
        self.channels * self.dimms_per_channel
    }

    /// Index of the highest (nominal) frequency in the grid.
    pub fn max_freq_idx(&self) -> usize {
        self.freq_grid.len() - 1
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found: empty/unsorted
    /// frequency grid or zero-sized geometry.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.dimms_per_channel == 0 || self.ranks_per_dimm == 0 {
            return Err("geometry dimensions must be non-zero".into());
        }
        if self.banks_per_rank == 0 {
            return Err("banks_per_rank must be non-zero".into());
        }
        if self.freq_grid.is_empty() {
            return Err("frequency grid is empty".into());
        }
        if self.freq_grid.windows(2).any(|w| w[0] >= w[1]) {
            return Err("frequency grid must be strictly ascending".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("line_bytes must be a power of two".into());
        }
        if self.lines_per_row == 0 {
            return Err("lines_per_row must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            channels: 4,
            dimms_per_channel: 2,
            ranks_per_dimm: 2,
            banks_per_rank: 8,
            line_bytes: 64,
            freq_grid: Self::default_freq_grid(),
            timings: DdrTimings::default(),
            wb_priority_threshold: 32,
            recal_extra: Ps::from_ns(28),
            recal_cycles: 512,
            page_policy: PagePolicy::default(),
            sched: SchedPolicy::default(),
            addr_map: AddrMap::default(),
            lines_per_row: 128,
            idle_policy: None,
        }
    }
}

#[cfg(test)]
// Tests build counter/config fixtures incrementally from defaults on purpose.
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_matches_paper() {
        let g = MemConfig::default_freq_grid();
        assert_eq!(g.len(), 10);
        assert_eq!(g[0], Freq::from_mhz(200));
        assert_eq!(*g.last().unwrap(), Freq::from_mhz(800));
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn reduced_grids_span_range() {
        for n in [4, 7, 10] {
            let g = MemConfig::freq_grid_with_steps(n);
            assert_eq!(g.len(), n);
            assert_eq!(g[0], Freq::from_mhz(200));
            assert_eq!(*g.last().unwrap(), Freq::from_mhz(800));
        }
    }

    #[test]
    fn default_config_is_valid() {
        let c = MemConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.total_ranks(), 16);
        assert_eq!(c.total_dimms(), 8);
        assert_eq!(c.max_freq_idx(), 9);
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = MemConfig::default();
        c.freq_grid = vec![];
        assert!(c.validate().is_err());

        let mut c = MemConfig::default();
        c.freq_grid = vec![Freq::from_mhz(800), Freq::from_mhz(200)];
        assert!(c.validate().is_err());

        let mut c = MemConfig::default();
        c.line_bytes = 48;
        assert!(c.validate().is_err());

        let mut c = MemConfig::default();
        c.channels = 0;
        assert!(c.validate().is_err());

        let mut c = MemConfig::default();
        c.banks_per_rank = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn burst_time_scales_with_frequency() {
        let t = DdrTimings::default();
        assert_eq!(t.burst_time(Freq::from_mhz(800)), Ps::new(5_000));
        assert_eq!(t.burst_time(Freq::from_mhz(200)), Ps::new(20_000));
    }

    #[test]
    fn fixed_service_excludes_burst() {
        let t = DdrTimings::default();
        assert_eq!(t.fixed_read_service(), Ps::from_ns(35));
    }
}
