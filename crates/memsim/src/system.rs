//! The top-level memory system: channels, refresh generation, DVFS.

use crate::channel::{Channel, Request};
use crate::{map_line, LineAddr, MemConfig, MemCounters};
use simkernel::{stats::Histogram, Freq, Ps};

/// Events the memory system asks the simulation driver to deliver back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemEvent {
    /// Make a scheduling decision on `channel`.
    Schedule {
        /// Channel index.
        channel: usize,
    },
    /// Issue a periodic refresh to `rank` of `channel`.
    Refresh {
        /// Channel index.
        channel: usize,
        /// Rank index within the channel.
        rank: usize,
    },
}

/// A finished read: the `tag` passed to [`MemorySystem::enqueue_read`] and
/// the time its data is available to the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Caller-chosen request identifier.
    pub tag: u64,
    /// Data-return time.
    pub finish: Ps,
}

/// Out-parameters of one interaction with the memory system, reused across
/// calls to avoid per-event allocation.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Reads that finished as a result of this interaction.
    pub completions: Vec<Completion>,
    /// Events to deliver back to [`MemorySystem::handle`] at the given times.
    pub wakeups: Vec<(Ps, MemEvent)>,
}

impl Outcome {
    /// Empties both lists; call before reusing.
    pub fn clear(&mut self) {
        self.completions.clear();
        self.wakeups.clear();
    }
}

/// The simulated DDR3 memory subsystem.
///
/// The driver (the epoch engine in the `coscale` crate) owns the global
/// event queue. `MemorySystem` communicates through [`Outcome`]: enqueue and
/// handle calls append wakeup requests, and the driver feeds them back via
/// [`MemorySystem::handle`] at the requested times.
///
/// # Example
///
/// ```
/// use memsim::{MemConfig, MemorySystem, Outcome, LineAddr};
/// use simkernel::Ps;
///
/// let config = MemConfig::default();
/// let mut mem = MemorySystem::new(config);
/// let mut out = Outcome::default();
/// mem.enqueue_read(Ps::ZERO, LineAddr(7), 42, &mut out);
/// // Drive the returned wakeups until the read completes.
/// let mut done = Vec::new();
/// while done.is_empty() {
///     let mut next = Outcome::default();
///     for (t, ev) in out.wakeups.clone() {
///         mem.handle(t, ev, &mut next);
///     }
///     done.extend(next.completions.iter().copied());
///     out = next;
/// }
/// assert_eq!(done[0].tag, 42);
/// ```
#[derive(Clone, Debug)]
pub struct MemorySystem {
    config: MemConfig,
    channels: Vec<Channel>,
    freq_idx: usize,
    /// All activity is frozen until this time after a frequency change.
    recal_until: Ps,
    counters: MemCounters,
    outstanding_reads: usize,
    /// Distribution of demand-read latencies, picoseconds.
    read_latency_hist: Histogram,
}

impl MemorySystem {
    /// Creates a memory system at the highest frequency in the grid.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`MemConfig::validate`].
    pub fn new(config: MemConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid memory config: {e}");
        }
        let channels = (0..config.channels)
            .map(|_| Channel::new(&config))
            .collect();
        let freq_idx = config.max_freq_idx();
        MemorySystem {
            config,
            channels,
            freq_idx,
            recal_until: Ps::ZERO,
            counters: MemCounters::default(),
            outstanding_reads: 0,
            read_latency_hist: Histogram::new(),
        }
    }

    /// The refresh events every driver must schedule once at startup,
    /// staggered across ranks so refreshes do not align system-wide.
    pub fn initial_events(&self) -> Vec<(Ps, MemEvent)> {
        let mut evs = Vec::new();
        let total = self.config.channels * self.config.ranks_per_channel();
        let mut i = 0u64;
        for channel in 0..self.config.channels {
            for rank in 0..self.config.ranks_per_channel() {
                let offset = self.config.timings.t_refi * i / total as u64;
                evs.push((offset, MemEvent::Refresh { channel, rank }));
                i += 1;
            }
        }
        evs
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Current bus frequency.
    pub fn bus_freq(&self) -> Freq {
        self.config.freq_grid[self.freq_idx]
    }

    /// Current bus frequency index into the grid.
    pub fn freq_idx(&self) -> usize {
        self.freq_idx
    }

    /// Memory-controller frequency: always double the bus frequency
    /// (the MemScale/CoScale assumption).
    pub fn mc_freq(&self) -> Freq {
        Freq::from_hz(self.bus_freq().as_hz() * 2)
    }

    /// Cumulative performance counters.
    pub fn counters(&self) -> &MemCounters {
        &self.counters
    }

    /// Distribution of demand-read latencies (picosecond samples).
    pub fn read_latency_histogram(&self) -> &Histogram {
        &self.read_latency_hist
    }

    /// Number of reads accepted but not yet completed.
    pub fn outstanding_reads(&self) -> usize {
        self.outstanding_reads
    }

    /// Total queued (not yet issued) requests across channels.
    pub fn queued_requests(&self) -> usize {
        self.channels
            .iter()
            .map(|c| c.queued_reads() + c.queued_writes())
            .sum()
    }

    /// Enqueues a demand read of `line`. A [`Completion`] carrying `tag`
    /// is eventually produced by a later [`MemorySystem::handle`] call.
    pub fn enqueue_read(&mut self, now: Ps, line: LineAddr, tag: u64, out: &mut Outcome) {
        let loc = map_line(&self.config, line);
        let channel = loc.channel;
        self.outstanding_reads += 1;
        self.channels[channel].push_read(Request {
            tag,
            loc,
            arrival: now,
            is_write: false,
        });
        self.kick(channel, now, out);
    }

    /// Enqueues a writeback of `line`; writebacks complete silently.
    pub fn enqueue_writeback(&mut self, now: Ps, line: LineAddr, out: &mut Outcome) {
        let loc = map_line(&self.config, line);
        let channel = loc.channel;
        self.channels[channel].push_write(Request {
            tag: 0,
            loc,
            arrival: now,
            is_write: true,
        });
        self.kick(channel, now, out);
    }

    /// Requests a scheduling pass on `channel` at `max(now, recal_until)`
    /// unless an earlier or simultaneous pass is already pending.
    fn kick(&mut self, channel: usize, now: Ps, out: &mut Outcome) {
        let at = now.max(self.recal_until);
        let ch = &mut self.channels[channel];
        match ch.next_schedule {
            Some(t) if t <= at => {}
            _ => {
                ch.next_schedule = Some(at);
                out.wakeups.push((at, MemEvent::Schedule { channel }));
            }
        }
    }

    /// Delivers an event previously requested through [`Outcome::wakeups`].
    ///
    /// Stale `Schedule` events (superseded by an earlier pass) are ignored,
    /// which lets the driver use a simple append-only event queue.
    pub fn handle(&mut self, now: Ps, event: MemEvent, out: &mut Outcome) {
        match event {
            MemEvent::Schedule { channel } => self.handle_schedule(channel, now, out),
            MemEvent::Refresh { channel, rank } => {
                let at = now.max(self.recal_until);
                self.channels[channel].refresh_rank(
                    at,
                    rank,
                    &self.config.timings,
                    &mut self.counters,
                );
                out.wakeups.push((
                    now + self.config.timings.t_refi,
                    MemEvent::Refresh { channel, rank },
                ));
            }
        }
    }

    fn handle_schedule(&mut self, channel: usize, now: Ps, out: &mut Outcome) {
        if self.channels[channel].next_schedule != Some(now) {
            return; // superseded by an earlier scheduling pass
        }
        self.channels[channel].next_schedule = None;

        if now < self.recal_until {
            self.kick(channel, self.recal_until, out);
            return;
        }

        let bus = self.bus_freq();
        let issued = {
            let config = &self.config;
            self.channels[channel].issue_next(now, config, bus, &mut self.counters)
        };
        let Some(issued) = issued else {
            return;
        };
        if let Some((tag, finish, latency)) = issued.completion {
            self.outstanding_reads -= 1;
            self.read_latency_hist.record(latency.as_ps());
            out.completions.push(Completion { tag, finish });
        }
        if self.channels[channel].has_pending() {
            let at = issued.next_decision.max(now);
            self.channels[channel].next_schedule = Some(at);
            out.wakeups.push((at, MemEvent::Schedule { channel }));
        }
    }

    /// Changes the bus frequency to grid index `idx`, halting all memory
    /// traffic for the recalibration window (512 bus cycles at the *old*
    /// frequency plus the powerdown-exit penalty). Returns the time at which
    /// the subsystem resumes. A no-op change returns `now`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the frequency grid.
    pub fn set_frequency(&mut self, now: Ps, idx: usize, out: &mut Outcome) -> Ps {
        assert!(
            idx < self.config.freq_grid.len(),
            "bad frequency index {idx}"
        );
        if idx == self.freq_idx {
            return now;
        }
        let old = self.bus_freq();
        let stall = old.cycles_to_ps(self.config.recal_cycles) + self.config.recal_extra;
        let until = now + stall;
        self.freq_idx = idx;
        self.recal_until = self.recal_until.max(until);
        self.counters.recal_stall += stall;
        for ch in 0..self.channels.len() {
            // Entering powerdown for recalibration implies precharging all
            // open rows (§3: the DIMM frequency is reset in precharge
            // powerdown).
            self.channels[ch].close_all_rows(now, &mut self.counters);
            self.channels[ch].stall_until(until);
            if self.channels[ch].has_pending() {
                self.kick(ch, until, out);
            }
        }
        until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::EventQueue;

    /// Drives the memory system alone until all queues drain; returns
    /// completions in finish order.
    fn drain(mem: &mut MemorySystem, out: &mut Outcome) -> Vec<Completion> {
        let mut q = EventQueue::new();
        let mut done = Vec::new();
        for (t, e) in out.wakeups.drain(..) {
            q.push(t, e);
        }
        done.append(&mut out.completions);
        let mut guard = 0;
        while let Some((t, e)) = q.pop() {
            // Stop refresh events from keeping the loop alive forever.
            if matches!(e, MemEvent::Refresh { .. })
                && mem.queued_requests() == 0
                && mem.outstanding_reads() == 0
            {
                continue;
            }
            let mut o = Outcome::default();
            mem.handle(t, e, &mut o);
            done.extend(o.completions.iter().copied());
            for (wt, we) in o.wakeups {
                q.push(wt, we);
            }
            guard += 1;
            assert!(guard < 1_000_000, "runaway event loop");
        }
        done
    }

    #[test]
    fn read_completes_with_expected_latency() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut out = Outcome::default();
        mem.enqueue_read(Ps::ZERO, LineAddr(0), 9, &mut out);
        let done = drain(&mut mem, &mut out);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 9);
        assert_eq!(done[0].finish, Ps::from_ns(40));
        assert_eq!(mem.outstanding_reads(), 0);
    }

    #[test]
    fn many_reads_all_complete_once() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut out = Outcome::default();
        let n = 200;
        for i in 0..n {
            mem.enqueue_read(Ps::from_ns(i), LineAddr(i * 3), i, &mut out);
        }
        let done = drain(&mut mem, &mut out);
        assert_eq!(done.len(), n as usize);
        let mut tags: Vec<u64> = done.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..n).collect::<Vec<_>>());
        assert_eq!(mem.counters().reads, n);
    }

    #[test]
    fn writebacks_do_not_produce_completions() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut out = Outcome::default();
        for i in 0..10 {
            mem.enqueue_writeback(Ps::ZERO, LineAddr(i), &mut out);
        }
        let done = drain(&mut mem, &mut out);
        assert!(done.is_empty());
        assert_eq!(mem.counters().writes, 10);
    }

    #[test]
    fn frequency_change_stalls_traffic() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut out = Outcome::default();
        let resume = mem.set_frequency(Ps::ZERO, 0, &mut out);
        // 512 cycles at 800 MHz = 640 ns, plus 28 ns.
        assert_eq!(resume, Ps::from_ns(668));
        assert_eq!(mem.bus_freq(), Freq::from_mhz(200));
        mem.enqueue_read(Ps::from_ns(10), LineAddr(0), 1, &mut out);
        let done = drain(&mut mem, &mut out);
        // Service can only start after recalibration.
        assert_eq!(done[0].finish, resume + Ps::from_ns(55));
        assert_eq!(mem.counters().recal_stall, Ps::from_ns(668));
    }

    #[test]
    fn noop_frequency_change_is_free() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut out = Outcome::default();
        let idx = mem.freq_idx();
        let resume = mem.set_frequency(Ps::from_ns(100), idx, &mut out);
        assert_eq!(resume, Ps::from_ns(100));
        assert_eq!(mem.counters().recal_stall, Ps::ZERO);
    }

    #[test]
    fn refresh_events_resubscribe() {
        let mem = MemorySystem::new(MemConfig::default());
        let evs = mem.initial_events();
        assert_eq!(evs.len(), 16); // 4 channels x 4 ranks
                                   // Staggered within one tREFI.
        let t_refi = mem.config().timings.t_refi;
        assert!(evs.iter().all(|(t, _)| *t < t_refi));
        let mut mem = mem;
        let mut out = Outcome::default();
        mem.handle(evs[0].0, evs[0].1, &mut out);
        assert_eq!(out.wakeups.len(), 1);
        assert_eq!(out.wakeups[0].0, evs[0].0 + t_refi);
        assert_eq!(mem.counters().refreshes, 1);
    }

    #[test]
    fn completions_under_load_are_causally_ordered() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut out = Outcome::default();
        for i in 0..64u64 {
            mem.enqueue_read(Ps::ZERO, LineAddr(i), i, &mut out);
        }
        let done = drain(&mut mem, &mut out);
        assert_eq!(done.len(), 64);
        for c in &done {
            assert!(c.finish >= Ps::from_ns(40));
        }
        // Heavy same-time load must show queueing in the counters.
        let ctr = mem.counters();
        assert!(ctr.bank_wait_sum + ctr.bus_wait_sum > Ps::ZERO);
    }

    #[test]
    fn lower_frequency_raises_unloaded_latency_and_bus_busy() {
        let run = |idx: usize| {
            let mut mem = MemorySystem::new(MemConfig::default());
            let mut out = Outcome::default();
            mem.set_frequency(Ps::ZERO, idx, &mut out);
            out.clear();
            for i in 0..32u64 {
                mem.enqueue_read(
                    Ps::from_us(10) + Ps::from_ns(100 * i),
                    LineAddr(i * 5),
                    i,
                    &mut out,
                );
            }
            let done = drain(&mut mem, &mut out);
            let total: u64 = done.iter().map(|c| c.finish.as_ps()).sum();
            (total, mem.counters().bus_busy)
        };
        let (t_slow, busy_slow) = run(0);
        let (t_fast, busy_fast) = run(9);
        assert!(t_slow > t_fast);
        assert!(busy_slow > busy_fast);
    }

    #[test]
    #[should_panic(expected = "bad frequency index")]
    fn set_frequency_rejects_out_of_grid() {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut out = Outcome::default();
        mem.set_frequency(Ps::ZERO, 99, &mut out);
    }

    #[test]
    #[should_panic(expected = "invalid memory config")]
    fn new_rejects_invalid_config() {
        let mut c = MemConfig::default();
        c.freq_grid.clear();
        let _ = MemorySystem::new(c);
    }
}
