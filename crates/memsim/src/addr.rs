//! Physical-address to channel/rank/bank mapping.

use crate::{AddrMap, MemConfig};

/// A cache-line address: the physical byte address divided by the line size.
///
/// Workload generators and the cache model pass line addresses around; only
/// the memory system cares how they map onto channels and banks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The byte address of the start of this line.
    pub fn byte_addr(self, line_bytes: u64) -> u64 {
        self.0 * line_bytes
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

/// Where a line lives in the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Location {
    /// Channel index, `0..config.channels`.
    pub channel: usize,
    /// Rank index within the channel, `0..config.ranks_per_channel()`.
    pub rank: usize,
    /// Bank index within the rank, `0..config.banks_per_rank`.
    pub bank: usize,
    /// Row index (unbounded above; the closed-page policy never reuses it,
    /// but it is kept for address-mapping tests and future open-page work).
    pub row: u64,
}

/// Maps a line address to its location according to the configured
/// [`AddrMap`].
///
/// * [`AddrMap::ChannelInterleaved`] (the paper's layout, "exploits bank
///   interleaving"): consecutive lines hit consecutive channels, and
///   consecutive same-channel lines hit different banks.
/// * [`AddrMap::RowInterleaved`]: consecutive lines share a DRAM row until
///   it is full, maximizing row-buffer locality for open-page systems.
pub fn map_line(config: &MemConfig, line: LineAddr) -> Location {
    let channels = config.channels as u64;
    let banks = config.banks_per_rank as u64;
    let ranks = config.ranks_per_channel() as u64;

    match config.addr_map {
        AddrMap::ChannelInterleaved => {
            let channel = (line.0 % channels) as usize;
            let in_channel = line.0 / channels;
            let bank = (in_channel % banks) as usize;
            let after_bank = in_channel / banks;
            let rank = (after_bank % ranks) as usize;
            let row = after_bank / ranks;
            Location {
                channel,
                rank,
                bank,
                row,
            }
        }
        AddrMap::RowInterleaved => {
            let chunk = line.0 / config.lines_per_row;
            let channel = (chunk % channels) as usize;
            let after_ch = chunk / channels;
            let bank = (after_ch % banks) as usize;
            let after_bank = after_ch / banks;
            let rank = (after_bank % ranks) as usize;
            let row = after_bank / ranks;
            Location {
                channel,
                rank,
                bank,
                row,
            }
        }
    }
}

#[cfg(test)]
// Tests build counter/config fixtures incrementally from defaults on purpose.
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn row_interleave_keeps_consecutive_lines_in_one_row() {
        let mut c = MemConfig::default();
        c.addr_map = AddrMap::RowInterleaved;
        let first = map_line(&c, LineAddr(0));
        for i in 1..c.lines_per_row {
            let loc = map_line(&c, LineAddr(i));
            assert_eq!(
                (loc.channel, loc.rank, loc.bank, loc.row),
                (first.channel, first.rank, first.bank, first.row)
            );
        }
        let next = map_line(&c, LineAddr(c.lines_per_row));
        assert_ne!(next.channel, first.channel);
    }

    #[test]
    fn consecutive_lines_interleave_channels() {
        let c = MemConfig::default();
        for i in 0..16u64 {
            let loc = map_line(&c, LineAddr(i));
            assert_eq!(loc.channel, (i % 4) as usize);
        }
    }

    #[test]
    fn same_channel_lines_interleave_banks() {
        let c = MemConfig::default();
        // Lines 0, 4, 8, ... land on channel 0, banks 0, 1, 2, ...
        for k in 0..8u64 {
            let loc = map_line(&c, LineAddr(k * 4));
            assert_eq!(loc.channel, 0);
            assert_eq!(loc.bank, k as usize);
        }
    }

    #[test]
    fn mapping_is_a_bijection_over_a_window() {
        let c = MemConfig::default();
        let span = (c.channels * c.ranks_per_channel() * c.banks_per_rank * 4) as u64;
        let mut seen = std::collections::HashSet::new();
        for i in 0..span {
            let loc = map_line(&c, LineAddr(i));
            assert!(loc.channel < c.channels);
            assert!(loc.rank < c.ranks_per_channel());
            assert!(loc.bank < c.banks_per_rank);
            assert!(seen.insert((loc.channel, loc.rank, loc.bank, loc.row)));
        }
    }

    #[test]
    fn byte_addr_roundtrip() {
        assert_eq!(LineAddr(3).byte_addr(64), 192);
        assert_eq!(LineAddr::from(7u64), LineAddr(7));
    }
}
