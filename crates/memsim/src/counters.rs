//! The memory-subsystem performance counters CoScale inherits from MemScale.
//!
//! The paper's model decomposes memory stall time as
//! `E[TPI_Mem] = ξ_bank · (S_Bank + ξ_bus · S_Bus)` where the `ξ` terms are
//! queueing multipliers and the `S` terms are raw service times. The
//! counters here provide everything needed to evaluate that model at the
//! current frequency and to re-predict it at a different one, plus the
//! busy/idle and page-event counts the memory power model consumes.

use simkernel::Ps;

/// Cumulative memory-subsystem counters. All fields are monotonically
/// increasing; epoch-level statistics are taken by snapshotting and
/// subtracting (see [`MemCounters::delta`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Demand reads completed.
    pub reads: u64,
    /// Writebacks drained to DRAM.
    pub writes: u64,
    /// Total read latency (arrival to data return), summed over reads.
    pub read_latency_sum: Ps,
    /// Total time read requests spent waiting for their bank to become
    /// available (queueing before ACT), summed.
    pub bank_wait_sum: Ps,
    /// Total time read requests spent waiting for the data bus after their
    /// column access would otherwise have completed, summed.
    pub bus_wait_sum: Ps,
    /// Total raw bank service time (ACT→data valid, excluding queueing),
    /// summed over reads.
    pub bank_service_sum: Ps,
    /// Total data-bus occupancy (read + write bursts).
    pub bus_busy: Ps,
    /// Row activations (page opens), reads and writes.
    pub page_opens: u64,
    /// Precharges (page closes), reads and writes.
    pub page_closes: u64,
    /// Accesses served from an already-open row (open-page policy only).
    pub row_hits: u64,
    /// Accesses that had to close another row first (open-page only).
    pub row_conflicts: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Total time with at least one bank active, summed over ranks
    /// (rank-seconds; divide by rank count for an average active fraction).
    pub rank_active: Ps,
    /// Time the whole subsystem spent stalled for frequency recalibration.
    pub recal_stall: Ps,
    /// Total time ranks spent in a managed idle low-power state
    /// (rank-seconds; zero unless an [`crate::IdleMemPolicy`] is set).
    pub rank_sleep: Ps,
    /// Times a rank was woken out of a managed idle state.
    pub sleep_wakeups: u64,
}

impl MemCounters {
    /// Component-wise `self - earlier`; used to extract per-epoch or
    /// per-profiling-window statistics from cumulative counters.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn delta(&self, earlier: &MemCounters) -> MemCounters {
        MemCounters {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            read_latency_sum: self.read_latency_sum - earlier.read_latency_sum,
            bank_wait_sum: self.bank_wait_sum - earlier.bank_wait_sum,
            bus_wait_sum: self.bus_wait_sum - earlier.bus_wait_sum,
            bank_service_sum: self.bank_service_sum - earlier.bank_service_sum,
            bus_busy: self.bus_busy - earlier.bus_busy,
            page_opens: self.page_opens - earlier.page_opens,
            page_closes: self.page_closes - earlier.page_closes,
            row_hits: self.row_hits - earlier.row_hits,
            row_conflicts: self.row_conflicts - earlier.row_conflicts,
            refreshes: self.refreshes - earlier.refreshes,
            rank_active: self.rank_active - earlier.rank_active,
            recal_stall: self.recal_stall - earlier.recal_stall,
            rank_sleep: self.rank_sleep - earlier.rank_sleep,
            sleep_wakeups: self.sleep_wakeups - earlier.sleep_wakeups,
        }
    }

    /// Fraction of rank-time spent in a managed idle state over `window`.
    pub fn rank_sleep_fraction(&self, window: Ps, ranks: usize) -> f64 {
        if window == Ps::ZERO {
            return 0.0;
        }
        (self.rank_sleep.as_secs_f64() / (window.as_secs_f64() * ranks as f64)).min(1.0)
    }

    /// Mean read latency; zero when no reads completed.
    pub fn avg_read_latency(&self) -> Ps {
        if self.reads == 0 {
            Ps::ZERO
        } else {
            self.read_latency_sum / self.reads
        }
    }

    /// Mean bank-queueing wait per read.
    pub fn avg_bank_wait(&self) -> Ps {
        if self.reads == 0 {
            Ps::ZERO
        } else {
            self.bank_wait_sum / self.reads
        }
    }

    /// Mean bus wait per read.
    pub fn avg_bus_wait(&self) -> Ps {
        if self.reads == 0 {
            Ps::ZERO
        } else {
            self.bus_wait_sum / self.reads
        }
    }

    /// Mean raw bank service time per read.
    pub fn avg_bank_service(&self) -> Ps {
        if self.reads == 0 {
            Ps::ZERO
        } else {
            self.bank_service_sum / self.reads
        }
    }

    /// The bank queueing multiplier ξ_bank: observed wait expressed as a
    /// multiple of service time, i.e. the effective number of requests ahead
    /// in the bank queue. Zero when idle.
    pub fn xi_bank(&self) -> f64 {
        let s = self.bank_service_sum.as_ps();
        if s == 0 {
            0.0
        } else {
            self.bank_wait_sum.as_ps() as f64 / s as f64
        }
    }

    /// The bus queueing multiplier ξ_bus: observed bus wait as a multiple of
    /// total burst occupancy attributable to reads. Zero when idle.
    pub fn xi_bus(&self, burst: Ps) -> f64 {
        if self.reads == 0 || burst == Ps::ZERO {
            return 0.0;
        }
        let per_read_burst = burst.as_ps() as f64;
        let per_read_wait = self.bus_wait_sum.as_ps() as f64 / self.reads as f64;
        per_read_wait / per_read_burst
    }

    /// Data-bus utilization over a window of `window` per channel-second,
    /// given `channels` channels.
    pub fn bus_utilization(&self, window: Ps, channels: usize) -> f64 {
        if window == Ps::ZERO {
            return 0.0;
        }
        (self.bus_busy.as_secs_f64() / (window.as_secs_f64() * channels as f64)).min(1.0)
    }

    /// Average fraction of time a rank had at least one bank open, given
    /// `ranks` total ranks observed over `window`.
    pub fn rank_active_fraction(&self, window: Ps, ranks: usize) -> f64 {
        if window == Ps::ZERO {
            return 0.0;
        }
        (self.rank_active.as_secs_f64() / (window.as_secs_f64() * ranks as f64)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MemCounters {
        MemCounters {
            reads: 10,
            writes: 5,
            read_latency_sum: Ps::from_ns(1000),
            bank_wait_sum: Ps::from_ns(200),
            bus_wait_sum: Ps::from_ns(100),
            bank_service_sum: Ps::from_ns(400),
            bus_busy: Ps::from_ns(75),
            page_opens: 15,
            page_closes: 15,
            row_hits: 0,
            row_conflicts: 0,
            refreshes: 2,
            rank_active: Ps::from_ns(600),
            recal_stall: Ps::ZERO,
            rank_sleep: Ps::ZERO,
            sleep_wakeups: 0,
        }
    }

    #[test]
    fn averages() {
        let c = sample();
        assert_eq!(c.avg_read_latency(), Ps::from_ns(100));
        assert_eq!(c.avg_bank_wait(), Ps::from_ns(20));
        assert_eq!(c.avg_bus_wait(), Ps::from_ns(10));
        assert_eq!(c.avg_bank_service(), Ps::from_ns(40));
    }

    #[test]
    fn empty_counters_have_zero_averages() {
        let c = MemCounters::default();
        assert_eq!(c.avg_read_latency(), Ps::ZERO);
        assert_eq!(c.xi_bank(), 0.0);
        assert_eq!(c.xi_bus(Ps::from_ns(5)), 0.0);
        assert_eq!(c.bus_utilization(Ps::ZERO, 4), 0.0);
    }

    #[test]
    fn xi_factors() {
        let c = sample();
        assert!((c.xi_bank() - 0.5).abs() < 1e-12);
        // 10ns avg bus wait over a 5ns burst -> xi_bus = 2.
        assert!((c.xi_bus(Ps::from_ns(5)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts_componentwise() {
        let a = sample();
        let mut b = a;
        b.reads += 3;
        b.read_latency_sum += Ps::from_ns(30);
        b.refreshes += 1;
        let d = b.delta(&a);
        assert_eq!(d.reads, 3);
        assert_eq!(d.read_latency_sum, Ps::from_ns(30));
        assert_eq!(d.refreshes, 1);
        assert_eq!(d.writes, 0);
    }

    #[test]
    fn utilization_fractions() {
        let c = sample();
        // 75ns busy over 100ns * 4 channels = 18.75%.
        assert!((c.bus_utilization(Ps::from_ns(100), 4) - 0.1875).abs() < 1e-12);
        // 600ns rank-active over 100ns * 16 ranks = 37.5%.
        assert!((c.rank_active_fraction(Ps::from_ns(100), 16) - 0.375).abs() < 1e-12);
    }
}
