//! Property-based tests for the DDR3 memory simulator: timing legality,
//! conservation of requests, and frequency-scaling monotonicity.

use memsim::{
    AddrMap, Completion, IdleMemPolicy, IdleMode, LineAddr, MemConfig, MemEvent, MemorySystem,
    Outcome, PagePolicy, SchedPolicy,
};
use proptest::prelude::*;
use simkernel::{EventQueue, Ps};

/// All interesting memory-configuration variants, by index.
fn config_variant(v: u8) -> MemConfig {
    let mut c = MemConfig::default();
    match v % 5 {
        0 => {}
        1 => {
            c.page_policy = PagePolicy::Open;
        }
        2 => {
            c.page_policy = PagePolicy::Open;
            c.addr_map = AddrMap::RowInterleaved;
        }
        3 => {
            c.page_policy = PagePolicy::Open;
            c.addr_map = AddrMap::RowInterleaved;
            c.sched = SchedPolicy::FrFcfs;
        }
        _ => {
            c.idle_policy = Some(IdleMemPolicy {
                threshold: Ps::from_us(1),
                mode: IdleMode::SelfRefresh,
            });
        }
    }
    c
}

/// Drives the memory system until every queued request has been serviced.
fn drain(mem: &mut MemorySystem, seed_out: Outcome) -> Vec<Completion> {
    let mut q = EventQueue::new();
    let mut done = Vec::new();
    done.extend(seed_out.completions.iter().copied());
    for (t, e) in seed_out.wakeups {
        q.push(t, e);
    }
    let mut out = Outcome::default();
    let mut steps = 0usize;
    while let Some((t, e)) = q.pop() {
        if matches!(e, MemEvent::Refresh { .. })
            && mem.queued_requests() == 0
            && mem.outstanding_reads() == 0
        {
            continue;
        }
        out.clear();
        mem.handle(t, e, &mut out);
        done.extend(out.completions.iter().copied());
        for &(wt, we) in &out.wakeups {
            q.push(wt, we);
        }
        steps += 1;
        assert!(steps < 2_000_000, "runaway event loop");
    }
    done
}

/// A randomized request pattern: (line, gap_ns, is_write).
fn pattern() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    prop::collection::vec((0u64..4096, 0u64..200, any::<bool>()), 1..150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every read completes exactly once, no matter the pattern, under
    /// every page-policy/scheduler/address-map/idle-state variant.
    #[test]
    fn reads_complete_exactly_once(pat in pattern(), variant in 0u8..5) {
        let mut mem = MemorySystem::new(config_variant(variant));
        let mut out = Outcome::default();
        let mut now = Ps::ZERO;
        let mut expected = Vec::new();
        for (i, &(line, gap, is_write)) in pat.iter().enumerate() {
            now += Ps::from_ns(gap);
            if is_write {
                mem.enqueue_writeback(now, LineAddr(line), &mut out);
            } else {
                mem.enqueue_read(now, LineAddr(line), i as u64, &mut out);
                expected.push(i as u64);
            }
        }
        let done = drain(&mut mem, out);
        let mut tags: Vec<u64> = done.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, expected);
        prop_assert_eq!(mem.outstanding_reads(), 0);
    }

    /// Completion time is never before the unloaded service latency after
    /// arrival, and counters decompose latency exactly. Under open page the
    /// unloaded floor is the row-hit service (tCL + burst + overhead).
    #[test]
    fn latency_lower_bound_and_decomposition(pat in pattern(), variant in 0u8..4) {
        let cfg = config_variant(variant);
        let open = cfg.page_policy == PagePolicy::Open;
        let mut mem = MemorySystem::new(cfg);
        let mut out = Outcome::default();
        let mut now = Ps::ZERO;
        let mut arrivals = std::collections::HashMap::new();
        for (i, &(line, gap, _)) in pat.iter().enumerate() {
            now += Ps::from_ns(gap);
            mem.enqueue_read(now, LineAddr(line), i as u64, &mut out);
            arrivals.insert(i as u64, now);
        }
        let t = &mem.config().timings;
        let unloaded = if open {
            t.t_cl + t.burst_time(mem.bus_freq()) + t.mc_overhead
        } else {
            t.fixed_read_service() + t.burst_time(mem.bus_freq())
        };
        let done = drain(&mut mem, out);
        for c in &done {
            prop_assert!(c.finish >= arrivals[&c.tag] + unloaded,
                "finish {:?} too early for arrival {:?}", c.finish, arrivals[&c.tag]);
        }
        // Counter identity: latency = bank wait + bus wait + service.
        let ctr = mem.counters();
        let lhs = ctr.read_latency_sum.as_ps();
        let rhs = (ctr.bank_wait_sum + ctr.bus_wait_sum + ctr.bank_service_sum).as_ps();
        prop_assert_eq!(lhs, rhs);
    }

    /// Open page: row hits + conflicts never exceed reads + writes, and
    /// every access is page-accounted (opens = closes + still-open rows).
    #[test]
    fn open_page_accounting(pat in pattern()) {
        let mut mem = MemorySystem::new(config_variant(2));
        let mut out = Outcome::default();
        let mut now = Ps::ZERO;
        for (i, &(line, gap, is_write)) in pat.iter().enumerate() {
            now += Ps::from_ns(gap);
            if is_write {
                mem.enqueue_writeback(now, LineAddr(line), &mut out);
            } else {
                mem.enqueue_read(now, LineAddr(line), i as u64, &mut out);
            }
        }
        let _ = drain(&mut mem, out);
        let ctr = mem.counters();
        let accesses = ctr.reads + ctr.writes;
        prop_assert!(ctr.row_hits + ctr.row_conflicts <= accesses);
        prop_assert!(ctr.page_closes <= ctr.page_opens);
        prop_assert!(ctr.page_opens <= accesses);
    }

    /// Data bursts never overlap on a channel's bus: total bus busy time of
    /// a channel can never exceed the span of the run.
    #[test]
    fn bus_occupancy_fits_in_wallclock(pat in pattern(), fidx in 0usize..10) {
        let mut mem = MemorySystem::new(MemConfig::default());
        let mut out = Outcome::default();
        mem.set_frequency(Ps::ZERO, fidx, &mut out);
        let mut now = Ps::from_us(1);
        for (i, &(line, gap, _)) in pat.iter().enumerate() {
            now += Ps::from_ns(gap);
            mem.enqueue_read(now, LineAddr(line), i as u64, &mut out);
        }
        let done = drain(&mut mem, out);
        let end = done.iter().map(|c| c.finish).max().unwrap();
        let channels = mem.config().channels as u64;
        prop_assert!(mem.counters().bus_busy <= end * channels);
    }

    /// Lowering the bus frequency never reduces any individual completion
    /// time for an identical request pattern (monotonicity the DVFS policy
    /// depends on).
    #[test]
    fn slower_bus_is_never_faster(pat in pattern()) {
        let run = |fidx: usize| {
            let mut mem = MemorySystem::new(MemConfig::default());
            let mut out = Outcome::default();
            mem.set_frequency(Ps::ZERO, fidx, &mut out);
            out.clear(); // discard the recalibration wakeups of the initial set
            let mut now = Ps::from_us(1);
            for (i, &(line, gap, _)) in pat.iter().enumerate() {
                now += Ps::from_ns(gap);
                mem.enqueue_read(now, LineAddr(line), i as u64, &mut out);
            }
            let mut done = drain(&mut mem, out);
            done.sort_by_key(|c| c.tag);
            done
        };
        let slow = run(0);
        let fast = run(9);
        for (s, f) in slow.iter().zip(fast.iter()) {
            prop_assert!(s.finish >= f.finish,
                "tag {} finished earlier at 200MHz ({:?}) than 800MHz ({:?})",
                s.tag, s.finish, f.finish);
        }
    }

    /// Counters are monotone non-decreasing over time, under every variant.
    #[test]
    fn counters_are_monotone(pat in pattern(), variant in 0u8..5) {
        let mut mem = MemorySystem::new(config_variant(variant));
        let mut out = Outcome::default();
        let mut prev = *mem.counters();
        let mut now = Ps::ZERO;
        for (i, &(line, gap, is_write)) in pat.iter().enumerate() {
            now += Ps::from_ns(gap);
            if is_write {
                mem.enqueue_writeback(now, LineAddr(line), &mut out);
            } else {
                mem.enqueue_read(now, LineAddr(line), i as u64, &mut out);
            }
            let c = *mem.counters();
            // delta() debug-asserts on underflow; reaching here means monotone.
            let d = c.delta(&prev);
            prop_assert!(d.reads <= c.reads);
            prev = c;
        }
        let _ = drain(&mut mem, out);
        let _ = mem.counters().delta(&prev);
    }
}
