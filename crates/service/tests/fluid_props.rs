//! Property tests for the fluid client model's arrival sampling: the
//! integrated think-completion hazard must not care how the timeline is
//! chopped into rounds.
//!
//! The exact pool gets windowing invariance for free — each client owns a
//! concrete `ready_at` instant and a window either contains it or not. The
//! fluid model replaces those instants with an integrated hazard
//! `Λ(a, b)` per window, so invariance becomes an algebraic obligation:
//! `Λ` must be additive over any subdivision and the per-window completion
//! probabilities must compose as survivals. These are the same properties
//! the open-loop [`service::ArrivalGen`] proptests pin for thinned
//! Poisson/MMPP streams, restated for the closed-loop think process with
//! its diurnal rate modulation.

use proptest::prelude::*;
use service::{BalancePolicy, ClientModel, ClosedLoopConfig, FluidPool};
use simkernel::Ps;

fn pool(mean_think_us: u64, period_us: u64, depth: f64, seed: u64) -> FluidPool {
    let mut cfg =
        ClosedLoopConfig::new(1_000, Ps::from_us(mean_think_us), BalancePolicy::RoundRobin)
            .with_seed(seed)
            .with_model(ClientModel::Fluid);
    if depth > 0.0 {
        cfg = cfg.with_think_diurnal(Ps::from_us(period_us), depth);
    }
    FluidPool::new(&cfg)
}

/// Midpoint-rule integral of the instantaneous think-completion rate
/// `(1 + depth·sin(2πt/P)) / θ` over `[a, b]` — the quantity the closed
/// form in [`FluidPool::hazard`] claims to be.
fn numeric_hazard(mean_think_us: u64, period_us: u64, depth: f64, a: Ps, b: Ps) -> f64 {
    let theta = Ps::from_us(mean_think_us).as_secs_f64();
    let (ta, tb) = (a.as_secs_f64(), b.as_secs_f64());
    let steps = 4_000;
    let dt = (tb - ta) / steps as f64;
    let w = std::f64::consts::TAU / Ps::from_us(period_us).as_secs_f64();
    (0..steps)
        .map(|i| {
            let t = ta + (i as f64 + 0.5) * dt;
            let rate = if depth > 0.0 {
                (1.0 + depth * (w * t).sin()) / theta
            } else {
                1.0 / theta
            };
            rate * dt
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Λ(a, c) = Λ(a, b) + Λ(b, c) for any split point — integrating the
    /// think hazard over one long round or many short ones is the same
    /// number, diurnal modulation included.
    #[test]
    fn hazard_is_additive_over_any_subdivision(
        mean_think_us in 10u64..10_000,
        period_us in 100u64..50_000,
        depth in 0.0f64..1.0,
        start_us in 0u64..100_000,
        first_us in 1u64..50_000,
        second_us in 1u64..50_000,
    ) {
        let p = pool(mean_think_us, period_us, depth, 1);
        let a = Ps::from_us(start_us);
        let b = a + Ps::from_us(first_us);
        let c = b + Ps::from_us(second_us);
        let whole = p.hazard(a, c);
        let split = p.hazard(a, b) + p.hazard(b, c);
        prop_assert!(
            (whole - split).abs() <= 1e-9 * whole.abs().max(1.0),
            "Λ(a,c)={whole} but Λ(a,b)+Λ(b,c)={split}"
        );
    }

    /// Survival probabilities compose multiplicatively across a split:
    /// 1 − p(a, c) = (1 − p(a, b)) · (1 − p(b, c)). This is exactly the
    /// statement that issuing round by round thins the thinking population
    /// with the same law as issuing once over the whole horizon.
    #[test]
    fn completion_prob_composes_as_survival(
        mean_think_us in 10u64..10_000,
        period_us in 100u64..50_000,
        depth in 0.0f64..1.0,
        start_us in 0u64..100_000,
        first_us in 1u64..50_000,
        second_us in 1u64..50_000,
    ) {
        let p = pool(mean_think_us, period_us, depth, 1);
        let a = Ps::from_us(start_us);
        let b = a + Ps::from_us(first_us);
        let c = b + Ps::from_us(second_us);
        let whole = 1.0 - p.completion_prob(a, c);
        let split = (1.0 - p.completion_prob(a, b)) * (1.0 - p.completion_prob(b, c));
        prop_assert!(
            (whole - split).abs() <= 1e-9,
            "survival over [a,c)={whole} but product of halves={split}"
        );
    }

    /// The closed-form integrated hazard equals the numerical integral of
    /// the instantaneous modulated rate (1 + depth·sin(2πt/P))/θ — the
    /// sinusoid's antiderivative was not fumbled.
    #[test]
    fn hazard_closed_form_matches_numerical_integral(
        mean_think_us in 10u64..10_000,
        period_us in 200u64..50_000,
        depth in 0.0f64..1.0,
        start_us in 0u64..100_000,
        span_us in 1u64..20_000,
    ) {
        let p = pool(mean_think_us, period_us, depth, 1);
        let a = Ps::from_us(start_us);
        let b = a + Ps::from_us(span_us);
        let closed = p.hazard(a, b);
        let numeric = numeric_hazard(mean_think_us, period_us, depth, a, b);
        prop_assert!(
            (closed - numeric).abs() <= 1e-4 * numeric.abs().max(1e-9),
            "closed form {closed} vs numerical {numeric}"
        );
    }

    /// Whatever the window, `issue` keeps arrivals sorted, inside
    /// `[from, to)` (the queue's contract), and conserves the population.
    #[test]
    fn issue_respects_the_window_contract(
        mean_think_us in 1u64..5_000,
        period_us in 100u64..50_000,
        depth in 0.0f64..1.0,
        windows_us in proptest::collection::vec(1u64..5_000, 1..6),
    ) {
        let mut p = pool(mean_think_us, period_us, depth, 9);
        let clients = p.len();
        let mut from = Ps::ZERO;
        for w_us in windows_us {
            let to = from + Ps::from_us(w_us);
            let reqs = p.issue(from, to);
            for pair in reqs.windows(2) {
                prop_assert!(pair[0].arrival <= pair[1].arrival, "arrivals unsorted");
            }
            for r in &reqs {
                prop_assert!(r.arrival >= from && r.arrival < to, "arrival outside window");
            }
            prop_assert_eq!(p.len(), clients, "population leaked");
            // Deliver every other response so later windows exercise the
            // fresh-cohort path too.
            for (i, r) in reqs.iter().enumerate() {
                if i % 2 == 0 {
                    p.deliver(r.client.unwrap_or(0), r.arrival);
                }
            }
            from = to;
        }
    }
}

/// Windowing invariance of the sampled counts themselves: issuing over one
/// long horizon and over the same horizon cut into quanta draw from the
/// same distribution. Fixed seeds make this deterministic; the bound is
/// five standard deviations of the binomial difference.
#[test]
fn sampled_issue_counts_are_windowing_invariant() {
    for (think_us, period_us, depth) in [(2_000u64, 0u64, 0.0f64), (1_500, 4_000, 0.8)] {
        // Park the whole population as a delivered cohort at t=1 ps so both
        // pools start from the identical thinking state.
        let prepare = |seed: u64| {
            let mut p = pool(think_us, period_us.max(1), depth, seed);
            let reqs = p.issue(Ps::ZERO, Ps::new(1));
            for r in &reqs {
                p.deliver(r.client.unwrap_or(0), Ps::new(1));
            }
            p
        };
        let horizon = Ps::from_us(1_000);
        let mut coarse = prepare(5);
        let k_coarse = coarse.issue(Ps::new(1), horizon).len() as f64;
        let mut fine = prepare(6);
        let mut from = Ps::new(1);
        let mut k_fine = 0.0;
        for i in 1..=8 {
            let to = if i == 8 {
                horizon
            } else {
                Ps::from_us(125 * i)
            };
            k_fine += fine.issue(from, to).len() as f64;
            from = to;
        }
        let probe = prepare(7);
        let p_whole = probe.completion_prob(Ps::new(1), horizon);
        let n = probe.thinking() as f64;
        let sigma = (2.0 * n * p_whole * (1.0 - p_whole)).sqrt();
        assert!(
            (k_coarse - k_fine).abs() <= 5.0 * sigma + 5.0,
            "think={think_us}us depth={depth}: one window issued {k_coarse}, \
             eight windows issued {k_fine} (5σ = {:.1})",
            5.0 * sigma
        );
    }
}
