//! Property-based tests for the service layer's queue and arrival stream.

use proptest::prelude::*;
use service::{ArrivalGen, ArrivalKind, Request, RequestQueue};
use simkernel::{stats::Histogram, Ps};

proptest! {
    /// Request conservation across randomized windows and rates: every
    /// request fed to the queue is exactly one of completed, shed, or
    /// still queued — none is lost or double-counted, however the timeline
    /// is windowed or the drain rate jumps around.
    #[test]
    fn queue_conserves_requests(
        seed in any::<u64>(),
        rate_hz in 1_000.0f64..200_000.0,
        capacity in 1usize..64,
        window_bounds in prop::collection::vec(1u64..2_000, 1..12),
        rates in prop::collection::vec(0u64..4, 1..12),
    ) {
        let mut gen = ArrivalGen::new(ArrivalKind::Poisson { rate_hz }, seed);
        let mut q = RequestQueue::new(capacity);
        let mut hist = Histogram::new();
        let mut fed = 0u64;
        let mut t = Ps::ZERO;
        for (i, us) in window_bounds.iter().enumerate() {
            let to = t + Ps::from_us(*us);
            // Rates cycle through stalled / slow / fast per window.
            let rate_ips = [0.0, 5e8, 2e9, 8e9][rates[i % rates.len()] as usize];
            let arrivals: Vec<Request> = gen
                .arrivals_until(to)
                .into_iter()
                .map(|arrival| Request { arrival, remaining_instrs: 1_000.0, client: None, trace: None })
                .collect();
            prop_assert!(arrivals.iter().all(|r| r.arrival >= t && r.arrival < to));
            fed += arrivals.len() as u64;
            let events = q.advance(t, to, rate_ips, &arrivals, &mut hist);
            prop_assert!(events.is_ok(), "queue invariant: {:?}", events.err());
            prop_assert!(events.unwrap().is_empty(), "untagged requests emit no events");
            prop_assert_eq!(
                fed,
                q.completed() + q.shed() + q.depth() as u64,
                "conservation broken after window {}", i
            );
            t = to;
        }
        prop_assert_eq!(hist.count(), q.completed());
    }
}
