//! Integration tests for the serving fleet: thread-count determinism, the
//! SLA-aware discipline's headline behaviour, closed-loop balancing, and
//! churn.

use service::{
    run_service, ArrivalKind, BalancePolicy, BudgetTree, CapSplit, ChurnSchedule, ClosedLoopConfig,
    EngineKind, ServiceConfig, ServiceServerSpec, TierConfig,
};
use simkernel::Ps;

/// The `service-sla` bench scenario: one big memory-bound server pushed
/// close to its full-speed capacity plus three lightly loaded servers, under
/// a 280 W budget. A uniform 70 W share starves the big server below its
/// arrival rate (its queue saturates), while its full ~99 W demand serves
/// the same stream with a sub-millisecond tail.
fn sla_fleet() -> Vec<ServiceServerSpec> {
    vec![
        ServiceServerSpec::small_with_cores("heavy", "MEM2", 11, 230_000.0, 8)
            .with_p99_target_s(1e-3),
        ServiceServerSpec::small("light0", "ILP1", 12, 30_000.0).with_p99_target_s(1e-3),
        ServiceServerSpec::small("light1", "ILP2", 13, 30_000.0).with_p99_target_s(1e-3),
        ServiceServerSpec::small("light2", "MID2", 14, 30_000.0).with_p99_target_s(1e-3),
    ]
}

fn sla_config(split: CapSplit) -> ServiceConfig {
    ServiceConfig::new(sla_fleet(), 280.0, split).with_rounds(40)
}

/// Servers only exchange state at round barriers, so the worker thread
/// count must not change a single bit of the result — checked on the full
/// bench scenario via the digest (energies, caps, queue counters, latency
/// buckets, cap timeline).
#[test]
fn results_are_bit_identical_across_thread_counts() {
    let d1 = run_service(sla_config(CapSplit::SlaAware).with_threads(1)).digest();
    let d2 = run_service(sla_config(CapSplit::SlaAware).with_threads(2)).digest();
    let d8 = run_service(sla_config(CapSplit::SlaAware).with_threads(8)).digest();
    assert_eq!(d1, d2, "1 vs 2 threads");
    assert_eq!(d1, d8, "1 vs 8 threads");
}

/// The PR's acceptance scenario: at the same 280 W budget the SLA-aware
/// discipline meets every server's p99 target (uniform misses on the heavy
/// server) while consuming *less* energy — the trimmed light servers more
/// than pay for the heavy server's boost.
#[test]
fn sla_aware_meets_slo_uniform_misses_at_same_budget() {
    let uniform = run_service(sla_config(CapSplit::Uniform));
    let sla = run_service(sla_config(CapSplit::SlaAware));

    // Uniform: the heavy server saturates and blows through its target.
    let heavy_uni = uniform.outcomes.iter().find(|o| o.name == "heavy").unwrap();
    assert!(
        !heavy_uni.meets_slo(),
        "uniform should miss on heavy: p99 {:.0} µs",
        heavy_uni.p99_s() * 1e6
    );
    assert!(heavy_uni.shed > 0, "saturated queue should shed");

    // SLA-aware: every server meets its target, nothing is shed.
    assert!(
        sla.all_meet_slo(),
        "sla-aware p99s: {:?}",
        sla.outcomes
            .iter()
            .map(|o| (o.name.clone(), o.p99_s()))
            .collect::<Vec<_>>()
    );
    assert_eq!(sla.total_shed(), 0);

    // And it does so on less energy than uniform at the same budget.
    assert!(
        sla.total_energy_j() <= uniform.total_energy_j(),
        "sla {:.2} J > uniform {:.2} J",
        sla.total_energy_j(),
        uniform.total_energy_j()
    );

    // The heavy server was actually boosted above its uniform share, and
    // the light servers trimmed below theirs.
    let heavy_sla = sla.outcomes.iter().find(|o| o.name == "heavy").unwrap();
    assert!(heavy_sla.mean_cap_w > heavy_uni.mean_cap_w + 5.0);
    for light in sla.outcomes.iter().filter(|o| o.name.starts_with("light")) {
        assert!(
            light.mean_cap_w < 70.0 - 5.0,
            "{}: {}",
            light.name,
            light.mean_cap_w
        );
    }
}

/// Churn mid-run: a join and a departure at round boundaries neither panic
/// nor corrupt fleet metrics, and the result stays thread-count
/// deterministic.
#[test]
fn churn_mid_run_keeps_metrics_sane_and_deterministic() {
    let build = |threads: usize| {
        let fleet = vec![
            ServiceServerSpec::small("s0", "MID1", 21, 40_000.0),
            ServiceServerSpec::small("s1", "MEM1", 22, 40_000.0).with_arrivals(ArrivalKind::Mmpp {
                rate_hz: 30_000.0,
                burst_factor: 3.0,
                mean_calm: Ps::from_ms(2),
                mean_burst: Ps::from_ms(1),
                diurnal_period: Ps::from_ms(10),
                diurnal_depth: 0.4,
            }),
        ];
        let mut churn = ChurnSchedule::new();
        churn
            .join(
                4,
                "late",
                ServiceServerSpec::small("late", "ILP1", 23, 40_000.0),
            )
            .unwrap();
        churn.leave(9, "s1").unwrap();
        ServiceConfig::new(fleet, 180.0, CapSplit::SlaAware)
            .with_rounds(14)
            .with_churn(churn)
            .with_threads(threads)
    };

    let r = run_service(build(1));
    // All three servers appear exactly once; only s1 departed.
    assert_eq!(r.outcomes.len(), 3);
    let s1 = r.outcomes.iter().find(|o| o.name == "s1").unwrap();
    assert!(s1.departed);
    assert_eq!(s1.rounds_run, 9);
    let late = r.outcomes.iter().find(|o| o.name == "late").unwrap();
    assert!(!late.departed);
    assert_eq!(late.rounds_run, 10);
    // Everyone served traffic, and the fleet histogram is exactly the sum
    // of the per-server ones (merge loses nothing).
    for o in &r.outcomes {
        assert!(o.completed > 0, "{} served nothing", o.name);
    }
    let total: u64 = r.outcomes.iter().map(|o| o.hist.count()).sum();
    assert_eq!(r.fleet_hist().count(), total);
    // The cap timeline tracks the changing fleet width.
    assert_eq!(r.cap_timeline[0].len(), 2);
    assert_eq!(r.cap_timeline[4].len(), 3);
    assert_eq!(r.cap_timeline[9].len(), 2);

    // Churn does not break round-barrier determinism.
    let d4 = run_service(build(4)).digest();
    assert_eq!(r.digest(), d4);
}

/// A serving run under a two-level topology (uniform across a rack and a
/// pod, SLA-aware inside the rack) stays within budget, respects the root's
/// per-group shares, survives churn (joiners attach under the root,
/// leavers are pruned from their rack), and stays thread-deterministic.
#[test]
fn topology_serve_run_is_deterministic_and_respects_group_shares() {
    let build = |threads: usize| {
        let fleet = vec![
            ServiceServerSpec::small("r0", "MEM1", 41, 40_000.0),
            ServiceServerSpec::small("r1", "MID1", 42, 40_000.0),
            ServiceServerSpec::small("p0", "ILP1", 43, 25_000.0),
            ServiceServerSpec::small("p1", "ILP2", 44, 25_000.0),
        ];
        let tree =
            BudgetTree::parse("fleet:uniform[rack:sla-aware[r0,r1],pod:fastcap[p0,p1]]").unwrap();
        let mut churn = ChurnSchedule::new();
        churn
            .join(
                5,
                "late",
                ServiceServerSpec::small("late", "MID2", 45, 20_000.0),
            )
            .unwrap();
        churn.leave(9, "r1").unwrap();
        ServiceConfig::new(fleet, 240.0, CapSplit::Uniform)
            .with_topology(tree)
            .with_rounds(14)
            .with_churn(churn)
            .with_threads(threads)
    };

    let r = run_service(build(1));
    assert_eq!(r.outcomes.len(), 5);
    assert!(r.topology.as_deref().unwrap().starts_with("fleet:uniform["));
    for (round, caps) in r.cap_timeline.iter().enumerate() {
        let total: f64 = caps.iter().sum();
        assert!(total <= 240.0 + 1e-6, "round {round}: {total} > budget");
    }
    // Before churn the uniform root gives each of the two groups 120 W
    // (fleet order is rack servers then pod servers).
    for caps in &r.cap_timeline[..5] {
        assert_eq!(caps.len(), 4);
        assert!(caps[0] + caps[1] <= 120.0 + 1e-6, "rack over its share");
        assert!(caps[2] + caps[3] <= 120.0 + 1e-6, "pod over its share");
    }
    // After the join the root has three children: 80 W each.
    assert_eq!(r.cap_timeline[5].len(), 5);
    assert!(r.cap_timeline[5][4] <= 80.0 + 1e-6, "joiner over its share");
    // The departed server drops out of the split.
    assert_eq!(r.cap_timeline[9].len(), 4);
    for o in &r.outcomes {
        assert!(o.completed > 0, "{} served nothing", o.name);
    }

    let d4 = run_service(build(4)).digest();
    assert_eq!(r.digest(), d4, "topology run not thread-deterministic");
}

/// The `closed-loop-balancing` bench scenario: one big memory-bound server
/// throttled near its power floor by the uniform split, next to three fast
/// small servers with watts of slack, serving a closed-loop client
/// population through a front-end balancer.
fn balancing_config(balance: BalancePolicy) -> ServiceConfig {
    let fleet = vec![
        ServiceServerSpec::small_with_cores("big", "MEM2", 11, 0.0, 8).with_p99_target_s(2e-3),
        ServiceServerSpec::small("small0", "ILP1", 12, 0.0).with_p99_target_s(2e-3),
        ServiceServerSpec::small("small1", "ILP2", 13, 0.0).with_p99_target_s(2e-3),
        ServiceServerSpec::small("small2", "ILP1", 14, 0.0).with_p99_target_s(2e-3),
    ];
    ServiceConfig::new(fleet, 200.0, CapSplit::Uniform)
        .with_rounds(16)
        .with_closed_loop(
            ClosedLoopConfig::new(320, Ps::from_us(100), balance)
                .with_mean_request_instrs(120_000.0),
        )
}

/// The PR's acceptance scenario: at the same 200 W budget the
/// power-headroom balancer meets the fleet's 2 ms p99 target while
/// round-robin keeps feeding the capped big server a quarter of the
/// traffic and blows through it. Closed-loop bookkeeping must balance
/// exactly in both runs: every generated request is completed, shed, or
/// abandoned in queue, and every client ends the horizon either thinking
/// or waiting.
#[test]
fn headroom_balancer_meets_p99_where_round_robin_saturates() {
    let rr = run_service(balancing_config(BalancePolicy::RoundRobin));
    let headroom = run_service(balancing_config(BalancePolicy::PowerHeadroom));

    let target = 2e-3;
    let rr_p99 = rr.fleet_percentile_s(0.99);
    let hr_p99 = headroom.fleet_percentile_s(0.99);
    let big_rr = rr.outcomes.iter().find(|o| o.name == "big").unwrap();
    assert!(
        !big_rr.meets_slo(),
        "round-robin should saturate big: p99 {:.3} ms",
        big_rr.p99_s() * 1e3
    );
    assert!(rr_p99 > target, "round-robin fleet p99 {rr_p99:.4}s");
    assert!(
        headroom.all_meet_slo(),
        "headroom p99s: {:?}",
        headroom
            .outcomes
            .iter()
            .map(|o| (o.name.clone(), o.p99_s()))
            .collect::<Vec<_>>()
    );
    assert!(
        hr_p99 < rr_p99,
        "headroom {hr_p99:.4}s not better than round-robin {rr_p99:.4}s"
    );

    // The balancer visibly steered load off the capped server.
    let big_hr = headroom.outcomes.iter().find(|o| o.name == "big").unwrap();
    assert!(
        big_hr.arrived * 4 < big_rr.arrived,
        "headroom big share {} vs round-robin {}",
        big_hr.arrived,
        big_rr.arrived
    );

    // Request + client conservation, end to end.
    for r in [&rr, &headroom] {
        let cl = r.closed_loop.as_ref().expect("closed-loop summary");
        let terminal: u64 = r
            .outcomes
            .iter()
            .map(|o| o.completed + o.shed + o.abandoned)
            .sum();
        assert_eq!(cl.generated, terminal, "request conservation");
        let arrived: u64 = r.outcomes.iter().map(|o| o.arrived).sum();
        assert_eq!(cl.generated, arrived, "every request reached a server");
        assert_eq!(
            cl.thinking_at_end + cl.waiting_at_end,
            320,
            "client conservation"
        );
        assert_eq!(
            cl.responses + cl.waiting_at_end as u64,
            cl.generated,
            "responses + in-flight = generated"
        );
    }
}

/// Closed-loop serving with balancing *and* churn is bit-identical for any
/// worker thread count: clients draw think times from per-client streams
/// and the balancer runs at the round barrier, so delivery order cannot
/// leak into the result.
#[test]
fn closed_loop_run_is_deterministic_across_thread_counts() {
    let build = |threads: usize| {
        let fleet = vec![
            ServiceServerSpec::small("c0", "MID1", 61, 0.0),
            ServiceServerSpec::small("c1", "MEM1", 62, 0.0),
        ];
        let mut churn = ChurnSchedule::new();
        churn
            .join(3, "late", ServiceServerSpec::small("late", "ILP1", 63, 0.0))
            .unwrap();
        churn.leave(8, "c1").unwrap();
        ServiceConfig::new(fleet, 150.0, CapSplit::FastCap)
            .with_rounds(12)
            .with_churn(churn)
            .with_threads(threads)
            .with_closed_loop(ClosedLoopConfig::new(
                48,
                Ps::from_us(200),
                BalancePolicy::LeastQueue,
            ))
    };

    let r1 = run_service(build(1));
    let d1 = r1.digest();
    for threads in [2, 4, 8] {
        let d = run_service(build(threads)).digest();
        assert_eq!(d1, d, "1 vs {threads} threads");
    }
    // Departure orphans were re-delivered: the client population is intact
    // and every generated request is accounted for.
    let cl = r1.closed_loop.as_ref().unwrap();
    assert_eq!(cl.thinking_at_end + cl.waiting_at_end, 48);
    let terminal: u64 = r1
        .outcomes
        .iter()
        .map(|o| o.completed + o.shed + o.abandoned)
        .sum();
    assert_eq!(cl.generated, terminal);
}

/// A three-tier serving fleet: client requests fan out `fe -> app -> st`
/// into DAGs whose spans ride the ordinary queue machinery.
fn tier_fleet(names: &[&str], mixes: &[&str]) -> Vec<ServiceServerSpec> {
    names
        .iter()
        .zip(mixes)
        .enumerate()
        .map(|(i, (n, m))| ServiceServerSpec::small(n, m, 70 + i as u64, 0.0))
        .collect()
}

fn tier_config(threads: usize, engine: EngineKind) -> ServiceConfig {
    let fleet = tier_fleet(
        &["fe0", "app0", "app1", "st0", "st1"],
        &["ILP1", "MID1", "MID2", "MEM1", "MEM2"],
    );
    let graph = "fe[1] -> app[2]*2 -> st[2]".parse().unwrap();
    ServiceConfig::new(fleet, 260.0, CapSplit::FastCap)
        .with_rounds(12)
        .with_threads(threads)
        .with_engine(engine)
        .with_closed_loop(ClosedLoopConfig::new(
            48,
            Ps::from_us(150),
            BalancePolicy::LeastQueue,
        ))
        .with_tiers(TierConfig::new(graph).with_e2e_target_s(0.5))
}

/// Multi-tier DAG bookkeeping conserves spans end to end — every completed
/// parent spawns exactly its fan-out of children, every span terminates or
/// stays counted as open, the end-to-end sojourn dominates every child's —
/// and the whole run is bit-identical for any worker thread count and for
/// both engines.
#[test]
fn multi_tier_run_conserves_dags_and_is_deterministic() {
    let r = run_service(tier_config(1, EngineKind::Round));
    let t = r.tiers.as_ref().expect("tier summary");
    let s = &t.stats;
    assert!(s.roots_opened > 0, "no DAGs opened");
    assert!(s.roots_closed > 0, "no DAGs closed");
    assert_eq!(s.roots_opened, s.roots_closed + s.open_roots);
    assert_eq!(s.spans_opened, s.spans_closed + s.open_spans);
    // Fan-out conservation: tier 1 spawns 2 per completed fe span, tier 2
    // spawns 1 per completed app span.
    assert_eq!(s.spawned_by_tier[1], s.completed_by_tier[0] * 2);
    assert_eq!(s.spawned_by_tier[2], s.completed_by_tier[1]);
    assert!(s.sojourn_dominance, "a child outlived its root's sojourn");
    // End-to-end accounting: one histogram entry per non-failed closure,
    // one client release per closure.
    assert_eq!(t.e2e_hist.count(), s.roots_closed - s.roots_failed);
    let cl = r.closed_loop.as_ref().unwrap();
    assert_eq!(cl.generated, s.roots_opened);
    assert_eq!(cl.responses, s.roots_closed);
    assert_eq!(cl.waiting_at_end as u64, s.open_roots);
    // The digest carries the tier lines.
    assert!(r
        .digest()
        .contains("tiers graph=fe[1] -> app[2]*2 -> st[2]"));

    for threads in [2, 8] {
        let d = run_service(tier_config(threads, EngineKind::Round)).digest();
        assert_eq!(r.digest(), d, "1 vs {threads} threads");
    }
    let ev = run_service(tier_config(4, EngineKind::Event)).digest();
    assert_eq!(r.digest(), ev, "round vs event engine");
}

/// With a storage tier doing 4× the work at 2× the fan-out, critical-path
/// attribution concentrates there and the warm split visibly shifts budget
/// toward it relative to the cold (demand-proportional) rounds.
#[test]
fn critical_path_shifts_budget_toward_the_slow_tier() {
    let fleet = tier_fleet(
        &["fe0", "fe1", "st0", "st1"],
        &["ILP1", "ILP2", "MID1", "MID2"],
    );
    let graph = "fe[2] -> st[2]*2@4".parse().unwrap();
    let cfg = ServiceConfig::new(fleet, 220.0, CapSplit::FastCap)
        .with_rounds(16)
        .with_closed_loop(
            ClosedLoopConfig::new(96, Ps::from_us(100), BalancePolicy::LeastQueue)
                .with_mean_request_instrs(60_000.0),
        )
        .with_tiers(TierConfig::new(graph).with_e2e_target_s(0.5));
    let r = run_service(cfg);
    let t = r.tiers.as_ref().unwrap();
    let shares = t.crit_shares();
    assert!(
        shares[1] > 0.6,
        "storage should dominate the critical path: {shares:?}"
    );
    assert!(
        t.slowest_counts[1] > t.slowest_counts[0],
        "slowest-leg counts: {:?}",
        t.slowest_counts
    );
    // Budget share of the storage tier (fleet positions 2..4) grows from
    // the cold demand-proportional split to the warm critical-path one.
    let st_frac = |caps: &[f64]| (caps[2] + caps[3]) / caps.iter().sum::<f64>();
    let cold = st_frac(&r.cap_timeline[0]);
    let warm = st_frac(r.cap_timeline.last().unwrap());
    assert!(
        warm > cold + 0.05,
        "no budget shift: cold {cold:.3} -> warm {warm:.3}"
    );
}

/// Tier churn: a storage server leaves mid-run (its queued spans fail their
/// DAGs; clients are released when the root closes) and a replacement joins
/// its tier by name. Conservation and determinism survive.
#[test]
fn tier_churn_fails_orphaned_dags_and_stays_deterministic() {
    let build = |threads: usize| {
        let mut churn = ChurnSchedule::new();
        churn.leave(5, "st1").unwrap();
        churn
            .join(8, "st2", ServiceServerSpec::small("st2", "MEM1", 99, 0.0))
            .unwrap();
        tier_config(threads, EngineKind::Round)
            .with_churn(churn)
            .with_rounds(14)
    };
    let r = run_service(build(1));
    let t = r.tiers.as_ref().unwrap();
    let s = &t.stats;
    assert_eq!(s.roots_opened, s.roots_closed + s.open_roots);
    assert_eq!(s.spans_opened, s.spans_closed + s.open_spans);
    let cl = r.closed_loop.as_ref().unwrap();
    assert_eq!(cl.responses, s.roots_closed);
    assert_eq!(cl.thinking_at_end + cl.waiting_at_end, 48);
    let st2 = r.outcomes.iter().find(|o| o.name == "st2").unwrap();
    assert!(!st2.departed);
    assert!(
        r.outcomes.iter().any(|o| o.name == "st1" && o.departed),
        "st1 should have departed"
    );
    let d4 = run_service(build(4)).digest();
    assert_eq!(r.digest(), d4, "tier churn not thread-deterministic");
}

/// A fleet that churns down to empty and back keeps running (degenerate
/// rounds simply grant no caps).
#[test]
fn fleet_can_drain_to_empty_and_refill() {
    let fleet = vec![ServiceServerSpec::small("only", "MID1", 31, 20_000.0)];
    let mut churn = ChurnSchedule::new();
    churn.leave(2, "only").unwrap();
    churn
        .join(
            5,
            "fresh",
            ServiceServerSpec::small("fresh", "MID2", 32, 20_000.0),
        )
        .unwrap();
    let cfg = ServiceConfig::new(fleet, 90.0, CapSplit::FastCap)
        .with_rounds(8)
        .with_churn(churn);
    let r = run_service(cfg);
    assert_eq!(r.outcomes.len(), 2);
    assert!(r.cap_timeline[3].is_empty());
    assert_eq!(r.cap_timeline[6].len(), 1);
    let fresh = r.outcomes.iter().find(|o| o.name == "fresh").unwrap();
    assert_eq!(fresh.rounds_run, 3);
    assert!(fresh.completed > 0);
}
