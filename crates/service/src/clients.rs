//! Closed-loop clients: the interactive request → response → think cycle.
//!
//! The open-loop arrival processes in [`crate::arrivals`] keep offering
//! load no matter how slowly the fleet serves — a capped hot server just
//! sheds. Real interactive load is *closed-loop*: a finite population of
//! clients each keeps at most one request outstanding, waits for the
//! response, thinks for an exponentially distributed while, and only then
//! issues again. Offered load therefore self-throttles when servers slow
//! down, and the in-flight request count is bounded by the population —
//! the classic machine-repairman model.
//!
//! Clients interact with the fleet only at round barriers: every response
//! (or shed, or abandonment) is delivered to its client at the barrier
//! closing the round, and the batch of requests that became ready during
//! the next round's window is issued — and balanced across servers — at
//! the barrier opening it. Each client draws think times and request sizes
//! from its own forked RNG stream, so the outcome is independent of the
//! order responses arrive in and of which server served the request:
//! closed-loop runs stay bit-identical for any worker thread count.

use crate::config::ClosedLoopConfig;
use crate::queue::Request;
use simkernel::{Ps, SimRng};

/// One client: its private RNG stream and where it is in the cycle.
#[derive(Clone, Debug)]
struct Client {
    rng: SimRng,
    /// `Some(t)` — thinking, ready to issue at `t`. `None` — a request is
    /// in flight (issued but not yet resolved back to the client).
    ready_at: Option<Ps>,
}

/// A seeded population of closed-loop clients.
#[derive(Clone, Debug)]
pub struct ClientPool {
    clients: Vec<Client>,
    mean_think: Ps,
    mean_request_instrs: f64,
    generated: u64,
    responses: u64,
}

impl ClientPool {
    /// A population per `cfg`, every client ready to issue immediately.
    pub fn new(cfg: &ClosedLoopConfig) -> ClientPool {
        let mut root = SimRng::new(cfg.seed);
        let clients = (0..cfg.clients)
            .map(|i| Client {
                rng: root.fork(i as u64),
                ready_at: Some(Ps::ZERO),
            })
            .collect();
        ClientPool {
            clients,
            mean_think: cfg.mean_think,
            mean_request_instrs: cfg.mean_request_instrs,
            generated: 0,
            responses: 0,
        }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Requests issued so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Responses (completions, sheds and abandonments) delivered so far.
    pub fn responses(&self) -> u64 {
        self.responses
    }

    /// Clients currently thinking (or ready to issue).
    pub fn thinking(&self) -> usize {
        self.clients.iter().filter(|c| c.ready_at.is_some()).count()
    }

    /// Clients with a request in flight.
    pub fn waiting(&self) -> usize {
        self.clients.len() - self.thinking()
    }

    /// Delivers a response to `client` at time `at`: the client starts an
    /// exponential think and becomes ready at `at + think`. Shed and
    /// abandoned requests are delivered the same way — the client simply
    /// tries again after thinking.
    ///
    /// # Panics
    ///
    /// Panics if the client has no request in flight (a double delivery
    /// would break conservation).
    pub fn deliver(&mut self, client: u32, at: Ps) {
        let c = &mut self.clients[client as usize];
        assert!(
            c.ready_at.is_none(),
            "client {client}: response delivered while thinking"
        );
        let think = exp_think(&mut c.rng, self.mean_think);
        c.ready_at = Some(at + think);
        self.responses += 1;
    }

    /// Issues the requests whose ready times fall before `to`, stamping
    /// arrivals into `[from, to)` (a client ready before the window start
    /// issues at `from` — it was waiting for the barrier). Request sizes
    /// are uniform in `[0.5, 1.5] ×` the configured mean, drawn from the
    /// issuing client's stream. Returns the batch sorted by arrival time
    /// (ties toward the lower client index).
    pub fn issue(&mut self, from: Ps, to: Ps) -> Vec<Request> {
        let mut batch = Vec::new();
        for (i, c) in self.clients.iter_mut().enumerate() {
            let Some(at) = c.ready_at else { continue };
            if at >= to {
                continue;
            }
            let size = self.mean_request_instrs * (0.5 + c.rng.f64());
            c.ready_at = None;
            self.generated += 1;
            batch.push(Request {
                arrival: at.max(from),
                remaining_instrs: size,
                client: Some(i as u32),
                trace: None,
            });
        }
        batch.sort_by_key(|r| (r.arrival, r.client));
        batch
    }
}

/// An exponential think time with the given mean (zero mean → zero think).
fn exp_think(rng: &mut SimRng, mean: Ps) -> Ps {
    if mean == Ps::ZERO {
        return Ps::ZERO;
    }
    // -ln(1-u) with u in [0,1): finite, since 1-u is in (0,1].
    let e = -(1.0 - rng.f64()).ln();
    Ps::from_secs_f64(mean.as_secs_f64() * e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClosedLoopConfig;
    use cluster::BalancePolicy;

    fn pool(clients: usize, think_us: u64) -> ClientPool {
        ClientPool::new(
            &ClosedLoopConfig::new(clients, Ps::from_us(think_us), BalancePolicy::RoundRobin)
                .with_seed(7),
        )
    }

    #[test]
    fn population_bounds_outstanding_requests() {
        let mut p = pool(5, 0);
        let batch = p.issue(Ps::ZERO, Ps::from_ms(1));
        assert_eq!(batch.len(), 5, "everyone starts ready");
        assert_eq!(p.waiting(), 5);
        // Nobody can issue again until a response lands.
        assert!(p.issue(Ps::from_ms(1), Ps::from_ms(2)).is_empty());
        p.deliver(2, Ps::from_ms(1));
        let again = p.issue(Ps::from_ms(1), Ps::from_ms(2));
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].client, Some(2));
        assert_eq!(p.generated(), 6);
        assert_eq!(p.responses(), 1);
    }

    #[test]
    fn zero_think_reissues_at_the_window_start() {
        let mut p = pool(1, 0);
        p.issue(Ps::ZERO, Ps::from_ms(1));
        p.deliver(0, Ps::from_us(300));
        let batch = p.issue(Ps::from_ms(1), Ps::from_ms(2));
        // Became ready at 300 µs, but the barrier holds it until 1 ms.
        assert_eq!(batch[0].arrival, Ps::from_ms(1));
    }

    #[test]
    fn think_times_are_exponential_with_the_configured_mean() {
        let mut rng = SimRng::new(42);
        let mean = Ps::from_us(500);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| exp_think(&mut rng, mean).as_secs_f64())
            .sum();
        let sample_mean_us = total / n as f64 * 1e6;
        assert!(
            (sample_mean_us - 500.0).abs() < 15.0,
            "mean {sample_mean_us} µs"
        );
    }

    #[test]
    fn delivery_order_does_not_change_a_clients_future() {
        // Two pools, same seed; deliver responses to clients 0 and 1 in
        // opposite orders. Each client's next think/size draws must match.
        let mut a = pool(2, 100);
        let mut b = pool(2, 100);
        a.issue(Ps::ZERO, Ps::from_ms(1));
        b.issue(Ps::ZERO, Ps::from_ms(1));
        a.deliver(0, Ps::from_us(10));
        a.deliver(1, Ps::from_us(20));
        b.deliver(1, Ps::from_us(20));
        b.deliver(0, Ps::from_us(10));
        let ba = a.issue(Ps::from_ms(1), Ps::from_ms(2));
        let bb = b.issue(Ps::from_ms(1), Ps::from_ms(2));
        assert_eq!(ba.len(), bb.len());
        for (x, y) in ba.iter().zip(&bb) {
            assert_eq!(x.client, y.client);
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.remaining_instrs.to_bits(), y.remaining_instrs.to_bits());
        }
    }

    #[test]
    fn thinking_clients_hold_their_requests_past_the_window() {
        let mut p = pool(1, 0);
        p.issue(Ps::ZERO, Ps::from_ms(1));
        // Response lands late; the client is ready only at 5 ms.
        p.deliver(0, Ps::from_ms(5));
        assert!(p.issue(Ps::from_ms(1), Ps::from_ms(2)).is_empty());
        let batch = p.issue(Ps::from_ms(5), Ps::from_ms(6));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].arrival, Ps::from_ms(5));
    }
}
