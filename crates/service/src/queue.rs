//! Bounded FIFO request queue with a fluid service model.
//!
//! The serving layer does not simulate requests instruction-by-instruction;
//! instead each coordination round it measures the engine's aggregate
//! instruction throughput and drains queued requests *fluidly* at that
//! rate, first-come-first-served. A request's sojourn time is the span from
//! its arrival to the instant the fluid server finishes its instruction
//! demand — queueing delay plus service time under whatever DVFS plan the
//! power cap forced. Admission control is a hard bound on queue depth:
//! arrivals beyond it are shed and counted.
//!
//! The queue's accounting invariants (the half-open arrival window and
//! request conservation) are checked on *every* [`RequestQueue::advance`]
//! call, debug and release builds alike — a violation returns an error
//! rather than silently drifting the bench numbers.

use simkernel::{stats::Histogram, Ps};
use std::collections::VecDeque;
use topology::SpanCtx;

/// One in-flight request.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// When the request arrived.
    pub arrival: Ps,
    /// Instructions still to be executed on its behalf.
    pub remaining_instrs: f64,
    /// The closed-loop client that issued the request, if any (open-loop
    /// streams leave this `None`).
    pub client: Option<u32>,
    /// Trace context, when the request is a span of a multi-tier DAG
    /// (the root id lives in the tracker; such requests carry no client).
    pub trace: Option<SpanCtx>,
}

/// How a closed-loop request reached its terminal state within one
/// [`RequestQueue::advance`] window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The fluid server finished the request's instruction demand.
    Completed,
    /// Admission control shed the request at arrival (queue full).
    Shed,
}

/// A request's terminal event, reported back so the issuing client can
/// start thinking (or the DAG tracker can spawn/close spans). Only
/// requests carrying a client id or a trace context produce events.
#[derive(Clone, Copy, Debug)]
pub struct ClientEvent {
    /// The issuing client, for directly client-tagged requests.
    pub client: Option<u32>,
    /// The span that terminated, for traced multi-tier sub-requests.
    pub trace: Option<SpanCtx>,
    /// When the request completed (or was shed — its arrival instant).
    pub at: Ps,
    /// What happened to it.
    pub resolution: Resolution,
}

/// A bounded FIFO queue drained by the fluid server.
#[derive(Clone, Debug)]
pub struct RequestQueue {
    waiting: VecDeque<Request>,
    capacity: usize,
    arrived: u64,
    shed: u64,
    completed: u64,
    abandoned: u64,
}

impl RequestQueue {
    /// An empty queue holding at most `capacity` requests (including the
    /// one in service).
    pub fn new(capacity: usize) -> RequestQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        RequestQueue {
            waiting: VecDeque::new(),
            capacity,
            arrived: 0,
            shed: 0,
            completed: 0,
            abandoned: 0,
        }
    }

    /// Requests currently queued (including the one in service).
    pub fn depth(&self) -> usize {
        self.waiting.len()
    }

    /// Requests handed to the queue so far (admitted or shed).
    pub fn arrived(&self) -> u64 {
        self.arrived
    }

    /// Requests shed by admission control so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests abandoned in-queue so far (see
    /// [`RequestQueue::abandon_all`]).
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    fn admit(&mut self, r: Request, events: &mut Vec<ClientEvent>) {
        if self.waiting.len() >= self.capacity {
            self.shed += 1;
            if r.client.is_some() || r.trace.is_some() {
                events.push(ClientEvent {
                    client: r.client,
                    trace: r.trace,
                    at: r.arrival,
                    resolution: Resolution::Shed,
                });
            }
        } else {
            self.waiting.push_back(r);
        }
    }

    /// Drops everything still queued (server leaving the fleet, or the
    /// horizon ending), returning the abandoned requests so closed-loop
    /// callers can release their clients.
    pub fn abandon_all(&mut self) -> Vec<Request> {
        self.abandoned += self.waiting.len() as u64;
        self.waiting.drain(..).collect()
    }

    /// Advances the fluid server over the window `[from, to)`: admits
    /// `arrivals` (time-ordered, all strictly inside the half-open window)
    /// as their arrival times pass, drains the queue head at `rate_ips`
    /// instructions per second, and records each completion's sojourn time
    /// in picoseconds into `hist`. Requests unfinished at `to` carry their
    /// remaining instruction demand into the next window (where the rate
    /// may differ — that is how a power cap stretches the tail). Returns
    /// the terminal events of every client-tagged request resolved in the
    /// window, in resolution order.
    ///
    /// # Errors
    ///
    /// Returns an error — in debug *and* release builds, before touching
    /// any state — when `arrivals` is not time-ordered or an arrival lands
    /// at or beyond `to` (such a request belongs to the *next* window: the
    /// generator's `arrivals_until(to)` contract, and admitting it here as
    /// well would double-count it at the window boundary), and after the
    /// drain when the conservation law `arrived = completed + shed +
    /// abandoned + queued` stops holding.
    pub fn advance(
        &mut self,
        from: Ps,
        to: Ps,
        rate_ips: f64,
        arrivals: &[Request],
        hist: &mut Histogram,
    ) -> Result<Vec<ClientEvent>, String> {
        let mut events = Vec::new();
        self.advance_into(from, to, rate_ips, arrivals, hist, &mut events)?;
        Ok(events)
    }

    /// [`RequestQueue::advance`] writing terminal events into a
    /// caller-owned buffer instead of allocating a fresh vector — the
    /// hot-path form: a fleet barrier advances every server every round,
    /// and the per-call event vector was pure allocator churn. Events are
    /// appended in resolution order; existing contents are untouched.
    ///
    /// # Errors
    ///
    /// Exactly as [`RequestQueue::advance`] — and a rejected call appends
    /// no events.
    pub fn advance_into(
        &mut self,
        from: Ps,
        to: Ps,
        rate_ips: f64,
        arrivals: &[Request],
        hist: &mut Histogram,
        events: &mut Vec<ClientEvent>,
    ) -> Result<(), String> {
        if !arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival) {
            return Err("queue invariant: arrivals not time-ordered".into());
        }
        if let Some(r) = arrivals.iter().find(|r| r.arrival >= to) {
            return Err(format!(
                "queue invariant: arrival at {} is at or past the window end {} \
                 and belongs to the next window",
                r.arrival, to
            ));
        }
        self.arrived += arrivals.len() as u64;
        let mut t = from;
        let mut next = 0usize;
        loop {
            // Admit everything that has arrived by now.
            while next < arrivals.len() && arrivals[next].arrival <= t {
                self.admit(arrivals[next], events);
                next += 1;
            }
            if t >= to {
                break;
            }
            let Some(head) = self.waiting.front_mut() else {
                // Idle: jump to the next arrival, or end the window.
                match arrivals.get(next) {
                    Some(r) if r.arrival < to => t = r.arrival,
                    _ => break,
                }
                continue;
            };
            if rate_ips <= 0.0 {
                // Stalled server: nothing completes; just admit the rest.
                t = to;
                continue;
            }
            let finish = t + Ps::from_secs_f64(head.remaining_instrs / rate_ips);
            let horizon = match arrivals.get(next) {
                Some(r) if r.arrival < to => r.arrival.min(to),
                _ => to,
            };
            if finish <= horizon {
                let sojourn = finish - head.arrival;
                hist.record(sojourn.as_ps().max(1));
                if head.client.is_some() || head.trace.is_some() {
                    events.push(ClientEvent {
                        client: head.client,
                        trace: head.trace,
                        at: finish,
                        resolution: Resolution::Completed,
                    });
                }
                self.waiting.pop_front();
                self.completed += 1;
                t = finish;
            } else {
                head.remaining_instrs =
                    (head.remaining_instrs - rate_ips * (horizon - t).as_secs_f64()).max(0.0);
                t = horizon;
            }
        }
        let accounted = self.completed + self.shed + self.abandoned + self.waiting.len() as u64;
        if self.arrived != accounted {
            return Err(format!(
                "queue invariant: {} arrived but {accounted} accounted \
                 (completed {} + shed {} + abandoned {} + queued {})",
                self.arrived,
                self.completed,
                self.shed,
                self.abandoned,
                self.waiting.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(at_ns: u64, instrs: f64) -> Request {
        Request {
            arrival: Ps::from_ns(at_ns),
            remaining_instrs: instrs,
            client: None,
            trace: None,
        }
    }

    #[test]
    fn lone_request_sojourn_is_its_service_time() {
        let mut q = RequestQueue::new(16);
        let mut h = Histogram::new();
        // 1e9 instrs/s → 1000 instrs take 1 µs.
        q.advance(
            Ps::ZERO,
            Ps::from_us(10),
            1e9,
            &[req(1_000, 1_000.0)],
            &mut h,
        )
        .unwrap();
        assert_eq!(q.completed(), 1);
        assert_eq!(q.arrived(), 1);
        assert_eq!(h.count(), 1);
        let (lo, hi) = Histogram::bucket_bounds(Ps::from_us(1).as_ps());
        let p = h.percentile(0.5);
        assert!(p >= lo && p <= hi, "sojourn {p} not ≈1µs");
    }

    #[test]
    fn fifo_queueing_delay_accumulates() {
        let mut q = RequestQueue::new(16);
        let mut h = Histogram::new();
        // Two simultaneous arrivals: the second waits for the first.
        let arrivals = [req(0, 1_000.0), req(0, 1_000.0)];
        q.advance(Ps::ZERO, Ps::from_us(10), 1e9, &arrivals, &mut h)
            .unwrap();
        assert_eq!(q.completed(), 2);
        // Sojourns are 1 µs and 2 µs; mean 1.5 µs (exact, sum is unbucketed).
        let mean_us = h.mean() / 1e6;
        assert!((mean_us - 1.5).abs() < 0.01, "mean {mean_us} µs");
    }

    #[test]
    fn partial_service_carries_across_windows() {
        let mut q = RequestQueue::new(16);
        let mut h = Histogram::new();
        // 10 µs of work arrives at 0; the first window is 4 µs long.
        q.advance(Ps::ZERO, Ps::from_us(4), 1e9, &[req(0, 10_000.0)], &mut h)
            .unwrap();
        assert_eq!(q.completed(), 0);
        assert_eq!(q.depth(), 1);
        // Second window at double speed: 6000 instrs left → 3 µs more.
        q.advance(Ps::from_us(4), Ps::from_us(20), 2e9, &[], &mut h)
            .unwrap();
        assert_eq!(q.completed(), 1);
        let (lo, hi) = Histogram::bucket_bounds(Ps::from_us(7).as_ps());
        let p = h.percentile(0.5);
        assert!(p >= lo && p <= hi, "sojourn {p} not ≈7µs");
    }

    #[test]
    fn admission_control_sheds_beyond_capacity() {
        let mut q = RequestQueue::new(2);
        let mut h = Histogram::new();
        // Stalled server: all four arrive while nothing drains.
        let arrivals: Vec<Request> = (0..4).map(|i| req(i, 100.0)).collect();
        q.advance(Ps::ZERO, Ps::from_us(1), 0.0, &arrivals, &mut h)
            .unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.shed(), 2);
        assert_eq!(q.completed(), 0);
        assert_eq!(q.abandon_all().len(), 2);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.abandoned(), 2);
        assert_eq!(q.arrived(), 4);
    }

    #[test]
    fn boundary_arrival_is_rejected_in_release_builds_too() {
        // Regression: an arrival exactly at the window end used to be
        // admitted inside `[from, to)` — the next window (whose generator
        // contract hands it the same request) would then admit it again.
        // Formerly a debug_assert; now an always-on invariant error.
        let mut q = RequestQueue::new(4);
        let mut h = Histogram::new();
        let err = q
            .advance(Ps::ZERO, Ps::from_us(1), 1e9, &[req(1_000, 100.0)], &mut h)
            .unwrap_err();
        assert!(err.contains("next window"), "{err}");
        // The rejected call touched nothing.
        assert_eq!(q.arrived(), 0);
        assert_eq!(q.depth(), 0);

        let unordered = [req(500, 100.0), req(100, 100.0)];
        let err = q
            .advance(Ps::ZERO, Ps::from_us(1), 1e9, &unordered, &mut h)
            .unwrap_err();
        assert!(err.contains("time-ordered"), "{err}");
    }

    #[test]
    fn client_tagged_requests_report_terminal_events() {
        let mut q = RequestQueue::new(2);
        let mut h = Histogram::new();
        let tagged = |at_ns: u64, instrs: f64, client: u32| Request {
            client: Some(client),
            ..req(at_ns, instrs)
        };
        // Clients 0 and 1 fill the queue; client 2 is shed at arrival.
        let arrivals = [
            tagged(0, 1_000.0, 0),
            tagged(0, 1_000.0, 1),
            tagged(100, 1_000.0, 2),
        ];
        let events = q
            .advance(Ps::ZERO, Ps::from_us(10), 1e9, &arrivals, &mut h)
            .unwrap();
        assert_eq!(events.len(), 3);
        let shed = events
            .iter()
            .find(|e| e.resolution == Resolution::Shed)
            .unwrap();
        assert_eq!(shed.client, Some(2));
        assert_eq!(shed.at, Ps::from_ns(100));
        let done: Vec<Option<u32>> = events
            .iter()
            .filter(|e| e.resolution == Resolution::Completed)
            .map(|e| e.client)
            .collect();
        assert_eq!(done, vec![Some(0), Some(1)], "FIFO completion order");
    }

    #[test]
    fn traced_requests_report_terminal_events_without_a_client() {
        let mut q = RequestQueue::new(1);
        let mut h = Histogram::new();
        let span = |root: u32| SpanCtx {
            root,
            span: 1,
            parent: 0,
            tier: 1,
        };
        let traced = |at_ns: u64, root: u32| Request {
            trace: Some(span(root)),
            ..req(at_ns, 1_000.0)
        };
        // Root 0's span is admitted; root 1's is shed at arrival.
        let events = q
            .advance(
                Ps::ZERO,
                Ps::from_us(10),
                1e9,
                &[traced(0, 0), traced(100, 1)],
                &mut h,
            )
            .unwrap();
        assert_eq!(events.len(), 2);
        let shed = events
            .iter()
            .find(|e| e.resolution == Resolution::Shed)
            .unwrap();
        assert_eq!(shed.client, None);
        assert_eq!(shed.trace.unwrap().root, 1);
        let done = events
            .iter()
            .find(|e| e.resolution == Resolution::Completed)
            .unwrap();
        assert_eq!(done.trace.unwrap().root, 0);
    }

    #[test]
    fn idle_gaps_do_not_inflate_sojourns() {
        let mut q = RequestQueue::new(16);
        let mut h = Histogram::new();
        // Two requests far apart; the server idles between them.
        let arrivals = [req(0, 1_000.0), req(50_000, 1_000.0)];
        q.advance(Ps::ZERO, Ps::from_us(100), 1e9, &arrivals, &mut h)
            .unwrap();
        assert_eq!(q.completed(), 2);
        // Both sojourns are exactly the 1 µs service time; the exact mean
        // exposes any accidental inclusion of the idle gap.
        assert!((h.mean() / 1e6 - 1.0).abs() < 0.01, "mean {} ps", h.mean());
    }
}
