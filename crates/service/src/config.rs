//! Service-layer configuration: per-server serving specs and the fleet
//! configuration.

use crate::arrivals::ArrivalKind;
use cluster::{BalancePolicy, BudgetTree, CapSplit, ChurnSchedule, EngineKind};
use coscale::SimConfig;
use simkernel::Ps;
use topology::TierGraph;

/// One serving server: an engine configuration plus the request stream it
/// must absorb and the latency target it is held to.
#[derive(Clone, Debug)]
pub struct ServiceServerSpec {
    /// Display name (unique within the fleet; churn departures are by
    /// name).
    pub name: String,
    /// The underlying engine configuration. The completion target is
    /// irrelevant here — serving runs for a fixed number of rounds, so
    /// [`ServiceServerSpec::small`] pushes `target_instrs`/`max_epochs`
    /// effectively out of reach.
    pub config: SimConfig,
    /// The arrival process.
    pub arrivals: ArrivalKind,
    /// Seed of the arrival/request-size stream (independent of the engine
    /// workload seed).
    pub arrival_seed: u64,
    /// Mean instructions a request costs; actual sizes are uniform in
    /// `[0.5, 1.5] ×` this.
    pub mean_request_instrs: f64,
    /// Queue bound for admission control (requests, including the one in
    /// service).
    pub queue_capacity: usize,
    /// The server's p99 sojourn-time SLO, seconds.
    pub p99_target_s: f64,
}

impl ServiceServerSpec {
    /// A small fast serving server for tests and examples: the reduced
    /// engine configuration (4 cores, 250 µs epochs) with the completion
    /// target pushed out of reach, Poisson arrivals at `rate_hz`, 40 k
    /// instructions per request, a 512-deep queue and a 1 ms p99 target.
    ///
    /// # Panics
    ///
    /// Panics if the mix name is unknown.
    pub fn small(name: &str, mix_name: &str, seed: u64, rate_hz: f64) -> ServiceServerSpec {
        let m = workloads::mix(mix_name).unwrap_or_else(|| panic!("unknown mix {mix_name}"));
        let mut config = SimConfig::small(m);
        config.seed = seed;
        config.epoch = Ps::from_us(250);
        config.profile_window = Ps::from_us(50);
        // Serving runs never "complete": the fixed round count ends them.
        config.target_instrs = 1 << 50;
        config.max_epochs = 1_000_000;
        ServiceServerSpec {
            name: name.to_string(),
            config,
            arrivals: ArrivalKind::Poisson { rate_hz },
            arrival_seed: seed ^ 0x5e21_1ce0,
            mean_request_instrs: 40_000.0,
            queue_capacity: 512,
            p99_target_s: 1e-3,
        }
    }

    /// Same as [`ServiceServerSpec::small`] with a custom core count.
    ///
    /// # Panics
    ///
    /// Panics if the mix name is unknown.
    pub fn small_with_cores(
        name: &str,
        mix_name: &str,
        seed: u64,
        rate_hz: f64,
        cores: usize,
    ) -> ServiceServerSpec {
        let mut s = Self::small(name, mix_name, seed, rate_hz);
        s.config.cores = cores;
        s
    }

    /// Sets the p99 target.
    #[must_use]
    pub fn with_p99_target_s(mut self, target_s: f64) -> ServiceServerSpec {
        self.p99_target_s = target_s;
        self
    }

    /// Sets the arrival process.
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: ArrivalKind) -> ServiceServerSpec {
        self.arrivals = arrivals;
        self
    }
}

/// Which representation carries the closed-loop client population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClientModel {
    /// The exact per-client pool ([`crate::ClientPool`]): every client has
    /// its own RNG stream and ready time. Per-round cost scales with the
    /// population.
    #[default]
    Exact,
    /// The fluid aggregate ([`crate::FluidPool`]): population counters
    /// with cohort-sampled think→arrival transitions. Per-round cost
    /// scales with *issued requests*, enabling 10⁶+ client populations;
    /// proven against the exact model by `tests/client_equivalence.rs`.
    Fluid,
}

impl std::fmt::Display for ClientModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientModel::Exact => write!(f, "exact"),
            ClientModel::Fluid => write!(f, "fluid"),
        }
    }
}

impl std::str::FromStr for ClientModel {
    type Err = String;

    fn from_str(s: &str) -> Result<ClientModel, String> {
        match s {
            "exact" => Ok(ClientModel::Exact),
            "fluid" => Ok(ClientModel::Fluid),
            other => Err(format!(
                "unknown client model '{other}' (known: exact, fluid)"
            )),
        }
    }
}

/// Closed-loop workload: a seeded client population replaces the
/// per-server open-loop arrival streams, and a front-end
/// [`LoadBalancer`](cluster::LoadBalancer) routes each generated request
/// to a server by [`BalancePolicy`].
#[derive(Clone, Debug)]
pub struct ClosedLoopConfig {
    /// Population size — the hard bound on in-flight requests.
    pub clients: usize,
    /// Mean exponential think time between response and the next request.
    pub mean_think: Ps,
    /// How the front end assigns requests to servers.
    pub balance: BalancePolicy,
    /// Mean instructions a request costs; actual sizes are uniform in
    /// `[0.5, 1.5] ×` this, drawn from the issuing client's stream.
    pub mean_request_instrs: f64,
    /// Seed of the client population's think/size streams.
    pub seed: u64,
    /// Exact per-client pool or fluid population counters.
    pub model: ClientModel,
    /// Diurnal modulation period of the think-completion rate; zero
    /// disables modulation. With a period `P` and depth `d`, the
    /// instantaneous rate is `(1/θ)(1 + d·sin(2πt/P))` — day/night load
    /// swings at fleet scale. Requires the fluid model (the exact pool
    /// draws stationary exponential thinks).
    pub think_diurnal_period: Ps,
    /// Diurnal modulation depth in `[0, 1]`.
    pub think_diurnal_depth: f64,
}

impl ClosedLoopConfig {
    /// A population of `clients` thinking for `mean_think` on average,
    /// balanced by `balance`, with the serving layer's default 40 k
    /// instructions per request and a fixed default seed.
    pub fn new(clients: usize, mean_think: Ps, balance: BalancePolicy) -> ClosedLoopConfig {
        ClosedLoopConfig {
            clients,
            mean_think,
            balance,
            mean_request_instrs: 40_000.0,
            seed: 0xc11e_57a9,
            model: ClientModel::Exact,
            think_diurnal_period: Ps::ZERO,
            think_diurnal_depth: 0.0,
        }
    }

    /// Sets the client-stream seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> ClosedLoopConfig {
        self.seed = seed;
        self
    }

    /// Selects the population representation (see [`ClientModel`]).
    #[must_use]
    pub fn with_model(mut self, model: ClientModel) -> ClosedLoopConfig {
        self.model = model;
        self
    }

    /// Enables diurnal modulation of the think-completion rate (fluid
    /// model only): rate `(1/θ)(1 + depth·sin(2πt/period))`.
    #[must_use]
    pub fn with_think_diurnal(mut self, period: Ps, depth: f64) -> ClosedLoopConfig {
        self.think_diurnal_period = period;
        self.think_diurnal_depth = depth;
        self
    }

    /// Sets the mean request size in instructions.
    #[must_use]
    pub fn with_mean_request_instrs(mut self, instrs: f64) -> ClosedLoopConfig {
        self.mean_request_instrs = instrs;
        self
    }
}

/// Multi-tier request topology: client requests fan out into a DAG of
/// sub-requests across service tiers, the SLO binds the *end-to-end* tail,
/// and the budget shifts toward the tier on the critical path.
///
/// Requires a closed-loop workload (roots enter through the client
/// population and are balanced over the entry tier only) and replaces any
/// explicit budget topology: the fleet auto-builds a two-level tree — a
/// critical-path root over per-tier groups, each tier splitting internally
/// by [`ServiceConfig::split`].
#[derive(Clone, Debug)]
pub struct TierConfig {
    /// The tier graph (e.g. `fe[2] -> app[4]*2 -> storage[3]`); the fleet's
    /// server names must match [`TierGraph::server_names`] in order.
    pub graph: TierGraph,
    /// Per-tier budget floor under the critical-path root: each tier is
    /// floored at `floor_frac × global budget / tiers`. Zero disables
    /// explicit floors; infeasible configurations (floors raised to power
    /// minimums exceeding the budget) fail the split with a structured
    /// error.
    pub floor_frac: f64,
    /// End-to-end p99 sojourn target for closed request DAGs, seconds.
    pub e2e_target_s: f64,
    /// How many sealed rounds of critical-path attribution feed the
    /// split's tier shares.
    pub window_rounds: usize,
    /// The discipline the root node applies *across* tiers. The default
    /// [`CapSplit::CriticalPath`] shifts budget toward the slowest leg;
    /// static disciplines (uniform, demand-proportional) are the
    /// comparison baselines of the `multi-tier` experiment.
    pub tier_split: CapSplit,
}

impl TierConfig {
    /// A tier topology with defaults: a 10 % per-tier floor, a 5 ms
    /// end-to-end p99 target and a 4-round trace window.
    pub fn new(graph: TierGraph) -> TierConfig {
        TierConfig {
            graph,
            floor_frac: 0.1,
            e2e_target_s: 5e-3,
            window_rounds: 4,
            tier_split: CapSplit::CriticalPath,
        }
    }

    /// Sets the per-tier floor fraction.
    #[must_use]
    pub fn with_floor_frac(mut self, floor_frac: f64) -> TierConfig {
        self.floor_frac = floor_frac;
        self
    }

    /// Sets the end-to-end p99 target, seconds.
    #[must_use]
    pub fn with_e2e_target_s(mut self, target_s: f64) -> TierConfig {
        self.e2e_target_s = target_s;
        self
    }

    /// Sets the trace window length in rounds.
    #[must_use]
    pub fn with_window_rounds(mut self, rounds: usize) -> TierConfig {
        self.window_rounds = rounds;
        self
    }

    /// Sets the cross-tier root discipline (default critical-path).
    #[must_use]
    pub fn with_tier_split(mut self, split: CapSplit) -> TierConfig {
        self.tier_split = split;
        self
    }
}

/// Configuration of one serving-fleet simulation.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The initial fleet (churn may add or remove servers later).
    pub servers: Vec<ServiceServerSpec>,
    /// Global power budget, watts.
    pub global_cap_w: f64,
    /// The budget-splitting discipline. [`CapSplit::SlaAware`] uses the
    /// servers' windowed p99 signals; the others ignore latency. Ignored
    /// when a `topology` tree is set.
    pub split: CapSplit,
    /// Optional hierarchical budget topology. When set, every round splits
    /// the budget down the tree — interior nodes apply their own
    /// disciplines over their children's aggregated power *and* latency
    /// telemetry — instead of flat across the fleet. The tree's leaves
    /// must match the initial fleet; churn joiners attach under the root
    /// and leavers' leaves are pruned as the run progresses.
    pub topology: Option<BudgetTree>,
    /// Optional multi-tier request topology (see [`TierConfig`]). Mutually
    /// exclusive with an explicit `topology`; requires `closed_loop`.
    pub tiers: Option<TierConfig>,
    /// Coordination rounds to run (the serving horizon).
    pub rounds: usize,
    /// Engine epochs per round.
    pub epochs_per_round: usize,
    /// Worker threads within a round; results are identical for any count.
    pub threads: usize,
    /// Cap-granting quantum, watts.
    pub quantum_w: f64,
    /// How many recent rounds of latency feed the SLA signal.
    pub sla_window_rounds: usize,
    /// Scheduled fleet changes.
    pub churn: ChurnSchedule<ServiceServerSpec>,
    /// Closed-loop workload, replacing the per-server open-loop arrival
    /// streams when set: a client population issues requests at round
    /// barriers and a front-end balancer routes them across the fleet.
    pub closed_loop: Option<ClosedLoopConfig>,
    /// Which coordination engine drives the horizon: the reference
    /// round-barrier loop, or the wake-driven engine (persistent worker
    /// pool, cap-split replay when telemetry holds still). Digest-identical
    /// — see `tests/engine_equivalence.rs`.
    pub engine: EngineKind,
    /// Telemetry dead-band for the event engine's cap-split replay, watts
    /// (and, for SLA signals, seconds). `0.0` (the default) replays only
    /// bit-identical telemetry, keeping the engines digest-equal; positive
    /// values trade fidelity for fewer re-splits. Ignored by the round
    /// engine.
    pub dead_band_w: f64,
}

impl ServiceConfig {
    /// A fleet under `global_cap_w` split by `split`, with defaults: 40
    /// rounds of 4 epochs, one thread, 1 W quanta, a 4-round SLA window and
    /// no churn.
    pub fn new(
        servers: Vec<ServiceServerSpec>,
        global_cap_w: f64,
        split: CapSplit,
    ) -> ServiceConfig {
        ServiceConfig {
            servers,
            global_cap_w,
            split,
            topology: None,
            tiers: None,
            rounds: 40,
            epochs_per_round: 4,
            threads: 1,
            quantum_w: 1.0,
            sla_window_rounds: 4,
            churn: ChurnSchedule::new(),
            closed_loop: None,
            engine: EngineKind::Round,
            dead_band_w: 0.0,
        }
    }

    /// Selects the coordination engine (see [`EngineKind`]).
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> ServiceConfig {
        self.engine = engine;
        self
    }

    /// Sets the event engine's telemetry dead-band (see the `dead_band_w`
    /// field).
    #[must_use]
    pub fn with_dead_band(mut self, dead_band_w: f64) -> ServiceConfig {
        self.dead_band_w = dead_band_w;
        self
    }

    /// Switches the fleet to a closed-loop workload (see
    /// [`ClosedLoopConfig`]); per-server arrival processes are ignored.
    #[must_use]
    pub fn with_closed_loop(mut self, closed_loop: ClosedLoopConfig) -> ServiceConfig {
        self.closed_loop = Some(closed_loop);
        self
    }

    /// Sets the round count.
    #[must_use]
    pub fn with_rounds(mut self, rounds: usize) -> ServiceConfig {
        self.rounds = rounds;
        self
    }

    /// Sets the worker thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ServiceConfig {
        self.threads = threads;
        self
    }

    /// Sets the churn schedule.
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnSchedule<ServiceServerSpec>) -> ServiceConfig {
        self.churn = churn;
        self
    }

    /// Sets a hierarchical budget topology (see [`BudgetTree`]).
    #[must_use]
    pub fn with_topology(mut self, topology: BudgetTree) -> ServiceConfig {
        self.topology = Some(topology);
        self
    }

    /// Sets a multi-tier request topology (see [`TierConfig`]).
    #[must_use]
    pub fn with_tiers(mut self, tiers: TierConfig) -> ServiceConfig {
        self.tiers = Some(tiers);
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.global_cap_w.is_nan() || self.global_cap_w <= 0.0 {
            return Err(format!("global cap {} must be positive", self.global_cap_w));
        }
        if self.rounds == 0 {
            return Err("rounds must be positive".into());
        }
        if self.epochs_per_round == 0 {
            return Err("epochs_per_round must be positive".into());
        }
        if self.threads == 0 {
            return Err("threads must be positive".into());
        }
        if self.quantum_w.is_nan() || self.quantum_w <= 0.0 {
            return Err(format!("quantum {} must be positive", self.quantum_w));
        }
        if self.sla_window_rounds == 0 {
            return Err("sla_window_rounds must be positive".into());
        }
        if self.dead_band_w.is_nan() || self.dead_band_w < 0.0 {
            return Err(format!(
                "dead band {} must be finite and non-negative",
                self.dead_band_w
            ));
        }
        for s in &self.servers {
            Self::validate_spec(s)?;
        }
        let total_epochs = self.rounds.saturating_mul(self.epochs_per_round);
        for s in &self.servers {
            if total_epochs > s.config.max_epochs {
                return Err(format!(
                    "server {}: {total_epochs} total epochs exceed max_epochs {}",
                    s.name, s.config.max_epochs
                ));
            }
        }
        if let Some(tree) = &self.topology {
            let names: Vec<&str> = self.servers.iter().map(|s| s.name.as_str()).collect();
            tree.validate(&names)?;
        }
        if let Some(tc) = &self.tiers {
            tc.graph.validate()?;
            if self.topology.is_some() {
                return Err(
                    "tiers: mutually exclusive with an explicit budget topology \
                     (the tier runtime builds its own critical-path tree)"
                        .into(),
                );
            }
            if self.closed_loop.is_none() {
                return Err("tiers: requires a closed-loop workload \
                            (roots enter through the client population)"
                    .into());
            }
            if !(0.0..1.0).contains(&tc.floor_frac) || tc.floor_frac.is_nan() {
                return Err(format!(
                    "tiers: floor fraction {} must be in [0, 1)",
                    tc.floor_frac
                ));
            }
            if !tc.e2e_target_s.is_finite() || tc.e2e_target_s <= 0.0 {
                return Err(format!(
                    "tiers: end-to-end target {} must be positive",
                    tc.e2e_target_s
                ));
            }
            if tc.window_rounds == 0 {
                return Err("tiers: trace window must be positive".into());
            }
            let expect = tc.graph.server_names();
            let got: Vec<&str> = self.servers.iter().map(|s| s.name.as_str()).collect();
            if got != expect.iter().map(String::as_str).collect::<Vec<_>>() {
                return Err(format!(
                    "tiers: fleet names {got:?} must match the tier graph's \
                     server names {expect:?} in order"
                ));
            }
        }
        if let Some(cl) = &self.closed_loop {
            if cl.clients == 0 {
                return Err("closed loop: client population must be positive".into());
            }
            if !cl.mean_request_instrs.is_finite() || cl.mean_request_instrs <= 0.0 {
                return Err("closed loop: request size must be positive".into());
            }
            // The exact pool tags requests with the client's index as a
            // `u32`; a larger population would silently alias tags (the
            // 10⁶-scale overflow audit's boundary). The fluid model tracks
            // mass, not identity, so any population fits.
            if cl.model == ClientModel::Exact && cl.clients > u32::MAX as usize {
                return Err(format!(
                    "closed loop: exact model caps the population at {} \
                     (u32 client tags); use the fluid model beyond that",
                    u32::MAX
                ));
            }
            if !cl.think_diurnal_depth.is_finite() || !(0.0..=1.0).contains(&cl.think_diurnal_depth)
            {
                return Err(format!(
                    "closed loop: diurnal depth {} must be in [0, 1]",
                    cl.think_diurnal_depth
                ));
            }
            if cl.think_diurnal_depth > 0.0 {
                if cl.think_diurnal_period == Ps::ZERO {
                    return Err("closed loop: diurnal depth needs a positive period".into());
                }
                if cl.model != ClientModel::Fluid {
                    return Err("closed loop: diurnal think modulation requires the \
                                fluid client model (the exact pool draws stationary \
                                exponential thinks)"
                        .into());
                }
            }
            // The client clock is fleet-global: rounds must span the same
            // simulated time on every server, so epochs must agree.
            let Some(first) = self.servers.first() else {
                return Err("closed loop: the initial fleet cannot be empty".into());
            };
            for s in &self.servers {
                if s.config.epoch != first.config.epoch {
                    return Err(format!(
                        "closed loop: server {} epoch {} differs from {} epoch {} \
                         (the fleet-global clock needs uniform rounds)",
                        s.name, s.config.epoch, first.name, first.config.epoch
                    ));
                }
            }
        }
        Ok(())
    }

    /// Validates one serving spec (also applied to churn joiners at the
    /// round they join).
    pub(crate) fn validate_spec(s: &ServiceServerSpec) -> Result<(), String> {
        s.config
            .validate()
            .map_err(|e| format!("server {}: {e}", s.name))?;
        if s.mean_request_instrs <= 0.0 {
            return Err(format!("server {}: request size must be positive", s.name));
        }
        if s.queue_capacity == 0 {
            return Err(format!(
                "server {}: queue capacity must be positive",
                s.name
            ));
        }
        if s.p99_target_s <= 0.0 {
            return Err(format!("server {}: p99 target must be positive", s.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_configs() {
        let ok = ServiceConfig::new(
            vec![ServiceServerSpec::small("s0", "MID1", 1, 1000.0)],
            100.0,
            CapSplit::SlaAware,
        );
        assert!(ok.validate().is_ok());

        let mut c = ok.clone();
        c.global_cap_w = -1.0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.rounds = 0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.servers[0].queue_capacity = 0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.servers[0].p99_target_s = 0.0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.dead_band_w = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = ok;
        c.rounds = 2_000_000;
        assert!(c.validate().is_err());
    }

    #[test]
    fn tier_validation_pins_closed_loop_names_and_floors() {
        use cluster::BalancePolicy;
        let graph: TierGraph = "fe[1] -> st[2]*2".parse().unwrap();
        let fleet = |names: &[&str]| -> Vec<ServiceServerSpec> {
            names
                .iter()
                .enumerate()
                .map(|(i, n)| ServiceServerSpec::small(n, "MID1", i as u64, 1000.0))
                .collect()
        };
        let cl = ClosedLoopConfig::new(8, Ps::from_us(200), BalancePolicy::LeastQueue);
        let ok = ServiceConfig::new(fleet(&["fe0", "st0", "st1"]), 180.0, CapSplit::FastCap)
            .with_closed_loop(cl.clone())
            .with_tiers(TierConfig::new(graph.clone()));
        assert!(ok.validate().is_ok(), "{:?}", ok.validate());

        let mut open_loop = ok.clone();
        open_loop.closed_loop = None;
        assert!(open_loop.validate().is_err(), "tiers need a closed loop");

        let wrong_names =
            ServiceConfig::new(fleet(&["fe0", "stA", "st1"]), 180.0, CapSplit::FastCap)
                .with_closed_loop(cl.clone())
                .with_tiers(TierConfig::new(graph.clone()));
        assert!(wrong_names.validate().is_err());

        let mut bad_floor = ok.clone();
        bad_floor.tiers.as_mut().unwrap().floor_frac = 1.0;
        assert!(bad_floor.validate().is_err());

        let mut with_tree = ok;
        with_tree.topology = Some(cluster::BudgetTree::new(cluster::BudgetNode::group(
            "g",
            CapSplit::Uniform,
            vec![
                cluster::BudgetNode::server("fe0"),
                cluster::BudgetNode::server("st0"),
                cluster::BudgetNode::server("st1"),
            ],
        )));
        assert!(
            with_tree.validate().is_err(),
            "tiers exclude explicit trees"
        );
    }

    #[test]
    fn closed_loop_validation_pins_population_and_uniform_epochs() {
        use cluster::BalancePolicy;
        let base = || {
            ServiceConfig::new(
                vec![
                    ServiceServerSpec::small("s0", "MID1", 1, 1000.0),
                    ServiceServerSpec::small("s1", "ILP1", 2, 1000.0),
                ],
                100.0,
                CapSplit::Uniform,
            )
        };
        let cl = ClosedLoopConfig::new(8, Ps::from_us(200), BalancePolicy::PowerHeadroom);
        assert!(base().with_closed_loop(cl.clone()).validate().is_ok());

        let mut empty = ClosedLoopConfig::new(0, Ps::ZERO, BalancePolicy::RoundRobin);
        assert!(base().with_closed_loop(empty.clone()).validate().is_err());
        empty.clients = 4;
        empty.mean_request_instrs = 0.0;
        assert!(base().with_closed_loop(empty).validate().is_err());

        let mut skewed = base().with_closed_loop(cl.clone());
        skewed.servers[1].config.epoch = Ps::from_us(125);
        assert!(skewed.validate().is_err(), "mismatched epochs must fail");

        let mut no_fleet = base().with_closed_loop(cl);
        no_fleet.servers.clear();
        assert!(no_fleet.validate().is_err());
    }

    #[test]
    fn client_model_parse_display_round_trip() {
        for m in [ClientModel::Exact, ClientModel::Fluid] {
            assert_eq!(m.to_string().parse::<ClientModel>().unwrap(), m);
        }
        assert!("nosuch".parse::<ClientModel>().is_err());
        assert_eq!(ClientModel::default(), ClientModel::Exact);
    }

    #[test]
    fn fluid_validation_pins_tag_space_and_diurnal_params() {
        use cluster::BalancePolicy;
        let base = || {
            ServiceConfig::new(
                vec![ServiceServerSpec::small("s0", "MID1", 1, 1000.0)],
                100.0,
                CapSplit::Uniform,
            )
        };
        let cl =
            |clients| ClosedLoopConfig::new(clients, Ps::from_us(200), BalancePolicy::RoundRobin);

        // Boundary regression: the exact model's u32 tag space is a hard
        // population cap; the fluid model is not bound by it.
        let at_cap = cl(u32::MAX as usize);
        assert!(base().with_closed_loop(at_cap).validate().is_ok());
        let over_cap = cl(u32::MAX as usize + 1);
        assert!(base()
            .with_closed_loop(over_cap.clone())
            .validate()
            .is_err());
        let fluid_over = over_cap.with_model(ClientModel::Fluid);
        assert!(base().with_closed_loop(fluid_over).validate().is_ok());

        // Diurnal modulation needs a period, a sane depth, and the fluid
        // model.
        let diurnal = cl(8)
            .with_model(ClientModel::Fluid)
            .with_think_diurnal(Ps::from_ms(10), 0.8);
        assert!(base().with_closed_loop(diurnal.clone()).validate().is_ok());
        let exact_diurnal = diurnal.clone().with_model(ClientModel::Exact);
        assert!(base().with_closed_loop(exact_diurnal).validate().is_err());
        let no_period = cl(8)
            .with_model(ClientModel::Fluid)
            .with_think_diurnal(Ps::ZERO, 0.5);
        assert!(base().with_closed_loop(no_period).validate().is_err());
        let deep = cl(8)
            .with_model(ClientModel::Fluid)
            .with_think_diurnal(Ps::from_ms(10), 1.5);
        assert!(base().with_closed_loop(deep).validate().is_err());
    }
}
