//! One serving server: the epoch engine under a coordinator-written power
//! cap, plus the request stream it serves.
//!
//! Each round the server (1) advances the engine `epochs_per_round` epochs
//! under its current cap, (2) measures the aggregate instruction throughput
//! the engine actually achieved over that window, (3) pulls the arrivals
//! that fell inside the window and drains the queue fluidly at the measured
//! rate. Slower DVFS plans (tighter caps) thus directly stretch request
//! sojourn times — the link between power capping and tail latency the
//! SLA-aware discipline exploits.

use crate::arrivals::ArrivalGen;
use crate::config::ServiceServerSpec;
use crate::queue::{ClientEvent, Request, RequestQueue};
use cluster::{CappedPolicy, ServerDemand, SharedCap, SlaSignal};
use coscale::{PolicyKind, Runner};
use simkernel::{stats::Histogram, Ps, SimRng};
use std::collections::VecDeque;

/// One serving server.
pub struct ServiceServer {
    /// Display name from the spec.
    pub name: String,
    runner: Runner,
    cap: SharedCap,
    cap_w: f64,
    mean_cap_num: f64,
    rounds_run: u64,
    records_seen: usize,
    // Serving state.
    arrivals: ArrivalGen,
    size_rng: SimRng,
    mean_request_instrs: f64,
    queue: RequestQueue,
    p99_target_s: f64,
    /// All sojourns since the server joined.
    cum_hist: Histogram,
    /// Most recent per-round histograms (the SLA feedback window).
    window: VecDeque<Histogram>,
    window_rounds: usize,
    violation_rounds: u64,
    // Closed-loop state (absent in open-loop mode). The fleet runs on a
    // global clock; this server's engine started `clock_offset` after it
    // (zero for the initial fleet, the join time for churn joiners), so
    // requests arrive with `global - offset` stamps and events leave with
    // `local + offset` stamps.
    closed_loop: bool,
    clock_offset: Ps,
    pending: Vec<Request>,
    events: Vec<ClientEvent>,
}

impl ServiceServer {
    /// Builds the server from its spec, initially granted `initial_cap_w`,
    /// with an SLA window of `window_rounds` rounds.
    pub fn new(
        spec: &ServiceServerSpec,
        initial_cap_w: f64,
        window_rounds: usize,
    ) -> ServiceServer {
        let cap = SharedCap::new(initial_cap_w);
        let policy = CappedPolicy::new(cap.clone());
        let runner =
            Runner::new(spec.config.clone(), PolicyKind::PowerCap).with_policy(Box::new(policy));
        ServiceServer {
            name: spec.name.clone(),
            runner,
            cap,
            cap_w: initial_cap_w,
            mean_cap_num: 0.0,
            rounds_run: 0,
            records_seen: 0,
            arrivals: ArrivalGen::new(spec.arrivals, spec.arrival_seed),
            size_rng: SimRng::new(spec.arrival_seed ^ 0x517e_d00d),
            mean_request_instrs: spec.mean_request_instrs,
            queue: RequestQueue::new(spec.queue_capacity),
            p99_target_s: spec.p99_target_s,
            cum_hist: Histogram::new(),
            window: VecDeque::new(),
            window_rounds: window_rounds.max(1),
            violation_rounds: 0,
            closed_loop: false,
            clock_offset: Ps::ZERO,
            pending: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Switches the server to closed-loop serving: arrivals come from
    /// [`ServiceServer::assign_requests`] instead of the spec's arrival
    /// process, stamped on the fleet-global clock that reads `offset` at
    /// this server's engine time zero.
    pub fn set_closed_loop(&mut self, offset: Ps) {
        self.closed_loop = true;
        self.clock_offset = offset;
    }

    /// Hands the server its balanced share of a round's request batch
    /// (fleet-global arrival stamps, already time-ordered).
    pub fn assign_requests(&mut self, reqs: impl IntoIterator<Item = Request>) {
        self.pending.extend(reqs.into_iter().map(|r| Request {
            arrival: r.arrival - self.clock_offset,
            ..r
        }));
    }

    /// Drains the terminal events of the last round's client-tagged
    /// requests, stamped back onto the fleet-global clock.
    pub fn take_events(&mut self) -> Vec<ClientEvent> {
        let offset = self.clock_offset;
        self.events
            .drain(..)
            .map(|e| ClientEvent {
                at: e.at + offset,
                ..e
            })
            .collect()
    }

    /// Assigns the cap for the coming round.
    pub fn set_cap(&mut self, cap_w: f64) {
        self.cap.set(cap_w);
        self.cap_w = cap_w;
    }

    /// Total committed instructions across all cores.
    fn total_instrs(&self) -> u64 {
        self.runner.system().instrs().iter().sum()
    }

    /// Advances the engine `epochs` epochs and serves the request stream
    /// over the simulated window at the throughput the engine delivered.
    pub fn step_round(&mut self, epochs: usize) {
        let t0 = self.runner.system().now();
        let i0 = self.total_instrs();
        for _ in 0..epochs {
            if self.runner.is_done() {
                break;
            }
            self.runner.step_epoch();
        }
        let t1 = self.runner.system().now();
        let dt = (t1 - t0).as_secs_f64();
        let rate_ips = if dt > 0.0 {
            (self.total_instrs() - i0) as f64 / dt
        } else {
            0.0
        };
        // Requests that arrived during the window, with their sizes: the
        // balanced batch in closed-loop mode, the spec's arrival process
        // otherwise. `pending` doubles as the arrivals arena in both
        // modes (and terminal events append straight into the retained
        // `events` buffer), so the per-round per-server Vec churn of the
        // old code is gone.
        if !self.closed_loop {
            debug_assert!(self.pending.is_empty(), "open-loop servers get no batches");
            for arrival in self.arrivals.arrivals_until(t1) {
                self.pending.push(Request {
                    arrival,
                    remaining_instrs: self.mean_request_instrs * (0.5 + self.size_rng.f64()),
                    client: None,
                    trace: None,
                });
            }
        }
        let mut round_hist = Histogram::new();
        self.queue
            .advance_into(
                t0,
                t1,
                rate_ips,
                &self.pending,
                &mut round_hist,
                &mut self.events,
            )
            .unwrap_or_else(|e| panic!("server {}: {e}", self.name));
        self.pending.clear();
        self.cum_hist.merge(&round_hist);
        self.window.push_back(round_hist);
        while self.window.len() > self.window_rounds {
            self.window.pop_front();
        }
        let sla = self.sla_signal();
        if sla.p99_s > 0.0 && sla.violating() {
            self.violation_rounds += 1;
        }
        self.mean_cap_num += self.cap_w;
        self.rounds_run += 1;
    }

    /// Power telemetry for cap splitting: the mean of the engine's
    /// per-epoch demand/floor predictions since the last call (see the
    /// batch layer's `Server::status` for the same convention).
    pub fn demand(&mut self) -> ServerDemand {
        let records = self.runner.records();
        let fresh = &records[self.records_seen.min(records.len())..];
        let (demand_w, min_w) = if fresh.is_empty() {
            records
                .last()
                .map_or((0.0, 0.0), |r| (r.demand_power_w, r.min_power_w))
        } else {
            let n = fresh.len() as f64;
            (
                fresh.iter().map(|r| r.demand_power_w).sum::<f64>() / n,
                fresh.iter().map(|r| r.min_power_w).sum::<f64>() / n,
            )
        };
        self.records_seen = records.len();
        ServerDemand {
            demand_w,
            min_w,
            active: true,
        }
    }

    /// The latency signal for SLA-aware splitting: windowed p99 (zero
    /// before any completion) against the server's target.
    pub fn sla_signal(&self) -> SlaSignal {
        let mut merged = Histogram::new();
        for h in &self.window {
            merged.merge(h);
        }
        let p99_s = if merged.count() == 0 {
            0.0
        } else {
            merged.percentile(0.99) as f64 / 1e12
        };
        SlaSignal {
            p99_s,
            target_s: self.p99_target_s,
        }
    }

    /// The server's p99 target, seconds.
    pub fn p99_target_s(&self) -> f64 {
        self.p99_target_s
    }

    /// All sojourn times since the server joined.
    pub fn histogram(&self) -> &Histogram {
        &self.cum_hist
    }

    /// Requests handed to the server so far (admitted or shed).
    pub fn arrived(&self) -> u64 {
        self.queue.arrived()
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.queue.completed()
    }

    /// Requests shed by admission control so far.
    pub fn shed(&self) -> u64 {
        self.queue.shed()
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Rounds where the windowed p99 exceeded the target.
    pub fn violation_rounds(&self) -> u64 {
        self.violation_rounds
    }

    /// Rounds this server participated in.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Mean assigned cap over the rounds run, watts.
    pub fn mean_cap_w(&self) -> f64 {
        if self.rounds_run == 0 {
            0.0
        } else {
            self.mean_cap_num / self.rounds_run as f64
        }
    }

    /// Engine energy consumed so far, joules.
    pub fn energy_j(&self) -> f64 {
        self.runner.energy_so_far_j()
    }

    /// Simulated time reached.
    pub fn now(&self) -> Ps {
        self.runner.system().now()
    }

    /// Requests abandoned in-queue so far.
    pub fn abandoned(&self) -> u64 {
        self.queue.abandoned()
    }

    /// Abandons everything still queued (the server is leaving the fleet,
    /// or the horizon ended), returning the abandoned requests with their
    /// arrival stamps converted back to the fleet-global clock so
    /// closed-loop callers can release the issuing clients.
    pub fn abandon_queue(&mut self) -> Vec<Request> {
        let offset = self.clock_offset;
        self.queue
            .abandon_all()
            .into_iter()
            .map(|r| Request {
                arrival: r.arrival + offset,
                ..r
            })
            .collect()
    }
}
