//! The serving-fleet simulation loop: rounds of (apply churn → collect
//! power and latency telemetry → split the budget → serve a coordination
//! period in parallel), for a fixed horizon.

use crate::clients::ClientPool;
use crate::config::ServiceConfig;
use crate::server::ServiceServer;
use cluster::{
    split_caps, split_caps_sla, BalancePolicy, CapSplit, ChurnAction, LoadBalancer, ServerDemand,
    ServerLoad, SlaSignal,
};
use simkernel::{stats::Histogram, Ps};

/// One server's final accounting (final fleet members and churn departures
/// alike).
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// Server name from the spec.
    pub name: String,
    /// Whether the server left the fleet before the horizon (churn).
    pub departed: bool,
    /// Engine energy consumed while in the fleet, joules.
    pub energy_j: f64,
    /// Requests handed to the server (admitted or shed).
    pub arrived: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests abandoned in-queue (at departure, or still queued at the
    /// horizon).
    pub abandoned: u64,
    /// Rounds whose windowed p99 exceeded the target.
    pub violation_rounds: u64,
    /// Rounds the server participated in.
    pub rounds_run: u64,
    /// Mean granted cap over those rounds, watts.
    pub mean_cap_w: f64,
    /// The server's p99 target, seconds.
    pub p99_target_s: f64,
    /// All sojourn times, picosecond-bucketed.
    pub hist: Histogram,
    /// Simulated time the server reached.
    pub now: Ps,
}

impl ServiceOutcome {
    /// The `q`-quantile sojourn time in seconds (zero if no completions).
    pub fn percentile_s(&self, q: f64) -> f64 {
        self.hist.percentile(q) as f64 / 1e12
    }

    /// Whole-run p99 sojourn, seconds.
    pub fn p99_s(&self) -> f64 {
        self.percentile_s(0.99)
    }

    /// Whether the whole-run p99 met the server's target (vacuously true
    /// with no completions).
    pub fn meets_slo(&self) -> bool {
        self.hist.count() == 0 || self.p99_s() <= self.p99_target_s
    }
}

/// The closed-loop client population's final accounting.
#[derive(Clone, Debug)]
pub struct ClientSummary {
    /// Population size.
    pub clients: usize,
    /// The balancing policy the front end ran.
    pub balance: BalancePolicy,
    /// Mean think time.
    pub mean_think: Ps,
    /// Requests the population issued.
    pub generated: u64,
    /// Responses delivered back (completions, sheds, churn abandonments).
    pub responses: u64,
    /// Clients thinking (or ready) when the horizon ended.
    pub thinking_at_end: usize,
    /// Clients whose request was still in a queue at the horizon.
    pub waiting_at_end: usize,
}

/// Everything one serving-fleet simulation produces.
#[derive(Clone, Debug)]
pub struct ServiceResult {
    /// The splitting discipline that ran.
    pub split: CapSplit,
    /// The rendered budget topology the run started with, when
    /// hierarchical (churn may have reshaped it along the way).
    pub topology: Option<String>,
    /// The global budget, watts.
    pub global_cap_w: f64,
    /// Per-server outcomes: churn departures first (in departure order),
    /// then the final fleet in fleet order.
    pub outcomes: Vec<ServiceOutcome>,
    /// Coordination rounds executed.
    pub rounds: usize,
    /// Per-round granted caps (ragged: the fleet size may change), watts.
    pub cap_timeline: Vec<Vec<f64>>,
    /// The client population's accounting, when the run was closed-loop.
    pub closed_loop: Option<ClientSummary>,
}

impl ServiceResult {
    /// Total fleet energy, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.outcomes.iter().map(|o| o.energy_j).sum()
    }

    /// Total requests completed.
    pub fn total_completed(&self) -> u64 {
        self.outcomes.iter().map(|o| o.completed).sum()
    }

    /// Total requests shed.
    pub fn total_shed(&self) -> u64 {
        self.outcomes.iter().map(|o| o.shed).sum()
    }

    /// SLO-violation rounds summed over the fleet.
    pub fn total_violation_rounds(&self) -> u64 {
        self.outcomes.iter().map(|o| o.violation_rounds).sum()
    }

    /// The fleet-wide sojourn distribution (all servers merged).
    pub fn fleet_hist(&self) -> Histogram {
        let mut h = Histogram::new();
        for o in &self.outcomes {
            h.merge(&o.hist);
        }
        h
    }

    /// Fleet-wide `q`-quantile sojourn, seconds.
    pub fn fleet_percentile_s(&self, q: f64) -> f64 {
        self.fleet_hist().percentile(q) as f64 / 1e12
    }

    /// Whether every server met its whole-run p99 target.
    pub fn all_meet_slo(&self) -> bool {
        self.outcomes.iter().all(ServiceOutcome::meets_slo)
    }

    /// A bit-exact digest of every scheduling-sensitive number: per-server
    /// energies, caps, queue counters, full latency-bucket state and the
    /// cap timeline. Two runs of the same configuration must produce
    /// identical digests regardless of the worker thread count.
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "split={} topo={} cap={:016x} rounds={}\n",
            self.split,
            self.topology.as_deref().unwrap_or("flat"),
            self.global_cap_w.to_bits(),
            self.rounds
        );
        if let Some(cl) = &self.closed_loop {
            let _ = writeln!(
                s,
                "closed clients={} balance={} think={} generated={} responses={} \
                 thinking={} waiting={}",
                cl.clients,
                cl.balance,
                cl.mean_think.as_ps(),
                cl.generated,
                cl.responses,
                cl.thinking_at_end,
                cl.waiting_at_end,
            );
        }
        for o in &self.outcomes {
            let _ = writeln!(
                s,
                "{} departed={} energy={:016x} arrived={} done={} shed={} abandoned={} viol={} \
                 mean_cap={:016x} n={} p50={} p99={} p999={} now={}",
                o.name,
                o.departed,
                o.energy_j.to_bits(),
                o.arrived,
                o.completed,
                o.shed,
                o.abandoned,
                o.violation_rounds,
                o.mean_cap_w.to_bits(),
                o.hist.count(),
                o.hist.percentile(0.50),
                o.hist.percentile(0.99),
                o.hist.percentile(0.999),
                o.now.as_ps(),
            );
        }
        for (r, caps) in self.cap_timeline.iter().enumerate() {
            let _ = write!(s, "round {r}:");
            for c in caps {
                let _ = write!(s, " {:016x}", c.to_bits());
            }
            let _ = writeln!(s);
        }
        s
    }
}

/// The serving-fleet simulator. Build with a validated [`ServiceConfig`],
/// then call [`ServiceSim::run`].
pub struct ServiceSim {
    config: ServiceConfig,
    servers: Vec<ServiceServer>,
}

impl ServiceSim {
    /// Builds the initial fleet.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ServiceConfig) -> ServiceSim {
        if let Err(e) = config.validate() {
            panic!("invalid service config: {e}");
        }
        let n = config.servers.len().max(1);
        let initial = config.global_cap_w / n as f64;
        let servers = config
            .servers
            .iter()
            .map(|spec| {
                let mut s = ServiceServer::new(spec, initial, config.sla_window_rounds);
                if config.closed_loop.is_some() {
                    s.set_closed_loop(Ps::ZERO);
                }
                s
            })
            .collect();
        ServiceSim { config, servers }
    }

    fn outcome(mut server: ServiceServer, departed: bool) -> ServiceOutcome {
        server.abandon_queue();
        ServiceOutcome {
            name: server.name.clone(),
            departed,
            energy_j: server.energy_j(),
            arrived: server.arrived(),
            completed: server.completed(),
            shed: server.shed(),
            abandoned: server.abandoned(),
            violation_rounds: server.violation_rounds(),
            rounds_run: server.rounds_run(),
            mean_cap_w: server.mean_cap_w(),
            p99_target_s: server.p99_target_s(),
            hist: server.histogram().clone(),
            now: server.now(),
        }
    }

    /// Runs the configured number of rounds, applying churn at round
    /// boundaries, and aggregates.
    ///
    /// Within a round servers are advanced on up to `config.threads`
    /// worker threads. Servers exchange state with the coordinator only at
    /// round barriers, so results are bit-identical for every thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if a churn join carries an invalid spec, or a joiner's
    /// remaining epochs exceed its `max_epochs`.
    pub fn run(mut self) -> ServiceResult {
        let mut churn = self.config.churn.clone();
        let mut topology = self.config.topology.clone();
        let topology_spec = topology.as_ref().map(|t| t.to_string());
        let mut departures: Vec<ServiceOutcome> = Vec::new();
        let mut cap_timeline: Vec<Vec<f64>> = Vec::new();
        // Closed-loop machinery: the client population, the front-end
        // balancer, and the fleet-global clock (round `r` spans
        // `[r·D, (r+1)·D)` where `D` is the uniform round duration —
        // validated for the initial fleet, asserted for churn joiners).
        let closed = self.config.closed_loop.clone();
        let mut pool = closed.as_ref().map(ClientPool::new);
        let mut balancer = closed.as_ref().map(|cl| LoadBalancer::new(cl.balance));
        let round_d = self
            .config
            .servers
            .first()
            .map(|s| s.config.epoch * self.config.epochs_per_round as u64)
            .unwrap_or(Ps::ZERO);
        let global_time = |round: usize| round_d * round as u64;
        for round in 0..self.config.rounds {
            // --- churn: apply fleet changes due at this boundary ---
            for action in churn.drain_due(round) {
                match action {
                    ChurnAction::Join(spec) => {
                        if let Err(e) = ServiceConfig::validate_spec(&spec) {
                            panic!("churn join: {e}");
                        }
                        let left = (self.config.rounds - round) * self.config.epochs_per_round;
                        assert!(
                            left <= spec.config.max_epochs,
                            "churn join {}: {left} remaining epochs exceed max_epochs",
                            spec.name
                        );
                        // Joiners enter with a zero cap but participate in
                        // this same round's split, which grants their
                        // share immediately. Under a topology they attach
                        // as direct children of the root group.
                        if let Some(tree) = &mut topology {
                            if let Err(e) = tree.attach_server(&spec.name, None) {
                                panic!("churn join {}: {e}", spec.name);
                            }
                        }
                        let mut server =
                            ServiceServer::new(&spec, 0.0, self.config.sla_window_rounds);
                        if pool.is_some() {
                            assert_eq!(
                                spec.config.epoch * self.config.epochs_per_round as u64,
                                round_d,
                                "churn join {}: round duration differs from the fleet's \
                                 (the closed-loop clock needs uniform rounds)",
                                spec.name
                            );
                            server.set_closed_loop(global_time(round));
                        }
                        self.servers.push(server);
                    }
                    ChurnAction::Leave(name) => {
                        if let Some(i) = self.servers.iter().position(|s| s.name == name) {
                            let mut server = self.servers.remove(i);
                            // Closed loop: the departing server's queued
                            // requests are lost; their clients learn at
                            // this barrier and go back to thinking.
                            let orphans = server.abandon_queue();
                            if let Some(pool) = pool.as_mut() {
                                let now = global_time(round);
                                for r in orphans {
                                    if let Some(client) = r.client {
                                        pool.deliver(client, now);
                                    }
                                }
                            }
                            departures.push(Self::outcome(server, true));
                            if let Some(tree) = &mut topology {
                                tree.remove_server(&name);
                            }
                        }
                    }
                }
            }
            if self.servers.is_empty() {
                // Degenerate round: no caps, and no requests issued —
                // ready clients simply wait for the fleet to refill.
                cap_timeline.push(Vec::new());
                continue;
            }

            // --- coordinate: telemetry in, caps out ---
            let demands: Vec<ServerDemand> =
                self.servers.iter_mut().map(ServiceServer::demand).collect();
            let caps = match (&topology, self.config.split) {
                (Some(tree), _) => {
                    // Hierarchical: the budget flows down the tree with
                    // both power and latency telemetry, so SLA-aware
                    // interior nodes react to their subtree's worst
                    // violation ratio.
                    let names: Vec<&str> = self.servers.iter().map(|s| s.name.as_str()).collect();
                    let signals: Vec<SlaSignal> =
                        self.servers.iter().map(ServiceServer::sla_signal).collect();
                    tree.split(
                        self.config.global_cap_w,
                        &names,
                        &demands,
                        Some(&signals),
                        self.config.quantum_w,
                    )
                }
                (None, CapSplit::SlaAware) => {
                    let signals: Vec<SlaSignal> =
                        self.servers.iter().map(ServiceServer::sla_signal).collect();
                    split_caps_sla(
                        self.config.global_cap_w,
                        &demands,
                        &signals,
                        self.config.quantum_w,
                    )
                }
                (None, split) => split_caps(
                    split,
                    self.config.global_cap_w,
                    &demands,
                    self.config.quantum_w,
                ),
            };
            for (server, &cap) in self.servers.iter_mut().zip(&caps) {
                server.set_cap(cap);
            }

            // --- closed loop: issue the round's requests and balance ---
            if let (Some(pool), Some(balancer)) = (pool.as_mut(), balancer.as_mut()) {
                let t0 = global_time(round);
                let batch = pool.issue(t0, t0 + round_d);
                if !batch.is_empty() {
                    let loads: Vec<ServerLoad> = self
                        .servers
                        .iter()
                        .zip(&demands)
                        .zip(&caps)
                        .map(|((server, demand), &cap_w)| ServerLoad {
                            demand: *demand,
                            cap_w,
                            queue_depth: server.queue_depth(),
                        })
                        .collect();
                    let targets = balancer.assign_batch(batch.len(), &loads);
                    for (req, &target) in batch.iter().zip(&targets) {
                        self.servers[target].assign_requests([*req]);
                    }
                }
            }
            cap_timeline.push(caps);

            // --- serve one coordination period ---
            let epochs = self.config.epochs_per_round;
            if self.config.threads == 1 {
                for server in &mut self.servers {
                    server.step_round(epochs);
                }
            } else {
                let chunk = self.servers.len().div_ceil(self.config.threads);
                std::thread::scope(|scope| {
                    for servers in self.servers.chunks_mut(chunk) {
                        scope.spawn(move || {
                            for server in servers {
                                server.step_round(epochs);
                            }
                        });
                    }
                });
            }

            // --- closed loop: deliver the round's responses ---
            // Fleet order then event order — but each client draws from
            // its own stream and holds one request at a time, so delivery
            // order cannot leak into the result.
            if let Some(pool) = pool.as_mut() {
                for server in &mut self.servers {
                    for ev in server.take_events() {
                        pool.deliver(ev.client, ev.at);
                    }
                }
            }
        }

        let closed_loop = match (&closed, &pool) {
            (Some(cl), Some(pool)) => Some(ClientSummary {
                clients: pool.len(),
                balance: cl.balance,
                mean_think: cl.mean_think,
                generated: pool.generated(),
                responses: pool.responses(),
                thinking_at_end: pool.thinking(),
                waiting_at_end: pool.waiting(),
            }),
            _ => None,
        };
        let mut outcomes = departures;
        outcomes.extend(self.servers.into_iter().map(|s| Self::outcome(s, false)));
        ServiceResult {
            split: self.config.split,
            topology: topology_spec,
            global_cap_w: self.config.global_cap_w,
            outcomes,
            rounds: self.config.rounds,
            cap_timeline,
            closed_loop,
        }
    }
}

/// Convenience: build and run a serving fleet in one call.
pub fn run_service(config: ServiceConfig) -> ServiceResult {
    ServiceSim::new(config).run()
}
