//! The serving-fleet simulation loop: rounds of (apply churn → collect
//! power and latency telemetry → split the budget → serve a coordination
//! period in parallel), for a fixed horizon.
//!
//! Two [`FleetEngine`]s drive the horizon (selected by
//! [`ServiceConfig::engine`]): the reference [`ServiceRoundEngine`] loops
//! over round indices with scoped threads spawned afresh per round; the
//! [`ServiceEventEngine`] pulls barriers off a picosecond-ordered wake
//! queue, steps the fleet on a persistent [`WorkerPool`], and replays the
//! previous cap split whenever no server's telemetry moved. Their results
//! are digest-identical — see `tests/engine_equivalence.rs`.

use crate::config::{ClientModel, ServiceConfig};
use crate::fluid::ClientEngine;
use crate::queue::{ClientEvent, Request, Resolution};
use crate::server::ServiceServer;
use cluster::{
    split_caps, split_caps_sla, BalancePolicy, BudgetNode, BudgetTree, CapCache, CapSplit,
    ChurnAction, EngineKind, FleetEngine, LoadBalancer, ServerDemand, ServerLoad, SlaSignal,
    TreeSignals, WorkerPool,
};
use simkernel::{stats::Histogram, EventQueue, Ps};
use topology::{DagTracker, TierGraph, TraceCollector, TraceStats};

/// One server's final accounting (final fleet members and churn departures
/// alike).
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// Server name from the spec.
    pub name: String,
    /// Whether the server left the fleet before the horizon (churn).
    pub departed: bool,
    /// Engine energy consumed while in the fleet, joules.
    pub energy_j: f64,
    /// Requests handed to the server (admitted or shed).
    pub arrived: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests abandoned in-queue (at departure, or still queued at the
    /// horizon).
    pub abandoned: u64,
    /// Rounds whose windowed p99 exceeded the target.
    pub violation_rounds: u64,
    /// Rounds the server participated in.
    pub rounds_run: u64,
    /// Mean granted cap over those rounds, watts.
    pub mean_cap_w: f64,
    /// The server's p99 target, seconds.
    pub p99_target_s: f64,
    /// All sojourn times, picosecond-bucketed.
    pub hist: Histogram,
    /// Simulated time the server reached.
    pub now: Ps,
}

impl ServiceOutcome {
    /// The `q`-quantile sojourn time in seconds (zero if no completions).
    pub fn percentile_s(&self, q: f64) -> f64 {
        self.hist.percentile(q) as f64 / 1e12
    }

    /// Whole-run p99 sojourn, seconds.
    pub fn p99_s(&self) -> f64 {
        self.percentile_s(0.99)
    }

    /// Whether the whole-run p99 met the server's target (vacuously true
    /// with no completions).
    pub fn meets_slo(&self) -> bool {
        self.hist.count() == 0 || self.p99_s() <= self.p99_target_s
    }
}

/// The closed-loop client population's final accounting.
#[derive(Clone, Debug)]
pub struct ClientSummary {
    /// Population size.
    pub clients: usize,
    /// Which client model carried the population.
    pub model: ClientModel,
    /// The balancing policy the front end ran.
    pub balance: BalancePolicy,
    /// Mean think time.
    pub mean_think: Ps,
    /// Requests the population issued.
    pub generated: u64,
    /// Responses delivered back (completions, sheds, churn abandonments).
    pub responses: u64,
    /// Clients thinking (or ready) when the horizon ended.
    pub thinking_at_end: usize,
    /// Clients whose request was still in a queue at the horizon.
    pub waiting_at_end: usize,
}

/// The multi-tier runtime's final accounting: DAG conservation counters,
/// lifetime critical-path attribution and the end-to-end sojourn
/// distribution of closed request DAGs.
#[derive(Clone, Debug)]
pub struct TierSummary {
    /// The tier graph, rendered (`Display` round-trips).
    pub graph: String,
    /// Tier names in request-flow order.
    pub tier_names: Vec<String>,
    /// The DAG tracker's lifetime conservation counters.
    pub stats: TraceStats,
    /// Lifetime critical-path time attributed to each tier, picoseconds.
    pub crit_total_ps: Vec<u64>,
    /// How often each tier was a closed DAG's slowest leg.
    pub slowest_counts: Vec<u64>,
    /// DAGs folded into the trace collector (non-failed closures).
    pub roots_recorded: u64,
    /// End-to-end sojourns of non-failed closed DAGs.
    pub e2e_hist: Histogram,
    /// The end-to-end p99 target, seconds.
    pub e2e_target_s: f64,
}

impl TierSummary {
    /// The `q`-quantile end-to-end sojourn in seconds (zero if no DAG
    /// closed).
    pub fn e2e_percentile_s(&self, q: f64) -> f64 {
        self.e2e_hist.percentile(q) as f64 / 1e12
    }

    /// Whole-run end-to-end p99, seconds.
    pub fn e2e_p99_s(&self) -> f64 {
        self.e2e_percentile_s(0.99)
    }

    /// Whether the end-to-end p99 met the target (vacuously true with no
    /// closures).
    pub fn meets_e2e_slo(&self) -> bool {
        self.e2e_hist.count() == 0 || self.e2e_p99_s() <= self.e2e_target_s
    }

    /// Lifetime per-tier share of critical-path time (all zeros before any
    /// closure).
    pub fn crit_shares(&self) -> Vec<f64> {
        let sum: u64 = self.crit_total_ps.iter().sum();
        if sum == 0 {
            return vec![0.0; self.crit_total_ps.len()];
        }
        self.crit_total_ps
            .iter()
            .map(|&c| c as f64 / sum as f64)
            .collect()
    }
}

/// Everything one serving-fleet simulation produces.
#[derive(Clone, Debug)]
pub struct ServiceResult {
    /// The splitting discipline that ran.
    pub split: CapSplit,
    /// The rendered budget topology the run started with, when
    /// hierarchical (churn may have reshaped it along the way).
    pub topology: Option<String>,
    /// The global budget, watts.
    pub global_cap_w: f64,
    /// Per-server outcomes: churn departures first (in departure order),
    /// then the final fleet in fleet order.
    pub outcomes: Vec<ServiceOutcome>,
    /// Coordination rounds executed.
    pub rounds: usize,
    /// Per-round granted caps (ragged: the fleet size may change), watts.
    pub cap_timeline: Vec<Vec<f64>>,
    /// The client population's accounting, when the run was closed-loop.
    pub closed_loop: Option<ClientSummary>,
    /// The multi-tier runtime's accounting, when tiers were configured.
    pub tiers: Option<TierSummary>,
}

impl ServiceResult {
    /// Total fleet energy, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.outcomes.iter().map(|o| o.energy_j).sum()
    }

    /// Total requests completed.
    pub fn total_completed(&self) -> u64 {
        self.outcomes.iter().map(|o| o.completed).sum()
    }

    /// Total requests shed.
    pub fn total_shed(&self) -> u64 {
        self.outcomes.iter().map(|o| o.shed).sum()
    }

    /// SLO-violation rounds summed over the fleet.
    pub fn total_violation_rounds(&self) -> u64 {
        self.outcomes.iter().map(|o| o.violation_rounds).sum()
    }

    /// The fleet-wide sojourn distribution (all servers merged).
    pub fn fleet_hist(&self) -> Histogram {
        let mut h = Histogram::new();
        for o in &self.outcomes {
            h.merge(&o.hist);
        }
        h
    }

    /// Fleet-wide `q`-quantile sojourn, seconds.
    pub fn fleet_percentile_s(&self, q: f64) -> f64 {
        self.fleet_hist().percentile(q) as f64 / 1e12
    }

    /// Whether every server met its whole-run p99 target.
    pub fn all_meet_slo(&self) -> bool {
        self.outcomes.iter().all(ServiceOutcome::meets_slo)
    }

    /// A bit-exact digest of every scheduling-sensitive number: per-server
    /// energies, caps, queue counters, full latency-bucket state and the
    /// cap timeline. Two runs of the same configuration must produce
    /// identical digests regardless of the worker thread count.
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "split={} topo={} cap={:016x} rounds={}\n",
            self.split,
            self.topology.as_deref().unwrap_or("flat"),
            self.global_cap_w.to_bits(),
            self.rounds
        );
        if let Some(cl) = &self.closed_loop {
            // The model marker is appended only for fluid runs so exact
            // digests stay byte-identical to their pre-fluid goldens.
            let model = match cl.model {
                ClientModel::Exact => "",
                ClientModel::Fluid => "fluid ",
            };
            let _ = writeln!(
                s,
                "closed {model}clients={} balance={} think={} generated={} responses={} \
                 thinking={} waiting={}",
                cl.clients,
                cl.balance,
                cl.mean_think.as_ps(),
                cl.generated,
                cl.responses,
                cl.thinking_at_end,
                cl.waiting_at_end,
            );
        }
        for o in &self.outcomes {
            let _ = writeln!(
                s,
                "{} departed={} energy={:016x} arrived={} done={} shed={} abandoned={} viol={} \
                 mean_cap={:016x} n={} p50={} p99={} p999={} now={}",
                o.name,
                o.departed,
                o.energy_j.to_bits(),
                o.arrived,
                o.completed,
                o.shed,
                o.abandoned,
                o.violation_rounds,
                o.mean_cap_w.to_bits(),
                o.hist.count(),
                o.hist.percentile(0.50),
                o.hist.percentile(0.99),
                o.hist.percentile(0.999),
                o.now.as_ps(),
            );
        }
        if let Some(t) = &self.tiers {
            let st = &t.stats;
            let _ = writeln!(
                s,
                "tiers graph={} roots={}/{}/{} spans={}/{}/{} open={}/{} dom={}",
                t.graph,
                st.roots_opened,
                st.roots_closed,
                st.roots_failed,
                st.spans_opened,
                st.spans_closed,
                st.spans_failed,
                st.open_roots,
                st.open_spans,
                st.sojourn_dominance,
            );
            let join = |xs: &[u64]| {
                xs.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let _ = writeln!(
                s,
                "tiers spawned={} completed={} crit={} slow={} recorded={}",
                join(&st.spawned_by_tier),
                join(&st.completed_by_tier),
                join(&t.crit_total_ps),
                join(&t.slowest_counts),
                t.roots_recorded,
            );
            let _ = writeln!(
                s,
                "tiers e2e n={} p50={} p99={} p999={} target={:016x}",
                t.e2e_hist.count(),
                t.e2e_hist.percentile(0.50),
                t.e2e_hist.percentile(0.99),
                t.e2e_hist.percentile(0.999),
                t.e2e_target_s.to_bits(),
            );
        }
        for (r, caps) in self.cap_timeline.iter().enumerate() {
            let _ = write!(s, "round {r}:");
            for c in caps {
                let _ = write!(s, " {:016x}", c.to_bits());
            }
            let _ = writeln!(s);
        }
        s
    }
}

/// The serving-fleet simulator. Build with a validated [`ServiceConfig`],
/// then call [`ServiceSim::run`].
pub struct ServiceSim {
    config: ServiceConfig,
    servers: Vec<ServiceServer>,
}

impl ServiceSim {
    /// Builds the initial fleet.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ServiceConfig) -> ServiceSim {
        if let Err(e) = config.validate() {
            panic!("invalid service config: {e}");
        }
        let n = config.servers.len().max(1);
        let initial = config.global_cap_w / n as f64;
        let servers = config
            .servers
            .iter()
            .map(|spec| {
                let mut s = ServiceServer::new(spec, initial, config.sla_window_rounds);
                if config.closed_loop.is_some() {
                    s.set_closed_loop(Ps::ZERO);
                }
                s
            })
            .collect();
        ServiceSim { config, servers }
    }

    fn outcome(mut server: ServiceServer, departed: bool) -> ServiceOutcome {
        server.abandon_queue();
        ServiceOutcome {
            name: server.name.clone(),
            departed,
            energy_j: server.energy_j(),
            arrived: server.arrived(),
            completed: server.completed(),
            shed: server.shed(),
            abandoned: server.abandoned(),
            violation_rounds: server.violation_rounds(),
            rounds_run: server.rounds_run(),
            mean_cap_w: server.mean_cap_w(),
            p99_target_s: server.p99_target_s(),
            hist: server.histogram().clone(),
            now: server.now(),
        }
    }

    /// Runs the configured number of rounds, applying churn at round
    /// boundaries, and aggregates, dispatching to the engine named by
    /// [`ServiceConfig::engine`].
    ///
    /// Within a round servers are advanced on up to `config.threads`
    /// worker threads. Servers exchange state with the coordinator only at
    /// round barriers, so results are bit-identical for every thread
    /// count — and for either engine.
    ///
    /// # Panics
    ///
    /// Panics if a churn join carries an invalid spec, or a joiner's
    /// remaining epochs exceed its `max_epochs`.
    pub fn run(self) -> ServiceResult {
        match self.config.engine {
            EngineKind::Round => ServiceRoundEngine(self).run(),
            EngineKind::Event => ServiceEventEngine(self).run(),
        }
    }
}

/// The whole moving state of one serving run, shared by both engines: the
/// per-barrier pipeline (churn → telemetry → split → issue → serve →
/// deliver) lives in [`FleetRun::barrier`]; the engines differ only in how
/// barriers are scheduled and how the fleet is stepped.
struct FleetRun {
    config: ServiceConfig,
    servers: Vec<ServiceServer>,
    churn: cluster::ChurnSchedule<crate::config::ServiceServerSpec>,
    topology: Option<cluster::BudgetTree>,
    topology_spec: Option<String>,
    departures: Vec<ServiceOutcome>,
    cap_timeline: Vec<Vec<f64>>,
    // Closed-loop machinery: the client population, the front-end
    // balancer, and the fleet-global clock (round `r` spans
    // `[r·D, (r+1)·D)` where `D` is the uniform round duration —
    // validated for the initial fleet, asserted for churn joiners).
    closed: Option<crate::config::ClosedLoopConfig>,
    pool: Option<ClientEngine>,
    balancer: Option<LoadBalancer>,
    round_d: Ps,
    // The event engine's cap-split replay; `None` under the round engine.
    cache: Option<CapCache>,
    // The event engine's per-node hierarchical replay cache; `None` under
    // the round engine or without a topology. Rebound (not discarded) on
    // churn, so sibling subtrees keep their cached allocations.
    hier: Option<cluster::HierSplitter>,
    // The multi-tier runtime: request DAGs, trace aggregation, the
    // end-to-end histogram. `None` without a tier topology.
    tiers: Option<TierRuntime>,
}

/// The moving state of a multi-tier run: the tier graph, the in-flight
/// request DAGs, the windowed critical-path collector and the end-to-end
/// latency accounting.
struct TierRuntime {
    graph: TierGraph,
    floor_frac: f64,
    e2e_target_s: f64,
    dag: DagTracker,
    collector: TraceCollector,
    e2e_hist: Histogram,
    base_instrs: f64,
}

/// The auto-built budget tree for a tier topology: a root applying the
/// configured cross-tier discipline (critical-path by default) over
/// per-tier groups (labelled by tier name, so churn joiners attach to
/// their tier), each tier splitting internally by the configured flat
/// discipline.
fn tier_tree(graph: &TierGraph, tier_split: CapSplit, split: CapSplit) -> BudgetTree {
    let children = graph
        .tiers()
        .iter()
        .map(|t| {
            BudgetNode::group(
                &t.name,
                split,
                (0..t.servers)
                    .map(|i| BudgetNode::server(&format!("{}{i}", t.name)))
                    .collect(),
            )
        })
        .collect();
    BudgetTree::new(BudgetNode::group("tiers", tier_split, children))
}

/// Fleet indices of the servers currently serving `tier`, in fleet order
/// (shard picks index into this list).
fn tier_members(graph: &TierGraph, servers: &[ServiceServer], tier: usize) -> Vec<usize> {
    servers
        .iter()
        .enumerate()
        .filter(|(_, s)| graph.tier_of(&s.name) == Some(tier))
        .map(|(i, _)| i)
        .collect()
}

impl FleetRun {
    fn new(sim: ServiceSim, cache: Option<CapCache>) -> FleetRun {
        let ServiceSim { config, servers } = sim;
        let churn = config.churn.clone();
        let tiers = config.tiers.as_ref().map(|tc| {
            let seed = config
                .closed_loop
                .as_ref()
                .map(|cl| cl.seed ^ 0x7134_c0de)
                .unwrap_or(0x7134_c0de);
            let base_instrs = config
                .closed_loop
                .as_ref()
                .map(|cl| cl.mean_request_instrs)
                .unwrap_or(40_000.0);
            TierRuntime {
                graph: tc.graph.clone(),
                floor_frac: tc.floor_frac,
                e2e_target_s: tc.e2e_target_s,
                dag: DagTracker::new(&tc.graph, seed),
                collector: TraceCollector::new(tc.graph.n_tiers(), tc.window_rounds),
                e2e_hist: Histogram::new(),
                base_instrs,
            }
        });
        let topology = match &tiers {
            Some(t) => {
                let tree = tier_tree(
                    &t.graph,
                    config.tiers.as_ref().map(|tc| tc.tier_split).unwrap(),
                    config.split,
                );
                let names: Vec<&str> = config.servers.iter().map(|s| s.name.as_str()).collect();
                if let Err(e) = tree.validate(&names) {
                    panic!("tier topology: {e}");
                }
                Some(tree)
            }
            None => config.topology.clone(),
        };
        let topology_spec = topology.as_ref().map(|t| t.to_string());
        let closed = config.closed_loop.clone();
        let pool = closed.as_ref().map(ClientEngine::new);
        let balancer = closed.as_ref().map(|cl| LoadBalancer::new(cl.balance));
        let round_d = config
            .servers
            .first()
            .map(|s| s.config.epoch * config.epochs_per_round as u64)
            .unwrap_or(Ps::ZERO);
        let hier = match (&cache, &topology) {
            (Some(_), Some(tree)) => {
                let names: Vec<&str> = servers.iter().map(|s| s.name.as_str()).collect();
                Some(cluster::HierSplitter::compile(
                    tree,
                    &names,
                    config.dead_band_w,
                ))
            }
            _ => None,
        };
        FleetRun {
            config,
            servers,
            churn,
            topology,
            topology_spec,
            departures: Vec::new(),
            cap_timeline: Vec::new(),
            closed,
            pool,
            balancer,
            round_d,
            cache,
            hier,
            tiers,
        }
    }

    fn global_time(&self, round: usize) -> Ps {
        self.round_d * round as u64
    }

    /// One coordination barrier: churn, telemetry, cap split, closed-loop
    /// issue, one serving period (via `step_fleet`), response delivery.
    fn barrier(&mut self, round: usize, step_fleet: &mut dyn FnMut(&mut Vec<ServiceServer>)) {
        // --- churn: apply fleet changes due at this boundary ---
        let mut churned = false;
        for action in self.churn.drain_due(round) {
            churned = true;
            match action {
                ChurnAction::Join(spec) => {
                    if let Err(e) = ServiceConfig::validate_spec(&spec) {
                        panic!("churn join: {e}");
                    }
                    let left = (self.config.rounds - round) * self.config.epochs_per_round;
                    assert!(
                        left <= spec.config.max_epochs,
                        "churn join {}: {left} remaining epochs exceed max_epochs",
                        spec.name
                    );
                    // Joiners enter with a zero cap but participate in
                    // this same round's split, which grants their
                    // share immediately. Under a topology they attach
                    // as direct children of the root group; under a tier
                    // topology they must name an existing tier and attach
                    // to that tier's group.
                    if let Some(tree) = &mut self.topology {
                        let group = match &self.tiers {
                            Some(t) => {
                                let ti = t.graph.tier_of(&spec.name).unwrap_or_else(|| {
                                    panic!(
                                        "churn join {}: name does not match any tier of {}",
                                        spec.name, t.graph
                                    )
                                });
                                Some(t.graph.tiers()[ti].name.clone())
                            }
                            None => None,
                        };
                        if let Err(e) = tree.attach_server(&spec.name, group.as_deref()) {
                            panic!("churn join {}: {e}", spec.name);
                        }
                    }
                    let mut server = ServiceServer::new(&spec, 0.0, self.config.sla_window_rounds);
                    if self.pool.is_some() {
                        assert_eq!(
                            spec.config.epoch * self.config.epochs_per_round as u64,
                            self.round_d,
                            "churn join {}: round duration differs from the fleet's \
                             (the closed-loop clock needs uniform rounds)",
                            spec.name
                        );
                        server.set_closed_loop(self.global_time(round));
                    }
                    self.servers.push(server);
                }
                ChurnAction::Leave(name) => {
                    if let Some(i) = self.servers.iter().position(|s| s.name == name) {
                        let mut server = self.servers.remove(i);
                        // Closed loop: the departing server's queued
                        // requests are lost; their clients learn at
                        // this barrier and go back to thinking. Traced
                        // spans fail their DAG (the client learns when
                        // the root closes).
                        let orphans = server.abandon_queue();
                        let now = self.global_time(round);
                        for r in orphans {
                            if let Some(ctx) = r.trace {
                                self.tiers
                                    .as_mut()
                                    .expect("traced request without tier runtime")
                                    .dag
                                    .fail(ctx, now);
                            } else if let (Some(client), Some(pool)) =
                                (r.client, self.pool.as_mut())
                            {
                                pool.deliver(client, now);
                            }
                        }
                        self.departures.push(ServiceSim::outcome(server, true));
                        if let Some(tree) = &mut self.topology {
                            tree.remove_server(&name);
                        }
                    }
                }
            }
        }
        if churned {
            // Membership (and possibly tree shape) changed: any cached
            // whole-fleet allocation is for a different fleet.
            if let Some(cache) = self.cache.as_mut() {
                cache.invalidate();
            }
            // The hierarchical cache is *rebound*, not discarded: groups
            // structurally untouched by the churn (sibling racks/tiers)
            // carry their cached allocations across the membership change.
            if let (Some(h), Some(tree)) = (self.hier.as_mut(), &self.topology) {
                let names: Vec<&str> = self.servers.iter().map(|s| s.name.as_str()).collect();
                h.rebind(tree, &names);
            }
        }
        if self.servers.is_empty() {
            // Degenerate round: no caps, and no requests issued —
            // ready clients simply wait for the fleet to refill. DAGs
            // failed by the churn above still close and are delivered.
            self.cap_timeline.push(Vec::new());
            self.drain_traces();
            return;
        }

        // --- coordinate: telemetry in, caps out ---
        let demands: Vec<ServerDemand> =
            self.servers.iter_mut().map(ServiceServer::demand).collect();
        // SLA signals feed the split when latency matters to it: under a
        // topology (interior nodes may be SLA-aware) or flat SlaAware.
        let signals: Option<Vec<SlaSignal>> = (self.topology.is_some()
            || self.config.split == CapSplit::SlaAware)
            .then(|| self.servers.iter().map(ServiceServer::sla_signal).collect());
        // Critical-path shares per server: every member of a tier carries
        // its tier's windowed share (all zeros while traces are sparse —
        // the discipline degrades to demand-proportional). Shares only
        // cover *sealed* rounds, so the signal — and the split — is
        // identical for any worker-thread count.
        let crit: Option<Vec<f64>> = self.tiers.as_ref().map(|t| {
            let shares = t.collector.shares();
            self.servers
                .iter()
                .map(|s| t.graph.tier_of(&s.name).map_or(0.0, |ti| shares[ti]))
                .collect()
        });
        let tier_floor_frac = self.tiers.as_ref().map_or(0.0, |t| t.floor_frac);
        let cached = self
            .cache
            .as_mut()
            .and_then(|c| c.lookup(&demands, signals.as_deref(), crit.as_deref()));
        let caps = cached.unwrap_or_else(|| {
            let caps = match (&self.topology, self.config.split) {
                (Some(tree), _) => {
                    // Hierarchical: the budget flows down the tree with
                    // power, latency and critical-path telemetry, so
                    // SLA-aware interior nodes react to their subtree's
                    // worst violation ratio and critical-path nodes shift
                    // budget toward the slowest tier. The event engine
                    // routes this through the compiled per-node replay
                    // cache (bit-identical at a zero dead-band).
                    let sig = TreeSignals {
                        sla: signals.as_deref(),
                        crit: crit.as_deref(),
                        tier_floor_frac,
                    };
                    match self.hier.as_mut() {
                        Some(h) => h.split_signals(
                            self.config.global_cap_w,
                            &demands,
                            &sig,
                            self.config.quantum_w,
                        ),
                        None => {
                            let names: Vec<&str> =
                                self.servers.iter().map(|s| s.name.as_str()).collect();
                            tree.split_signals(
                                self.config.global_cap_w,
                                &names,
                                &demands,
                                &sig,
                                self.config.quantum_w,
                            )
                        }
                    }
                    .unwrap_or_else(|e| panic!("budget tree split: {e}"))
                }
                (None, CapSplit::SlaAware) => split_caps_sla(
                    self.config.global_cap_w,
                    &demands,
                    signals.as_deref().expect("SlaAware computes signals"),
                    self.config.quantum_w,
                ),
                (None, split) => split_caps(
                    split,
                    self.config.global_cap_w,
                    &demands,
                    self.config.quantum_w,
                ),
            };
            if let Some(cache) = self.cache.as_mut() {
                cache.store(&demands, signals.as_deref(), crit.as_deref(), &caps);
            }
            caps
        });
        for (server, &cap) in self.servers.iter_mut().zip(&caps) {
            server.set_cap(cap);
        }

        // --- closed loop: issue the round's requests and balance ---
        if let (Some(pool), Some(balancer)) = (self.pool.as_mut(), self.balancer.as_mut()) {
            let t0 = self.round_d * round as u64;
            let batch = pool.issue(t0, t0 + self.round_d);
            if !batch.is_empty() {
                let loads: Vec<ServerLoad> = self
                    .servers
                    .iter()
                    .zip(&demands)
                    .zip(&caps)
                    .map(|((server, demand), &cap_w)| ServerLoad {
                        demand: *demand,
                        cap_w,
                        queue_depth: server.queue_depth(),
                    })
                    .collect();
                if let Some(tr) = self.tiers.as_mut() {
                    // Multi-tier: every client request opens a DAG and its
                    // root span is balanced over the *entry* tier only.
                    // The request carries the trace context instead of the
                    // client id — the client lives in the DAG record and
                    // is released when the root closes.
                    let entry = tier_members(&tr.graph, &self.servers, 0);
                    let work0 = tr.graph.tiers()[0].work;
                    if entry.is_empty() {
                        // The entry tier churned away entirely: roots
                        // cannot be placed. Fail them at the barrier so
                        // their clients learn and go back to thinking.
                        for req in &batch {
                            let client = req.client.expect("closed-loop issue tags clients");
                            let ctx = tr.dag.open_root(client, req.arrival);
                            tr.dag.fail(ctx, t0);
                        }
                    } else {
                        let targets = balancer.assign_batch_within(batch.len(), &loads, &entry);
                        for (req, &target) in batch.iter().zip(&targets) {
                            let client = req.client.expect("closed-loop issue tags clients");
                            let ctx = tr.dag.open_root(client, req.arrival);
                            self.servers[target].assign_requests([Request {
                                remaining_instrs: req.remaining_instrs * work0,
                                client: None,
                                trace: Some(ctx),
                                ..*req
                            }]);
                        }
                    }
                } else {
                    let targets = balancer.assign_batch(batch.len(), &loads);
                    for (req, &target) in batch.iter().zip(&targets) {
                        self.servers[target].assign_requests([*req]);
                    }
                }
            }
        }
        self.cap_timeline.push(caps);

        // --- serve one coordination period ---
        step_fleet(&mut self.servers);

        // --- closed loop: deliver the round's responses ---
        // Fleet order then event order — but each client draws from
        // its own stream and holds one request at a time, and traced
        // spans draw shard picks and sizes from per-span streams, so
        // delivery order cannot leak into the result beyond the (already
        // deterministic) span-id assignment order.
        if self.pool.is_some() {
            let events: Vec<ClientEvent> = self
                .servers
                .iter_mut()
                .flat_map(ServiceServer::take_events)
                .collect();
            let next_start = self.global_time(round + 1);
            for ev in events {
                match (ev.trace, ev.client) {
                    (Some(ctx), _) => self.resolve_span(ctx, ev.resolution, ev.at, next_start),
                    (None, Some(client)) => {
                        self.pool
                            .as_mut()
                            .expect("checked above")
                            .deliver(client, ev.at);
                    }
                    (None, None) => unreachable!("queue events carry a client or a trace"),
                }
            }
            self.drain_traces();
        }
    }

    /// Handles one traced span's terminal event: completions spawn the
    /// next tier's fan-out of children (sharded by per-span PRNG streams,
    /// arriving at the next barrier), sheds fail the DAG.
    fn resolve_span(&mut self, ctx: topology::SpanCtx, res: Resolution, at: Ps, next_start: Ps) {
        let tr = self
            .tiers
            .as_mut()
            .expect("traced event without tier runtime");
        match res {
            Resolution::Completed => {
                for child in tr.dag.complete(ctx, at, next_start) {
                    let ti = child.tier as usize;
                    let members = tier_members(&tr.graph, &self.servers, ti);
                    if members.is_empty() {
                        // The child's whole tier churned away: the span
                        // cannot be placed, so the DAG fails.
                        tr.dag.fail(child, next_start);
                        continue;
                    }
                    let mut rng = tr.dag.child_rng(child);
                    let shard = members[rng.below(members.len() as u64) as usize];
                    let size = tr.base_instrs * tr.graph.tiers()[ti].work * (0.5 + rng.f64());
                    self.servers[shard].assign_requests([Request {
                        arrival: next_start,
                        remaining_instrs: size,
                        client: None,
                        trace: Some(child),
                    }]);
                }
            }
            Resolution::Shed => tr.dag.fail(ctx, at),
        }
    }

    /// Drains DAGs that closed since the last call: releases their clients,
    /// records end-to-end sojourns and critical-path attributions for
    /// non-failed closures, and seals the trace collector's round.
    fn drain_traces(&mut self) {
        let Some(tr) = self.tiers.as_mut() else {
            return;
        };
        let pool = self.pool.as_mut().expect("tiers require a closed loop");
        for root in tr.dag.take_closed() {
            pool.deliver(root.client, root.close);
            if !root.failed {
                tr.e2e_hist.record(root.e2e().as_ps().max(1));
                tr.collector.record(&root.crit_ps);
            }
        }
        tr.collector.end_round();
    }

    fn finish(self) -> ServiceResult {
        let tiers = self.tiers.map(|t| TierSummary {
            graph: t.graph.to_string(),
            tier_names: t.graph.tiers().iter().map(|x| x.name.clone()).collect(),
            stats: t.dag.stats().clone(),
            crit_total_ps: t.collector.total_ps().to_vec(),
            slowest_counts: t.collector.slowest_counts().to_vec(),
            roots_recorded: t.collector.roots_recorded(),
            e2e_hist: t.e2e_hist,
            e2e_target_s: t.e2e_target_s,
        });
        let closed_loop = match (&self.closed, &self.pool) {
            (Some(cl), Some(pool)) => Some(ClientSummary {
                clients: pool.len(),
                model: pool.model(),
                balance: cl.balance,
                mean_think: cl.mean_think,
                generated: pool.generated(),
                responses: pool.responses(),
                thinking_at_end: pool.thinking(),
                waiting_at_end: pool.waiting(),
            }),
            _ => None,
        };
        let mut outcomes = self.departures;
        outcomes.extend(
            self.servers
                .into_iter()
                .map(|s| ServiceSim::outcome(s, false)),
        );
        ServiceResult {
            split: self.config.split,
            topology: self.topology_spec,
            global_cap_w: self.config.global_cap_w,
            outcomes,
            rounds: self.config.rounds,
            cap_timeline: self.cap_timeline,
            closed_loop,
            tiers,
        }
    }
}

/// The reference engine: a plain loop over round indices, scoped worker
/// threads spawned afresh each round.
pub struct ServiceRoundEngine(pub ServiceSim);

impl FleetEngine for ServiceRoundEngine {
    type Output = ServiceResult;

    fn kind(&self) -> EngineKind {
        EngineKind::Round
    }

    fn run(self) -> ServiceResult {
        let epochs = self.0.config.epochs_per_round;
        let threads = self.0.config.threads;
        let rounds = self.0.config.rounds;
        let mut run = FleetRun::new(self.0, None);
        let mut step = |servers: &mut Vec<ServiceServer>| {
            if threads == 1 {
                for server in servers.iter_mut() {
                    server.step_round(epochs);
                }
            } else {
                let chunk = servers.len().div_ceil(threads);
                std::thread::scope(|scope| {
                    for servers in servers.chunks_mut(chunk) {
                        scope.spawn(move || {
                            for server in servers {
                                server.step_round(epochs);
                            }
                        });
                    }
                });
            }
        };
        for round in 0..rounds {
            run.barrier(round, &mut step);
        }
        run.finish()
    }
}

/// The wake-driven engine: barriers are events on a picosecond-ordered
/// [`EventQueue`] keyed by the fleet clock (each barrier schedules its
/// successor until the horizon), the fleet steps on a persistent
/// [`WorkerPool`], and the cap split is replayed from [`CapCache`] whenever
/// no telemetry moved beyond [`ServiceConfig::dead_band_w`]. Unlike the
/// batch cluster, serving servers never finish — the wins here are the
/// pool (no per-round thread spawns) and the replay; at the default zero
/// dead-band the digest is identical to [`ServiceRoundEngine`]'s.
pub struct ServiceEventEngine(pub ServiceSim);

impl FleetEngine for ServiceEventEngine {
    type Output = ServiceResult;

    fn kind(&self) -> EngineKind {
        EngineKind::Event
    }

    fn run(self) -> ServiceResult {
        let epochs = self.0.config.epochs_per_round;
        let threads = self.0.config.threads;
        let rounds = self.0.config.rounds;
        let cache = CapCache::new(self.0.config.dead_band_w);
        let mut run = FleetRun::new(self.0, Some(cache));
        let pool = (threads > 1)
            .then(|| WorkerPool::new(threads, move |s: &mut ServiceServer| s.step_round(epochs)));
        let mut step = |servers: &mut Vec<ServiceServer>| match &pool {
            Some(pool) => {
                // Round-trip the fleet through the persistent pool by
                // value; positions are restored by index, so churn (which
                // only happens between barriers) never sees a hole.
                let n = servers.len();
                let jobs: Vec<(usize, ServiceServer)> =
                    std::mem::take(servers).into_iter().enumerate().collect();
                let mut slots: Vec<Option<ServiceServer>> = (0..n).map(|_| None).collect();
                pool.run(jobs, |i, s| slots[i] = Some(s));
                servers.extend(
                    slots
                        .into_iter()
                        .map(|s| s.expect("server returned to fleet")),
                );
            }
            None => {
                for server in servers.iter_mut() {
                    server.step_round(epochs);
                }
            }
        };
        // The wake queue: barrier `r` fires at the fleet clock `r·D` and
        // schedules barrier `r+1` — wake-driven, but with the exact round
        // semantics of the reference loop (barriers fire even for an
        // empty fleet, which may refill through churn).
        let mut queue: EventQueue<usize> = EventQueue::new();
        if rounds > 0 {
            queue.push(Ps::ZERO, 0);
        }
        while let Some((_, round)) = queue.pop() {
            run.barrier(round, &mut step);
            if round + 1 < rounds {
                queue.push(run.global_time(round + 1), round + 1);
            }
        }
        run.finish()
    }
}

/// Convenience: build and run a serving fleet in one call.
pub fn run_service(config: ServiceConfig) -> ServiceResult {
    ServiceSim::new(config).run()
}
