//! The fluid (aggregated) closed-loop client model: population counters
//! instead of per-client state, for 10⁶+ client runs.
//!
//! [`crate::ClientPool`] is exact — every client carries its own RNG
//! stream and ready time — but issuing a round costs a scan of the whole
//! population, which caps realistic populations far below the "millions
//! of users" the fleet is meant to face. [`FluidPool`] compresses the
//! population into a handful of counters and replaces the per-client
//! think draws with *cohort sampling*:
//!
//! * Clients thinking since before the round window started complete
//!   their think in `[from, to)` with probability `p = 1 − exp(−Λ(from,
//!   to))`, where `Λ` is the integrated think-completion hazard (constant
//!   `1/θ`, optionally modulated by a diurnal sine — see
//!   [`ClosedLoopConfig::with_think_diurnal`]). Because the think times
//!   are exponential, re-sampling survival each window is exact in
//!   distribution (memorylessness), and because a Binomial draw *is* the
//!   sum of the cohort's Bernoulli trials, the number of issuing clients
//!   has exactly the per-client distribution.
//! * Clients whose response was delivered during the previous round are
//!   a separate cohort: their delivery times are accumulated as an
//!   order-independent integer picosecond sum (`u128`, overflow-safe at
//!   any population), and the cohort completes from its *mean* delivery
//!   time — the model's one approximation beyond aggregation, bounded by
//!   the round length.
//! * Issue times inside the window are conditional-exponential
//!   order-statistics draws; request sizes are uniform `[0.5, 1.5] ×`
//!   the configured mean, exactly as in the exact pool.
//!
//! Everything downstream — the [`LoadBalancer`](cluster::LoadBalancer),
//! [`crate::RequestQueue`], tier DAGs, churn orphan re-delivery — sees
//! real [`Request`]s tagged with synthetic (wrapping) client ids, so
//! every discipline runs unchanged. A round costs `O(issued)` instead of
//! `O(population)`, and the single RNG stream plus the order-independent
//! delivery accounting keep runs bit-identical for any worker thread
//! count and either fleet engine — pinned by `tests/client_equivalence.rs`
//! and the fluid golden digests in `tests/invariants.rs`.

use crate::clients::ClientPool;
use crate::config::{ClientModel, ClosedLoopConfig};
use crate::queue::Request;
use simkernel::{Ps, SimRng};

/// A closed-loop client population compressed to aggregate counters.
#[derive(Clone, Debug)]
pub struct FluidPool {
    rng: SimRng,
    /// Clients ready to issue at the very next barrier (the whole
    /// population at construction, mirroring the exact pool's
    /// everyone-ready start; zero afterwards).
    ready: u64,
    /// Clients thinking since before the current window.
    thinking: u64,
    /// Clients whose response landed during the last round and who have
    /// not yet been folded into `thinking`.
    fresh: u64,
    /// Sum of the fresh cohort's delivery times, picoseconds. `u128`: at
    /// 10⁶ clients a single round of deliveries near the `u64` time
    /// horizon would overflow a `u64` sum.
    fresh_at_sum: u128,
    /// Clients with a request in flight.
    in_flight: u64,
    generated: u64,
    responses: u64,
    mean_think: Ps,
    mean_request_instrs: f64,
    diurnal_period: Ps,
    diurnal_depth: f64,
    /// Synthetic client tags cycle through `u32` (the tag only has to be
    /// present — delivery is by count, not by identity).
    next_tag: u32,
}

impl FluidPool {
    /// A fluid population per `cfg`, every client ready to issue
    /// immediately (matching [`ClientPool::new`]).
    pub fn new(cfg: &ClosedLoopConfig) -> FluidPool {
        FluidPool {
            rng: SimRng::new(cfg.seed).fork(0xf1),
            ready: cfg.clients as u64,
            thinking: 0,
            fresh: 0,
            fresh_at_sum: 0,
            in_flight: 0,
            generated: 0,
            responses: 0,
            mean_think: cfg.mean_think,
            mean_request_instrs: cfg.mean_request_instrs,
            diurnal_period: cfg.think_diurnal_period,
            diurnal_depth: cfg.think_diurnal_depth,
            next_tag: 0,
        }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        (self.ready + self.thinking + self.fresh + self.in_flight) as usize
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests issued so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Responses (completions, sheds and abandonments) delivered so far.
    pub fn responses(&self) -> u64 {
        self.responses
    }

    /// Clients currently thinking (or ready to issue).
    pub fn thinking(&self) -> usize {
        (self.ready + self.thinking + self.fresh) as usize
    }

    /// Clients with a request in flight.
    pub fn waiting(&self) -> usize {
        self.in_flight as usize
    }

    /// Delivers a response at time `at`, moving one unit of in-flight
    /// mass back to the think pool. The client tag is ignored — the fluid
    /// model tracks mass, not identity — which is also what lets a churned
    /// server's orphaned requests re-credit the think pool through the
    /// same call.
    ///
    /// # Panics
    ///
    /// Panics if no request is in flight (a double delivery would break
    /// conservation, exactly as in the exact pool).
    pub fn deliver(&mut self, _client: u32, at: Ps) {
        assert!(
            self.in_flight > 0,
            "fluid pool: response delivered with nothing in flight"
        );
        self.in_flight -= 1;
        self.fresh += 1;
        self.fresh_at_sum += at.as_ps() as u128;
        self.responses += 1;
    }

    /// The integrated think-completion hazard `∫ λ(t) dt` over `[a, b]`,
    /// with `λ(t) = (1/θ)(1 + depth·sin(2πt/period))` — a constant
    /// `(b−a)/θ` when no diurnal modulation is configured, and `+∞` for a
    /// zero mean think (completion is immediate).
    ///
    /// The integral is evaluated in closed form, so it is *additive over
    /// any subdivision of the window* up to float rounding: issuing over
    /// `[a, c)` offers the same expected load as issuing over `[a, b)`
    /// then `[b, c)`, whatever the round quantum — the windowing
    /// invariance property pinned in `crates/service/tests/fluid_props.rs`.
    pub fn hazard(&self, a: Ps, b: Ps) -> f64 {
        debug_assert!(b >= a, "hazard window reversed");
        if self.mean_think == Ps::ZERO {
            return f64::INFINITY;
        }
        let theta = self.mean_think.as_secs_f64();
        let (ta, tb) = (a.as_secs_f64(), b.as_secs_f64());
        let base = (tb - ta) / theta;
        if self.diurnal_period == Ps::ZERO || self.diurnal_depth == 0.0 {
            return base;
        }
        let w = std::f64::consts::TAU / self.diurnal_period.as_secs_f64();
        base + self.diurnal_depth / theta * ((ta * w).cos() - (tb * w).cos()) / w
    }

    /// Probability that a client thinking at `a` completes its think
    /// before `b`: `1 − exp(−Λ(a, b))`.
    pub fn completion_prob(&self, a: Ps, b: Ps) -> f64 {
        -(-self.hazard(a, b)).exp_m1()
    }

    /// A completion time drawn uniformly from the conditional (truncated
    /// exponential) distribution over `[a, b)`, using the window-average
    /// hazard rate. Clamped strictly inside the window.
    fn completion_within(&mut self, a: Ps, b: Ps) -> Ps {
        let span = b - a;
        if span == Ps::ZERO {
            return a;
        }
        let lambda = self.hazard(a, b);
        if !lambda.is_finite() {
            return a; // zero think: completion is immediate
        }
        // Inverse CDF of Exp(rate) truncated to [0, W):
        // t = -ln(1 - u·(1 - e^{-Λ})) / rate, with rate = Λ / W.
        let u = self.rng.f64();
        let q = -(-lambda).exp_m1();
        let frac = -(1.0 - u * q).ln() / lambda; // in [0, 1)
        (a + span.scale_f64(frac)).min(b - Ps::new(1))
    }

    /// Issues the round's requests for the window `[from, to)`: samples
    /// how many thinking clients complete (Binomial via geometric skip
    /// sampling — `O(issued)`, not `O(population)`), stamps their arrivals
    /// inside the window, and returns the batch sorted by arrival time.
    /// Mirrors [`ClientPool::issue`]'s contract: clients ready before the
    /// window issue at `from`, sizes are uniform `[0.5, 1.5] ×` the mean.
    pub fn issue(&mut self, from: Ps, to: Ps) -> Vec<Request> {
        // Cohort 1: thinking since before `from` — memoryless, so the
        // completion probability over the window is exact.
        let p_think = self.completion_prob(from, to);
        let k_think = binomial(&mut self.rng, self.thinking, p_think);

        // Cohort 2: delivered during the previous round, thinking since
        // their (mean) delivery time. Deliveries never land past the
        // barrier, so the mean is at or before `from`.
        let (k_fresh, fresh_mean) = if self.fresh > 0 {
            let mean = Ps::new((self.fresh_at_sum / self.fresh as u128) as u64);
            let p = self.completion_prob(mean, to);
            (binomial(&mut self.rng, self.fresh, p), mean)
        } else {
            (0, from)
        };

        // Arrival times. Ready clients (initial state) were ready before
        // the window and issue at `from`, like an exact client held at
        // the barrier.
        let mut arrivals: Vec<Ps> = Vec::with_capacity((self.ready + k_think + k_fresh) as usize);
        arrivals.resize(self.ready as usize, from);
        for _ in 0..k_think {
            arrivals.push(self.completion_within(from, to));
        }
        for _ in 0..k_fresh {
            // Ready somewhere in [mean, to); the barrier holds anything
            // ready before `from` until `from`.
            arrivals.push(self.completion_within(fresh_mean, to).max(from));
        }
        arrivals.sort_unstable();

        // Update the aggregate state before materializing requests.
        let issued = arrivals.len() as u64;
        self.thinking = self.thinking - k_think + (self.fresh - k_fresh);
        self.ready = 0;
        self.fresh = 0;
        self.fresh_at_sum = 0;
        self.in_flight += issued;
        self.generated += issued;

        arrivals
            .into_iter()
            .map(|arrival| {
                let size = self.mean_request_instrs * (0.5 + self.rng.f64());
                let tag = self.next_tag;
                self.next_tag = self.next_tag.wrapping_add(1);
                Request {
                    arrival,
                    remaining_instrs: size,
                    client: Some(tag),
                    trace: None,
                }
            })
            .collect()
    }
}

/// A Binomial(`n`, `p`) sample via geometric skip sampling: successive
/// failure-run lengths are Geometric(`p`), so the draw costs `O(k + 1)`
/// RNG calls where `k` is the number of successes — per-round cost scales
/// with *issued requests*, not population.
fn binomial(rng: &mut SimRng, n: u64, p: f64) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mut k = 0u64;
    let mut i = rng.geometric(p);
    while i < n {
        k += 1;
        // `i` is the index of the k-th success; skip the next failure run.
        i = i.saturating_add(1).saturating_add(rng.geometric(p));
    }
    k
}

/// The closed-loop client population behind a serving run: the exact
/// per-client pool or the fluid aggregate, selected by
/// [`ClientModel`]. Both expose the same barrier-time contract
/// (`issue`/`deliver` plus the conservation counters), so the serving
/// loop, balancer, tier DAGs and churn paths are model-agnostic.
#[derive(Clone, Debug)]
pub enum ClientEngine {
    /// The exact per-client pool ([`ClientPool`]).
    Exact(ClientPool),
    /// The aggregated fluid model ([`FluidPool`]).
    Fluid(FluidPool),
}

impl ClientEngine {
    /// Builds the population `cfg` selects.
    pub fn new(cfg: &ClosedLoopConfig) -> ClientEngine {
        match cfg.model {
            ClientModel::Exact => ClientEngine::Exact(ClientPool::new(cfg)),
            ClientModel::Fluid => ClientEngine::Fluid(FluidPool::new(cfg)),
        }
    }

    /// Which model is running.
    pub fn model(&self) -> ClientModel {
        match self {
            ClientEngine::Exact(_) => ClientModel::Exact,
            ClientEngine::Fluid(_) => ClientModel::Fluid,
        }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        match self {
            ClientEngine::Exact(p) => p.len(),
            ClientEngine::Fluid(p) => p.len(),
        }
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests issued so far.
    pub fn generated(&self) -> u64 {
        match self {
            ClientEngine::Exact(p) => p.generated(),
            ClientEngine::Fluid(p) => p.generated(),
        }
    }

    /// Responses delivered so far.
    pub fn responses(&self) -> u64 {
        match self {
            ClientEngine::Exact(p) => p.responses(),
            ClientEngine::Fluid(p) => p.responses(),
        }
    }

    /// Clients currently thinking (or ready to issue).
    pub fn thinking(&self) -> usize {
        match self {
            ClientEngine::Exact(p) => p.thinking(),
            ClientEngine::Fluid(p) => p.thinking(),
        }
    }

    /// Clients with a request in flight.
    pub fn waiting(&self) -> usize {
        match self {
            ClientEngine::Exact(p) => p.waiting(),
            ClientEngine::Fluid(p) => p.waiting(),
        }
    }

    /// Delivers a response (see [`ClientPool::deliver`] /
    /// [`FluidPool::deliver`]).
    pub fn deliver(&mut self, client: u32, at: Ps) {
        match self {
            ClientEngine::Exact(p) => p.deliver(client, at),
            ClientEngine::Fluid(p) => p.deliver(client, at),
        }
    }

    /// Issues the round's requests (see [`ClientPool::issue`] /
    /// [`FluidPool::issue`]).
    pub fn issue(&mut self, from: Ps, to: Ps) -> Vec<Request> {
        match self {
            ClientEngine::Exact(p) => p.issue(from, to),
            ClientEngine::Fluid(p) => p.issue(from, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::BalancePolicy;

    fn cfg(clients: usize, think_us: u64) -> ClosedLoopConfig {
        ClosedLoopConfig::new(clients, Ps::from_us(think_us), BalancePolicy::RoundRobin)
            .with_model(ClientModel::Fluid)
            .with_seed(7)
    }

    #[test]
    fn population_bounds_outstanding_requests() {
        let mut p = FluidPool::new(&cfg(5, 0));
        let batch = p.issue(Ps::ZERO, Ps::from_ms(1));
        assert_eq!(batch.len(), 5, "everyone starts ready");
        assert_eq!(p.waiting(), 5);
        assert_eq!(p.thinking(), 0);
        assert!(p.issue(Ps::from_ms(1), Ps::from_ms(2)).is_empty());
        p.deliver(2, Ps::from_ms(1));
        let again = p.issue(Ps::from_ms(1), Ps::from_ms(2));
        assert_eq!(again.len(), 1, "zero think: a delivery issues next round");
        assert_eq!(p.generated(), 6);
        assert_eq!(p.responses(), 1);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn issue_is_sorted_and_inside_the_window() {
        let mut p = FluidPool::new(&cfg(1000, 50));
        let from = Ps::ZERO;
        let to = Ps::from_ms(1);
        p.issue(from, to); // everyone ready at `from`
        for i in 0..1000 {
            p.deliver(i, Ps::from_us(100 + (i as u64 % 800)));
        }
        let batch = p.issue(to, to + Ps::from_ms(1));
        assert!(!batch.is_empty());
        for w in batch.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "batch must be time-ordered");
        }
        for r in &batch {
            assert!(r.arrival >= to && r.arrival < to + Ps::from_ms(1));
            let rel = r.remaining_instrs / 40_000.0;
            assert!((0.5..1.5).contains(&rel), "size {rel} out of band");
        }
        assert_eq!(
            p.thinking() + p.waiting(),
            1000,
            "population conserved through a delivery/issue cycle"
        );
    }

    #[test]
    #[should_panic(expected = "nothing in flight")]
    fn double_delivery_panics() {
        let mut p = FluidPool::new(&cfg(1, 0));
        p.issue(Ps::ZERO, Ps::from_ms(1));
        p.deliver(0, Ps::from_us(10));
        p.deliver(0, Ps::from_us(20));
    }

    #[test]
    fn issue_rate_matches_the_think_mean() {
        // 10 000 clients delivered at 200 µs, thinking 500 µs on average,
        // next window ending at 2 ms: the cohort completes with
        // probability 1 − e^(−1.8 ms / 500 µs).
        let mut p = FluidPool::new(&cfg(10_000, 500));
        let d = Ps::from_ms(1);
        let first = p.issue(Ps::ZERO, d);
        assert_eq!(first.len(), 10_000);
        for i in 0..10_000u32 {
            p.deliver(i, Ps::from_us(200));
        }
        let batch = p.issue(d, d + d);
        let expect = 10_000.0 * (1.0 - (-3.6f64).exp());
        let got = batch.len() as f64;
        assert!(
            (got - expect).abs() < 4.0 * (10_000.0f64 * 0.25).sqrt().max(1.0),
            "issued {got}, expected ≈{expect}"
        );
    }

    #[test]
    fn deliveries_are_order_independent() {
        let mk = || {
            let mut p = FluidPool::new(&cfg(64, 100));
            p.issue(Ps::ZERO, Ps::from_ms(1));
            p
        };
        let mut a = mk();
        let mut b = mk();
        // Same multiset of delivery times, opposite orders.
        for i in 0..64u32 {
            a.deliver(i, Ps::from_us(10 + i as u64));
        }
        for i in (0..64u32).rev() {
            b.deliver(i, Ps::from_us(10 + i as u64));
        }
        let ba = a.issue(Ps::from_ms(1), Ps::from_ms(2));
        let bb = b.issue(Ps::from_ms(1), Ps::from_ms(2));
        assert_eq!(ba.len(), bb.len());
        for (x, y) in ba.iter().zip(&bb) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.remaining_instrs.to_bits(), y.remaining_instrs.to_bits());
        }
    }

    #[test]
    fn binomial_matches_mean_and_edges() {
        let mut rng = SimRng::new(11);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
        let n = 2_000u64;
        let p = 0.3;
        let trials = 500;
        let mean: f64 = (0..trials)
            .map(|_| binomial(&mut rng, n, p) as f64)
            .sum::<f64>()
            / trials as f64;
        let expect = n as f64 * p;
        assert!(
            (mean - expect).abs() < 0.01 * expect,
            "mean {mean} expect {expect}"
        );
        // Samples never exceed n.
        for _ in 0..200 {
            assert!(binomial(&mut rng, 7, 0.9) <= 7);
        }
    }

    #[test]
    fn fresh_at_sum_survives_extreme_delivery_times() {
        // Boundary regression (10⁶-scale audit): delivery times near the
        // u64 picosecond horizon must not overflow the cohort sum.
        let mut p = FluidPool::new(&cfg(3, 100));
        p.issue(Ps::ZERO, Ps::from_ms(1));
        let huge = Ps::new(u64::MAX - 1);
        p.deliver(0, huge);
        p.deliver(1, huge);
        p.deliver(2, huge);
        assert_eq!(p.responses(), 3);
        // The mean delivery time is representable and the next issue's
        // window sits past it without panicking.
        let batch = p.issue(Ps::new(u64::MAX - 1), Ps::new(u64::MAX));
        assert!(batch.len() <= 3);
        assert_eq!(p.thinking() + p.waiting(), 3);
    }
}
