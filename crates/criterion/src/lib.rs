//! A vendored, dependency-free shim implementing the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API this workspace's
//! benchmarks use.
//!
//! The build environment has no access to a crates.io registry, so the real
//! criterion cannot be fetched. This shim keeps the `benches/` sources
//! unchanged: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, throughput annotations and
//! `Bencher::iter` all work. Under `cargo bench` each benchmark is timed
//! (median of measured batches) and a one-line summary is printed; under
//! `cargo test` (no `--bench` flag) every routine runs exactly once as a
//! smoke test, mirroring real criterion's test mode.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How results are scaled for reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// True when invoked by `cargo bench`; false under `cargo test`, where
    /// the routine runs once as a smoke test.
    measure: bool,
    /// Median per-iteration time of the last `iter` call, if measuring.
    last: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its median per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            std::hint::black_box(routine());
            return;
        }
        // Warm up, then time batches until ~200 ms total or 15 batches.
        let mut batch = 1u64;
        let warm = Instant::now();
        while warm.elapsed() < Duration::from_millis(20) {
            std::hint::black_box(routine());
            batch += 1;
        }
        let batch = batch.max(1);
        let mut samples = Vec::new();
        let start = Instant::now();
        while samples.len() < 15 && start.elapsed() < Duration::from_millis(200) {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t0.elapsed() / batch as u32);
        }
        samples.sort();
        self.last = Some(samples[samples.len() / 2]);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work volume for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets the sample count (accepted for API compatibility; the shim
    /// sizes samples by wall-clock budget instead).
    pub fn sample_size(&mut self, _n: usize) {}

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        self.run(id, &mut |b| f(b));
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.name.clone();
        self.run(&name, &mut |b| f(b, input));
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            measure: self.criterion.measure,
            last: None,
        };
        f(&mut b);
        if let Some(t) = b.last {
            let per_iter = t.as_secs_f64();
            let rate = match self.throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  {:>12.0} elem/s", n as f64 / per_iter)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  {:>12.0} B/s", n as f64 / per_iter)
                }
                None => String::new(),
            };
            println!("{}/{id}: {:>12.3} µs/iter{rate}", self.name, per_iter * 1e6);
        } else if !self.criterion.measure {
            println!("{}/{id}: ok (smoke test)", self.name);
        }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; plain `cargo test` does not. Mirror
        // real criterion: only measure under `cargo bench`.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { measure: false };
        let mut g = c.benchmark_group("g");
        let mut runs = 0u32;
        g.bench_function("once", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_reports_time() {
        let mut c = Criterion { measure: true };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
