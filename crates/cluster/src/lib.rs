//! # cluster — multi-server CoScale under one datacenter power budget
//!
//! The paper sketches power capping as CoScale's natural extension (§2.3);
//! the single-server `PowerCapPolicy` in the `coscale` crate implements
//! it. This crate lifts that to a rack: **N independent servers**, each
//! running the full epoch engine on its own workload mix, coordinated by a
//! **cluster-level controller** that periodically redistributes one global
//! power budget into per-server caps — the shape FastCap (Liu et al.)
//! studies, motivated by cluster-level power management work such as
//! PowerTracer.
//!
//! The control loop is round-based:
//!
//! 1. At each round boundary every server reports telemetry: predicted
//!    uncapped demand, its power floor, measured power, and completion
//!    status.
//! 2. The coordinator splits the global budget into per-server caps using
//!    one of three disciplines ([`CapSplit`]): uniform,
//!    demand-proportional, or FastCap-style marginal-utility greedy.
//!    Finished servers return their share to the pool.
//! 3. Every server runs `epochs_per_round` epochs of the ordinary
//!    profiling/decision/execution engine with `PowerCapPolicy` reading
//!    its (freshly rewritten) cap.
//!
//! Servers only exchange state at round barriers, so rounds fan out across
//! `std::thread` scoped workers with **bit-identical results for any
//! thread count** — see `ClusterResult::digest`.
//!
//! Budgets can also be split **hierarchically** (fleet → pod → rack →
//! server) through a [`BudgetTree`]: each interior node runs its own split
//! discipline over its children's aggregated telemetry, so a rack can be
//! SLA-aware internally while pods share the fleet budget uniformly — see
//! the [`tree`] module.
//!
//! All coordinator ↔ server traffic flows through a simulated **message
//! plane** ([`ctrlplane`]): telemetry reports, cap grants, acks/nacks, and
//! coordinator heartbeats are typed messages subject to configurable
//! latency, jitter, loss, and duplication. Cap grants are **leases** — a
//! server that misses renewals keeps its last cap until the lease expires,
//! then falls to a safe floor — and with failover enabled a standby
//! coordinator takes over by deterministic election when the primary goes
//! silent. The default [`RpcConfig`] is a perfect loopback under which
//! everything below is bit-identical to a direct-call coordinator.
//!
//! # Example
//!
//! ```no_run
//! use cluster::{run_cluster, CapSplit, ClusterConfig, ServerSpec};
//!
//! let fleet: Vec<ServerSpec> = (0..8)
//!     .map(|i| ServerSpec::small(&format!("srv{i}"), "MID1", i as u64))
//!     .collect();
//! let cfg = ClusterConfig::new(fleet, 400.0, CapSplit::FastCap).with_threads(4);
//! let result = run_cluster(cfg);
//! println!(
//!     "total energy {:.1} J, fairness {:.3}",
//!     result.total_energy_j(),
//!     result.cap_fairness()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
mod config;
pub mod coordinator;
pub mod ctrlplane;
pub mod engine;
pub mod hiercache;
mod server;
mod sim;
pub mod telemetry;
pub mod tree;

pub use balance::{BalancePolicy, LoadBalancer, ServerLoad};
pub use config::{
    synthetic_fleet, CapSplit, ChurnAction, ChurnEvent, ChurnSchedule, ClusterConfig, ServerSpec,
};
pub use coordinator::{
    jain_index, split_caps, split_caps_critical, split_caps_fastcap_floored, split_caps_sla,
    split_caps_sla_floored, ServerDemand, SlaSignal, SplitError,
};
pub use ctrlplane::{
    CapGrant, ControlPlane, ControlStats, CtrlMsg, GrantOutcome, GrantRecord, Heartbeat,
    LeaseClient, LeaseEntry, LeaseLedger, PartitionSpec, ReplState, ResolvedRpc, RpcConfig,
};
pub use engine::{
    split_caps_active, CapCache, EngineKind, FleetEngine, ShardedWakeQueue, WorkerPool,
};
pub use hiercache::{HierSplitter, TracedSplit};
pub use netsim::{LinkConfig, NodeId, PlaneStats};
pub use server::{CappedPolicy, Server, ServerStatus, SharedCap};
pub use sim::{run_cluster, ClusterResult, ClusterSim, ServerOutcome};
pub use telemetry::TelemetrySlab;
pub use tree::{BudgetNode, BudgetTree, GroupShare, TreeSignals};
