//! The cluster simulation loop: rounds of (collect telemetry → split the
//! budget → run every server a few epochs in parallel), repeated until
//! every server's workload completes.
//!
//! Two [`FleetEngine`]s drive the loop (selected by
//! [`ClusterConfig::engine`]): the reference [`RoundEngine`] touches every
//! server every round on freshly spawned scoped threads; the
//! [`EventEngine`] runs a wake queue where completed servers never wake
//! again, steps servers on a persistent [`WorkerPool`], and replays the
//! previous cap split whenever no server's telemetry moved. Their results
//! are digest-identical — see `tests/engine_equivalence.rs`.
//!
//! Telemetry and caps flow through the [`ControlPlane`]: each barrier the
//! engine hands the round's reports to [`ControlPlane::barrier`] and
//! applies the effective (leased) caps it returns. Under the default
//! loopback [`RpcConfig`](crate::RpcConfig) the leases converge to the
//! direct split bit-for-bit, so the pinned digests are unchanged; under a
//! lossy or delayed plane servers ride their last lease until expiry.

use crate::coordinator::{jain_index, ServerDemand};
use crate::ctrlplane::{ControlPlane, ControlStats};
use crate::engine::{EngineKind, FleetEngine, ShardedWakeQueue, WorkerPool};
use crate::server::{Server, ServerStatus};
use crate::telemetry::TelemetrySlab;
use crate::{CapSplit, ClusterConfig};
use coscale::RunResult;
use simkernel::Ps;

/// One server's final accounting.
#[derive(Clone, Debug)]
pub struct ServerOutcome {
    /// Server name from the spec.
    pub name: String,
    /// The single-server result (energy, makespan, latency percentiles…).
    pub result: RunResult,
    /// Mean cap granted over the server's rounds, watts.
    pub mean_cap_w: f64,
    /// Cap granted in the server's last round, watts.
    pub final_cap_w: f64,
    /// Rounds whose measured average power exceeded the granted cap by
    /// more than the 5% modelling tolerance.
    pub violation_rounds: u64,
    /// Instructions the workload committed across all cores (the
    /// completion target × cores).
    pub total_target_instrs: u64,
}

impl ServerOutcome {
    /// Aggregate instruction throughput: target instructions over the
    /// server's makespan, instructions per second. Zero when the server
    /// never ran (a churned server that joined and immediately left, or an
    /// empty workload, has a zero makespan — dividing through it would
    /// poison fleet aggregates with `inf`/`NaN`).
    pub fn throughput_ips(&self) -> f64 {
        let secs = self.result.makespan.as_secs_f64();
        if secs > 0.0 {
            self.total_target_instrs as f64 / secs
        } else {
            0.0
        }
    }
}

/// Everything one cluster simulation produces.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// The splitting discipline that ran.
    pub split: CapSplit,
    /// The rendered budget topology, when the run was hierarchical.
    pub topology: Option<String>,
    /// The global budget, watts.
    pub global_cap_w: f64,
    /// Per-server outcomes, in fleet order.
    pub outcomes: Vec<ServerOutcome>,
    /// Coordination rounds executed.
    pub rounds: usize,
    /// Per-round per-server caps (rounds × servers), watts. These are the
    /// caps **in force** at each server — the leased cap, or the floor
    /// once a lease expired unrenewed.
    pub cap_timeline: Vec<Vec<f64>>,
    /// Control-plane statistics (messages, grants, leases, elections).
    /// Deliberately **not** part of [`ClusterResult::digest`]: the digest
    /// pins the physics, these describe the transport that delivered it.
    pub control: ControlStats,
}

impl ClusterResult {
    /// Total cluster energy to each server's completion, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.result.total_energy_j())
            .sum()
    }

    /// Cluster makespan: the slowest server's completion.
    pub fn makespan(&self) -> Ps {
        self.outcomes
            .iter()
            .map(|o| o.result.makespan)
            .fold(Ps::ZERO, Ps::max)
    }

    /// Aggregate performance: the sum of per-server instruction
    /// throughputs, instructions per second.
    pub fn aggregate_throughput_ips(&self) -> f64 {
        self.outcomes
            .iter()
            .map(ServerOutcome::throughput_ips)
            .sum()
    }

    /// Cap-violation rounds summed over the fleet.
    pub fn total_violations(&self) -> u64 {
        self.outcomes.iter().map(|o| o.violation_rounds).sum()
    }

    /// Jain fairness index over the mean cap each server was granted:
    /// 1 under a perfectly equal allocation, approaching `1/N` as the
    /// budget concentrates on one server.
    pub fn cap_fairness(&self) -> f64 {
        let caps: Vec<f64> = self.outcomes.iter().map(|o| o.mean_cap_w).collect();
        jain_index(&caps)
    }

    /// Jain fairness index over per-server completion speed
    /// (1/makespan) — performance fairness rather than allocation
    /// fairness. Servers that never ran (zero makespan) contribute a zero
    /// speed instead of an `inf` that would turn the index into `NaN`.
    pub fn perf_fairness(&self) -> f64 {
        let speeds: Vec<f64> = self
            .outcomes
            .iter()
            .map(|o| {
                let secs = o.result.makespan.as_secs_f64();
                if secs > 0.0 {
                    1.0 / secs
                } else {
                    0.0
                }
            })
            .collect();
        jain_index(&speeds)
    }

    /// Per-server completion-time degradation versus the same fleet under
    /// `base` (matched by position): `t/t_base − 1`.
    pub fn slowdowns_vs(&self, base: &ClusterResult) -> Vec<f64> {
        self.outcomes
            .iter()
            .zip(&base.outcomes)
            .map(|(a, b)| a.result.makespan.as_secs_f64() / b.result.makespan.as_secs_f64() - 1.0)
            .collect()
    }

    /// A bit-exact digest of every scheduling-sensitive number in the
    /// result — per-server makespans, energies, caps, violations and the
    /// full cap timeline. Two runs of the same configuration must produce
    /// identical digests regardless of the worker thread count.
    pub fn digest(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "split={} topo={} cap={:016x}\n",
            self.split,
            self.topology.as_deref().unwrap_or("flat"),
            self.global_cap_w.to_bits()
        );
        for o in &self.outcomes {
            let _ = writeln!(
                s,
                "{} makespan={} energy={:016x} mean_cap={:016x} viol={} epochs={}",
                o.name,
                o.result.makespan.as_ps(),
                o.result.total_energy_j().to_bits(),
                o.mean_cap_w.to_bits(),
                o.violation_rounds,
                o.result.epochs,
            );
        }
        for (r, caps) in self.cap_timeline.iter().enumerate() {
            let _ = write!(s, "round {r}:");
            for c in caps {
                let _ = write!(s, " {:016x}", c.to_bits());
            }
            let _ = writeln!(s);
        }
        s
    }
}

/// The cluster simulator. Build with a validated [`ClusterConfig`], then
/// call [`ClusterSim::run`].
pub struct ClusterSim {
    config: ClusterConfig,
    servers: Vec<Server>,
}

impl ClusterSim {
    /// Builds the fleet.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ClusterConfig) -> ClusterSim {
        if let Err(e) = config.validate() {
            panic!("invalid cluster config: {e}");
        }
        let initial = config.global_cap_w / config.servers.len() as f64;
        // Construction is per-spec independent and allocation-heavy (cache
        // tag arrays, trace generators), so large fleets build in parallel
        // on the configured worker count. Order is preserved; results are
        // identical to serial construction.
        let servers = if config.threads > 1 && config.servers.len() > 1 {
            let chunk = config.servers.len().div_ceil(config.threads);
            let mut built: Vec<Option<Server>> = Vec::new();
            built.resize_with(config.servers.len(), || None);
            std::thread::scope(|scope| {
                for (specs, out) in config.servers.chunks(chunk).zip(built.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (spec, slot) in specs.iter().zip(out) {
                            *slot = Some(Server::new(spec, initial));
                        }
                    });
                }
            });
            built
                .into_iter()
                .map(|s| s.expect("every chunk constructed"))
                .collect()
        } else {
            config
                .servers
                .iter()
                .map(|spec| Server::new(spec, initial))
                .collect()
        };
        ClusterSim { config, servers }
    }

    /// Runs rounds until every server completes, then aggregates,
    /// dispatching to the engine named by [`ClusterConfig::engine`].
    ///
    /// Within a round servers are advanced on up to `config.threads`
    /// worker threads. Servers exchange state with the coordinator only at
    /// round barriers, so results are bit-identical for every thread
    /// count — and for either engine.
    pub fn run(self) -> ClusterResult {
        match self.config.engine {
            EngineKind::Round => RoundEngine(self).run(),
            EngineKind::Event => EventEngine(self).run(),
        }
    }

    /// Final aggregation, shared by both engines.
    fn finish(
        config: ClusterConfig,
        servers: Vec<Server>,
        rounds: usize,
        cap_timeline: Vec<Vec<f64>>,
        control: ControlStats,
    ) -> ClusterResult {
        let outcomes = servers
            .into_iter()
            .map(|server| {
                let name = server.name.clone();
                let mean_cap_w = server.mean_cap_w();
                let final_cap_w = server.cap_w();
                let violation_rounds = server.violations();
                let total_target_instrs = server.total_target_instrs();
                ServerOutcome {
                    name,
                    mean_cap_w,
                    final_cap_w,
                    violation_rounds,
                    total_target_instrs,
                    result: server.finalize(),
                }
            })
            .collect();
        ClusterResult {
            split: config.split,
            topology: config.topology.as_ref().map(|t| t.to_string()),
            global_cap_w: config.global_cap_w,
            outcomes,
            rounds,
            cap_timeline,
            control,
        }
    }
}

/// The reference engine: the original round loop, every round touching
/// every server (done servers report inactive telemetry and no-op their
/// step), workers spawned as scoped threads afresh per round.
pub struct RoundEngine(pub ClusterSim);

impl FleetEngine for RoundEngine {
    type Output = ClusterResult;

    fn kind(&self) -> EngineKind {
        EngineKind::Round
    }

    fn run(self) -> ClusterResult {
        let ClusterSim {
            config,
            mut servers,
        } = self.0;
        let names: Vec<&str> = config.servers.iter().map(|s| s.name.as_str()).collect();
        let mut plane = ControlPlane::new(&config);
        let mut cap_timeline: Vec<Vec<f64>> = Vec::new();
        let mut rounds = 0usize;
        while servers.iter().any(|s| !s.is_done()) {
            // --- coordinate: telemetry in, leased caps out ---
            let statuses: Vec<ServerStatus> = servers.iter_mut().map(Server::status).collect();
            let reports: Vec<(usize, ServerDemand)> = statuses
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.demand))
                .collect();
            let caps = plane.barrier(rounds as u64, &reports, &config, &names);
            for (server, &cap) in servers.iter_mut().zip(&caps) {
                server.set_cap(cap);
            }
            if config.record_timeline {
                cap_timeline.push(caps);
            }

            // --- advance every server one coordination period ---
            let epochs = config.epochs_per_round;
            if config.threads == 1 {
                for server in &mut servers {
                    server.step_round(epochs);
                }
            } else {
                let chunk = servers.len().div_ceil(config.threads);
                std::thread::scope(|scope| {
                    for servers in servers.chunks_mut(chunk) {
                        scope.spawn(move || {
                            for server in servers {
                                server.step_round(epochs);
                            }
                        });
                    }
                });
            }
            rounds += 1;
        }
        let control = plane.finish();
        ClusterSim::finish(config, servers, rounds, cap_timeline, control)
    }
}

/// The wake-queue engine: each server schedules its own next coordination
/// wake in a picosecond-ordered [`EventQueue`]; a server whose workload
/// completes simply never re-enqueues, so barrier cost scales with the
/// *active* fleet. Stepping runs on a persistent [`WorkerPool`] (no
/// per-round thread spawns). The plane's coordinator routes flat splits
/// over the compacted active set
/// ([`split_caps_active`](crate::split_caps_active)) and skips the split
/// outright — replaying the cached allocation — when no server's telemetry
/// moved beyond the [`ClusterConfig::dead_band_w`] dead-band
/// ([`CapCache`](crate::CapCache)).
///
/// At the default zero dead-band the result is bit-identical to
/// [`RoundEngine`]: a barrier exists exactly when some server is unfinished
/// (the round loop's `while` condition), awake servers see the same caps
/// (splits are pure functions that ignore inactive telemetry), and a
/// finished server's accumulators stop moving in both engines (its
/// `step_round` is a no-op and splits grant it a zero cap).
pub struct EventEngine(pub ClusterSim);

impl FleetEngine for EventEngine {
    type Output = ClusterResult;

    fn kind(&self) -> EngineKind {
        EngineKind::Event
    }

    fn run(self) -> ClusterResult {
        let ClusterSim { config, servers } = self.0;
        let n = servers.len();
        let epochs = config.epochs_per_round;
        let names: Vec<String> = servers.iter().map(|s| s.name.clone()).collect();
        let names: Vec<&str> = names.iter().map(String::as_str).collect();
        // Servers live in takeable slots so they can round-trip through
        // the worker pool by value.
        let mut slots: Vec<Option<Server>> = servers.into_iter().map(Some).collect();
        let pool = (config.threads > 1)
            .then(|| WorkerPool::new(config.threads, move |s: &mut Server| s.step_round(epochs)));

        // Every server schedules its first wake at barrier 0; wake times
        // are barrier indices (the fleet shares one coordination clock).
        // The queue is sharded (default: one shard per worker) so pushes
        // stay local; pop order is the global sequence order regardless of
        // the shard count.
        let shard_n = if config.wake_shards == 0 {
            config.threads.max(1)
        } else {
            config.wake_shards
        };
        let mut queue = ShardedWakeQueue::new(shard_n);
        for i in 0..n {
            queue.push(Ps::ZERO, i);
        }
        // Fleet-wide telemetry in struct-of-arrays columns. A sleeping
        // (finished) server's columns stay frozen at its final goodbye
        // report with `active: false` — split disciplines never read
        // inactive demand values.
        let mut telemetry = TelemetrySlab::new(n);
        let mut plane = ControlPlane::new(&config);
        let mut cap_timeline: Vec<Vec<f64>> = Vec::new();
        let mut rounds = 0usize;
        let mut awake: Vec<usize> = Vec::new();
        let mut just_finished: Vec<usize> = Vec::new();
        let mut reports: Vec<(usize, ServerDemand)> = Vec::new();

        while let Some(now) = queue.peek_time() {
            awake.clear();
            reports.clear();
            queue.pop_due(now, &mut awake);

            // A server that completed during the previous barrier's step
            // leaves the membership here with one final inactive "goodbye"
            // report: the coordinator returns its share to the pool and
            // releases it to a zero cap, exactly as the round engine's
            // next split would have.
            for &i in &just_finished {
                telemetry.deactivate(i);
                reports.push((i, telemetry.demand(i)));
            }

            // --- coordinate: telemetry in (awake servers only), caps out ---
            for &i in &awake {
                let d = slots[i]
                    .as_mut()
                    .expect("server in pool at barrier")
                    .status()
                    .demand;
                telemetry.set(i, d);
                reports.push((i, d));
            }
            let caps = plane.barrier(rounds as u64, &reports, &config, &names);
            for &i in &just_finished {
                slots[i]
                    .as_mut()
                    .expect("server in pool at barrier")
                    .set_cap(caps[i]);
            }
            just_finished.clear();
            for &i in &awake {
                slots[i]
                    .as_mut()
                    .expect("server in pool at barrier")
                    .set_cap(caps[i]);
            }
            if config.record_timeline {
                cap_timeline.push(caps);
            }
            telemetry.clear_dirty();

            // --- advance the awake servers one coordination period ---
            match &pool {
                Some(pool) => {
                    let jobs: Vec<(usize, Server)> = awake
                        .iter()
                        .map(|&i| (i, slots[i].take().expect("server in pool at barrier")))
                        .collect();
                    pool.run(jobs, |i, s| slots[i] = Some(s));
                }
                None => {
                    for &i in &awake {
                        slots[i]
                            .as_mut()
                            .expect("server in pool at barrier")
                            .step_round(epochs);
                    }
                }
            }

            // --- each server schedules its own next wake (or sleeps) ---
            let next = Ps::new(now.as_ps() + 1);
            for &i in &awake {
                if slots[i].as_ref().expect("server stepped").is_done() {
                    just_finished.push(i);
                } else {
                    queue.push(next, i);
                }
            }
            rounds += 1;
        }

        let servers: Vec<Server> = slots
            .into_iter()
            .map(|s| s.expect("server returned to pool"))
            .collect();
        let control = plane.finish();
        ClusterSim::finish(config, servers, rounds, cap_timeline, control)
    }
}

/// Convenience: build and run a cluster in one call.
pub fn run_cluster(config: ClusterConfig) -> ClusterResult {
    ClusterSim::new(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coscale::PolicyKind;

    fn outcome(name: &str, makespan: Ps, instrs: u64) -> ServerOutcome {
        ServerOutcome {
            name: name.to_string(),
            result: RunResult {
                policy: PolicyKind::CoScale,
                mix: "MID1".to_string(),
                epochs: 0,
                completion: Vec::new(),
                makespan,
                cpu_energy_j: 0.0,
                l2_energy_j: 0.0,
                mem_energy_j: 0.0,
                rest_energy_j: 0.0,
                records: Vec::new(),
                mpki: 0.0,
                wpki: 0.0,
                prefetch_accuracy: 0.0,
                bus_utilization: 0.0,
                row_hit_rate: 0.0,
                avg_read_latency_ns: 0.0,
                mem_sleep_fraction: 0.0,
                read_lat_p50_ns: 0.0,
                read_lat_p95_ns: 0.0,
                read_lat_p99_ns: 0.0,
            },
            mean_cap_w: 50.0,
            final_cap_w: 50.0,
            violation_rounds: 0,
            total_target_instrs: instrs,
        }
    }

    #[test]
    fn zero_makespan_yields_finite_aggregates() {
        // Regression: a server that joined and immediately left (or ran an
        // empty workload) has a zero makespan; throughput and fleet
        // fairness used to divide by it, turning the Jain index (and any
        // digest of it) into inf/NaN.
        let never_ran = outcome("ghost", Ps::ZERO, 1_000_000);
        assert_eq!(never_ran.throughput_ips(), 0.0);

        let r = ClusterResult {
            split: CapSplit::Uniform,
            topology: None,
            global_cap_w: 100.0,
            outcomes: vec![never_ran, outcome("ok", Ps::from_us(500), 1_000_000)],
            rounds: 1,
            cap_timeline: vec![vec![50.0, 50.0]],
            control: ControlStats::default(),
        };
        assert!(r.perf_fairness().is_finite());
        assert!(r.aggregate_throughput_ips().is_finite());
        // One of two servers did all the running: Jain index is 1/2.
        assert!((r.perf_fairness() - 0.5).abs() < 1e-12);
    }
}
