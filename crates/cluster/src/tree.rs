//! Hierarchical power-budget trees: fleet → pod → rack → server.
//!
//! Flat splitting treats every server as a direct child of one coordinator.
//! Real datacenters are trees — a fleet budget divides across pods, a pod's
//! share across its racks, a rack's share across its servers — and capping
//! work at scale (Raghavendra et al.'s "No 'Power' Struggles", FastCap)
//! argues the levels must be coordinated, not independent. A [`BudgetTree`]
//! expresses exactly that: every interior node runs one of the existing
//! split disciplines ([`CapSplit`]) over its *children*, where each child is
//! summarized by its aggregated demand and SLA telemetry, and the chosen
//! child budgets recurse until leaf servers receive concrete caps.
//!
//! Disciplines mix freely per level: a root can split uniformly across pods
//! for organizational isolation while a rack splits SLA-aware so a bursting
//! server inside it can borrow watts from its calm neighbours — without
//! raiding the other pod's share.
//!
//! Aggregation rules (what an interior node "sees" of a subtree):
//!
//! * **Demand / floor** — the sums over the subtree's *active* leaf servers.
//! * **Activity** — a subtree is active while any leaf in it is.
//! * **SLA signal** — the worst violation ratio `p99/target` over the
//!   subtree's active leaves, normalized to a target of 1.0 (so the existing
//!   trim curve applies unchanged). A leaf with no samples yet makes the
//!   whole subtree "unknown", which bids full demand — the conservative
//!   choice while telemetry warms up.
//! * **Critical-path share** — the largest per-server share over the
//!   subtree's active leaves (servers of one tier all carry their tier's
//!   windowed share, so a tier group aggregates to exactly that share).
//!
//! Every discipline spends at most its node budget, so by induction the
//! leaf caps sum to at most the global budget. Splitting is deterministic
//! (ties break toward the first child), so tree-coordinated rounds keep the
//! cluster/service layers' bit-exact thread-count invariance.

use crate::coordinator::{
    split_caps, split_caps_critical, split_caps_sla, ServerDemand, SlaSignal, SplitError,
};
use crate::CapSplit;
use std::collections::HashMap;

/// One node of a [`BudgetTree`]: either a leaf server (named, resolved
/// against the fleet at split time) or an interior group with its own split
/// discipline and children.
#[derive(Clone, Debug)]
pub enum BudgetNode {
    /// A leaf: one server, referenced by its fleet name.
    Server {
        /// The server's display name (must match a fleet member).
        name: String,
    },
    /// An interior node: a pod, rack, or any other aggregation level.
    Group {
        /// Display label (used in rendered topologies and error messages).
        label: String,
        /// The discipline this node uses to divide its budget across its
        /// children.
        split: CapSplit,
        /// Child nodes, in allocation order (ties break toward the first).
        children: Vec<BudgetNode>,
    },
}

impl BudgetNode {
    /// A leaf node for the named server.
    pub fn server(name: &str) -> BudgetNode {
        BudgetNode::Server {
            name: name.to_string(),
        }
    }

    /// An interior node splitting its budget across `children` with
    /// `split`.
    pub fn group(label: &str, split: CapSplit, children: Vec<BudgetNode>) -> BudgetNode {
        BudgetNode::Group {
            label: label.to_string(),
            split,
            children,
        }
    }

    fn push_leaves<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            BudgetNode::Server { name } => out.push(name),
            BudgetNode::Group { children, .. } => {
                for c in children {
                    c.push_leaves(out);
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            BudgetNode::Server { .. } => 1,
            BudgetNode::Group { children, .. } => {
                1 + children.iter().map(BudgetNode::depth).max().unwrap_or(0)
            }
        }
    }

    /// Aggregated power telemetry of the subtree: demand and floor summed
    /// over active leaves, active while any leaf is.
    fn aggregate_demand(&self, ctx: &SplitCtx<'_>) -> ServerDemand {
        match self {
            BudgetNode::Server { name } => ctx.demand_of(name),
            BudgetNode::Group { children, .. } => {
                let mut agg = ServerDemand {
                    demand_w: 0.0,
                    min_w: 0.0,
                    active: false,
                };
                for d in children.iter().map(|c| c.aggregate_demand(ctx)) {
                    if d.active {
                        agg.demand_w += d.demand_w;
                        agg.min_w += d.min_w;
                        agg.active = true;
                    }
                }
                agg
            }
        }
    }

    /// Aggregated SLA telemetry of the subtree, normalized to a target of
    /// 1.0: `p99_s` holds the worst `p99/target` ratio over active leaves,
    /// or 0 ("unknown": bid full demand) while any active leaf lacks
    /// samples.
    fn aggregate_sla(&self, ctx: &SplitCtx<'_>) -> SlaSignal {
        let mut worst_ratio = f64::NEG_INFINITY;
        let mut unknown = false;
        let mut any_active = false;
        self.for_each_leaf(&mut |name| {
            let d = ctx.demand_of(name);
            if !d.active {
                return;
            }
            any_active = true;
            let s = ctx.sla_of(name);
            if s.p99_s <= 0.0 || s.target_s <= 0.0 {
                unknown = true;
            } else {
                worst_ratio = worst_ratio.max(s.p99_s / s.target_s);
            }
        });
        let ratio = if unknown || !any_active {
            0.0
        } else {
            worst_ratio
        };
        SlaSignal {
            p99_s: ratio,
            target_s: 1.0,
        }
    }

    /// Aggregated critical-path share of the subtree: the largest share
    /// over active leaves, 0 without signals.
    fn aggregate_crit(&self, ctx: &SplitCtx<'_>) -> f64 {
        let mut share = 0.0f64;
        self.for_each_leaf(&mut |name| {
            if ctx.demand_of(name).active {
                share = share.max(ctx.crit_of(name));
            }
        });
        share
    }

    fn for_each_leaf<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            BudgetNode::Server { name } => f(name),
            BudgetNode::Group { children, .. } => {
                for c in children {
                    c.for_each_leaf(f);
                }
            }
        }
    }

    /// Divides `budget_w` over the subtree, writing leaf caps into
    /// `caps` (indexed like the fleet). When `trace` is given, every
    /// interior node records the share it was granted (pre-order).
    fn allocate(
        &self,
        budget_w: f64,
        ctx: &SplitCtx<'_>,
        caps: &mut [f64],
        mut trace: Option<&mut Vec<GroupShare>>,
    ) -> Result<(), SplitError> {
        match self {
            BudgetNode::Server { name } => {
                let i = ctx.index_of(name);
                caps[i] = if ctx.demands[i].active { budget_w } else { 0.0 };
            }
            BudgetNode::Group {
                label,
                split,
                children,
            } => {
                if let Some(t) = trace.as_deref_mut() {
                    let mut leaves = Vec::new();
                    self.push_leaves(&mut leaves);
                    t.push(GroupShare {
                        label: label.clone(),
                        budget_w,
                        leaves: leaves.into_iter().map(str::to_string).collect(),
                    });
                }
                let ds: Vec<ServerDemand> =
                    children.iter().map(|c| c.aggregate_demand(ctx)).collect();
                let shares = match (*split, ctx.sla) {
                    (CapSplit::SlaAware, Some(_)) => {
                        let sigs: Vec<SlaSignal> =
                            children.iter().map(|c| c.aggregate_sla(ctx)).collect();
                        split_caps_sla(budget_w, &ds, &sigs, ctx.quantum_w)
                    }
                    (CapSplit::CriticalPath, _) => {
                        let crit: Option<Vec<f64>> = ctx
                            .crit
                            .map(|_| children.iter().map(|c| c.aggregate_crit(ctx)).collect());
                        // Per-tier floors: an equal fraction of this node's
                        // budget for every active child, raised to the
                        // child's power floor inside the split. Infeasible
                        // floor configs surface as a structured error
                        // instead of silently clamping.
                        let floor_w: Option<Vec<f64>> = if ctx.tier_floor_frac > 0.0 {
                            let n_active = ds.iter().filter(|d| d.active).count().max(1);
                            let per = ctx.tier_floor_frac * budget_w / n_active as f64;
                            Some(
                                ds.iter()
                                    .map(|d| if d.active { per } else { 0.0 })
                                    .collect(),
                            )
                        } else {
                            None
                        };
                        split_caps_critical(budget_w, &ds, crit.as_deref(), floor_w.as_deref())?
                    }
                    (s, _) => split_caps(s, budget_w, &ds, ctx.quantum_w),
                };
                for (child, share) in children.iter().zip(shares) {
                    child.allocate(share, ctx, caps, trace.as_deref_mut())?;
                }
            }
        }
        Ok(())
    }

    fn render(&self, out: &mut String) {
        match self {
            BudgetNode::Server { name } => out.push_str(name),
            BudgetNode::Group {
                label,
                split,
                children,
            } => {
                out.push_str(label);
                out.push(':');
                out.push_str(&split.to_string());
                out.push('[');
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    c.render(out);
                }
                out.push(']');
            }
        }
    }
}

/// One interior node's granted share during a [`BudgetTree::split_trace`],
/// in pre-order (a group always precedes its descendants).
#[derive(Clone, Debug)]
pub struct GroupShare {
    /// The group's label.
    pub label: String,
    /// The budget the group was granted, watts.
    pub budget_w: f64,
    /// The subtree's leaf servers, in allocation order.
    pub leaves: Vec<String>,
}

/// Per-split context: the fleet's telemetry plus the name → index map.
struct SplitCtx<'a> {
    index: &'a HashMap<&'a str, usize>,
    demands: &'a [ServerDemand],
    sla: Option<&'a [SlaSignal]>,
    crit: Option<&'a [f64]>,
    tier_floor_frac: f64,
    quantum_w: f64,
}

impl SplitCtx<'_> {
    fn index_of(&self, name: &str) -> usize {
        *self
            .index
            .get(name)
            .unwrap_or_else(|| panic!("budget tree leaf '{name}' not in the fleet"))
    }

    fn demand_of(&self, name: &str) -> ServerDemand {
        self.demands[self.index_of(name)]
    }

    fn sla_of(&self, name: &str) -> SlaSignal {
        match self.sla {
            Some(s) => s[self.index_of(name)],
            None => SlaSignal {
                p99_s: 0.0,
                target_s: 1.0,
            },
        }
    }

    fn crit_of(&self, name: &str) -> f64 {
        match self.crit {
            Some(c) => c[self.index_of(name)],
            None => 0.0,
        }
    }
}

/// Optional per-server signals driving signal-aware tree disciplines; the
/// all-`None` default reproduces the signal-free [`BudgetTree::split`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeSignals<'a> {
    /// Tail-latency telemetry, indexed like the fleet (SLA-aware nodes).
    pub sla: Option<&'a [SlaSignal]>,
    /// Windowed critical-path share per server — every member of a tier
    /// carries its tier's share (critical-path nodes).
    pub crit: Option<&'a [f64]>,
    /// Per-tier floor under critical-path nodes: each active child of such
    /// a node is floored at `tier_floor_frac × node budget / active
    /// children`. Zero disables explicit floors (power floors still hold).
    pub tier_floor_frac: f64,
}

/// A hierarchical budget topology over a server fleet.
///
/// # Example
///
/// ```
/// use cluster::{BudgetNode, BudgetTree, CapSplit};
///
/// // Uniform across two racks; SLA-aware inside the hot one.
/// let tree = BudgetTree::new(BudgetNode::group(
///     "fleet",
///     CapSplit::Uniform,
///     vec![
///         BudgetNode::group(
///             "hot-rack",
///             CapSplit::SlaAware,
///             vec![BudgetNode::server("h0"), BudgetNode::server("h1")],
///         ),
///         BudgetNode::group(
///             "calm-rack",
///             CapSplit::FastCap,
///             vec![BudgetNode::server("c0"), BudgetNode::server("c1")],
///         ),
///     ],
/// ));
/// assert_eq!(tree.leaves(), vec!["h0", "h1", "c0", "c1"]);
/// assert_eq!(tree.to_string(), "fleet:uniform[hot-rack:sla-aware[h0,h1],calm-rack:fastcap[c0,c1]]");
/// assert_eq!(BudgetTree::parse(&tree.to_string()).unwrap().to_string(), tree.to_string());
/// ```
#[derive(Clone, Debug)]
pub struct BudgetTree {
    root: BudgetNode,
}

impl BudgetTree {
    /// A tree with the given root node (normally a [`BudgetNode::Group`]).
    pub fn new(root: BudgetNode) -> BudgetTree {
        BudgetTree { root }
    }

    /// The root node.
    pub fn root(&self) -> &BudgetNode {
        &self.root
    }

    /// Leaf server names in allocation (left-to-right) order.
    pub fn leaves(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.root.push_leaves(&mut out);
        out
    }

    /// Number of levels, counting both leaves and interior nodes (a flat
    /// group over servers has depth 2).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Checks structural consistency against a fleet: every fleet server
    /// appears as exactly one leaf, no unknown leaves, no empty groups, and
    /// group labels are unique (required for [`BudgetTree::attach_server`]).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency found.
    pub fn validate(&self, fleet: &[&str]) -> Result<(), String> {
        let mut groups = Vec::new();
        collect_group_labels(&self.root, &mut groups);
        for (i, g) in groups.iter().enumerate() {
            if groups[..i].contains(g) {
                return Err(format!("budget tree: duplicate group label '{g}'"));
            }
        }
        check_groups_nonempty(&self.root)?;
        let leaves = self.leaves();
        for (i, l) in leaves.iter().enumerate() {
            if leaves[..i].contains(l) {
                return Err(format!("budget tree: server '{l}' appears twice"));
            }
        }
        for l in &leaves {
            if !fleet.contains(l) {
                return Err(format!("budget tree: unknown server '{l}'"));
            }
        }
        for s in fleet {
            if !leaves.contains(s) {
                return Err(format!(
                    "budget tree: fleet server '{s}' missing from the tree"
                ));
            }
        }
        Ok(())
    }

    /// Splits `global_cap_w` over the fleet through the tree. `names` gives
    /// the fleet order; `demands` (and `sla`, when present) are indexed the
    /// same way, as is the returned cap vector. Without SLA signals,
    /// SLA-aware nodes degrade to the demand-saturating FastCap variant
    /// (see [`split_caps`]).
    ///
    /// # Panics
    ///
    /// Panics if a tree leaf names a server absent from `names` — run
    /// [`BudgetTree::validate`] against the fleet first.
    pub fn split(
        &self,
        global_cap_w: f64,
        names: &[&str],
        demands: &[ServerDemand],
        sla: Option<&[SlaSignal]>,
        quantum_w: f64,
    ) -> Vec<f64> {
        self.split_signals(
            global_cap_w,
            names,
            demands,
            &TreeSignals {
                sla,
                ..TreeSignals::default()
            },
            quantum_w,
        )
        .expect("without tier floors a tree split cannot fail")
    }

    /// Like [`BudgetTree::split`], but with the full signal set: SLA
    /// telemetry, per-server critical-path shares, and per-tier floors for
    /// critical-path nodes. Without crit signals, critical-path nodes
    /// degrade to demand-proportional.
    ///
    /// # Errors
    ///
    /// Fails with [`SplitError::InfeasibleFloors`] when a critical-path
    /// node's configured per-tier floors over-commit its budget.
    ///
    /// # Panics
    ///
    /// Panics if a tree leaf names a server absent from `names` — run
    /// [`BudgetTree::validate`] against the fleet first.
    pub fn split_signals(
        &self,
        global_cap_w: f64,
        names: &[&str],
        demands: &[ServerDemand],
        signals: &TreeSignals<'_>,
        quantum_w: f64,
    ) -> Result<Vec<f64>, SplitError> {
        assert_eq!(names.len(), demands.len(), "one demand per server");
        if let Some(s) = signals.sla {
            assert_eq!(names.len(), s.len(), "one SLA signal per server");
        }
        if let Some(c) = signals.crit {
            assert_eq!(names.len(), c.len(), "one crit share per server");
        }
        let index: HashMap<&str, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let ctx = SplitCtx {
            index: &index,
            demands,
            sla: signals.sla,
            crit: signals.crit,
            tier_floor_frac: signals.tier_floor_frac,
            quantum_w,
        };
        let mut caps = vec![0.0; demands.len()];
        self.root.allocate(global_cap_w, &ctx, &mut caps, None)?;
        Ok(caps)
    }

    /// Like [`BudgetTree::split`], but also returns the share every
    /// interior node was granted on the way down (pre-order). This is the
    /// budget-bound audit trail: for every [`GroupShare`] the caps of its
    /// `leaves` must sum to at most its `budget_w`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BudgetTree::split`].
    pub fn split_trace(
        &self,
        global_cap_w: f64,
        names: &[&str],
        demands: &[ServerDemand],
        sla: Option<&[SlaSignal]>,
        quantum_w: f64,
    ) -> (Vec<f64>, Vec<GroupShare>) {
        assert_eq!(names.len(), demands.len(), "one demand per server");
        if let Some(s) = sla {
            assert_eq!(names.len(), s.len(), "one SLA signal per server");
        }
        let index: HashMap<&str, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let ctx = SplitCtx {
            index: &index,
            demands,
            sla,
            crit: None,
            tier_floor_frac: 0.0,
            quantum_w,
        };
        let mut caps = vec![0.0; demands.len()];
        let mut trace = Vec::new();
        self.root
            .allocate(global_cap_w, &ctx, &mut caps, Some(&mut trace))
            .expect("without tier floors a tree split cannot fail");
        (caps, trace)
    }

    /// Attaches a new leaf server under the group labelled `group`, or
    /// under the root when `group` is `None`. Used by churn joins.
    ///
    /// # Errors
    ///
    /// Returns an error when the root is a bare leaf or no group carries
    /// the label.
    pub fn attach_server(&mut self, name: &str, group: Option<&str>) -> Result<(), String> {
        fn attach(node: &mut BudgetNode, name: &str, label: &str) -> bool {
            if let BudgetNode::Group {
                label: l, children, ..
            } = node
            {
                if l == label {
                    children.push(BudgetNode::server(name));
                    return true;
                }
                return children.iter_mut().any(|c| attach(c, name, label));
            }
            false
        }
        match (&mut self.root, group) {
            (BudgetNode::Server { .. }, _) => {
                Err("budget tree: cannot attach to a leaf-only tree".into())
            }
            (BudgetNode::Group { children, .. }, None) => {
                children.push(BudgetNode::server(name));
                Ok(())
            }
            (root, Some(label)) => {
                if attach(root, name, label) {
                    Ok(())
                } else {
                    Err(format!("budget tree: no group labelled '{label}'"))
                }
            }
        }
    }

    /// Detaches the leaf for `name`, returning whether it was found. Empty
    /// groups are kept: they simply aggregate to inactive and draw no
    /// budget, and a later join may repopulate them.
    pub fn remove_server(&mut self, name: &str) -> bool {
        fn remove(node: &mut BudgetNode, name: &str) -> bool {
            if let BudgetNode::Group { children, .. } = node {
                if let Some(i) = children
                    .iter()
                    .position(|c| matches!(c, BudgetNode::Server { name: n } if n == name))
                {
                    children.remove(i);
                    return true;
                }
                return children.iter_mut().any(|c| remove(c, name));
            }
            false
        }
        remove(&mut self.root, name)
    }

    /// Parses the CLI topology syntax:
    /// `label:split[child,child,...]` where each child is either a nested
    /// group or a bare server name, and `split` is one of `uniform`,
    /// `demand-proportional` (or `demand`), `fastcap`, `sla-aware` (or
    /// `sla`), `critical-path` (or `crit`). Example:
    /// `fleet:uniform[rack0:sla-aware[h0,h1],pod:fastcap[c0,c1]]`.
    ///
    /// # Errors
    ///
    /// Returns a message pointing at the first syntax error.
    pub fn parse(spec: &str) -> Result<BudgetTree, String> {
        let mut p = Parser { src: spec, pos: 0 };
        let root = p.node()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(format!(
                "topology: trailing input at byte {}: '{}'",
                p.pos,
                &p.src[p.pos..]
            ));
        }
        Ok(BudgetTree::new(root))
    }
}

impl std::fmt::Display for BudgetTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = String::new();
        self.root.render(&mut s);
        write!(f, "{s}")
    }
}

fn collect_group_labels<'a>(node: &'a BudgetNode, out: &mut Vec<&'a str>) {
    if let BudgetNode::Group {
        label, children, ..
    } = node
    {
        out.push(label);
        for c in children {
            collect_group_labels(c, out);
        }
    }
}

fn check_groups_nonempty(node: &BudgetNode) -> Result<(), String> {
    if let BudgetNode::Group {
        label, children, ..
    } = node
    {
        if children.is_empty() {
            return Err(format!("budget tree: group '{label}' has no children"));
        }
        for c in children {
            check_groups_nonempty(c)?;
        }
    }
    Ok(())
}

/// Recursive-descent parser over the topology grammar.
struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(' ') {
            self.pos += 1;
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let end = rest
            .find(|c: char| !(c.is_alphanumeric() || "-_.".contains(c)))
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(format!(
                "topology: expected a name at byte {}: '{rest}'",
                self.pos
            ));
        }
        self.pos += end;
        Ok(rest[..end].to_string())
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn node(&mut self) -> Result<BudgetNode, String> {
        let name = self.ident()?;
        if !self.eat(':') {
            return Ok(BudgetNode::server(&name));
        }
        let split_name = self.ident()?;
        let split = match split_name.as_str() {
            "uniform" => CapSplit::Uniform,
            "demand-proportional" | "demand" => CapSplit::DemandProportional,
            "fastcap" => CapSplit::FastCap,
            "sla-aware" | "sla" => CapSplit::SlaAware,
            "critical-path" | "crit" => CapSplit::CriticalPath,
            other => {
                return Err(format!(
                    "topology: unknown split '{other}' in group '{name}'"
                ))
            }
        };
        if !self.eat('[') {
            return Err(format!("topology: group '{name}' needs a [child,...] list"));
        }
        let mut children = Vec::new();
        loop {
            children.push(self.node()?);
            if self.eat(',') {
                continue;
            }
            if self.eat(']') {
                break;
            }
            return Err(format!(
                "topology: expected ',' or ']' at byte {} in group '{name}'",
                self.pos
            ));
        }
        Ok(BudgetNode::group(&name, split, children))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(demand_w: f64, min_w: f64) -> ServerDemand {
        ServerDemand {
            demand_w,
            min_w,
            active: true,
        }
    }

    fn two_racks() -> BudgetTree {
        BudgetTree::parse("fleet:uniform[rack0:fastcap[a,b],rack1:fastcap[c,d]]").unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        let spec = "fleet:uniform[rack0:sla-aware[h0,h1],pod:fastcap[c0,c1]]";
        let t = BudgetTree::parse(spec).unwrap();
        assert_eq!(t.to_string(), spec);
        assert_eq!(t.leaves(), vec!["h0", "h1", "c0", "c1"]);
        assert_eq!(t.depth(), 3);
        // Aliases and whitespace are accepted; display normalizes.
        let t = BudgetTree::parse("f:demand[ x , r:sla[ y ] ]").unwrap();
        assert_eq!(t.to_string(), "f:demand-proportional[x,r:sla-aware[y]]");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "f:uniform",
            "f:uniform[",
            "f:uniform[]",
            "f:uniform[a,b]x",
            "f:nosuch[a]",
            "f:uniform[a;b]",
        ] {
            assert!(BudgetTree::parse(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn validate_pins_leaf_fleet_bijection() {
        let t = two_racks();
        assert!(t.validate(&["a", "b", "c", "d"]).is_ok());
        assert!(t.validate(&["a", "b", "c"]).is_err(), "unknown leaf d");
        assert!(t.validate(&["a", "b", "c", "d", "e"]).is_err(), "missing e");
        let dup = BudgetTree::parse("f:uniform[a,a]").unwrap();
        assert!(dup.validate(&["a"]).is_err());
        let dup_label = BudgetTree::parse("f:uniform[g:fastcap[a],g:fastcap[b]]").unwrap();
        assert!(dup_label.validate(&["a", "b"]).is_err());
    }

    #[test]
    fn uniform_root_isolates_group_budgets() {
        let t = two_racks();
        let names = ["a", "b", "c", "d"];
        // rack0 is enormous, rack1 tiny: a flat split would route nearly
        // everything to rack0, but the uniform root pins each rack to 100 W.
        let demands = [d(300.0, 40.0), d(300.0, 40.0), d(30.0, 10.0), d(30.0, 10.0)];
        let caps = t.split(200.0, &names, &demands, None, 1.0);
        let rack0: f64 = caps[0] + caps[1];
        let rack1: f64 = caps[2] + caps[3];
        assert!(rack0 <= 100.0 + 1e-6, "rack0 {rack0}");
        assert!(rack1 <= 100.0 + 1e-6, "rack1 {rack1}");
        assert!(caps.iter().sum::<f64>() <= 200.0 + 1e-6);
        // rack1's servers saturate at their 30 W demands (fastcap parks the
        // leftover inside the rack, never outside it).
        assert!(caps[2] >= 30.0 - 1e-6 && caps[3] >= 30.0 - 1e-6, "{caps:?}");
    }

    #[test]
    fn tree_split_matches_flat_for_single_group() {
        // A one-group tree is exactly the flat coordinator.
        let t = BudgetTree::parse("fleet:fastcap[a,b,c]").unwrap();
        let names = ["a", "b", "c"];
        let demands = [d(150.0, 40.0), d(90.0, 35.0), d(60.0, 30.0)];
        for budget in [110.0, 160.0, 250.0] {
            let tree_caps = t.split(budget, &names, &demands, None, 1.0);
            let flat_caps = split_caps(CapSplit::FastCap, budget, &demands, 1.0);
            assert_eq!(tree_caps, flat_caps, "budget {budget}");
        }
    }

    #[test]
    fn inactive_subtree_returns_its_share_to_siblings() {
        let t = two_racks();
        let names = ["a", "b", "c", "d"];
        let mut demands = [
            d(100.0, 30.0),
            d(100.0, 30.0),
            d(100.0, 30.0),
            d(100.0, 30.0),
        ];
        demands[0].active = false;
        demands[1].active = false;
        // rack0 entirely done: the uniform root sees one active child and
        // hands rack1 the whole budget.
        let caps = t.split(150.0, &names, &demands, None, 1.0);
        assert_eq!(caps[0], 0.0);
        assert_eq!(caps[1], 0.0);
        assert!(caps[2] + caps[3] > 140.0, "{caps:?}");
    }

    #[test]
    fn sla_aware_node_boosts_the_violating_subtree() {
        let t =
            BudgetTree::parse("fleet:sla-aware[rack0:fastcap[a,b],rack1:fastcap[c,d]]").unwrap();
        let names = ["a", "b", "c", "d"];
        let demands = [
            d(100.0, 30.0),
            d(100.0, 30.0),
            d(100.0, 30.0),
            d(100.0, 30.0),
        ];
        let sla = [
            SlaSignal {
                p99_s: 2e-3,
                target_s: 1e-3,
            }, // violating
            SlaSignal {
                p99_s: 0.9e-3,
                target_s: 1e-3,
            },
            SlaSignal {
                p99_s: 0.3e-3,
                target_s: 1e-3,
            }, // comfortable
            SlaSignal {
                p99_s: 0.3e-3,
                target_s: 1e-3,
            },
        ];
        let caps = t.split(300.0, &names, &demands, Some(&sla), 1.0);
        let rack0: f64 = caps[0] + caps[1];
        let rack1: f64 = caps[2] + caps[3];
        // rack0 contains a violator: it bids its full 200 W demand. rack1
        // is comfortable (worst ratio 0.3) and is trimmed below demand.
        assert!((rack0 - 200.0).abs() < 1e-6, "{caps:?}");
        assert!(rack1 < 200.0 - 1e-6, "{caps:?}");
        assert!(caps.iter().sum::<f64>() <= 300.0 + 1e-6);
    }

    #[test]
    fn sla_aware_node_without_signals_degrades_to_saturating_fastcap() {
        let t = BudgetTree::parse("fleet:sla-aware[a,b]").unwrap();
        let names = ["a", "b"];
        let demands = [d(100.0, 30.0), d(60.0, 20.0)];
        let caps = t.split(400.0, &names, &demands, None, 1.0);
        // Saturates at demand, leftover unspent (no parking).
        assert!((caps[0] - 100.0).abs() < 1e-9, "{caps:?}");
        assert!((caps[1] - 60.0).abs() < 1e-9, "{caps:?}");
    }

    #[test]
    fn unknown_latency_in_a_subtree_bids_full_demand() {
        let t = BudgetTree::parse("fleet:sla-aware[rack0:fastcap[a,b],rack1:fastcap[c]]").unwrap();
        let names = ["a", "b", "c"];
        let demands = [d(100.0, 30.0), d(100.0, 30.0), d(100.0, 30.0)];
        let sla = [
            SlaSignal {
                p99_s: 0.2e-3,
                target_s: 1e-3,
            },
            SlaSignal {
                p99_s: 0.0,
                target_s: 1e-3,
            }, // warming up
            SlaSignal {
                p99_s: 0.2e-3,
                target_s: 1e-3,
            },
        ];
        let caps = t.split(500.0, &names, &demands, Some(&sla), 1.0);
        // rack0 has an unknown leaf → the whole rack bids full demand.
        assert!((caps[0] + caps[1] - 200.0).abs() < 1e-6, "{caps:?}");
        // rack1 is comfortable → trimmed below its 100 W demand.
        assert!(caps[2] < 100.0 - 1e-6, "{caps:?}");
    }

    #[test]
    fn churn_attach_and_remove_keep_the_tree_consistent() {
        let mut t = two_racks();
        assert!(t.attach_server("e", Some("rack1")).is_ok());
        assert_eq!(t.leaves(), vec!["a", "b", "c", "d", "e"]);
        assert!(t.attach_server("f", None).is_ok());
        assert_eq!(
            t.to_string(),
            "fleet:uniform[rack0:fastcap[a,b],rack1:fastcap[c,d,e],f]"
        );
        assert!(t.attach_server("g", Some("nosuch")).is_err());
        assert!(t.remove_server("c"));
        assert!(!t.remove_server("c"));
        assert_eq!(t.leaves(), vec!["a", "b", "d", "e", "f"]);
        // Draining a rack empty keeps the (inactive) group in place.
        assert!(t.remove_server("a"));
        assert!(t.remove_server("b"));
        assert!(t.to_string().contains("rack0:fastcap[]"));
    }

    #[test]
    fn split_trace_agrees_with_split_and_bounds_every_group() {
        let t = two_racks();
        let names = ["a", "b", "c", "d"];
        let demands = [d(300.0, 40.0), d(300.0, 40.0), d(30.0, 10.0), d(30.0, 10.0)];
        let (caps, trace) = t.split_trace(200.0, &names, &demands, None, 1.0);
        assert_eq!(caps, t.split(200.0, &names, &demands, None, 1.0));
        // Pre-order: the root first, carrying the whole budget and fleet.
        assert_eq!(trace[0].label, "fleet");
        assert_eq!(trace[0].budget_w, 200.0);
        assert_eq!(trace[0].leaves, vec!["a", "b", "c", "d"]);
        assert_eq!(trace.len(), 3, "one entry per interior node");
        // Every group's leaf caps sum to at most its granted share.
        let idx = |n: &str| names.iter().position(|x| *x == n).unwrap();
        for g in &trace {
            let sum: f64 = g.leaves.iter().map(|l| caps[idx(l)]).sum();
            assert!(
                sum <= g.budget_w + 1e-6,
                "{}: {sum} > {}",
                g.label,
                g.budget_w
            );
        }
    }

    #[test]
    fn critical_path_node_shifts_budget_by_trace_shares() {
        let t =
            BudgetTree::parse("svc:critical-path[fe:fastcap[f0,f1],st:fastcap[s0,s1]]").unwrap();
        let names = ["f0", "f1", "s0", "s1"];
        let demands = [
            d(100.0, 20.0),
            d(100.0, 20.0),
            d(100.0, 20.0),
            d(100.0, 20.0),
        ];
        // Traces: the storage tier dominates the critical path. Every
        // member of a tier carries the tier's share.
        let crit = [0.2, 0.2, 0.8, 0.8];
        let sig = TreeSignals {
            crit: Some(&crit),
            ..TreeSignals::default()
        };
        let caps = t.split_signals(240.0, &names, &demands, &sig, 1.0).unwrap();
        let fe: f64 = caps[0] + caps[1];
        let st: f64 = caps[2] + caps[3];
        assert!(st > fe, "{caps:?}");
        // Floors (40 W per tier) first, spare 160 W split 0.2 : 0.8.
        assert!((st - (40.0 + 0.8 * 160.0)).abs() < 1e-6, "{caps:?}");
        assert!(caps.iter().sum::<f64>() <= 240.0 + 1e-6);
    }

    #[test]
    fn critical_path_node_without_traces_is_demand_proportional() {
        let t = BudgetTree::parse("svc:critical-path[fe:fastcap[f0,f1],st:fastcap[s0]]").unwrap();
        let dp =
            BudgetTree::parse("svc:demand-proportional[fe:fastcap[f0,f1],st:fastcap[s0]]").unwrap();
        let names = ["f0", "f1", "s0"];
        let demands = [d(120.0, 30.0), d(80.0, 30.0), d(60.0, 25.0)];
        let caps = t.split(200.0, &names, &demands, None, 1.0);
        assert_eq!(caps, dp.split(200.0, &names, &demands, None, 1.0));
        // Zero shares degrade the same way.
        let sig = TreeSignals {
            crit: Some(&[0.0, 0.0, 0.0]),
            ..TreeSignals::default()
        };
        assert_eq!(
            t.split_signals(200.0, &names, &demands, &sig, 1.0).unwrap(),
            caps
        );
    }

    #[test]
    fn tier_floors_hold_and_infeasible_floors_error() {
        let t = BudgetTree::parse("svc:critical-path[fe:fastcap[f0],st:fastcap[s0]]").unwrap();
        let names = ["f0", "s0"];
        let demands = [d(100.0, 10.0), d(100.0, 10.0)];
        // Storage takes the whole critical path, but each tier keeps a
        // 25% floor of the node budget.
        let sig = TreeSignals {
            crit: Some(&[0.0, 1.0]),
            tier_floor_frac: 0.5,
            ..TreeSignals::default()
        };
        let caps = t.split_signals(120.0, &names, &demands, &sig, 1.0).unwrap();
        assert!((caps[0] - 30.0).abs() < 1e-6, "floor unmet: {caps:?}");
        assert!((caps[1] - 90.0).abs() < 1e-6, "{caps:?}");
        // Floors above the child power floors that over-commit the node
        // budget surface the structured error. Power floors of 70 W each
        // cannot fit a 120 W node budget once explicit floors force both
        // tiers to stay powered.
        let heavy = [d(100.0, 70.0), d(100.0, 70.0)];
        let err = t
            .split_signals(120.0, &names, &heavy, &sig, 1.0)
            .unwrap_err();
        assert!(
            matches!(err, SplitError::InfeasibleFloors { required_w, budget_w }
                if required_w > budget_w),
            "{err:?}"
        );
    }

    #[test]
    fn nested_tree_never_exceeds_budget() {
        let t = BudgetTree::parse(
            "dc:demand-proportional[pod0:uniform[r0:fastcap[a,b],r1:sla-aware[c,d]],pod1:fastcap[e,f]]",
        )
        .unwrap();
        let names = ["a", "b", "c", "d", "e", "f"];
        let demands = [
            d(120.0, 40.0),
            d(80.0, 35.0),
            d(200.0, 50.0),
            d(60.0, 30.0),
            d(90.0, 25.0),
            d(150.0, 45.0),
        ];
        for budget in [100.0, 226.0, 400.0, 900.0] {
            let caps = t.split(budget, &names, &demands, None, 1.0);
            assert!(
                caps.iter().sum::<f64>() <= budget + 1e-6,
                "budget {budget}: {caps:?}"
            );
        }
    }
}
