//! The cluster-level coordinator: turns one global power budget into
//! per-server caps, once per coordination round.
//!
//! Three disciplines are implemented (see [`CapSplit`]):
//!
//! * **Uniform** — `C/N` each; the baseline every capping paper compares
//!   against.
//! * **Demand-proportional** — floors first, then leftover budget in
//!   proportion to each server's demand above its floor.
//! * **FastCap-style** — marginal-utility greedy after FastCap (Liu et
//!   al.): budget is granted in quanta, each to the server with the
//!   highest predicted *absolute* performance return per watt under a
//!   concave (square-root) performance-versus-power curve scaled by the
//!   server's uncapped demand — a proxy for machine size, so a watt that
//!   buys a big server 1% buys more instructions than 1% on a small one.
//!   Servers far below their demand have steep curves and win quanta;
//!   saturated servers stop bidding.
//!
//! All three are deterministic: ties break toward the lowest server index.
//!
//! Two signal-driven disciplines build on the same machinery: **SLA-aware**
//! (see [`split_caps_sla`]) bids tail-latency violators to full demand, and
//! **critical-path** (see [`split_caps_critical`]) shifts budget toward the
//! service tier dominating end-to-end request latency. Both degrade to the
//! signal-free disciplines above when their telemetry is absent.

use crate::CapSplit;

/// What the coordinator knows about one server at a round boundary.
#[derive(Clone, Copy, Debug)]
pub struct ServerDemand {
    /// Predicted uncapped (all-max plan) power draw, watts.
    pub demand_w: f64,
    /// Predicted all-minimum plan power draw — the floor below which a cap
    /// is unreachable, watts.
    pub min_w: f64,
    /// Whether the server still has work to run. Finished servers get a
    /// zero cap and their share returns to the pool.
    pub active: bool,
}

impl ServerDemand {
    /// Demand headroom above the floor, clamped non-negative.
    fn headroom(&self) -> f64 {
        (self.demand_w - self.min_w).max(0.0)
    }
}

/// Splits `global_cap_w` across servers according to `split`.
///
/// The returned caps sum to at most `global_cap_w` (up to rounding in the
/// last FastCap quantum) and are zero for inactive servers. When the
/// budget cannot even cover every active server's floor, floors are scaled
/// down proportionally — each server then receives an unreachable cap and
/// degrades to its all-minimum plan (see `PowerCapPolicy`).
pub fn split_caps(
    split: CapSplit,
    global_cap_w: f64,
    demands: &[ServerDemand],
    quantum_w: f64,
) -> Vec<f64> {
    let n_active = demands.iter().filter(|d| d.active).count();
    if n_active == 0 {
        return vec![0.0; demands.len()];
    }
    match split {
        CapSplit::Uniform => {
            let share = global_cap_w / n_active as f64;
            demands
                .iter()
                .map(|d| if d.active { share } else { 0.0 })
                .collect()
        }
        CapSplit::DemandProportional => {
            let mut caps = floors(global_cap_w, demands);
            let used: f64 = caps.iter().sum();
            let spare = (global_cap_w - used).max(0.0);
            let total_headroom: f64 = demands
                .iter()
                .filter(|d| d.active)
                .map(ServerDemand::headroom)
                .sum();
            for (cap, d) in caps.iter_mut().zip(demands) {
                if !d.active {
                    continue;
                }
                *cap += if total_headroom > 0.0 {
                    spare * d.headroom() / total_headroom
                } else {
                    spare / n_active as f64
                };
            }
            caps
        }
        CapSplit::FastCap => fastcap_split(global_cap_w, demands, quantum_w),
        // Without latency signals the SLA discipline has nothing to react
        // to; degrade to its granting core — FastCap ordering, but keeping
        // the documented "leftover goes unspent" invariant: caps saturate
        // at demand instead of parking surplus budget on servers.
        CapSplit::SlaAware => fastcap_core(global_cap_w, demands, quantum_w, false, None)
            .expect("legacy floors are always feasible"),
        // Without trace signals the critical-path discipline degrades to
        // demand-proportional (legacy floors cannot be infeasible).
        CapSplit::CriticalPath => split_caps_critical(global_cap_w, demands, None, None)
            .expect("legacy floors are always feasible"),
    }
}

/// Why a budget split could not be computed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SplitError {
    /// Configured per-child floors sum above the group budget. Earlier
    /// callers only ever floored at each server's *scaled* all-minimum
    /// power, which is feasible by construction; explicit per-tier floor
    /// configs can genuinely over-commit, and silently clamping them would
    /// hide a broken configuration behind unreachable caps.
    InfeasibleFloors {
        /// Sum of the active children's effective floors, watts.
        required_w: f64,
        /// The group budget those floors must fit inside, watts.
        budget_w: f64,
    },
}

impl std::fmt::Display for SplitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitError::InfeasibleFloors {
                required_w,
                budget_w,
            } => write!(
                f,
                "infeasible floors: required {required_w:.3} W exceeds budget {budget_w:.3} W"
            ),
        }
    }
}

impl std::error::Error for SplitError {}

/// Critical-path aware splitting across children that are service *tiers*.
///
/// `shares` is each child's windowed share of end-to-end critical-path
/// time (from a `TraceCollector`); `floor_w` is an optional explicit floor
/// per child (e.g. a per-tier fraction of the group budget), raised to the
/// child's all-minimum power and validated against the budget.
///
/// With warm shares, spare budget above the floors water-fills in
/// proportion to each child's share, clipped at its demand and
/// re-distributed to unsaturated children; leftover is deliberately
/// unspent (the energy the discipline saves). With `shares` of `None` or
/// all-zero — traces too sparse to trust — the split degrades to exactly
/// the demand-proportional discipline over the same floors.
pub fn split_caps_critical(
    global_cap_w: f64,
    demands: &[ServerDemand],
    shares: Option<&[f64]>,
    floor_w: Option<&[f64]>,
) -> Result<Vec<f64>, SplitError> {
    let n_active = demands.iter().filter(|d| d.active).count();
    if n_active == 0 {
        return Ok(vec![0.0; demands.len()]);
    }
    let mut caps = checked_floors(global_cap_w, demands, floor_w)?;
    let mut spare = (global_cap_w - caps.iter().sum::<f64>()).max(0.0);
    let warm = shares.is_some_and(|s| {
        assert_eq!(s.len(), demands.len(), "one share per child");
        s.iter().any(|&x| x > 0.0)
    });
    if !warm {
        // Sparse traces: exactly the demand-proportional discipline.
        let total_headroom: f64 = demands
            .iter()
            .filter(|d| d.active)
            .map(ServerDemand::headroom)
            .sum();
        for (cap, d) in caps.iter_mut().zip(demands) {
            if !d.active {
                continue;
            }
            *cap += if total_headroom > 0.0 {
                spare * d.headroom() / total_headroom
            } else {
                spare / n_active as f64
            };
        }
        return Ok(caps);
    }
    let shares = shares.expect("warm implies shares");
    // Water-fill spare budget by critical-path share, clipping each child
    // at its demand; every pass either spends the spare or saturates a
    // child, so at most n passes run.
    for _ in 0..demands.len() {
        let total_share: f64 = demands
            .iter()
            .enumerate()
            .filter(|&(i, d)| d.active && d.demand_w - caps[i] > CLIP_EPS_W)
            .map(|(i, _)| shares[i])
            .sum();
        if spare <= CLIP_EPS_W || total_share <= 0.0 {
            break;
        }
        let mut granted = 0.0;
        for (i, d) in demands.iter().enumerate() {
            if !d.active || shares[i] <= 0.0 {
                continue;
            }
            let room = d.demand_w - caps[i];
            if room <= CLIP_EPS_W {
                continue;
            }
            let give = (spare * shares[i] / total_share).min(room);
            caps[i] += give;
            granted += give;
        }
        spare -= granted;
        if granted <= CLIP_EPS_W {
            break;
        }
    }
    Ok(caps)
}

/// SLA-aware splitting with explicit per-child floors; see
/// [`split_caps_sla`]. Each floor is raised to the child's all-minimum
/// power, and the call fails with [`SplitError::InfeasibleFloors`] instead
/// of silently clamping when the floors over-commit the budget.
pub fn split_caps_sla_floored(
    global_cap_w: f64,
    demands: &[ServerDemand],
    sla: &[SlaSignal],
    floor_w: &[f64],
    quantum_w: f64,
) -> Result<Vec<f64>, SplitError> {
    sla_core(global_cap_w, demands, sla, quantum_w, Some(floor_w))
}

/// One server's tail-latency telemetry for SLA-aware splitting.
#[derive(Clone, Copy, Debug)]
pub struct SlaSignal {
    /// Observed p99 request latency over the recent window, seconds.
    /// Zero means "no samples yet" — the server is treated as unknown and
    /// bids its full demand.
    pub p99_s: f64,
    /// The server's p99 latency target, seconds.
    pub target_s: f64,
}

impl SlaSignal {
    /// Whether the server is violating its target (requires samples).
    pub fn violating(&self) -> bool {
        self.p99_s > self.target_s && self.target_s > 0.0
    }
}

/// SLA-aware splitting: latency-violating servers bid for the budget first.
///
/// Each server's *desired* cap depends on its latency signal:
///
/// * **Violating** (`p99 > target`) or **unknown** (`p99 == 0`): desires its
///   full uncapped demand — nothing less is defensible while requests are
///   missing their SLO.
/// * **Meeting**: trimmed below demand in proportion to how much latency
///   headroom it has — `min_w + headroom × (0.25 + 0.75 × p99/target)`. A
///   server at 40% of its target gives up over half its power headroom; one
///   brushing the target keeps nearly all of it.
///
/// Floors are covered first (scaled when infeasible), then quanta go to
/// violators in FastCap marginal-utility order until they saturate at their
/// desires, then to everyone else. Unlike [`split_caps`] with
/// `CapSplit::FastCap`, leftover budget is **not** parked on servers: when
/// every desire is satisfied the fleet deliberately draws less than the
/// budget — that slack is the energy the discipline saves.
pub fn split_caps_sla(
    global_cap_w: f64,
    demands: &[ServerDemand],
    sla: &[SlaSignal],
    quantum_w: f64,
) -> Vec<f64> {
    sla_core(global_cap_w, demands, sla, quantum_w, None)
        .expect("legacy floors are always feasible")
}

/// The SLA granting loop behind [`split_caps_sla`] and
/// [`split_caps_sla_floored`]. `floor_w` of `None` keeps the legacy
/// behavior (each server floored at its scaled all-minimum power, feasible
/// by construction); explicit floors are validated and can fail.
fn sla_core(
    global_cap_w: f64,
    demands: &[ServerDemand],
    sla: &[SlaSignal],
    quantum_w: f64,
    floor_w: Option<&[f64]>,
) -> Result<Vec<f64>, SplitError> {
    assert_eq!(demands.len(), sla.len(), "one SLA signal per server");
    let n_active = demands.iter().filter(|d| d.active).count();
    if n_active == 0 {
        return Ok(vec![0.0; demands.len()]);
    }
    // Per-server desired cap (the ceiling it may be granted up to).
    let desired: Vec<f64> = demands
        .iter()
        .zip(sla)
        .map(|(d, s)| {
            if !d.active {
                0.0
            } else if s.violating() || s.p99_s <= 0.0 || s.target_s <= 0.0 {
                d.demand_w
            } else {
                let ratio = (s.p99_s / s.target_s).clamp(0.0, 1.0);
                (d.min_w + d.headroom() * (0.25 + 0.75 * ratio)).min(d.demand_w)
            }
        })
        .collect();
    let mut caps = checked_floors(global_cap_w, demands, floor_w)?;
    // Explicit floors may sit above a trimmed desire; the grant loop
    // treats such servers as already saturated and the floor stands.
    let desired: Vec<f64> = desired
        .iter()
        .zip(&caps)
        .map(|(&want, &floor)| want.max(floor))
        .collect();
    let mut spare = global_cap_w - caps.iter().sum::<f64>();
    let mut clipped = vec![false; demands.len()];
    // Two passes: violators first, then everyone still below desire.
    for violators_only in [true, false] {
        // Short-circuit once the unclipped set is empty: when every active
        // server already sits at its desire (the degenerate all-violators
        // case saturates them all in the first pass), the leftover
        // redistribution pass has no one to serve — without this the loop
        // used to keep scanning servers clipped at demand, burning a
        // sub-nanowatt grant per iteration until `spare` drained.
        if demands
            .iter()
            .enumerate()
            .all(|(i, d)| !d.active || clipped[i] || desired[i] - caps[i] <= CLIP_EPS_W)
        {
            break;
        }
        while spare > 1e-9 {
            let q = quantum_w.min(spare);
            let mut best: Option<(usize, f64)> = None;
            for (i, d) in demands.iter().enumerate() {
                // Within a clip epsilon of the desire counts as saturated:
                // granting the remaining sliver cannot change the
                // allocation but would keep the server in every scan.
                if !d.active || clipped[i] || desired[i] - caps[i] <= CLIP_EPS_W {
                    continue;
                }
                if violators_only && !sla[i].violating() {
                    continue;
                }
                let gain = utility_at(d, caps[i] + q) - utility_at(d, caps[i]);
                if gain > 0.0 && best.is_none_or(|(_, g)| gain > g) {
                    best = Some((i, gain));
                }
            }
            match best {
                Some((i, _)) => {
                    // Never exceed the desire: the final quantum is clipped.
                    let grant = q.min(desired[i] - caps[i]);
                    let before = caps[i];
                    caps[i] += grant;
                    if caps[i] == before {
                        // The grant is below this cap's float resolution;
                        // no further quantum can land here either. Count
                        // the server as clipped instead of re-granting it
                        // nothing forever.
                        clipped[i] = true;
                    } else {
                        spare -= grant;
                    }
                }
                None => break,
            }
        }
    }
    Ok(caps)
}

/// Watts below which a server counts as clipped at its granting ceiling:
/// the residual is smaller than the budget-exhaustion threshold, so
/// spending quanta on it cannot meaningfully move the allocation.
const CLIP_EPS_W: f64 = 1e-9;

/// Per-server power floors: each active server's all-minimum power, scaled
/// down proportionally when the budget cannot cover them all.
fn floors(global_cap_w: f64, demands: &[ServerDemand]) -> Vec<f64> {
    let total_min: f64 = demands.iter().filter(|d| d.active).map(|d| d.min_w).sum();
    let scale = if total_min > global_cap_w {
        global_cap_w / total_min
    } else {
        1.0
    };
    demands
        .iter()
        .map(|d| if d.active { d.min_w * scale } else { 0.0 })
        .collect()
}

/// Starting caps for a granting loop. `floor_w` of `None` keeps the legacy
/// scaled floors above (always feasible); explicit floors are raised to
/// each active server's all-minimum power and rejected with
/// [`SplitError::InfeasibleFloors`] when their sum exceeds the budget.
fn checked_floors(
    global_cap_w: f64,
    demands: &[ServerDemand],
    floor_w: Option<&[f64]>,
) -> Result<Vec<f64>, SplitError> {
    let Some(floor_w) = floor_w else {
        return Ok(floors(global_cap_w, demands));
    };
    assert_eq!(floor_w.len(), demands.len(), "one floor per server");
    let eff: Vec<f64> = demands
        .iter()
        .zip(floor_w)
        .map(|(d, &f)| if d.active { d.min_w.max(f) } else { 0.0 })
        .collect();
    let required_w: f64 = eff.iter().sum();
    if required_w > global_cap_w + 1e-9 {
        return Err(SplitError::InfeasibleFloors {
            required_w,
            budget_w: global_cap_w,
        });
    }
    Ok(eff)
}

/// Predicted relative performance (0..=1) of a server allocated `cap`
/// watts, under the concave curve `perf = sqrt(fill)` where `fill` is the
/// fraction of the demand headroom covered. Square root models diminishing
/// returns: the first watts above the floor buy back the most performance.
fn perf_at(d: &ServerDemand, cap: f64) -> f64 {
    let headroom = d.headroom();
    if headroom <= 0.0 {
        return 1.0;
    }
    let fill = ((cap - d.min_w) / headroom).clamp(0.0, 1.0);
    fill.sqrt()
}

/// Predicted absolute performance: relative performance scaled by the
/// server's uncapped demand, the coordinator's proxy for how much work the
/// machine does at full speed. Without the weighting the greedy would hand
/// small-headroom servers the most watts above their floors (their
/// *relative* curves are steepest) and starve the servers whose watts buy
/// the most instructions.
pub(crate) fn utility_at(d: &ServerDemand, cap: f64) -> f64 {
    d.demand_w * perf_at(d, cap)
}

/// The marginal-utility greedy allocation, with FastCap's leftover parking.
fn fastcap_split(global_cap_w: f64, demands: &[ServerDemand], quantum_w: f64) -> Vec<f64> {
    fastcap_core(global_cap_w, demands, quantum_w, true, None)
        .expect("legacy floors are always feasible")
}

/// FastCap's granting loop with explicit per-child floors; fails with
/// [`SplitError::InfeasibleFloors`] instead of silently clamping when the
/// floors over-commit the budget. Leftover budget goes unspent (caps stay
/// at or below demand).
pub fn split_caps_fastcap_floored(
    global_cap_w: f64,
    demands: &[ServerDemand],
    floor_w: &[f64],
    quantum_w: f64,
) -> Result<Vec<f64>, SplitError> {
    fastcap_core(global_cap_w, demands, quantum_w, false, Some(floor_w))
}

/// The FastCap granting loop. `park_leftover` selects what happens to
/// budget left after every active server saturates at its demand: FastCap
/// proper parks it uniformly as headroom (transient demand spikes between
/// rounds stay within budget); the SLA-aware degrade path leaves it unspent
/// so `cap[i] ≤ demand[i]` holds, matching `split_caps_sla`. `floor_w` of
/// `None` keeps the legacy scaled floors; explicit floors are validated
/// and make the call fallible.
fn fastcap_core(
    global_cap_w: f64,
    demands: &[ServerDemand],
    quantum_w: f64,
    park_leftover: bool,
    floor_w: Option<&[f64]>,
) -> Result<Vec<f64>, SplitError> {
    let mut caps = checked_floors(global_cap_w, demands, floor_w)?;
    let mut spare = global_cap_w - caps.iter().sum::<f64>();
    let mut clipped = vec![false; demands.len()];
    // Grant quanta while any server still gains from them.
    while spare > 1e-9 {
        let q = quantum_w.min(spare);
        let mut best: Option<(usize, f64)> = None;
        for (i, d) in demands.iter().enumerate() {
            // The non-parking variant clips grants at demand, so (like the
            // SLA split) a server within the clip epsilon of demand is
            // saturated — scanning it forever for sliver grants is the
            // degenerate loop `split_caps_sla` also guards against. The
            // parking variant grants whole quanta and may overshoot, so it
            // keeps the original strict comparison.
            let saturated = if park_leftover {
                clipped[i] || caps[i] >= d.demand_w
            } else {
                clipped[i] || d.demand_w - caps[i] <= CLIP_EPS_W
            };
            if !d.active || saturated {
                continue;
            }
            let gain = utility_at(d, caps[i] + q) - utility_at(d, caps[i]);
            if gain > 0.0 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        match best {
            Some((i, _)) => {
                // The non-parking variant promises `cap ≤ demand`: clip the
                // final quantum instead of overshooting it.
                let grant = if park_leftover {
                    q
                } else {
                    q.min(demands[i].demand_w - caps[i])
                };
                let before = caps[i];
                caps[i] += grant;
                if caps[i] == before {
                    // Below float resolution at this magnitude: the server
                    // can never absorb another grant.
                    clipped[i] = true;
                } else {
                    spare -= grant;
                }
            }
            None => {
                if park_leftover {
                    let n_active = demands.iter().filter(|d| d.active).count() as f64;
                    for (cap, d) in caps.iter_mut().zip(demands) {
                        if d.active {
                            *cap += spare / n_active;
                        }
                    }
                }
                break;
            }
        }
    }
    Ok(caps)
}

/// Jain's fairness index over a set of non-negative allocations:
/// `(Σx)² / (n·Σx²)`, 1 when perfectly equal, `1/n` when one party takes
/// everything. Empty or all-zero inputs report 1 (nothing is unfair about
/// nothing).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(demand_w: f64, min_w: f64) -> ServerDemand {
        ServerDemand {
            demand_w,
            min_w,
            active: true,
        }
    }

    #[test]
    fn uniform_splits_equally_among_active() {
        let mut ds = vec![d(100.0, 30.0), d(200.0, 30.0), d(50.0, 30.0)];
        ds[1].active = false;
        let caps = split_caps(CapSplit::Uniform, 120.0, &ds, 1.0);
        assert_eq!(caps, vec![60.0, 0.0, 60.0]);
    }

    #[test]
    fn demand_proportional_tracks_headroom() {
        let ds = vec![d(130.0, 30.0), d(80.0, 30.0)];
        // Floors take 60; spare 90 splits 2:1 by headroom (100 vs 50).
        let caps = split_caps(CapSplit::DemandProportional, 150.0, &ds, 1.0);
        assert!((caps[0] - 90.0).abs() < 1e-9, "{caps:?}");
        assert!((caps[1] - 60.0).abs() < 1e-9, "{caps:?}");
    }

    #[test]
    fn fastcap_never_exceeds_budget_and_covers_floors() {
        let ds = vec![d(150.0, 40.0), d(90.0, 35.0), d(60.0, 30.0)];
        for budget in [110.0, 160.0, 250.0, 400.0] {
            let caps = split_caps(CapSplit::FastCap, budget, &ds, 1.0);
            let total: f64 = caps.iter().sum();
            assert!(total <= budget + 1e-6, "budget {budget}: {caps:?}");
            if budget >= 105.0 {
                for (c, dem) in caps.iter().zip(&ds) {
                    assert!(*c >= dem.min_w - 1e-9, "floor unmet: {caps:?}");
                }
            }
        }
    }

    #[test]
    fn fastcap_beats_uniform_on_modelled_performance() {
        // Strongly heterogeneous demand: uniform wastes budget on the
        // small server while starving the big ones.
        let ds = vec![d(200.0, 40.0), d(180.0, 40.0), d(50.0, 40.0)];
        let budget = 270.0;
        let uni = split_caps(CapSplit::Uniform, budget, &ds, 1.0);
        let fc = split_caps(CapSplit::FastCap, budget, &ds, 1.0);
        let perf =
            |caps: &[f64]| -> f64 { caps.iter().zip(&ds).map(|(c, d)| utility_at(d, *c)).sum() };
        assert!(
            perf(&fc) > perf(&uni) + 1e-6,
            "fastcap {} vs uniform {}",
            perf(&fc),
            perf(&uni)
        );
    }

    #[test]
    fn infeasible_floors_scale_down() {
        let ds = vec![d(100.0, 60.0), d(100.0, 60.0)];
        for split in [
            CapSplit::Uniform,
            CapSplit::DemandProportional,
            CapSplit::FastCap,
        ] {
            let caps = split_caps(split, 60.0, &ds, 1.0);
            assert!(caps.iter().sum::<f64>() <= 60.0 + 1e-9, "{split}: {caps:?}");
        }
    }

    fn sla(p99_s: f64, target_s: f64) -> SlaSignal {
        SlaSignal { p99_s, target_s }
    }

    #[test]
    fn sla_split_boosts_violators_and_trims_meeters() {
        // Two identical servers; one violating, one comfortably meeting.
        let ds = vec![d(120.0, 30.0), d(120.0, 30.0)];
        let sig = vec![sla(2e-3, 1e-3), sla(0.3e-3, 1e-3)];
        let caps = split_caps_sla(200.0, &ds, &sig, 1.0);
        // The violator bids full demand and there is budget for it.
        assert!((caps[0] - 120.0).abs() < 1e-9, "{caps:?}");
        // The meeter is trimmed below demand: at 30% of target its desire
        // is 30 + 90·(0.25 + 0.75·0.3) = 72.75 W.
        assert!((caps[1] - 72.75).abs() < 1e-9, "{caps:?}");
        // And the fleet deliberately under-consumes the budget.
        assert!(caps.iter().sum::<f64>() < 200.0);
    }

    #[test]
    fn sla_split_respects_budget_under_pressure() {
        let ds = vec![d(150.0, 40.0), d(90.0, 35.0), d(60.0, 30.0)];
        let sig = vec![sla(5e-3, 1e-3), sla(5e-3, 1e-3), sla(5e-3, 1e-3)];
        for budget in [90.0, 140.0, 200.0, 500.0] {
            let caps = split_caps_sla(budget, &ds, &sig, 1.0);
            assert!(
                caps.iter().sum::<f64>() <= budget + 1e-6,
                "budget {budget}: {caps:?}"
            );
            for (c, dem) in caps.iter().zip(&ds) {
                assert!(*c <= dem.demand_w + 1e-9, "over demand: {caps:?}");
            }
        }
    }

    #[test]
    fn sla_split_with_unknown_latency_bids_full_demand() {
        // No samples yet (p99 == 0): treated like a violator's full-demand
        // bid, so a generous budget grants everything.
        let ds = vec![d(100.0, 30.0), d(100.0, 30.0)];
        let sig = vec![sla(0.0, 1e-3), sla(0.0, 1e-3)];
        let caps = split_caps_sla(400.0, &ds, &sig, 1.0);
        assert!((caps[0] - 100.0).abs() < 1e-9, "{caps:?}");
        assert!((caps[1] - 100.0).abs() < 1e-9, "{caps:?}");
    }

    #[test]
    fn sla_split_violators_win_scarce_budget() {
        // Budget covers floors plus ~one server's headroom. The violator
        // must get its headroom before the meeter sees a single quantum.
        let ds = vec![d(100.0, 30.0), d(100.0, 30.0)];
        let sig = vec![sla(2e-3, 1e-3), sla(0.99e-3, 1e-3)];
        let caps = split_caps_sla(130.0, &ds, &sig, 1.0);
        assert!((caps[0] - 100.0).abs() < 1e-9, "{caps:?}");
        assert!((caps[1] - 30.0).abs() < 1e-9, "{caps:?}");
    }

    #[test]
    fn sla_variant_without_signals_degrades_to_fastcap() {
        // Below saturation the degraded path is FastCap's granting order.
        let ds = vec![d(200.0, 40.0), d(180.0, 40.0), d(50.0, 40.0)];
        let a = split_caps(CapSplit::SlaAware, 270.0, &ds, 1.0);
        let b = split_caps(CapSplit::FastCap, 270.0, &ds, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn sla_variant_without_signals_never_parks_leftover() {
        // Regression: the degraded SlaAware path used to call fastcap_split
        // verbatim, which parks surplus budget on servers *above* their
        // demand — violating split_caps_sla's "leftover goes unspent"
        // invariant and making `--split sla-aware` batch runs draw more
        // power than serve runs at the same budget.
        let ds = vec![d(100.0, 30.0), d(60.0, 20.0), d(80.0, 25.0)];
        for budget in [300.0, 500.0, 1000.0] {
            let caps = split_caps(CapSplit::SlaAware, budget, &ds, 1.0);
            assert!(
                caps.iter().sum::<f64>() <= budget + 1e-6,
                "budget {budget}: {caps:?}"
            );
            for (c, dem) in caps.iter().zip(&ds) {
                assert!(
                    *c <= dem.demand_w + 1e-9,
                    "budget {budget}: cap above demand in {caps:?}"
                );
            }
            // A generous budget saturates everyone exactly at demand.
            if budget >= 240.0 {
                for (c, dem) in caps.iter().zip(&ds) {
                    assert!((c - dem.demand_w).abs() < 1e-9, "{caps:?}");
                }
            }
        }
        // FastCap proper still parks — the two variants genuinely differ.
        let parked = split_caps(CapSplit::FastCap, 500.0, &ds, 1.0);
        assert!(parked.iter().sum::<f64>() > 400.0, "{parked:?}");
    }

    #[test]
    fn sla_degenerate_all_violators_short_circuits() {
        // Every server violating, with deliberately awkward fractional
        // demands so the final clipped grants leave float residue, and a
        // budget far above total demand so `spare` stays large after
        // everyone saturates. The first pass clips the whole fleet at
        // demand; the leftover pass must then see an empty unclipped set
        // and stop — the old loop kept scanning the clipped servers,
        // shaving sub-nanowatt grants off `spare` per iteration.
        let ds = vec![d(97.3, 24.1), d(55.7, 19.9), d(61.9, 21.3)];
        let sig = vec![sla(3e-3, 1e-3); 3];
        for quantum in [0.1, 0.3, 1.0, 7.0] {
            let caps = split_caps_sla(1e4, &ds, &sig, quantum);
            // Saturation exactly at demand, nothing parked above it.
            for (c, dem) in caps.iter().zip(&ds) {
                assert!(
                    (c - dem.demand_w).abs() < 1e-9,
                    "quantum {quantum}: {caps:?}"
                );
            }
            assert!(caps.iter().sum::<f64>() <= 1e4 + 1e-6);
        }
    }

    #[test]
    fn sla_fractional_desires_terminate_and_respect_ceilings() {
        // Meeting servers get fractional desires (floor + trimmed
        // headroom), which the quantum clip rounds against. Whatever the
        // quantum, granting must terminate with every cap at or below its
        // desire and the budget respected.
        let ds = vec![d(103.7, 31.9), d(87.3, 22.1), d(64.9, 17.7)];
        let sig = vec![sla(0.41e-3, 1e-3), sla(0.73e-3, 1e-3), sla(0.97e-3, 1e-3)];
        for quantum in [0.1, 0.7, 2.3] {
            for budget in [120.0, 260.0, 5e3] {
                let caps = split_caps_sla(budget, &ds, &sig, quantum);
                assert!(
                    caps.iter().sum::<f64>() <= budget + 1e-6,
                    "q={quantum} b={budget}: {caps:?}"
                );
                for (c, dem) in caps.iter().zip(&ds) {
                    assert!(
                        *c <= dem.demand_w + 1e-9,
                        "q={quantum} b={budget}: {caps:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn infeasible_explicit_floors_surface_structured_error() {
        // Two servers whose configured floors (70 + 70) over-commit a
        // 100 W budget. The legacy paths silently scale; the floored
        // entry points must refuse instead.
        let ds = vec![d(100.0, 30.0), d(100.0, 30.0)];
        let floors_w = [70.0, 70.0];
        let sig = vec![sla(2e-3, 1e-3), sla(0.5e-3, 1e-3)];
        let expect = SplitError::InfeasibleFloors {
            required_w: 140.0,
            budget_w: 100.0,
        };
        assert_eq!(
            split_caps_sla_floored(100.0, &ds, &sig, &floors_w, 1.0),
            Err(expect)
        );
        assert_eq!(
            split_caps_fastcap_floored(100.0, &ds, &floors_w, 1.0),
            Err(expect)
        );
        assert_eq!(
            split_caps_critical(100.0, &ds, Some(&[0.5, 0.5]), Some(&floors_w)),
            Err(expect)
        );
        let msg = expect.to_string();
        assert!(msg.contains("infeasible floors"), "{msg}");
        assert!(msg.contains("140.000") && msg.contains("100.000"), "{msg}");
        // The same floors under a sufficient budget succeed and cover them.
        let caps = split_caps_fastcap_floored(150.0, &ds, &floors_w, 1.0).unwrap();
        assert!(caps.iter().all(|&c| c >= 70.0 - 1e-9), "{caps:?}");
    }

    #[test]
    fn explicit_floors_are_raised_to_min_power() {
        // A floor below the server's all-minimum power is unreachable;
        // the effective floor is min_w.
        let ds = vec![d(100.0, 40.0), d(100.0, 40.0)];
        let caps = split_caps_critical(80.0, &ds, Some(&[1.0, 0.0]), Some(&[5.0, 5.0])).unwrap();
        assert!(caps[1] >= 40.0 - 1e-9, "{caps:?}");
        // And min_w-raised floors count toward infeasibility.
        assert!(split_caps_critical(70.0, &ds, None, Some(&[5.0, 5.0])).is_err());
    }

    #[test]
    fn critical_split_degrades_to_demand_proportional() {
        let ds = vec![d(130.0, 30.0), d(80.0, 30.0), d(60.0, 25.0)];
        let dp = split_caps(CapSplit::DemandProportional, 180.0, &ds, 1.0);
        for shares in [None, Some([0.0, 0.0, 0.0].as_slice())] {
            let caps = split_caps_critical(180.0, &ds, shares, None).unwrap();
            assert_eq!(caps, dp, "shares {shares:?}");
        }
        // The flat CapSplit arm (batch runs, no traces) matches too.
        assert_eq!(split_caps(CapSplit::CriticalPath, 180.0, &ds, 1.0), dp);
    }

    #[test]
    fn critical_split_shifts_budget_toward_critical_tier() {
        // Three identical tiers; traces say tier 2 dominates the
        // critical path.
        let ds = vec![d(120.0, 30.0), d(120.0, 30.0), d(120.0, 30.0)];
        let shares = [0.1, 0.2, 0.7];
        let caps = split_caps_critical(180.0, &ds, Some(&shares), None).unwrap();
        assert!(caps.iter().sum::<f64>() <= 180.0 + 1e-9, "{caps:?}");
        assert!(caps[2] > caps[1] && caps[1] > caps[0], "{caps:?}");
        // Spare above floors (90 W) goes exactly by share.
        assert!((caps[2] - (30.0 + 0.7 * 90.0)).abs() < 1e-9, "{caps:?}");
        // A tier entirely off the critical path keeps its floor.
        let caps = split_caps_critical(180.0, &ds, Some(&[0.0, 0.3, 0.7]), None).unwrap();
        assert!((caps[0] - 30.0).abs() < 1e-9, "{caps:?}");
    }

    #[test]
    fn critical_split_clips_at_demand_and_leaves_leftover_unspent() {
        // The critical tier saturates at its demand; surplus flows to the
        // others by share, and budget beyond everyone's demand is unspent.
        let ds = vec![d(60.0, 20.0), d(60.0, 20.0), d(200.0, 20.0)];
        let caps = split_caps_critical(400.0, &ds, Some(&[0.0, 0.4, 0.6]), None).unwrap();
        assert!((caps[1] - 60.0).abs() < 1e-9, "{caps:?}");
        assert!((caps[2] - 200.0).abs() < 1e-9, "{caps:?}");
        // Tier 0 has zero share: floor only, even with budget to spare.
        assert!((caps[0] - 20.0).abs() < 1e-9, "{caps:?}");
        assert!(
            caps.iter().sum::<f64>() < 400.0 - 1.0,
            "leftover spent: {caps:?}"
        );
    }

    #[test]
    fn jain_index_extremes() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
