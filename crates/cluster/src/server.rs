//! One simulated server inside the cluster: the existing epoch engine
//! (`coscale::Runner`) running `PowerCapPolicy` under a cap the cluster
//! coordinator rewrites at round boundaries.

use crate::coordinator::ServerDemand;
use crate::ServerSpec;
use coscale::{Model, Plan, Policy, PolicyKind, PowerCapPolicy, RunResult, Runner};
use simkernel::Ps;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A power cap shared between the coordinator (writer, at round barriers)
/// and the server's policy (reader, each epoch decision). Stored as f64
/// bits in an atomic so `Server` stays `Send` for the round fan-out.
#[derive(Clone, Debug)]
pub struct SharedCap(Arc<AtomicU64>);

impl SharedCap {
    /// A fresh cap cell holding `cap_w`.
    pub fn new(cap_w: f64) -> SharedCap {
        SharedCap(Arc::new(AtomicU64::new(cap_w.to_bits())))
    }

    /// Rewrites the cap (coordinator side).
    pub fn set(&self, cap_w: f64) {
        self.0.store(cap_w.to_bits(), Ordering::Relaxed);
    }

    /// Reads the current cap (policy side).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// `PowerCapPolicy` with its budget read from a [`SharedCap`] at each
/// decision, so the coordinator can move the cap without rebuilding the
/// runner. Public so other fleet layers (e.g. the `service` crate) can
/// build capped runners of their own.
pub struct CappedPolicy {
    inner: PowerCapPolicy,
    cap: SharedCap,
}

impl CappedPolicy {
    /// A capping policy that reads its budget from `cap` at each decision.
    pub fn new(cap: SharedCap) -> CappedPolicy {
        CappedPolicy {
            inner: PowerCapPolicy::new(f64::MAX),
            cap,
        }
    }
}

impl Policy for CappedPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::PowerCap
    }

    fn decide(&mut self, model: &Model<'_>, current: &Plan) -> Plan {
        // Caps at or below zero mean "no budget granted"; run the floor
        // plan rather than feeding PowerCapPolicy an invalid budget.
        let cap_w = self.cap.get();
        if cap_w <= 0.0 {
            return Plan {
                cores: vec![0; model.n_cores()],
                mem: 0,
            };
        }
        self.inner.cap_w = cap_w;
        self.inner.decide(model, current)
    }
}

/// Telemetry a server reports to the coordinator at a round boundary.
#[derive(Clone, Copy, Debug)]
pub struct ServerStatus {
    /// Demand estimate for cap splitting.
    pub demand: ServerDemand,
    /// Average measured power over the last round, watts (0 before the
    /// first round).
    pub measured_w: f64,
    /// The cap the server ran under during the last round, watts.
    pub cap_w: f64,
    /// Simulated time reached.
    pub now: Ps,
}

/// One server: name, runner, shared cap, and round telemetry accumulators.
pub struct Server {
    /// Display name from the spec.
    pub name: String,
    runner: Runner,
    cap: SharedCap,
    cap_w: f64,
    mean_cap_num: f64,
    rounds_run: u64,
    violations: u64,
    total_target_instrs: u64,
    // Round-delta bookkeeping.
    round_energy_j: f64,
    round_start: Ps,
    records_seen: usize,
}

impl Server {
    /// Builds the server from its spec, initially granted `initial_cap_w`.
    pub fn new(spec: &ServerSpec, initial_cap_w: f64) -> Server {
        let cap = SharedCap::new(initial_cap_w);
        let policy = CappedPolicy::new(cap.clone());
        let total_target_instrs = spec.config.target_instrs * spec.config.cores as u64;
        let runner =
            Runner::new(spec.config.clone(), PolicyKind::PowerCap).with_policy(Box::new(policy));
        Server {
            name: spec.name.clone(),
            runner,
            cap,
            cap_w: initial_cap_w,
            mean_cap_num: 0.0,
            rounds_run: 0,
            violations: 0,
            total_target_instrs,
            round_energy_j: 0.0,
            round_start: Ps::ZERO,
            records_seen: 0,
        }
    }

    /// Whether the server's workload is complete.
    pub fn is_done(&self) -> bool {
        self.runner.is_done()
    }

    /// Assigns the cap for the coming round.
    pub fn set_cap(&mut self, cap_w: f64) {
        self.cap.set(cap_w);
        self.cap_w = cap_w;
    }

    /// The cap currently assigned, watts.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// Runs up to `epochs` epochs (stopping early on completion), then
    /// settles round telemetry: mean cap, measured power, violations.
    pub fn step_round(&mut self, epochs: usize) {
        if self.is_done() {
            return;
        }
        let energy_before = self.runner.energy_so_far_j();
        let t_before = self.runner.system().now();
        for _ in 0..epochs {
            if self.is_done() {
                break;
            }
            self.runner.step_epoch();
        }
        let dt = (self.runner.system().now() - t_before).as_secs_f64();
        let de = self.runner.energy_so_far_j() - energy_before;
        let measured_w = if dt > 0.0 { de / dt } else { 0.0 };
        self.round_energy_j = de;
        self.round_start = t_before;
        self.mean_cap_num += self.cap_w;
        self.rounds_run += 1;
        // A violation means the model under-predicted: measured average
        // power over the round exceeded the granted cap beyond a 5%
        // modelling tolerance.
        if self.cap_w > 0.0 && measured_w > self.cap_w * 1.05 {
            self.violations += 1;
        }
    }

    /// Round-boundary telemetry for the coordinator. Demand and floor are
    /// the mean of the model's per-epoch predictions since the last call
    /// (falling back to the most recent epoch, or zero before any epoch
    /// has run — the coordinator treats a zero-demand active server as
    /// "unknown" and splits uniformly).
    pub fn status(&mut self) -> ServerStatus {
        let records = self.runner.records();
        let fresh = &records[self.records_seen.min(records.len())..];
        let (demand_w, min_w) = if fresh.is_empty() {
            records
                .last()
                .map_or((0.0, 0.0), |r| (r.demand_power_w, r.min_power_w))
        } else {
            let n = fresh.len() as f64;
            (
                fresh.iter().map(|r| r.demand_power_w).sum::<f64>() / n,
                fresh.iter().map(|r| r.min_power_w).sum::<f64>() / n,
            )
        };
        self.records_seen = records.len();
        let dt = (self.runner.system().now() - self.round_start).as_secs_f64();
        let measured_w = if dt > 0.0 {
            self.round_energy_j / dt
        } else {
            0.0
        };
        ServerStatus {
            demand: ServerDemand {
                demand_w,
                min_w,
                active: !self.is_done(),
            },
            measured_w,
            cap_w: self.cap_w,
            now: self.runner.system().now(),
        }
    }

    /// Cap-violation rounds so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Mean assigned cap over the rounds run, watts.
    pub fn mean_cap_w(&self) -> f64 {
        if self.rounds_run == 0 {
            0.0
        } else {
            self.mean_cap_num / self.rounds_run as f64
        }
    }

    /// Rounds this server participated in.
    pub fn rounds_run(&self) -> u64 {
        self.rounds_run
    }

    /// Total instructions the workload must commit (all cores).
    pub fn total_target_instrs(&self) -> u64 {
        self.total_target_instrs
    }

    /// Finishes the server and produces its single-server result.
    ///
    /// # Panics
    ///
    /// Panics if the workload has not completed.
    pub fn finalize(self) -> RunResult {
        self.runner.finalize()
    }
}
