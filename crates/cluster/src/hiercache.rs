//! Hierarchical cap cache: a [`BudgetTree`] compiled into an
//! index-addressed node table with per-node dead-band replay.
//!
//! The flat [`CapCache`](crate::CapCache) replays a *whole-fleet* split
//! only while no server's telemetry moved, so one busy server forces a
//! full tree walk even when every other rack is asleep — and each walk
//! re-hashes every leaf name through `split_signals`' per-call index map.
//! [`HierSplitter`] moves the dead-band test down to every interior node:
//! the tree is compiled once into a pre-order array of integer-indexed
//! nodes (leaves carry fleet indices, so barriers never hash a name), each
//! interior node caches the child shares it last computed, keyed on its
//! granted budget and its children's *aggregated* telemetry, and a barrier
//! replays clean subtrees verbatim while re-splitting only the dirty ones.
//!
//! Correctness anchors:
//!
//! * **Bit-identity at a zero dead-band.** A node replays only when its
//!   budget and every child aggregate match the stored reference
//!   bit-for-bit, and the split disciplines are pure functions of those
//!   inputs — so a replayed node returns exactly what a recompute would,
//!   and by induction over the tree the result equals
//!   [`BudgetTree::split_signals`] to the last bit.
//! * **Budget bounds by induction at any dead-band.** A node's budget must
//!   match its stored reference *exactly* (never merely within the band),
//!   so replayed shares are a genuine historical split of the same budget:
//!   they sum to at most the node's grant, and the global bound follows by
//!   the same induction as a fresh allocation.
//! * **Audit plumbing.** [`HierSplitter::split_with_trace`] emits the same
//!   pre-order [`GroupShare`] trail as [`BudgetTree::split_trace`], plus a
//!   per-group replay flag, so differential tests can prove that replayed
//!   subtrees match a fresh split of the same telemetry.
//!
//! Membership churn calls [`HierSplitter::rebind`] rather than discarding
//! everything: entries survive for every group whose discipline and child
//! list are structurally unchanged (children matched by leaf name / group
//! label), so churn inside one rack leaves its siblings' cached
//! allocations replayable.

use crate::coordinator::{
    split_caps, split_caps_critical, split_caps_sla, ServerDemand, SlaSignal, SplitError,
};
use crate::tree::{BudgetNode, BudgetTree, GroupShare, TreeSignals};
use crate::CapSplit;
use std::collections::HashMap;

/// Result of [`HierSplitter::split_with_trace`]: per-server caps, the
/// pre-order [`GroupShare`] trail, and a parallel per-group flag that is
/// `true` where the share was replayed from cache rather than recomputed.
pub type TracedSplit = (Vec<f64>, Vec<GroupShare>, Vec<bool>);

/// One compiled tree node.
#[derive(Clone, Debug)]
struct Node {
    kind: NodeKind,
    /// Leaf server name or group label — the identity entries survive by
    /// across a [`HierSplitter::rebind`] (labels are unique per
    /// [`BudgetTree::validate`]).
    ident: String,
    /// Fleet indices of the subtree's leaves, in allocation order.
    leaves: Vec<usize>,
}

#[derive(Clone, Debug)]
enum NodeKind {
    Leaf {
        fleet_idx: usize,
    },
    Group {
        split: CapSplit,
        /// Child node ids; pre-order guarantees they exceed the parent's.
        children: Vec<usize>,
    },
}

/// Raw SLA aggregate of a subtree, foldable bottom-up: the running
/// max/OR state of [`BudgetNode`]'s leaf walk. Max and OR are associative
/// selections, so folding child aggregates reproduces the leaf walk
/// bit-for-bit.
#[derive(Clone, Copy, Debug)]
struct SlaAgg {
    worst: f64,
    unknown: bool,
    any_active: bool,
}

impl SlaAgg {
    const NONE: SlaAgg = SlaAgg {
        worst: f64::NEG_INFINITY,
        unknown: false,
        any_active: false,
    };

    /// Materializes the `SlaSignal` an interior node feeds its SLA-aware
    /// split, exactly as `BudgetNode::aggregate_sla` does.
    fn signal(self) -> SlaSignal {
        SlaSignal {
            p99_s: if self.unknown || !self.any_active {
                0.0
            } else {
                self.worst
            },
            target_s: 1.0,
        }
    }
}

/// One interior node's cached allocation: the references it was computed
/// from and the child shares it produced.
#[derive(Clone, Debug)]
struct Entry {
    budget_bits: u64,
    quantum_bits: u64,
    tier_floor_bits: u64,
    /// Per-child aggregated demand at store time.
    ref_demands: Vec<ServerDemand>,
    /// Per-child materialized SLA ratio at store time (`Some` iff the
    /// split ran with SLA signals — presence is part of the key).
    ref_sla: Option<Vec<f64>>,
    /// Per-child aggregated critical-path share at store time.
    ref_crit: Option<Vec<f64>>,
    shares: Vec<f64>,
}

/// A [`BudgetTree`] compiled for repeated splitting with per-node
/// dead-band replay. Build once per (tree, fleet) with
/// [`HierSplitter::compile`]; call [`HierSplitter::split_signals`] every
/// barrier; call [`HierSplitter::rebind`] after membership churn.
#[derive(Clone, Debug)]
pub struct HierSplitter {
    dead_band_w: f64,
    fleet_names: Vec<String>,
    nodes: Vec<Node>,
    entries: Vec<Option<Entry>>,
    // Per-barrier aggregate scratch, indexed by node id.
    agg_demand: Vec<ServerDemand>,
    agg_sla: Vec<SlaAgg>,
    agg_crit: Vec<f64>,
    node_hits: u64,
    node_misses: u64,
}

/// Immutable per-split context threaded through the allocation walk.
struct AllocCtx<'a> {
    nodes: &'a [Node],
    fleet_names: &'a [String],
    agg_demand: &'a [ServerDemand],
    agg_sla: &'a [SlaAgg],
    agg_crit: &'a [f64],
    demands: &'a [ServerDemand],
    dead_band_w: f64,
    sla_present: bool,
    crit_present: bool,
    tier_floor_frac: f64,
    quantum_w: f64,
}

/// Trace output of [`HierSplitter::split_with_trace`]: pre-order group
/// shares plus one replay flag per group (same order).
struct TraceBuf {
    shares: Vec<GroupShare>,
    replayed: Vec<bool>,
}

impl HierSplitter {
    /// Compiles `tree` against the fleet order `names`. Panics (like
    /// [`BudgetTree::split`]) if a leaf names a server absent from the
    /// fleet — validate the tree first.
    pub fn compile(tree: &BudgetTree, names: &[&str], dead_band_w: f64) -> HierSplitter {
        let mut s = HierSplitter {
            dead_band_w,
            fleet_names: names.iter().map(|n| n.to_string()).collect(),
            nodes: Vec::new(),
            entries: Vec::new(),
            agg_demand: Vec::new(),
            agg_sla: Vec::new(),
            agg_crit: Vec::new(),
            node_hits: 0,
            node_misses: 0,
        };
        let index: HashMap<&str, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        build(tree.root(), &index, &mut s.nodes);
        s.entries = vec![None; s.nodes.len()];
        s
    }

    /// Recompiles against a changed tree or fleet (membership churn),
    /// carrying over every cached entry whose group is structurally
    /// unchanged: same label, same discipline, same child identities in
    /// the same order. The churned group (and only it) starts cold; its
    /// ancestors keep their entries and fall back to the ordinary
    /// dead-band test against the new aggregates.
    pub fn rebind(&mut self, tree: &BudgetTree, names: &[&str]) {
        let old_nodes = std::mem::take(&mut self.nodes);
        let mut old_entries = std::mem::take(&mut self.entries);
        self.fleet_names = names.iter().map(|n| n.to_string()).collect();
        let index: HashMap<&str, usize> = names.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        build(tree.root(), &index, &mut self.nodes);
        self.entries = vec![None; self.nodes.len()];
        let old_by_ident: HashMap<&str, usize> = old_nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Group { .. }))
            .map(|(i, n)| (n.ident.as_str(), i))
            .collect();
        for id in 0..self.nodes.len() {
            let NodeKind::Group { split, children } = &self.nodes[id].kind else {
                continue;
            };
            let Some(&oid) = old_by_ident.get(self.nodes[id].ident.as_str()) else {
                continue;
            };
            let NodeKind::Group {
                split: old_split,
                children: old_children,
            } = &old_nodes[oid].kind
            else {
                continue;
            };
            let same = split == old_split
                && children.len() == old_children.len()
                && children
                    .iter()
                    .zip(old_children)
                    .all(|(&a, &b)| self.nodes[a].ident == old_nodes[b].ident);
            if same {
                self.entries[id] = old_entries[oid].take();
            }
        }
    }

    /// Drops every cached node allocation (leadership changes, adopted
    /// state). The compiled structure is kept.
    pub fn invalidate(&mut self) {
        for e in &mut self.entries {
            *e = None;
        }
    }

    /// Interior-node replays served so far.
    pub fn node_hits(&self) -> u64 {
        self.node_hits
    }

    /// Interior-node recomputes so far.
    pub fn node_misses(&self) -> u64 {
        self.node_misses
    }

    /// The configured per-node telemetry dead-band, watts.
    pub fn dead_band_w(&self) -> f64 {
        self.dead_band_w
    }

    /// Splits like [`BudgetTree::split`] (SLA-only signals, no tier
    /// floors — cannot fail), replaying clean subtrees.
    ///
    /// # Panics
    ///
    /// Panics if `demands` (or `sla`) is not indexed like the compiled
    /// fleet.
    pub fn split(
        &mut self,
        global_cap_w: f64,
        demands: &[ServerDemand],
        sla: Option<&[SlaSignal]>,
        quantum_w: f64,
    ) -> Vec<f64> {
        self.split_signals(
            global_cap_w,
            demands,
            &TreeSignals {
                sla,
                ..TreeSignals::default()
            },
            quantum_w,
        )
        .expect("without tier floors a tree split cannot fail")
    }

    /// Splits like [`BudgetTree::split_signals`], replaying clean
    /// subtrees. At a zero dead-band the result is bit-identical to a
    /// fresh `split_signals` over the same inputs.
    ///
    /// # Errors
    ///
    /// Fails with [`SplitError::InfeasibleFloors`] exactly when the
    /// uncached split would.
    ///
    /// # Panics
    ///
    /// Panics if the signal slices are not indexed like the compiled
    /// fleet.
    pub fn split_signals(
        &mut self,
        global_cap_w: f64,
        demands: &[ServerDemand],
        signals: &TreeSignals<'_>,
        quantum_w: f64,
    ) -> Result<Vec<f64>, SplitError> {
        let mut caps = vec![0.0; demands.len()];
        self.run(global_cap_w, demands, signals, quantum_w, &mut caps, None)?;
        Ok(caps)
    }

    /// Like [`HierSplitter::split_signals`] but also returns the
    /// pre-order [`GroupShare`] trail (replayed nodes included) and a
    /// parallel flag vector marking which groups were replayed from cache
    /// (see [`TracedSplit`]).
    ///
    /// # Errors
    ///
    /// Fails with [`SplitError::InfeasibleFloors`] exactly when the
    /// uncached split would.
    ///
    /// # Panics
    ///
    /// Panics if the signal slices are not indexed like the compiled
    /// fleet.
    pub fn split_with_trace(
        &mut self,
        global_cap_w: f64,
        demands: &[ServerDemand],
        signals: &TreeSignals<'_>,
        quantum_w: f64,
    ) -> Result<TracedSplit, SplitError> {
        let mut caps = vec![0.0; demands.len()];
        let mut trace = TraceBuf {
            shares: Vec::new(),
            replayed: Vec::new(),
        };
        self.run(
            global_cap_w,
            demands,
            signals,
            quantum_w,
            &mut caps,
            Some(&mut trace),
        )?;
        Ok((caps, trace.shares, trace.replayed))
    }

    fn run(
        &mut self,
        global_cap_w: f64,
        demands: &[ServerDemand],
        signals: &TreeSignals<'_>,
        quantum_w: f64,
        caps: &mut [f64],
        trace: Option<&mut TraceBuf>,
    ) -> Result<(), SplitError> {
        assert_eq!(
            demands.len(),
            self.fleet_names.len(),
            "one demand per compiled server"
        );
        if let Some(s) = signals.sla {
            assert_eq!(demands.len(), s.len(), "one SLA signal per server");
        }
        if let Some(c) = signals.crit {
            assert_eq!(demands.len(), c.len(), "one crit share per server");
        }
        compute_aggregates(
            &self.nodes,
            demands,
            signals,
            &mut self.agg_demand,
            &mut self.agg_sla,
            &mut self.agg_crit,
        );
        let ctx = AllocCtx {
            nodes: &self.nodes,
            fleet_names: &self.fleet_names,
            agg_demand: &self.agg_demand,
            agg_sla: &self.agg_sla,
            agg_crit: &self.agg_crit,
            demands,
            dead_band_w: self.dead_band_w,
            sla_present: signals.sla.is_some(),
            crit_present: signals.crit.is_some(),
            tier_floor_frac: signals.tier_floor_frac,
            quantum_w,
        };
        let mut hits = 0u64;
        let mut misses = 0u64;
        let r = alloc(
            &ctx,
            &mut self.entries,
            &mut hits,
            &mut misses,
            0,
            global_cap_w,
            caps,
            trace,
        );
        self.node_hits += hits;
        self.node_misses += misses;
        r
    }
}

/// Appends the compiled form of `node` (pre-order), returning its id.
fn build(node: &BudgetNode, index: &HashMap<&str, usize>, nodes: &mut Vec<Node>) -> usize {
    let id = nodes.len();
    nodes.push(Node {
        kind: NodeKind::Leaf {
            fleet_idx: usize::MAX,
        },
        ident: String::new(),
        leaves: Vec::new(),
    });
    match node {
        BudgetNode::Server { name } => {
            let idx = *index
                .get(name.as_str())
                .unwrap_or_else(|| panic!("budget tree leaf '{name}' not in the fleet"));
            nodes[id] = Node {
                kind: NodeKind::Leaf { fleet_idx: idx },
                ident: name.clone(),
                leaves: vec![idx],
            };
        }
        BudgetNode::Group {
            label,
            split,
            children,
        } => {
            let child_ids: Vec<usize> = children.iter().map(|c| build(c, index, nodes)).collect();
            let mut leaves = Vec::new();
            for &c in &child_ids {
                leaves.extend_from_slice(&nodes[c].leaves);
            }
            nodes[id] = Node {
                kind: NodeKind::Group {
                    split: *split,
                    children: child_ids,
                },
                ident: label.clone(),
                leaves,
            };
        }
    }
    id
}

/// One bottom-up pass computing every node's aggregates from its
/// children — bit-identical to the recursive leaf walks in `tree.rs`
/// because sums fold children in order and max/OR are associative
/// selections.
fn compute_aggregates(
    nodes: &[Node],
    demands: &[ServerDemand],
    signals: &TreeSignals<'_>,
    agg_demand: &mut Vec<ServerDemand>,
    agg_sla: &mut Vec<SlaAgg>,
    agg_crit: &mut Vec<f64>,
) {
    let n = nodes.len();
    agg_demand.clear();
    agg_demand.resize(
        n,
        ServerDemand {
            demand_w: 0.0,
            min_w: 0.0,
            active: false,
        },
    );
    agg_sla.clear();
    agg_crit.clear();
    if signals.sla.is_some() {
        agg_sla.resize(n, SlaAgg::NONE);
    }
    if signals.crit.is_some() {
        agg_crit.resize(n, 0.0);
    }
    // Pre-order puts every child after its parent, so a reverse walk sees
    // children before parents.
    for id in (0..n).rev() {
        match &nodes[id].kind {
            NodeKind::Leaf { fleet_idx } => {
                let d = demands[*fleet_idx];
                agg_demand[id] = d;
                if let Some(sla) = signals.sla {
                    let s = sla[*fleet_idx];
                    agg_sla[id] = if !d.active {
                        SlaAgg::NONE
                    } else if s.p99_s <= 0.0 || s.target_s <= 0.0 {
                        SlaAgg {
                            worst: f64::NEG_INFINITY,
                            unknown: true,
                            any_active: true,
                        }
                    } else {
                        SlaAgg {
                            worst: f64::NEG_INFINITY.max(s.p99_s / s.target_s),
                            unknown: false,
                            any_active: true,
                        }
                    };
                }
                if let Some(crit) = signals.crit {
                    agg_crit[id] = if d.active {
                        0.0f64.max(crit[*fleet_idx])
                    } else {
                        0.0
                    };
                }
            }
            NodeKind::Group { children, .. } => {
                let mut agg = ServerDemand {
                    demand_w: 0.0,
                    min_w: 0.0,
                    active: false,
                };
                for &c in children {
                    let d = agg_demand[c];
                    if d.active {
                        agg.demand_w += d.demand_w;
                        agg.min_w += d.min_w;
                        agg.active = true;
                    }
                }
                agg_demand[id] = agg;
                if signals.sla.is_some() {
                    let mut s = SlaAgg::NONE;
                    for &c in children {
                        let cs = agg_sla[c];
                        s.worst = s.worst.max(cs.worst);
                        s.unknown |= cs.unknown;
                        s.any_active |= cs.any_active;
                    }
                    agg_sla[id] = s;
                }
                if signals.crit.is_some() {
                    let mut share = 0.0f64;
                    for &c in children {
                        share = share.max(agg_crit[c]);
                    }
                    agg_crit[id] = share;
                }
            }
        }
    }
}

/// Whether `entry` can be replayed for this node at the current inputs.
fn entry_matches(entry: &Entry, ctx: &AllocCtx<'_>, children: &[usize], budget_w: f64) -> bool {
    if entry.budget_bits != budget_w.to_bits()
        || entry.quantum_bits != ctx.quantum_w.to_bits()
        || entry.tier_floor_bits != ctx.tier_floor_frac.to_bits()
        || entry.ref_sla.is_some() != ctx.sla_present
        || entry.ref_crit.is_some() != ctx.crit_present
        || entry.ref_demands.len() != children.len()
    {
        return false;
    }
    let clean = |a: f64, b: f64| {
        if ctx.dead_band_w == 0.0 {
            a.to_bits() == b.to_bits()
        } else {
            (a - b).abs() <= ctx.dead_band_w
        }
    };
    for (k, &c) in children.iter().enumerate() {
        let cur = ctx.agg_demand[c];
        let r = entry.ref_demands[k];
        if cur.active != r.active || !clean(cur.demand_w, r.demand_w) || !clean(cur.min_w, r.min_w)
        {
            return false;
        }
        if let Some(ref_sla) = &entry.ref_sla {
            // The materialized ratio is dimensionless; the dead-band still
            // applies, mirroring the flat cache's SLA comparison.
            if !clean(ctx.agg_sla[c].signal().p99_s, ref_sla[k]) {
                return false;
            }
        }
        if let Some(ref_crit) = &entry.ref_crit {
            // Crit shares are dimensionless tier fractions: bit-equality
            // only, mirroring the flat cache.
            if ctx.agg_crit[c].to_bits() != ref_crit[k].to_bits() {
                return false;
            }
        }
    }
    true
}

/// Recursive allocation: replay a clean node's cached shares, or dispatch
/// the discipline exactly as `BudgetNode::allocate` and cache the result.
#[allow(clippy::too_many_arguments)]
fn alloc(
    ctx: &AllocCtx<'_>,
    entries: &mut [Option<Entry>],
    hits: &mut u64,
    misses: &mut u64,
    id: usize,
    budget_w: f64,
    caps: &mut [f64],
    mut trace: Option<&mut TraceBuf>,
) -> Result<(), SplitError> {
    let node = &ctx.nodes[id];
    let (split, children) = match &node.kind {
        NodeKind::Leaf { fleet_idx } => {
            caps[*fleet_idx] = if ctx.demands[*fleet_idx].active {
                budget_w
            } else {
                0.0
            };
            return Ok(());
        }
        NodeKind::Group { split, children } => (*split, children),
    };
    if let Some(t) = trace.as_deref_mut() {
        t.shares.push(GroupShare {
            label: node.ident.clone(),
            budget_w,
            leaves: node
                .leaves
                .iter()
                .map(|&i| ctx.fleet_names[i].clone())
                .collect(),
        });
    }
    let replay = entries[id]
        .as_ref()
        .is_some_and(|e| entry_matches(e, ctx, children, budget_w));
    let shares: Vec<f64> = if replay {
        *hits += 1;
        entries[id]
            .as_ref()
            .expect("matched entry present")
            .shares
            .clone()
    } else {
        *misses += 1;
        entries[id] = None;
        let ds: Vec<ServerDemand> = children.iter().map(|&c| ctx.agg_demand[c]).collect();
        let computed = match (split, ctx.sla_present) {
            (CapSplit::SlaAware, true) => {
                let sigs: Vec<SlaSignal> =
                    children.iter().map(|&c| ctx.agg_sla[c].signal()).collect();
                split_caps_sla(budget_w, &ds, &sigs, ctx.quantum_w)
            }
            (CapSplit::CriticalPath, _) => {
                let crit: Option<Vec<f64>> = ctx
                    .crit_present
                    .then(|| children.iter().map(|&c| ctx.agg_crit[c]).collect());
                let floor_w: Option<Vec<f64>> = if ctx.tier_floor_frac > 0.0 {
                    let n_active = ds.iter().filter(|d| d.active).count().max(1);
                    let per = ctx.tier_floor_frac * budget_w / n_active as f64;
                    Some(
                        ds.iter()
                            .map(|d| if d.active { per } else { 0.0 })
                            .collect(),
                    )
                } else {
                    None
                };
                split_caps_critical(budget_w, &ds, crit.as_deref(), floor_w.as_deref())?
            }
            (s, _) => split_caps(s, budget_w, &ds, ctx.quantum_w),
        };
        entries[id] = Some(Entry {
            budget_bits: budget_w.to_bits(),
            quantum_bits: ctx.quantum_w.to_bits(),
            tier_floor_bits: ctx.tier_floor_frac.to_bits(),
            ref_demands: ds,
            ref_sla: ctx.sla_present.then(|| {
                children
                    .iter()
                    .map(|&c| ctx.agg_sla[c].signal().p99_s)
                    .collect()
            }),
            ref_crit: ctx
                .crit_present
                .then(|| children.iter().map(|&c| ctx.agg_crit[c]).collect()),
            shares: computed.clone(),
        });
        computed
    };
    if let Some(t) = trace.as_deref_mut() {
        t.replayed.push(replay);
    }
    for (k, &c) in children.iter().enumerate() {
        alloc(
            ctx,
            entries,
            hits,
            misses,
            c,
            shares[k],
            caps,
            trace.as_deref_mut(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(demand_w: f64, min_w: f64) -> ServerDemand {
        ServerDemand {
            demand_w,
            min_w,
            active: true,
        }
    }

    fn two_racks() -> BudgetTree {
        BudgetTree::parse("fleet:uniform[rack0:fastcap[a,b],rack1:fastcap[c,d]]").unwrap()
    }

    const NAMES: [&str; 4] = ["a", "b", "c", "d"];

    #[test]
    fn zero_dead_band_matches_tree_split_bit_for_bit() {
        let t = BudgetTree::parse(
            "dc:demand-proportional[pod0:uniform[r0:fastcap[a,b],r1:sla-aware[c,d]],pod1:fastcap[e,f]]",
        )
        .unwrap();
        let names = ["a", "b", "c", "d", "e", "f"];
        let mut h = HierSplitter::compile(&t, &names, 0.0);
        // A telemetry sequence with repeats, activity flips, and an SLA
        // arm; every step must equal the uncached split exactly.
        let steps: Vec<(Vec<ServerDemand>, Option<Vec<SlaSignal>>)> = vec![
            (
                vec![
                    d(120.0, 40.0),
                    d(80.0, 35.0),
                    d(200.0, 50.0),
                    d(60.0, 30.0),
                    d(90.0, 25.0),
                    d(150.0, 45.0),
                ],
                None,
            ),
            (
                vec![
                    d(120.0, 40.0),
                    d(80.0, 35.0),
                    d(200.0, 50.0),
                    d(60.0, 30.0),
                    d(90.0, 25.0),
                    d(150.0, 45.0),
                ],
                None,
            ),
            (
                vec![
                    d(121.0, 40.0),
                    d(80.0, 35.0),
                    ServerDemand {
                        demand_w: 200.0,
                        min_w: 50.0,
                        active: false,
                    },
                    d(60.0, 30.0),
                    d(90.0, 25.0),
                    d(150.0, 45.0),
                ],
                Some(vec![
                    SlaSignal {
                        p99_s: 2e-3,
                        target_s: 1e-3,
                    };
                    6
                ]),
            ),
        ];
        for (step, (demands, sla)) in steps.iter().enumerate() {
            for budget in [100.0, 226.0, 400.0] {
                let got = h.split(budget, demands, sla.as_deref(), 1.0);
                let names_ref: Vec<&str> = names.to_vec();
                let want = t.split(budget, &names_ref, demands, sla.as_deref(), 1.0);
                let gb: Vec<u64> = got.iter().map(|c| c.to_bits()).collect();
                let wb: Vec<u64> = want.iter().map(|c| c.to_bits()).collect();
                assert_eq!(gb, wb, "step {step} budget {budget}");
            }
        }
        // Bit-identical inputs replay every node (a budget change between
        // the sweep's calls is itself a dirty key, so only a back-to-back
        // repeat can hit).
        let (demands, sla) = &steps[0];
        let hits = h.node_hits();
        let first = h.split(226.0, demands, sla.as_deref(), 1.0);
        let replay = h.split(226.0, demands, sla.as_deref(), 1.0);
        assert_eq!(
            first.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
            replay.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        );
        assert!(h.node_hits() > hits, "identical back-to-back calls replay");
    }

    #[test]
    fn dead_band_replays_within_band_and_recomputes_beyond() {
        let t = two_racks();
        let mut h = HierSplitter::compile(&t, &NAMES, 5.0);
        let base = vec![d(100.0, 30.0), d(90.0, 30.0), d(40.0, 10.0), d(40.0, 10.0)];
        let first = h.split(200.0, &base, None, 1.0);
        let cold = h.node_misses();
        // Nudge every demand by 1 W: all nodes stay inside the band and
        // replay the first allocation verbatim.
        let nudged = vec![d(101.0, 30.0), d(89.0, 30.0), d(41.0, 10.0), d(39.0, 10.0)];
        let replayed = h.split(200.0, &nudged, None, 1.0);
        assert_eq!(
            first.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
            replayed.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(h.node_misses(), cold, "no recomputes inside the band");
        assert_eq!(h.node_hits(), 3, "all three groups replayed");
        // Push rack1's aggregate far out of band: rack1 (and the root's
        // dead-band test) recompute, rack0 still replays.
        let shifted = vec![d(100.0, 30.0), d(90.0, 30.0), d(90.0, 10.0), d(40.0, 10.0)];
        let (_, _, flags) = h
            .split_with_trace(200.0, &shifted, &TreeSignals::default(), 1.0)
            .unwrap();
        // Pre-order: fleet, rack0, rack1. The uniform root recomputes (its
        // child aggregates moved) but rack0's budget and telemetry are
        // unchanged, so rack0 replays.
        assert_eq!(flags, vec![false, true, false]);
    }

    #[test]
    fn replayed_group_shares_match_a_fresh_split_of_the_same_telemetry() {
        let t = two_racks();
        let mut h = HierSplitter::compile(&t, &NAMES, 2.0);
        let demands = vec![d(300.0, 40.0), d(300.0, 40.0), d(30.0, 10.0), d(30.0, 10.0)];
        h.split(200.0, &demands, None, 1.0);
        let (caps, trace, flags) = h
            .split_with_trace(200.0, &demands, &TreeSignals::default(), 1.0)
            .unwrap();
        assert!(flags.iter().all(|&f| f), "identical telemetry replays all");
        let (want_caps, want_trace) = t.split_trace(200.0, &NAMES, &demands, None, 1.0);
        assert_eq!(
            caps.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
            want_caps.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(trace.len(), want_trace.len());
        for (got, want) in trace.iter().zip(&want_trace) {
            assert_eq!(got.label, want.label);
            assert_eq!(got.budget_w.to_bits(), want.budget_w.to_bits());
            assert_eq!(got.leaves, want.leaves);
        }
    }

    #[test]
    fn rebind_after_churn_keeps_sibling_subtree_entries() {
        let mut t = two_racks();
        let mut h = HierSplitter::compile(&t, &NAMES, 1.0);
        let demands = vec![d(100.0, 30.0), d(90.0, 30.0), d(40.0, 10.0), d(40.0, 10.0)];
        h.split(200.0, &demands, None, 1.0);
        // Churn inside rack1 only.
        assert!(t.remove_server("d"));
        let new_names = ["a", "b", "c"];
        h.rebind(&t, &new_names);
        let hits_before = h.node_hits();
        // rack0's telemetry is unchanged and the uniform root still hands
        // it the same 100 W, so its entry must survive the rebind and
        // replay; rack1 changed structurally and starts cold.
        let demands2 = vec![d(100.0, 30.0), d(90.0, 30.0), d(40.0, 10.0)];
        let (caps, trace, flags) = h
            .split_with_trace(200.0, &demands2, &TreeSignals::default(), 1.0)
            .unwrap();
        assert_eq!(trace[1].label, "rack0");
        assert!(flags[1], "sibling rack0 replays after churn in rack1");
        assert!(!flags[2], "churned rack1 starts cold");
        assert_eq!(h.node_hits(), hits_before + 1);
        // And the replay is still exactly the fresh split.
        let want = t.split(200.0, &new_names, &demands2, None, 1.0);
        assert_eq!(
            caps.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn critical_path_floors_and_errors_match_the_tree() {
        let t = BudgetTree::parse("svc:critical-path[fe:fastcap[f0],st:fastcap[s0]]").unwrap();
        let names = ["f0", "s0"];
        let mut h = HierSplitter::compile(&t, &names, 0.0);
        let demands = [d(100.0, 10.0), d(100.0, 10.0)];
        let crit = [0.0, 1.0];
        let sig = TreeSignals {
            crit: Some(&crit),
            tier_floor_frac: 0.5,
            ..TreeSignals::default()
        };
        let got = h.split_signals(120.0, &demands, &sig, 1.0).unwrap();
        let want = t.split_signals(120.0, &names, &demands, &sig, 1.0).unwrap();
        assert_eq!(
            got.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        );
        let heavy = [d(100.0, 70.0), d(100.0, 70.0)];
        let err = h.split_signals(120.0, &heavy, &sig, 1.0).unwrap_err();
        assert!(
            matches!(err, SplitError::InfeasibleFloors { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn invalidate_forces_full_recompute() {
        let t = two_racks();
        let mut h = HierSplitter::compile(&t, &NAMES, 5.0);
        let demands = vec![d(100.0, 30.0), d(90.0, 30.0), d(40.0, 10.0), d(40.0, 10.0)];
        h.split(200.0, &demands, None, 1.0);
        h.invalidate();
        let misses = h.node_misses();
        h.split(200.0, &demands, None, 1.0);
        assert_eq!(h.node_misses(), misses + 3, "all groups recompute");
    }
}
