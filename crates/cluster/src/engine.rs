//! The coordination-engine abstraction: how a fleet's round barriers are
//! driven and how the per-round work is scheduled onto OS threads.
//!
//! Two engines implement [`FleetEngine`]:
//!
//! * **Round** (the reference): the original loop — every round touches
//!   every server, workers are scoped threads spawned afresh per round.
//!   Simple, obviously correct, and the semantics the digests pin.
//! * **Event**: a picosecond-ordered wake queue (the `simkernel`
//!   [`EventQueue`](simkernel::EventQueue) kernel) where servers schedule
//!   their own next coordination wake. Quiesced servers never wake again,
//!   so per-barrier cost scales with the *active* set; stepping runs on a
//!   persistent [`WorkerPool`] instead of per-round thread spawns; and the
//!   coordinator re-splits the budget only when the dirty set (telemetry
//!   deltas above [`CapCache`]'s dead-band) is non-empty, falling back to
//!   a full recursion whenever membership or the budget changes.
//!
//! The two are **bit-identical** at the default zero dead-band: every cap
//! split is a pure function of `(budget, membership, telemetry)`, inactive
//! servers take no part in any discipline's arithmetic, and with a zero
//! dead-band the cache only replays an allocation whose inputs match the
//! previous barrier's bit for bit. `tests/engine_equivalence.rs` proves the
//! equivalence differentially across the config space.

use crate::coordinator::{split_caps, ServerDemand, SlaSignal};
use crate::CapSplit;
use simkernel::Ps;
use std::collections::BinaryHeap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Which coordination engine drives the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The reference round-barrier loop: every round touches every server.
    Round,
    /// The wake-queue engine: done servers skip barriers entirely, caps are
    /// re-split only when telemetry moved, stepping uses a persistent
    /// worker pool.
    Event,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EngineKind::Round => "round",
            EngineKind::Event => "event",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<EngineKind, String> {
        match s {
            "round" => Ok(EngineKind::Round),
            "event" => Ok(EngineKind::Event),
            other => Err(format!("unknown engine '{other}' (known: round, event)")),
        }
    }
}

/// A coordination engine: consumes a fully built simulation and produces
/// its result. Both the batch-cluster and serving-fleet layers expose one
/// reference [`EngineKind::Round`] implementation and one
/// [`EngineKind::Event`] implementation behind this trait; the differential
/// harness runs the same configuration through both and compares digests.
pub trait FleetEngine {
    /// The layer's result type (`ClusterResult`, `ServiceResult`, …).
    type Output;

    /// Which engine this is.
    fn kind(&self) -> EngineKind;

    /// Runs the simulation to completion.
    fn run(self) -> Self::Output;
}

/// A persistent pool of worker threads stepping simulation objects.
///
/// The round engines spawn scoped threads afresh at every barrier; at
/// thousand-server scale that spawn/join churn is pure overhead. A
/// `WorkerPool` spawns its threads once and then moves `(index, T)` jobs
/// through channels: the coordinator sends the servers due this barrier,
/// workers step them with the fixed `step` closure, and
/// [`WorkerPool::run`] reinstalls each result by index. Determinism is
/// untouched — servers are stepped independently and only re-joined at the
/// barrier, exactly like the scoped fan-out.
pub struct WorkerPool<T: Send + 'static> {
    injector: Option<mpsc::Sender<(usize, T)>>,
    results: mpsc::Receiver<(usize, T)>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `threads` workers, each applying `step` to every job it
    /// receives for the pool's whole lifetime.
    pub fn new<F>(threads: usize, step: F) -> WorkerPool<T>
    where
        F: Fn(&mut T) + Send + Sync + 'static,
    {
        assert!(threads > 0, "worker pool needs at least one thread");
        let (injector, job_rx) = mpsc::channel::<(usize, T)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (done_tx, results) = mpsc::channel();
        let step = Arc::new(step);
        let workers = (0..threads)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let done_tx = done_tx.clone();
                let step = Arc::clone(&step);
                std::thread::spawn(move || loop {
                    // Hold the lock only to receive: the next idle worker
                    // takes it while this one steps its job.
                    let job = job_rx.lock().expect("pool lock poisoned").recv();
                    match job {
                        Ok((i, mut t)) => {
                            step(&mut t);
                            if done_tx.send((i, t)).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                })
            })
            .collect();
        WorkerPool {
            injector: Some(injector),
            results,
            workers,
        }
    }

    /// Runs one barrier's batch: sends every `(index, item)` job, then
    /// receives exactly that many results (in completion order) and hands
    /// each to `reinstall`. Returns when the whole batch is done.
    pub fn run(&self, jobs: Vec<(usize, T)>, mut reinstall: impl FnMut(usize, T)) {
        let n = jobs.len();
        let injector = self.injector.as_ref().expect("pool already shut down");
        for job in jobs {
            injector.send(job).expect("worker pool hung up");
        }
        for _ in 0..n {
            let (i, t) = self.results.recv().expect("worker thread died");
            reinstall(i, t);
        }
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        // Closing the injector ends every worker's recv loop.
        self.injector.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The event engine's incremental cap-split cache.
///
/// A cap split is a pure function of the budget, the fleet membership and
/// the per-server telemetry, so when none of those inputs moved between two
/// barriers the previous allocation *is* the recompute. `CapCache` keeps
/// the telemetry an allocation was computed from (the reference) and the
/// allocation itself; [`CapCache::lookup`] replays the allocation while the
/// dirty set — servers whose telemetry moved more than `dead_band_w` from
/// the reference — stays empty, and returns `None` (recompute, then
/// [`CapCache::store`]) the moment it is not. Membership or budget changes
/// must [`CapCache::invalidate`] the cache entirely: they reshape the
/// allocation for every server, not just the dirty ones.
///
/// At the default `dead_band_w == 0.0` a server is dirty unless its
/// telemetry matches the reference **bit for bit** (comparison is on the
/// raw f64 bits, so NaNs and signed zeros conservatively recompute), which
/// is what makes the event engine digest-identical to the round engine. A
/// positive dead-band trades that exactness for fewer re-splits on fleets
/// with jittery-but-stable telemetry.
#[derive(Clone, Debug)]
pub struct CapCache {
    dead_band_w: f64,
    reference: Vec<ServerDemand>,
    reference_sla: Vec<SlaSignal>,
    reference_crit: Vec<f64>,
    caps: Vec<f64>,
    valid: bool,
    hits: u64,
    misses: u64,
}

impl CapCache {
    /// An empty cache with the given dead-band (0 for exact replay).
    pub fn new(dead_band_w: f64) -> CapCache {
        assert!(
            dead_band_w >= 0.0 && !dead_band_w.is_nan(),
            "dead band must be a non-negative number"
        );
        CapCache {
            dead_band_w,
            reference: Vec::new(),
            reference_sla: Vec::new(),
            reference_crit: Vec::new(),
            caps: Vec::new(),
            valid: false,
            hits: 0,
            misses: 0,
        }
    }

    /// Drops the cached allocation. Call on any membership change (a
    /// server joined, left, or went idle) or budget change.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Replays the cached allocation if the dirty set is empty, else
    /// `None`. Counts a hit or miss either way.
    pub fn lookup(
        &mut self,
        demands: &[ServerDemand],
        sla: Option<&[SlaSignal]>,
        crit: Option<&[f64]>,
    ) -> Option<Vec<f64>> {
        if self.lookup_clean(demands, sla, crit) {
            self.hits += 1;
            Some(self.caps.clone())
        } else {
            self.misses += 1;
            None
        }
    }

    fn lookup_clean(
        &self,
        demands: &[ServerDemand],
        sla: Option<&[SlaSignal]>,
        crit: Option<&[f64]>,
    ) -> bool {
        if !self.valid || demands.len() != self.reference.len() {
            return false;
        }
        let sla = sla.unwrap_or(&[]);
        if sla.len() != self.reference_sla.len() {
            return false;
        }
        let crit = crit.unwrap_or(&[]);
        if crit.len() != self.reference_crit.len() {
            return false;
        }
        let clean = |a: f64, b: f64| {
            if self.dead_band_w == 0.0 {
                a.to_bits() == b.to_bits()
            } else {
                (a - b).abs() <= self.dead_band_w
            }
        };
        // Critical-path shares are dimensionless fractions, not watts — a
        // watt-denominated dead band has no business blurring them, so any
        // bit-level movement in the trace signal recomputes the split.
        demands.iter().zip(&self.reference).all(|(d, r)| {
            d.active == r.active && clean(d.demand_w, r.demand_w) && clean(d.min_w, r.min_w)
        }) && sla
            .iter()
            .zip(&self.reference_sla)
            .all(|(s, r)| clean(s.p99_s, r.p99_s) && clean(s.target_s, r.target_s))
            && crit
                .iter()
                .zip(&self.reference_crit)
                .all(|(c, r)| c.to_bits() == r.to_bits())
    }

    /// Records a freshly computed allocation and the telemetry it came
    /// from.
    pub fn store(
        &mut self,
        demands: &[ServerDemand],
        sla: Option<&[SlaSignal]>,
        crit: Option<&[f64]>,
        caps: &[f64],
    ) {
        self.reference.clear();
        self.reference.extend_from_slice(demands);
        self.reference_sla.clear();
        self.reference_sla.extend_from_slice(sla.unwrap_or(&[]));
        self.reference_crit.clear();
        self.reference_crit.extend_from_slice(crit.unwrap_or(&[]));
        self.caps.clear();
        self.caps.extend_from_slice(caps);
        self.valid = true;
    }

    /// Barriers whose allocation was replayed from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Barriers that recomputed the split.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// [`split_caps`] restricted to the active servers: the discipline's hot
/// loops (FastCap's per-quantum scan above all) run over a compacted
/// active-only slice and the results scatter back to fleet positions.
///
/// Bit-identical to `split_caps` over the full slice: inactive servers take
/// no part in any discipline's arithmetic (every sum, scan and tie-break
/// filters on `active`, and compaction preserves relative order, so
/// "lowest index" ties resolve to the same server), they simply receive a
/// zero cap — which is exactly what the scatter leaves behind. On a
/// 90%-idle fleet this turns an `O(fleet)` per-quantum scan into
/// `O(active)`.
pub fn split_caps_active(
    split: CapSplit,
    global_cap_w: f64,
    demands: &[ServerDemand],
    quantum_w: f64,
) -> Vec<f64> {
    let n = demands.len();
    let active_idx: Vec<usize> = (0..n).filter(|&i| demands[i].active).collect();
    if active_idx.len() == n {
        return split_caps(split, global_cap_w, demands, quantum_w);
    }
    let mut caps = vec![0.0; n];
    if active_idx.is_empty() {
        return caps;
    }
    let compact: Vec<ServerDemand> = active_idx.iter().map(|&i| demands[i]).collect();
    let compact_caps = split_caps(split, global_cap_w, &compact, quantum_w);
    for (&i, c) in active_idx.iter().zip(compact_caps) {
        caps[i] = c;
    }
    caps
}

/// One scheduled wake in a [`ShardedWakeQueue`] shard.
///
/// Ordered like `simkernel::EventQueue` entries — earliest time first,
/// FIFO (global sequence) among equal times — via the reversed comparison
/// that turns `BinaryHeap`'s max-heap into a min-heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ShardEntry {
    time: Ps,
    seq: u64,
    server: usize,
}

impl Ord for ShardEntry {
    fn cmp(&self, other: &ShardEntry) -> std::cmp::Ordering {
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ShardEntry {
    fn partial_cmp(&self, other: &ShardEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The event engine's wake queue, sharded so each worker-sized slice of
/// the fleet owns a local picosecond heap.
///
/// A single global [`EventQueue`](simkernel::EventQueue) serializes every
/// push and pop through one `O(log fleet)` heap; at 100k servers that heap
/// is the barrier's contention point. `ShardedWakeQueue` routes each
/// server's wakes to the shard `server % shards`, so pushes touch an
/// `O(log (fleet / shards))` local heap and only the *due* entries cross
/// shards at a barrier.
///
/// Determinism is preserved exactly: every push is stamped with a single
/// global sequence number (never reset, exactly like the kernel queue's),
/// and [`ShardedWakeQueue::pop_due`] merges the due entries of all shards
/// in ascending sequence order — which reproduces, bit for bit, the pop
/// order the global queue would have produced for the same pushes, since
/// entries due at one barrier share the same time and the kernel orders
/// equal-time entries FIFO by sequence.
#[derive(Debug)]
pub struct ShardedWakeQueue {
    shards: Vec<BinaryHeap<ShardEntry>>,
    next_seq: u64,
    len: usize,
    due: Vec<(u64, usize)>,
}

impl ShardedWakeQueue {
    /// An empty queue with `shards` shards (clamped to at least one).
    pub fn new(shards: usize) -> ShardedWakeQueue {
        ShardedWakeQueue {
            shards: (0..shards.max(1)).map(|_| BinaryHeap::new()).collect(),
            next_seq: 0,
            len: 0,
            due: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Pending wakes across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no wakes are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `server` to wake at `time`.
    pub fn push(&mut self, time: Ps, server: usize) {
        let shard = server % self.shards.len();
        self.shards[shard].push(ShardEntry {
            time,
            seq: self.next_seq,
            server,
        });
        self.next_seq += 1;
        self.len += 1;
    }

    /// The earliest pending wake time, if any.
    pub fn peek_time(&self) -> Option<Ps> {
        self.shards
            .iter()
            .filter_map(|s| s.peek().map(|e| e.time))
            .min()
    }

    /// Pops every wake scheduled exactly at `now` and appends the woken
    /// servers to `out` in global FIFO-of-equal-time order.
    pub fn pop_due(&mut self, now: Ps, out: &mut Vec<usize>) {
        self.due.clear();
        for shard in &mut self.shards {
            while shard.peek().is_some_and(|e| e.time == now) {
                let e = shard.pop().expect("peeked entry present");
                self.due.push((e.seq, e.server));
                self.len -= 1;
            }
        }
        // Per-shard pops are already seq-ascending (same time ⇒ FIFO), so
        // this sort is a merge of sorted runs; it restores the exact order
        // a single global heap would have popped.
        self.due.sort_unstable();
        out.extend(self.due.iter().map(|&(_, server)| server));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_parse_display_round_trip() {
        for k in [EngineKind::Round, EngineKind::Event] {
            assert_eq!(k.to_string().parse::<EngineKind>().unwrap(), k);
        }
        assert!("async".parse::<EngineKind>().is_err());
    }

    #[test]
    fn worker_pool_returns_every_job_by_index() {
        let pool: WorkerPool<u64> = WorkerPool::new(3, |x| *x *= 2);
        for batch in [0usize, 1, 7, 64] {
            let jobs: Vec<(usize, u64)> = (0..batch).map(|i| (i, i as u64 + 1)).collect();
            let mut out = vec![0u64; batch];
            pool.run(jobs, |i, x| out[i] = x);
            for (i, &x) in out.iter().enumerate() {
                assert_eq!(x, 2 * (i as u64 + 1));
            }
        }
    }

    fn d(demand_w: f64, min_w: f64, active: bool) -> ServerDemand {
        ServerDemand {
            demand_w,
            min_w,
            active,
        }
    }

    #[test]
    fn active_split_matches_full_split_bit_for_bit() {
        // Awkward fractions on purpose: the scatter must reproduce the
        // full computation's exact float arithmetic, not approximate it.
        let demands = vec![
            d(97.3, 24.1, true),
            d(55.7, 19.9, false),
            d(130.0, 30.0, true),
            d(61.9, 21.3, false),
            d(88.8, 26.2, true),
            d(42.0, 18.0, false),
        ];
        for split in [
            CapSplit::Uniform,
            CapSplit::DemandProportional,
            CapSplit::FastCap,
            CapSplit::SlaAware,
        ] {
            for budget in [90.0, 217.5, 400.0] {
                let full = split_caps(split, budget, &demands, 1.0);
                let fast = split_caps_active(split, budget, &demands, 1.0);
                let full_bits: Vec<u64> = full.iter().map(|c| c.to_bits()).collect();
                let fast_bits: Vec<u64> = fast.iter().map(|c| c.to_bits()).collect();
                assert_eq!(full_bits, fast_bits, "{split} at {budget} W");
            }
        }
    }

    #[test]
    fn cap_cache_replays_only_on_clean_telemetry() {
        let mut cache = CapCache::new(0.0);
        let demands = vec![d(100.0, 30.0, true), d(80.0, 25.0, true)];
        assert!(
            cache.lookup(&demands, None, None).is_none(),
            "cold cache misses"
        );
        cache.store(&demands, None, None, &[60.0, 40.0]);
        assert_eq!(cache.lookup(&demands, None, None), Some(vec![60.0, 40.0]));

        // Any bit of telemetry movement is a dirty server at dead-band 0.
        let mut moved = demands.clone();
        moved[1].demand_w += 1e-12;
        assert!(cache.lookup(&moved, None, None).is_none());

        // An activity flip is a membership change even at a wide dead-band.
        let mut cache = CapCache::new(5.0);
        cache.store(&demands, None, None, &[60.0, 40.0]);
        let mut jitter = demands.clone();
        jitter[0].demand_w += 3.0;
        assert!(
            cache.lookup(&jitter, None, None).is_some(),
            "within dead-band"
        );
        let mut idled = demands.clone();
        idled[1].active = false;
        assert!(cache.lookup(&idled, None, None).is_none());

        // Explicit invalidation always recomputes.
        let mut cache = CapCache::new(0.0);
        cache.store(&demands, None, None, &[60.0, 40.0]);
        cache.invalidate();
        assert!(cache.lookup(&demands, None, None).is_none());
    }

    #[test]
    fn sharded_wake_queue_matches_global_queue_pop_order() {
        // Drive both queues through an interleaved schedule and require the
        // sharded merge to reproduce the kernel queue's order exactly.
        for shards in [1usize, 2, 3, 8] {
            let mut sharded = ShardedWakeQueue::new(shards);
            let mut global: simkernel::EventQueue<usize> = simkernel::EventQueue::new();
            let mut rng = simkernel::SimRng::new(42);
            let mut pushed = 0usize;
            for wave in 0..6u64 {
                let now = Ps::new(wave * 10);
                for _ in 0..10 {
                    let server = (rng.next_u64() % 23) as usize;
                    let when = Ps::new(now.as_ps() + 10 * (1 + rng.next_u64() % 3));
                    sharded.push(when, server);
                    global.push(when, server);
                    pushed += 1;
                }
                let due = Ps::new((wave + 1) * 10);
                let mut got = Vec::new();
                sharded.pop_due(due, &mut got);
                let mut want = Vec::new();
                while global.peek_time() == Some(due) {
                    want.push(global.pop().expect("peeked entry present").1);
                }
                assert_eq!(got, want, "wave {wave} shards {shards}");
                pushed -= got.len();
                assert_eq!(sharded.len(), pushed);
                assert_eq!(sharded.peek_time(), global.peek_time());
            }
        }
    }

    #[test]
    fn cap_cache_tracks_sla_signals() {
        let mut cache = CapCache::new(0.0);
        let demands = vec![d(100.0, 30.0, true)];
        let sla = vec![SlaSignal {
            p99_s: 0.8e-3,
            target_s: 1e-3,
        }];
        cache.store(&demands, Some(&sla), None, &[70.0]);
        assert!(cache.lookup(&demands, Some(&sla), None).is_some());
        let hot = vec![SlaSignal {
            p99_s: 1.2e-3,
            target_s: 1e-3,
        }];
        assert!(cache.lookup(&demands, Some(&hot), None).is_none());
        // Presenting signals to a cache stored without them (or vice
        // versa) can never replay.
        assert!(cache.lookup(&demands, None, None).is_none());
    }
}
