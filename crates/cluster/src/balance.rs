//! Front-end load balancing: assigning closed-loop requests to servers.
//!
//! A capped fleet only saves cluster-level power if load can actually
//! *move* — PowerTracer's request steering is where its savings come from,
//! and FastCap's fairness framing presumes a front end that could send work
//! elsewhere. This module is that front end: a [`LoadBalancer`] takes the
//! batch of requests generated at a round barrier and assigns each to a
//! server by policy. All three policies are deterministic (no RNG; ties
//! break toward the lowest server index), so balanced runs keep the
//! round-barrier thread-count invariance the cluster and service layers
//! pin with digests.
//!
//! * [`BalancePolicy::RoundRobin`] — cycle through the fleet, oblivious to
//!   both queues and caps; the classic baseline that keeps feeding a
//!   throttled server its full share of traffic.
//! * [`BalancePolicy::LeastQueue`] — join the shortest queue, counting the
//!   assignments already made this round; backlog-aware but cap-blind.
//! * [`BalancePolicy::PowerHeadroom`] — weight servers by their predicted
//!   absolute performance under their *current cap* (the coordinator's own
//!   concave utility curve) and split the batch proportionally by highest
//!   averages (D'Hondt), steering traffic toward servers with watts of
//!   slack and away from ones pinned near their floors.

use crate::coordinator::{utility_at, ServerDemand};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the front end assigns each generated request to a server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalancePolicy {
    /// Cycle through the servers in fleet order, one request each.
    RoundRobin,
    /// Send each request to the server with the fewest queued requests
    /// (counting this round's provisional assignments).
    LeastQueue,
    /// Split the batch proportionally to each server's predicted
    /// performance under its current power cap.
    PowerHeadroom,
}

impl std::fmt::Display for BalancePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BalancePolicy::RoundRobin => "round-robin",
            BalancePolicy::LeastQueue => "least-queue",
            BalancePolicy::PowerHeadroom => "power-headroom",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for BalancePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<BalancePolicy, String> {
        match s {
            "round-robin" | "rr" => Ok(BalancePolicy::RoundRobin),
            "least-queue" | "lq" => Ok(BalancePolicy::LeastQueue),
            "power-headroom" | "headroom" => Ok(BalancePolicy::PowerHeadroom),
            other => Err(format!(
                "unknown balance policy '{other}' \
                 (known: round-robin, least-queue, power-headroom)"
            )),
        }
    }
}

/// One server's state as the front end sees it at a round barrier.
#[derive(Clone, Copy, Debug)]
pub struct ServerLoad {
    /// The server's power telemetry (predicted demand, floor, activity).
    pub demand: ServerDemand,
    /// The cap the coordinator granted for the coming round, watts.
    pub cap_w: f64,
    /// Requests already queued on the server.
    pub queue_depth: usize,
}

/// The front-end request router. Holds the (deterministic) cross-round
/// state a policy needs — currently just the round-robin cursor.
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    policy: BalancePolicy,
    rr_next: usize,
}

impl LoadBalancer {
    /// A balancer running `policy`, with its cursor at the first server.
    pub fn new(policy: BalancePolicy) -> LoadBalancer {
        LoadBalancer { policy, rr_next: 0 }
    }

    /// The policy in force.
    pub fn policy(&self) -> BalancePolicy {
        self.policy
    }

    /// Assigns a batch of `count` requests to the servers described by
    /// `loads`, returning one server index per request (in request order).
    ///
    /// # Panics
    ///
    /// Panics if `loads` is empty while `count` is not — an empty fleet
    /// cannot absorb requests (the caller skips issuing in that case).
    pub fn assign_batch(&mut self, count: usize, loads: &[ServerLoad]) -> Vec<usize> {
        if count == 0 {
            return Vec::new();
        }
        assert!(!loads.is_empty(), "cannot balance over an empty fleet");
        match self.policy {
            BalancePolicy::RoundRobin => (0..count)
                .map(|_| {
                    let i = self.rr_next % loads.len();
                    self.rr_next = (i + 1) % loads.len();
                    i
                })
                .collect(),
            BalancePolicy::LeastQueue => {
                // Min-heap on (depth, index): popping the smallest pair is
                // the lowest index among the shallowest queues — the same
                // tie-break as a linear scan, at O((n + count)·log n)
                // instead of O(n·count). Million-request barrier batches
                // (the fluid client model) made the scan the bottleneck.
                let mut heap: BinaryHeap<Reverse<(usize, usize)>> = loads
                    .iter()
                    .enumerate()
                    .map(|(i, l)| Reverse((l.queue_depth, i)))
                    .collect();
                (0..count)
                    .map(|_| {
                        let Reverse((depth, i)) = heap.pop().expect("non-empty fleet");
                        heap.push(Reverse((depth + 1, i)));
                        i
                    })
                    .collect()
            }
            BalancePolicy::PowerHeadroom => {
                // Weight each server by its predicted absolute performance
                // under the cap it was just granted — the same concave
                // curve the coordinator allocates by. A fleet with no
                // telemetry yet (all weights zero, e.g. the first round)
                // degrades to an even split.
                let mut weights: Vec<f64> = loads
                    .iter()
                    .map(|l| utility_at(&l.demand, l.cap_w).max(0.0))
                    .collect();
                if weights.iter().all(|&w| w <= 0.0) {
                    weights.iter_mut().for_each(|w| *w = 1.0);
                }
                // Highest-averages (D'Hondt) apportionment: request j goes
                // to the server maximizing weight / (already assigned + 1).
                // Each server keeps exactly one live heap entry carrying its
                // current average, so popping the max and reinserting the
                // next quotient walks the same sequence as a full rescan —
                // ties toward the lowest index included (see HeadroomSlot's
                // ordering) — at O((n + count)·log n).
                let mut assigned = vec![0usize; loads.len()];
                let mut heap: BinaryHeap<HeadroomSlot> = weights
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| HeadroomSlot { avg: w, idx: i })
                    .collect();
                (0..count)
                    .map(|_| {
                        let slot = heap.pop().expect("non-empty fleet");
                        let i = slot.idx;
                        assigned[i] += 1;
                        heap.push(HeadroomSlot {
                            avg: weights[i] / (assigned[i] + 1) as f64,
                            idx: i,
                        });
                        i
                    })
                    .collect()
            }
        }
    }

    /// Tier-aware batch assignment: balances `count` requests over only the
    /// fleet positions in `members`, returning *fleet* indices. Multi-tier
    /// topologies route client requests to the entry tier this way — the
    /// policy sees a compacted view of the eligible servers (round-robin
    /// state advances over that view), and picks map back to fleet order.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty while `count` is not, or when a member
    /// index is out of `loads`' bounds.
    pub fn assign_batch_within(
        &mut self,
        count: usize,
        loads: &[ServerLoad],
        members: &[usize],
    ) -> Vec<usize> {
        if count == 0 {
            return Vec::new();
        }
        assert!(!members.is_empty(), "cannot balance over an empty tier");
        let view: Vec<ServerLoad> = members.iter().map(|&i| loads[i]).collect();
        self.assign_batch(count, &view)
            .into_iter()
            .map(|v| members[v])
            .collect()
    }
}

/// One server's live D'Hondt quotient in the PowerHeadroom max-heap.
///
/// Ordered by average (weights are finite and non-negative, so
/// `total_cmp` agrees with the naive strict-`>` rescan) and, among equal
/// averages, by *lower* index first — preserving the documented
/// ties-toward-the-lowest-index behavior the digests pin.
#[derive(Clone, Copy, Debug)]
struct HeadroomSlot {
    avg: f64,
    idx: usize,
}

impl PartialEq for HeadroomSlot {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeadroomSlot {}

impl Ord for HeadroomSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.avg
            .total_cmp(&other.avg)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for HeadroomSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(demand_w: f64, min_w: f64, cap_w: f64, queue_depth: usize) -> ServerLoad {
        ServerLoad {
            demand: ServerDemand {
                demand_w,
                min_w,
                active: true,
            },
            cap_w,
            queue_depth,
        }
    }

    #[test]
    fn policy_parse_display_round_trip() {
        for p in [
            BalancePolicy::RoundRobin,
            BalancePolicy::LeastQueue,
            BalancePolicy::PowerHeadroom,
        ] {
            assert_eq!(p.to_string().parse::<BalancePolicy>().unwrap(), p);
        }
        assert_eq!(
            "rr".parse::<BalancePolicy>().unwrap(),
            BalancePolicy::RoundRobin
        );
        assert_eq!(
            "headroom".parse::<BalancePolicy>().unwrap(),
            BalancePolicy::PowerHeadroom
        );
        assert!("nosuch".parse::<BalancePolicy>().is_err());
    }

    #[test]
    fn round_robin_cycles_across_batches() {
        let loads = vec![load(50.0, 20.0, 50.0, 0); 3];
        let mut lb = LoadBalancer::new(BalancePolicy::RoundRobin);
        assert_eq!(lb.assign_batch(4, &loads), vec![0, 1, 2, 0]);
        // The cursor survives the barrier: the next batch resumes at 1.
        assert_eq!(lb.assign_batch(2, &loads), vec![1, 2]);
    }

    #[test]
    fn assign_within_restricts_to_members_and_maps_back() {
        // Fleet of five; only positions 1 and 3 (the entry tier) are
        // eligible. Results come back as fleet indices and the round-robin
        // cursor advances over the tier view, not the fleet.
        let loads = vec![load(50.0, 20.0, 50.0, 0); 5];
        let mut lb = LoadBalancer::new(BalancePolicy::RoundRobin);
        assert_eq!(lb.assign_batch_within(3, &loads, &[1, 3]), vec![1, 3, 1]);
        assert_eq!(lb.assign_batch_within(2, &loads, &[1, 3]), vec![3, 1]);
        // Least-queue respects per-member depths through the mapping.
        let mut loads = vec![load(50.0, 20.0, 50.0, 0); 5];
        loads[1].queue_depth = 4;
        let mut lb = LoadBalancer::new(BalancePolicy::LeastQueue);
        assert_eq!(lb.assign_batch_within(3, &loads, &[1, 3]), vec![3, 3, 3]);
        assert!(lb.assign_batch_within(0, &loads, &[]).is_empty());
    }

    #[test]
    fn least_queue_counts_provisional_assignments() {
        let loads = vec![
            load(50.0, 20.0, 50.0, 5),
            load(50.0, 20.0, 50.0, 0),
            load(50.0, 20.0, 50.0, 2),
        ];
        let mut lb = LoadBalancer::new(BalancePolicy::LeastQueue);
        // Depths 5/0/2: requests fill server 1 up to 2, then alternate 1
        // and 2 (ties toward the lower index) until they reach 5.
        assert_eq!(lb.assign_batch(6, &loads), vec![1, 1, 1, 2, 1, 2]);
    }

    #[test]
    fn power_headroom_steers_away_from_capped_servers() {
        // Server 0 is pinned at its floor (no watts above min → zero
        // predicted performance); servers 1 and 2 run at full demand.
        let loads = vec![
            load(100.0, 40.0, 40.0, 0),
            load(100.0, 40.0, 100.0, 0),
            load(100.0, 40.0, 100.0, 0),
        ];
        let mut lb = LoadBalancer::new(BalancePolicy::PowerHeadroom);
        let assign = lb.assign_batch(10, &loads);
        assert!(assign.iter().all(|&i| i != 0), "{assign:?}");
        let to_1 = assign.iter().filter(|&&i| i == 1).count();
        assert_eq!(to_1, 5, "equal weights must split evenly: {assign:?}");
    }

    #[test]
    fn power_headroom_without_telemetry_splits_evenly() {
        // First round: every demand is still zero. The fallback must not
        // dump the whole batch on server 0.
        let loads = vec![load(0.0, 0.0, 70.0, 0); 4];
        let mut lb = LoadBalancer::new(BalancePolicy::PowerHeadroom);
        let assign = lb.assign_batch(8, &loads);
        for i in 0..4 {
            assert_eq!(assign.iter().filter(|&&s| s == i).count(), 2, "{assign:?}");
        }
    }

    #[test]
    fn headroom_weights_follow_granted_watts() {
        // Same demand curve, different caps: the server with twice the
        // headroom fill gets measurably more of the batch.
        let loads = vec![load(100.0, 40.0, 55.0, 0), load(100.0, 40.0, 100.0, 0)];
        let mut lb = LoadBalancer::new(BalancePolicy::PowerHeadroom);
        let assign = lb.assign_batch(12, &loads);
        let to_0 = assign.iter().filter(|&&i| i == 0).count();
        let to_1 = assign.iter().filter(|&&i| i == 1).count();
        assert!(to_1 > to_0, "{assign:?}");
        assert!(to_0 > 0, "a throttled-but-alive server still gets traffic");
    }
}
