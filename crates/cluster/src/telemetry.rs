//! Struct-of-arrays storage for hot per-server telemetry.
//!
//! The barrier loop reads demand/min power and activity for every report
//! and feeds the whole fleet's telemetry to the cap split each barrier.
//! Keeping those fields in parallel column vectors (instead of scattered
//! per-server structs) keeps the scan cache-friendly at 100k servers, and
//! the per-column dirty bitmap lets the engine see at a glance how much of
//! the fleet actually moved since the last barrier.

use crate::coordinator::ServerDemand;

/// Hot per-server telemetry in struct-of-arrays layout, with a dirty
/// bitmap tracking which servers' telemetry changed (at the bit level)
/// since the last [`TelemetrySlab::clear_dirty`].
#[derive(Clone, Debug)]
pub struct TelemetrySlab {
    demand_w: Vec<f64>,
    min_w: Vec<f64>,
    active: Vec<bool>,
    dirty: Vec<u64>,
    dirty_count: usize,
}

impl TelemetrySlab {
    /// A slab for `n` servers, all initially inactive and clean.
    pub fn new(n: usize) -> TelemetrySlab {
        TelemetrySlab {
            demand_w: vec![0.0; n],
            min_w: vec![0.0; n],
            active: vec![false; n],
            dirty: vec![0; n.div_ceil(64)],
            dirty_count: 0,
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.demand_w.len()
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.demand_w.is_empty()
    }

    /// Server `i`'s telemetry as the coordinator-facing struct.
    pub fn demand(&self, i: usize) -> ServerDemand {
        ServerDemand {
            demand_w: self.demand_w[i],
            min_w: self.min_w[i],
            active: self.active[i],
        }
    }

    /// Materializes the whole slab as a `ServerDemand` vector (the shape
    /// the control plane's barrier API takes), reusing `out`.
    pub fn fill_demands(&self, out: &mut Vec<ServerDemand>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.demand(i));
        }
    }

    /// Records server `i`'s telemetry, marking it dirty if any field
    /// moved at the bit level.
    pub fn set(&mut self, i: usize, d: ServerDemand) {
        let moved = self.demand_w[i].to_bits() != d.demand_w.to_bits()
            || self.min_w[i].to_bits() != d.min_w.to_bits()
            || self.active[i] != d.active;
        self.demand_w[i] = d.demand_w;
        self.min_w[i] = d.min_w;
        self.active[i] = d.active;
        if moved {
            self.mark_dirty(i);
        }
    }

    /// Marks server `i` inactive (a quiesce or departure), preserving its
    /// last power columns like the AoS engine did.
    pub fn deactivate(&mut self, i: usize) {
        if self.active[i] {
            self.active[i] = false;
            self.mark_dirty(i);
        }
    }

    /// Whether server `i` moved since the last [`TelemetrySlab::clear_dirty`].
    pub fn dirty(&self, i: usize) -> bool {
        self.dirty[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Servers currently marked dirty.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Clears the dirty bitmap (call after a barrier consumed it).
    pub fn clear_dirty(&mut self) {
        for w in &mut self.dirty {
            *w = 0;
        }
        self.dirty_count = 0;
    }

    fn mark_dirty(&mut self, i: usize) {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        if self.dirty[w] & b == 0 {
            self.dirty[w] |= b;
            self.dirty_count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_round_trips_and_tracks_dirty_bits() {
        let mut slab = TelemetrySlab::new(130);
        assert_eq!(slab.len(), 130);
        assert_eq!(slab.dirty_count(), 0);
        let d = ServerDemand {
            demand_w: 120.5,
            min_w: 40.25,
            active: true,
        };
        slab.set(7, d);
        slab.set(129, d);
        assert_eq!(slab.demand(7).demand_w.to_bits(), d.demand_w.to_bits());
        assert!(slab.dirty(7) && slab.dirty(129) && !slab.dirty(8));
        assert_eq!(slab.dirty_count(), 2);

        // Re-setting identical telemetry is clean.
        slab.clear_dirty();
        slab.set(7, d);
        assert_eq!(slab.dirty_count(), 0);

        // A bit-level move is dirty even if tiny.
        slab.set(
            7,
            ServerDemand {
                demand_w: 120.5 + 1e-12,
                ..d
            },
        );
        assert_eq!(slab.dirty_count(), 1);

        // Deactivation dirties once, then is idempotent.
        slab.clear_dirty();
        slab.deactivate(129);
        slab.deactivate(129);
        assert!(!slab.demand(129).active);
        assert_eq!(slab.dirty_count(), 1);

        let mut out = Vec::new();
        slab.fill_demands(&mut out);
        assert_eq!(out.len(), 130);
        assert!(out[7].active && !out[129].active);
    }
}
