//! The message-passing control plane: coordinator ↔ server RPC over a
//! simulated network, with leases, liveness tracking, and failover.
//!
//! Historically the coordinator read telemetry and wrote caps by direct
//! function call — an implicit perfect network. This module makes every
//! exchange an explicit typed message ([`CtrlMsg`]) over a
//! [`netsim::MsgPlane`], so the control loop tolerates (and experiments can
//! measure) delay, loss, duplication, and partitions:
//!
//! * **Telemetry** — each server reports its [`ServerDemand`] to the leader
//!   it last heard from, every barrier it is awake. Telemetry doubles as the
//!   server's liveness signal: a leader that hasn't heard from a server for
//!   `suspect_after` barriers stops granting to it (its share is
//!   redistributed once its lease expires, never before).
//! * **Cap grants are leases** — a [`CapGrant`] carries `(term, seq)`
//!   ordering, a cap in watts, and an expiry barrier. A server that misses
//!   renewals keeps running on its last-applied cap until the lease
//!   expires, then falls to the safe floor cap ([`RpcConfig::floor_cap_w`],
//!   default 0 W, which drives the local policy to its minimum-power plan).
//!   Servers ack every applied grant; the coordinator's [`LeaseLedger`]
//!   counts a server's watts as reserved until the grant that lowered them
//!   is acked or the lease expires, so the fleet's in-force caps never
//!   exceed the budget — conservation by conservative accounting, not by
//!   assuming delivery.
//! * **Heartbeats and failover** — with [`RpcConfig::failover`] enabled a
//!   standby coordinator mirrors the leader's state from per-barrier
//!   heartbeats. A coordinator that hasn't heard a live leader for
//!   `heartbeat_timeout` barriers elects itself at the next term **of its
//!   own parity** (primary takes even terms, standby odd), so two
//!   coordinators can never elect the same term — the election is
//!   deterministic and tie-free by construction. Servers follow the highest
//!   term they have applied and nack lower-term grants with their current
//!   term, which makes a healed stale leader adopt the new term and step
//!   down — immediately, mid-batch: the first higher-term nack aborts the
//!   round's remaining grants.
//! * **The acked-state handoff** — replication is *acknowledged*: every
//!   heartbeat carries a sequence number, the follower answers each
//!   adoption with a [`CtrlMsg::HeartbeatAck`], and the leader tracks the
//!   highest acked sequence as its **replication watermark**. Watts freed
//!   at the leader (a decrease acked by a server, or a lease expiring) are
//!   not returned to the free pool immediately — the freeing entry is
//!   *pinned* in the ledger, tagged with the heartbeat sequence current at
//!   release time, and only dropped once the watermark proves the follower
//!   adopted a snapshot in which the entry had already left `outstanding`.
//!   The leader therefore never re-spends watts its follower might still
//!   believe in force. On takeover the new leader rebuilds the ledger
//!   **conservatively**: for every server it replaces its (possibly stale)
//!   entries with one synthetic reservation at the maximum outstanding cap
//!   it replicated — the worst case over the un-acked suffix it may never
//!   have seen — expiring one full quarantine later, and it quarantines
//!   the free pool for `max link latency + jitter + lease` rounds (see
//!   [`RpcConfig::quarantine_rounds`]), so late-arriving grants from the
//!   dead leader can never land outside the reserved window. Conservation
//!   — in-force caps ≤ budget + expired-lease floors — thereby holds
//!   through failover under any loss/dup/latency/partition schedule, at
//!   the price that a leader cut off from its follower stops re-spending
//!   freed watts until contact resumes (frozen, never over-committed).
//!
//! # Loopback equivalence
//!
//! Under the default [`RpcConfig`] (zero latency, zero loss, no failover)
//! every message sent at a barrier is delivered and answered within that
//! same barrier, the reconcile loop below converges to the exact
//! (bit-identical) caps of the direct [`split_caps_active`] /
//! [`BudgetTree`](crate::BudgetTree) computation, and both engines
//! reproduce their pre-plane digests exactly — proven in
//! `tests/engine_equivalence.rs`. With failover on, the leader also
//! heartbeats *between* reconcile passes, so at zero latency each pass's
//! freed watts are confirmed by the standby within the barrier and the
//! caps still match the direct computation bit for bit.

use crate::coordinator::ServerDemand;
use crate::engine::{split_caps_active, CapCache, EngineKind};
use crate::hiercache::HierSplitter;
use crate::ClusterConfig;
use netsim::{Envelope, LinkConfig, MsgPlane, NodeId, PlaneStats};
use simkernel::Ps;

/// One scheduled network partition: the named nodes are cut off from the
/// rest of the plane for barriers `from_round <= r < to_round`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// First barrier (inclusive) the cut is in effect.
    pub from_round: u64,
    /// First barrier (exclusive) after the cut heals.
    pub to_round: u64,
    /// Server names, plus the special names `primary` and `standby` for
    /// the coordinators.
    pub nodes: Vec<String>,
}

/// Control-plane (RPC) configuration for a cluster run. The default is the
/// **loopback** plane: zero latency, zero jitter, no loss, no duplication,
/// no partitions, no standby — under which the simulation is bit-identical
/// to the pre-plane direct-call coordinator.
#[derive(Clone, Debug)]
pub struct RpcConfig {
    /// One-way message latency, microseconds (rounded up to whole
    /// coordination rounds; sub-round latency still costs one round,
    /// because messages only land at barriers).
    pub latency_us: f64,
    /// Maximum uniform extra delay per message, microseconds (quantized to
    /// whole rounds, rounding up).
    pub jitter_us: f64,
    /// Probability in `[0, 1]` that any message is silently dropped.
    pub loss: f64,
    /// Probability in `[0, 1]` that any message is delivered twice.
    pub duplicate: f64,
    /// Seed for the plane's message-fate randomness (loss, jitter,
    /// duplication draws). Independent of every workload seed.
    pub seed: u64,
    /// Lease length in coordination rounds: a grant applied at round `r`
    /// is in force through round `r + lease_rounds - 1`. Must exceed the
    /// resolved latency + jitter (in rounds) or grants would expire in
    /// flight.
    pub lease_rounds: u64,
    /// The safe cap a server falls to when its lease expires unrenewed,
    /// watts. The default 0 W drives [`CappedPolicy`](crate::CappedPolicy)
    /// to its minimum-power plan.
    pub floor_cap_w: f64,
    /// Run a standby coordinator that mirrors the leader via heartbeats
    /// and takes over by deterministic election when the leader goes
    /// silent.
    pub failover: bool,
    /// Barriers of leader silence before a coordinator elects itself
    /// (auto-raised to cover the resolved latency).
    pub heartbeat_timeout_rounds: u64,
    /// Barriers a freshly elected leader quarantines the free pool —
    /// granting at most what its reconstructed ledger reserves — before
    /// funding increases. `0` (default) derives the safe bound
    /// automatically: the plane's maximum one-way latency + jitter (in
    /// rounds) + the lease length, which outlasts every grant the dead
    /// leader could have issued, including those still in flight. Explicit
    /// values below that bound are raised to it.
    pub quarantine_rounds: u64,
    /// Barriers of telemetry silence before the leader suspects a server
    /// and stops granting to it. `0` (default) picks
    /// `max(5, 2·(latency + jitter in rounds) + 1)` automatically.
    pub suspect_after_rounds: u64,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Record every applied grant in
    /// [`ControlStats::grant_log`] — memory proportional to
    /// rounds × servers, so off by default; the invariant tests turn it
    /// on.
    pub audit: bool,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            latency_us: 0.0,
            jitter_us: 0.0,
            loss: 0.0,
            duplicate: 0.0,
            seed: 0xC0CA,
            lease_rounds: 8,
            floor_cap_w: 0.0,
            failover: false,
            heartbeat_timeout_rounds: 3,
            quarantine_rounds: 0,
            suspect_after_rounds: 0,
            partitions: Vec::new(),
            audit: false,
        }
    }
}

impl RpcConfig {
    /// Whether this is the perfect loopback plane (no delay, no loss, no
    /// duplication, no partitions).
    pub fn is_loopback(&self) -> bool {
        self.latency_us == 0.0
            && self.jitter_us == 0.0
            && self.loss == 0.0
            && self.duplicate == 0.0
            && self.partitions.is_empty()
    }

    /// Validates ranges and partition names against the fleet.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first problem found.
    pub fn validate(&self, server_names: &[&str]) -> Result<(), String> {
        for (label, v) in [
            ("rpc latency", self.latency_us),
            ("rpc jitter", self.jitter_us),
        ] {
            if v.is_nan() || !v.is_finite() || v < 0.0 {
                return Err(format!("{label} must be finite and >= 0 µs, got {v}"));
            }
        }
        for (label, p) in [("rpc loss", self.loss), ("rpc duplication", self.duplicate)] {
            if p.is_nan() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{label} must be in [0, 1], got {p}"));
            }
        }
        if self.lease_rounds == 0 {
            return Err("lease must last at least 1 round".into());
        }
        if self.heartbeat_timeout_rounds == 0 {
            return Err("heartbeat timeout must be at least 1 round".into());
        }
        if self.floor_cap_w.is_nan() || self.floor_cap_w < 0.0 {
            return Err(format!(
                "floor cap {} must be finite and non-negative",
                self.floor_cap_w
            ));
        }
        for p in &self.partitions {
            if p.from_round >= p.to_round {
                return Err(format!(
                    "partition rounds {}..{} are empty (from must be < to)",
                    p.from_round, p.to_round
                ));
            }
            if p.nodes.is_empty() {
                return Err("partition lists no nodes".into());
            }
            for n in &p.nodes {
                let known = n == "primary" || n == "standby" || server_names.iter().any(|s| s == n);
                if !known {
                    return Err(format!(
                        "partition names unknown node '{n}' (server name, 'primary', or 'standby')"
                    ));
                }
                if n == "standby" && !self.failover {
                    return Err("partition names 'standby' but failover is disabled".into());
                }
            }
        }
        Ok(())
    }

    /// Converts microsecond knobs to whole coordination rounds given the
    /// round length, and applies the auto defaults.
    ///
    /// # Errors
    ///
    /// Rejects a lease shorter than the resolved latency + jitter: such
    /// grants would expire in flight and the fleet could never hold a cap.
    pub fn resolve(&self, round_s: f64) -> Result<ResolvedRpc, String> {
        assert!(round_s > 0.0, "round length must be positive");
        let to_rounds = |us: f64| ((us * 1e-6) / round_s).ceil() as u64;
        let latency = to_rounds(self.latency_us);
        let jitter = to_rounds(self.jitter_us);
        if latency + jitter >= self.lease_rounds {
            return Err(format!(
                "lease of {} rounds does not outlast the rpc delay of up to {} rounds \
                 ({} + {} µs at {:.1} µs/round); grants would expire in flight — raise \
                 --lease-rounds or lower the latency",
                self.lease_rounds,
                latency + jitter,
                self.latency_us,
                self.jitter_us,
                round_s * 1e6
            ));
        }
        let suspect_after = if self.suspect_after_rounds == 0 {
            (2 * (latency + jitter) + 1).max(5)
        } else {
            self.suspect_after_rounds
        };
        let heartbeat_timeout = self.heartbeat_timeout_rounds.max(latency + jitter + 1);
        let quarantine = self
            .quarantine_rounds
            .max(latency + jitter + self.lease_rounds);
        Ok(ResolvedRpc {
            latency_rounds: latency,
            jitter_rounds: jitter,
            loss: self.loss,
            duplicate: self.duplicate,
            seed: self.seed,
            lease_rounds: self.lease_rounds,
            floor_cap_w: self.floor_cap_w,
            failover: self.failover,
            heartbeat_timeout,
            quarantine,
            suspect_after,
            audit: self.audit,
        })
    }
}

/// [`RpcConfig`] with every time knob converted to whole coordination
/// rounds (the plane's clock: 1 tick = 1 barrier).
#[derive(Clone, Copy, Debug)]
pub struct ResolvedRpc {
    /// One-way latency in rounds.
    pub latency_rounds: u64,
    /// Maximum uniform extra delay in rounds.
    pub jitter_rounds: u64,
    /// Drop probability.
    pub loss: f64,
    /// Duplication probability.
    pub duplicate: f64,
    /// Plane seed.
    pub seed: u64,
    /// Lease length in rounds.
    pub lease_rounds: u64,
    /// Expired-lease floor cap, watts.
    pub floor_cap_w: f64,
    /// Standby coordinator enabled.
    pub failover: bool,
    /// Resolved leader-silence threshold, rounds.
    pub heartbeat_timeout: u64,
    /// Resolved post-takeover quarantine length, rounds (at least
    /// latency + jitter + lease).
    pub quarantine: u64,
    /// Resolved server-silence threshold, rounds.
    pub suspect_after: u64,
    /// Grant auditing enabled.
    pub audit: bool,
}

/// Why a server refused a grant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NackReason {
    /// The grant's `(term, seq)` is not newer than what the server already
    /// applied.
    Stale,
    /// The grant arrived at or after its own expiry barrier.
    Expired,
}

/// A cap lease offered to one server.
#[derive(Clone, Copy, Debug)]
pub struct CapGrant {
    /// Target server index.
    pub server: usize,
    /// Issuing leader's term.
    pub term: u64,
    /// Issue sequence within the coordinator (totally ordered with `term`,
    /// lexicographically).
    pub seq: u64,
    /// The cap, watts.
    pub cap_w: f64,
    /// First barrier at which this lease is no longer in force.
    pub expires: u64,
}

/// A coordinator's replicated state, carried by heartbeats.
#[derive(Clone, Debug)]
pub struct ReplState {
    /// Last known telemetry per server.
    pub view: Vec<ServerDemand>,
    /// Barrier each view entry was reported at.
    pub view_round: Vec<u64>,
    /// The lease ledger.
    pub ledger: LeaseLedger,
    /// Next grant sequence number.
    pub next_seq: u64,
}

/// Every message that crosses the control plane.
#[derive(Clone, Debug)]
pub enum CtrlMsg {
    /// Server → leader: telemetry for one barrier (also the server's
    /// liveness signal).
    Telemetry {
        /// Reporting server index.
        server: usize,
        /// Barrier the report describes.
        round: u64,
        /// The telemetry.
        demand: ServerDemand,
    },
    /// Leader → server: a cap lease.
    Grant(CapGrant),
    /// Server → leader: grant applied; carries the server's now-current
    /// `(term, seq)` so re-acks of duplicates are idempotent.
    Ack {
        /// Acking server index.
        server: usize,
        /// The server's current applied term.
        term: u64,
        /// The server's current applied sequence.
        seq: u64,
    },
    /// Server → leader: grant refused; carries the server's current term
    /// so a stale leader can fence itself.
    Nack {
        /// Refusing server index.
        server: usize,
        /// The server's current applied term.
        term: u64,
        /// Why.
        reason: NackReason,
    },
    /// Leader → standby: state replication and liveness.
    Heartbeat(Box<Heartbeat>),
    /// Standby → leader: replication acknowledgement. The sender has
    /// adopted the leader's heartbeat `seq`, so every ledger release that
    /// snapshot reflected is confirmed replicated — the leader advances
    /// its watermark and may re-spend those watts.
    HeartbeatAck {
        /// Acking coordinator's current term.
        term: u64,
        /// The highest heartbeat sequence the sender has adopted.
        seq: u64,
    },
}

/// Heartbeat payload (boxed to keep [`CtrlMsg`] small).
#[derive(Clone, Debug)]
pub struct Heartbeat {
    /// Sender's term.
    pub term: u64,
    /// Sender's heartbeat sequence: monotone per coordinator, echoed by
    /// [`CtrlMsg::HeartbeatAck`]. Followers adopt only strictly newer
    /// sequences within a term, so jitter-reordered heartbeats can never
    /// roll replicated state backwards.
    pub seq: u64,
    /// Barrier it was sent at.
    pub round: u64,
    /// Snapshot of the sender's replicated state.
    pub state: ReplState,
}

/// What happened when a server examined a grant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrantOutcome {
    /// Applied: the grant is newer than the current lease and not yet
    /// expired.
    Applied,
    /// Refused: `(term, seq)` not newer than the current lease.
    Stale,
    /// Refused: the grant arrived at or after its own expiry barrier — a
    /// lease that could never be in force must not resurrect a cap.
    Expired,
}

/// The server-side lease state machine: grant → renew → expire → floor.
///
/// A lease applied at barrier `r` with expiry `e` is in force for barriers
/// `r <= round < e`; outside it the server runs at the floor cap. Grants
/// are ordered by `(term, seq)` lexicographically and only strictly newer
/// grants apply, so duplicated or reordered renewals are harmless. The
/// clock used for expiry is the *server's* barrier clock — renewals from a
/// skew-free coordinator simply keep `expires` ahead of `round`; the
/// property tests skew the two clocks deliberately.
#[derive(Clone, Debug)]
pub struct LeaseClient {
    term: u64,
    seq: u64,
    cap_w: f64,
    expires: u64,
    floor_w: f64,
    leader: NodeId,
}

impl LeaseClient {
    /// A client holding an initial lease `(term 0, seq 0)` of `cap_w`
    /// expiring at `expires`, following `leader`.
    pub fn new(cap_w: f64, expires: u64, floor_w: f64, leader: NodeId) -> LeaseClient {
        LeaseClient {
            term: 0,
            seq: 0,
            cap_w,
            expires,
            floor_w,
            leader,
        }
    }

    /// Examines `grant` (delivered from `from`) at local barrier `now`.
    /// On [`GrantOutcome::Applied`] the lease is replaced and the server
    /// follows `from` as its leader.
    pub fn apply(&mut self, now: u64, grant: &CapGrant, from: NodeId) -> GrantOutcome {
        if (grant.term, grant.seq) <= (self.term, self.seq) {
            return GrantOutcome::Stale;
        }
        if grant.expires <= now {
            return GrantOutcome::Expired;
        }
        self.term = grant.term;
        self.seq = grant.seq;
        self.cap_w = grant.cap_w;
        self.expires = grant.expires;
        self.leader = from;
        GrantOutcome::Applied
    }

    /// The cap in force at `now`: the leased cap while the lease lives,
    /// the floor after it expires.
    pub fn effective_cap(&self, now: u64) -> f64 {
        if now < self.expires {
            self.cap_w
        } else {
            self.floor_w
        }
    }

    /// Whether the lease has expired at `now`.
    pub fn on_floor(&self, now: u64) -> bool {
        now >= self.expires
    }

    /// The leader this server currently reports to.
    pub fn leader(&self) -> NodeId {
        self.leader
    }

    /// The `(term, seq)` of the applied lease.
    pub fn granted(&self) -> (u64, u64) {
        (self.term, self.seq)
    }

    /// The applied term (what lower-term grants are fenced against).
    pub fn term(&self) -> u64 {
        self.term
    }
}

/// One outstanding (sent, not yet superseded-and-acked, not yet expired)
/// grant in the coordinator's ledger.
#[derive(Clone, Copy, Debug)]
pub struct LeaseEntry {
    /// Issuing term.
    pub term: u64,
    /// Issue sequence.
    pub seq: u64,
    /// Granted cap, watts.
    pub cap_w: f64,
    /// First barrier the grant is no longer in force.
    pub expires: u64,
}

/// The coordinator's conservative accounting of watts that may be in force
/// somewhere in the fleet.
///
/// Every sent grant is an entry until it **expires** or until a **newer**
/// grant to the same server is acked (an ack of `(term, seq)` proves every
/// older grant is superseded at the server, so only entries at or above the
/// ack survive). A server's reserved watts are the *maximum* cap over its
/// surviving entries — the worst case over which of its grants is actually
/// in force — and the leader only funds cap increases from
/// `budget − Σ reserved`. Decreases therefore free watts only when acked
/// or expired, never on hope.
///
/// With failover enabled the leader uses the **deferred** release variants
/// ([`note_ack_deferred`](Self::note_ack_deferred) /
/// [`expire_deferred`](Self::expire_deferred)): a released entry is not
/// dropped but *pinned*, tagged with the heartbeat sequence current at
/// release time, and still counts as reserved. Only
/// [`release_confirmed`](Self::release_confirmed) — called when the
/// replication watermark proves the follower adopted a snapshot in which
/// the entry had already left `outstanding` — drops it. A takeover then
/// rebuilds via [`reconstruct`](Self::reconstruct): the maximum
/// *outstanding* cap per server becomes a synthetic reservation (pinned
/// entries are provably not in force — superseded-and-acked or expired on
/// the shared barrier clock — and are exactly what the old leader is
/// licensed to re-spend once confirmed, so they must not be re-reserved).
#[derive(Clone, Debug)]
pub struct LeaseLedger {
    outstanding: Vec<Vec<LeaseEntry>>,
    /// Released entries awaiting replication confirmation, tagged with the
    /// heartbeat sequence at release. Kept as an antichain in
    /// `(cap, tag)`: an entry is dropped when another pins at least as
    /// many watts at least as long — observable state is identical.
    pinned: Vec<Vec<(u64, LeaseEntry)>>,
    acked: Vec<(u64, u64)>,
    last_sent_cap: Vec<f64>,
}

impl LeaseLedger {
    /// A ledger bootstrapped to match the fleet's initial state: every
    /// server holds an acked `(term 0, seq 0)` lease of `initial_cap_w`
    /// expiring at `expires`.
    pub fn new(n: usize, initial_cap_w: f64, expires: u64) -> LeaseLedger {
        LeaseLedger {
            outstanding: (0..n)
                .map(|_| {
                    vec![LeaseEntry {
                        term: 0,
                        seq: 0,
                        cap_w: initial_cap_w,
                        expires,
                    }]
                })
                .collect(),
            pinned: vec![Vec::new(); n],
            acked: vec![(0, 0); n],
            last_sent_cap: vec![initial_cap_w; n],
        }
    }

    /// Drops every entry no longer in force at `round`. Returns how many
    /// expired.
    pub fn expire(&mut self, round: u64) -> u64 {
        let mut dropped = 0;
        for entries in &mut self.outstanding {
            let before = entries.len();
            entries.retain(|e| e.expires > round);
            dropped += (before - entries.len()) as u64;
        }
        dropped
    }

    /// [`expire`](Self::expire), deferred: expired entries are pinned
    /// under `tag` instead of dropped, so their watts stay reserved until
    /// the follower confirms having seen the release. Returns how many
    /// expired. Pinned entries never re-expire — expiry is what proves
    /// they are not in force, so only confirmation may drop them.
    pub fn expire_deferred(&mut self, round: u64, tag: u64) -> u64 {
        let mut expired = 0;
        for i in 0..self.outstanding.len() {
            let mut kept = Vec::with_capacity(self.outstanding[i].len());
            for e in std::mem::take(&mut self.outstanding[i]) {
                if e.expires > round {
                    kept.push(e);
                } else {
                    expired += 1;
                    Self::pin(&mut self.pinned[i], tag, e);
                }
            }
            self.outstanding[i] = kept;
        }
        expired
    }

    /// Records a sent grant.
    pub fn note_sent(&mut self, server: usize, entry: LeaseEntry) {
        self.last_sent_cap[server] = entry.cap_w;
        self.outstanding[server].push(entry);
    }

    /// Processes an ack: the server's current lease is `(term, seq)`, so
    /// every strictly older entry is superseded and released.
    pub fn note_ack(&mut self, server: usize, term: u64, seq: u64) {
        if server >= self.acked.len() || (term, seq) <= self.acked[server] {
            return;
        }
        self.acked[server] = (term, seq);
        self.outstanding[server].retain(|e| (e.term, e.seq) >= (term, seq));
    }

    /// [`note_ack`](Self::note_ack), deferred: superseded entries are
    /// pinned under `tag` instead of dropped.
    pub fn note_ack_deferred(&mut self, server: usize, term: u64, seq: u64, tag: u64) {
        if server >= self.acked.len() || (term, seq) <= self.acked[server] {
            return;
        }
        self.acked[server] = (term, seq);
        let mut kept = Vec::with_capacity(self.outstanding[server].len());
        for e in std::mem::take(&mut self.outstanding[server]) {
            if (e.term, e.seq) >= (term, seq) {
                kept.push(e);
            } else {
                Self::pin(&mut self.pinned[server], tag, e);
            }
        }
        self.outstanding[server] = kept;
    }

    fn pin(pinned: &mut Vec<(u64, LeaseEntry)>, tag: u64, entry: LeaseEntry) {
        // Antichain pruning: `a` dominates `b` when it reserves at least
        // as many watts (cap) at least as long (tag) — max-over-pinned is
        // unchanged at every future watermark, so dominated entries are
        // dead weight.
        if pinned
            .iter()
            .any(|(t, e)| *t >= tag && e.cap_w >= entry.cap_w)
        {
            return;
        }
        pinned.retain(|(t, e)| *t > tag || e.cap_w > entry.cap_w);
        pinned.push((tag, entry));
    }

    /// Drops every pinned entry whose release the follower has confirmed:
    /// `tag < watermark` means a heartbeat sent *after* the release was
    /// adopted, so the follower's snapshot no longer counts the entry as
    /// outstanding and a takeover would not re-reserve it.
    pub fn release_confirmed(&mut self, watermark: u64) {
        for pinned in &mut self.pinned {
            pinned.retain(|(tag, _)| *tag >= watermark);
        }
    }

    /// Rebuilds the ledger for a takeover at `round`: each server's
    /// entries are replaced by one synthetic reservation at its maximum
    /// **outstanding** cap — the worst case over the un-acked suffix the
    /// dead leader may have granted unseen — held until `expires` (one
    /// full quarantine out, so it outlives every lease the dead leader
    /// could have issued). The synthetic carries `(term, seq 0)`: the new
    /// leader's own grants start at seq 1, so a server ack of any fresh
    /// grant releases it, while stragglers acking the dead leader's terms
    /// cannot. Inherited pinned entries are dropped — they are provably
    /// not in force, and their tags belong to the dead leader's heartbeat
    /// counter.
    pub fn reconstruct(&mut self, term: u64, expires: u64) {
        for i in 0..self.outstanding.len() {
            let worst = self.outstanding[i]
                .iter()
                .map(|e| e.cap_w)
                .fold(0.0, f64::max);
            self.outstanding[i].clear();
            self.pinned[i].clear();
            if worst > 0.0 {
                self.outstanding[i].push(LeaseEntry {
                    term,
                    seq: 0,
                    cap_w: worst,
                    expires,
                });
            }
        }
    }

    /// Watts that may be in force at `server`: the max over its surviving
    /// entries, pinned included (0 when none).
    pub fn reserved_w(&self, server: usize) -> f64 {
        self.outstanding[server]
            .iter()
            .map(|e| e.cap_w)
            .chain(self.pinned[server].iter().map(|(_, e)| e.cap_w))
            .fold(0.0, f64::max)
    }

    /// Fleet-wide reserved watts.
    pub fn total_reserved(&self) -> f64 {
        (0..self.outstanding.len())
            .map(|i| self.reserved_w(i))
            .sum()
    }

    /// The cap of the most recently sent grant to `server` (used to avoid
    /// re-sending release-to-zero grants forever).
    pub fn last_sent_cap(&self, server: usize) -> f64 {
        self.last_sent_cap[server]
    }
}

/// One applied grant, recorded when [`RpcConfig::audit`] is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GrantRecord {
    /// Barrier the server applied it.
    pub round: u64,
    /// Applying server.
    pub server: usize,
    /// Grant term.
    pub term: u64,
    /// Grant sequence.
    pub seq: u64,
    /// Granted cap, as raw f64 bits (exact).
    pub cap_bits: u64,
}

/// Counters describing one run's control-plane behaviour. Not part of
/// [`ClusterResult::digest`](crate::ClusterResult::digest) — the digest
/// pins physics, these describe the transport.
#[derive(Clone, Debug, Default)]
pub struct ControlStats {
    /// Raw transport counters.
    pub plane: PlaneStats,
    /// Grants sent by leaders.
    pub grants_sent: u64,
    /// Grants applied by servers.
    pub grants_applied: u64,
    /// Grants refused as stale (duplicates, reorders, fenced terms).
    pub grants_stale: u64,
    /// Grants refused as expired-on-arrival.
    pub grants_expired: u64,
    /// Acks processed by coordinators.
    pub acks: u64,
    /// Nacks processed by coordinators.
    pub nacks: u64,
    /// Ledger entries that expired unacked.
    pub lease_expirations: u64,
    /// Server-barriers spent on the expired-lease floor cap (running
    /// servers only).
    pub floor_rounds: u64,
    /// Server-barriers spent suspected by the acting leader.
    pub suspect_rounds: u64,
    /// Self-elections.
    pub elections: u64,
    /// Leaders that stepped down after seeing a higher term.
    pub step_downs: u64,
    /// Final term per coordinator (primary first).
    pub terms: Vec<u64>,
    /// Messages still in flight when the run ended.
    pub in_flight_at_end: usize,
    /// Applied grants, when auditing ([`RpcConfig::audit`]) is on.
    pub grant_log: Vec<GrantRecord>,
}

/// One coordinator (primary or standby).
#[derive(Clone, Debug)]
struct Coordinator {
    node: NodeId,
    peer: Option<NodeId>,
    term: u64,
    is_leader: bool,
    view: Vec<ServerDemand>,
    view_round: Vec<u64>,
    suspected: Vec<bool>,
    ledger: LeaseLedger,
    cache: CapCache,
    /// Compiled hierarchical splitter, when the config has a topology:
    /// replays clean subtrees per-node instead of re-walking the whole
    /// tree every cache miss. At the flat cache's zero dead-band its
    /// output is bit-identical to `BudgetTree::split`.
    hier: Option<HierSplitter>,
    /// Per-barrier scratch: the view with suspected servers masked
    /// inactive (kept allocated across barriers).
    live: Vec<ServerDemand>,
    next_seq: u64,
    last_peer_heard: u64,
    quarantine_until: u64,
    granted_this_barrier: Vec<Option<f64>>,
    /// Heartbeats this coordinator has sent (the next heartbeat's seq is
    /// `hb_seq + 1`); doubles as the release tag for deferred ledger
    /// frees.
    hb_seq: u64,
    /// Highest own-term heartbeat seq the peer has acked: releases tagged
    /// strictly below it are confirmed replicated.
    repl_watermark: u64,
    /// Highest heartbeat seq adopted from the current term's leader.
    last_adopted_hb: u64,
}

impl Coordinator {
    #[allow(clippy::too_many_arguments)]
    fn new(
        node: NodeId,
        peer: Option<NodeId>,
        is_leader: bool,
        n: usize,
        initial_cap_w: f64,
        lease_rounds: u64,
        dead_band_w: f64,
        hier: Option<HierSplitter>,
    ) -> Coordinator {
        Coordinator {
            node,
            peer,
            term: 0,
            is_leader,
            view: vec![
                ServerDemand {
                    demand_w: 0.0,
                    min_w: 0.0,
                    active: true,
                };
                n
            ],
            view_round: vec![0; n],
            suspected: vec![false; n],
            ledger: LeaseLedger::new(n, initial_cap_w, lease_rounds),
            cache: CapCache::new(dead_band_w),
            hier,
            live: Vec::with_capacity(n),
            next_seq: 1,
            last_peer_heard: 0,
            quarantine_until: 0,
            granted_this_barrier: vec![None; n],
            hb_seq: 0,
            repl_watermark: 0,
            last_adopted_hb: 0,
        }
    }

    fn repl_state(&self) -> ReplState {
        ReplState {
            view: self.view.clone(),
            view_round: self.view_round.clone(),
            ledger: self.ledger.clone(),
            next_seq: self.next_seq,
        }
    }

    fn adopt(&mut self, hb: Heartbeat) {
        self.term = hb.term;
        self.is_leader = false;
        self.last_adopted_hb = hb.seq;
        self.view = hb.state.view;
        self.view_round = hb.state.view_round;
        self.ledger = hb.state.ledger;
        self.next_seq = hb.state.next_seq;
        self.cache.invalidate();
        if let Some(h) = &mut self.hier {
            h.invalidate();
        }
    }
}

/// The control plane an engine drives: the message plane, the
/// coordinator(s), and one [`LeaseClient`] per server. Engines call
/// [`ControlPlane::barrier`] once per coordination round with the
/// telemetry that round produced and apply the returned effective caps.
pub struct ControlPlane {
    plane: MsgPlane<CtrlMsg>,
    coords: Vec<Coordinator>,
    leases: Vec<LeaseClient>,
    n: usize,
    rpc: ResolvedRpc,
    budget: f64,
    partitions: Vec<(u64, u64, Vec<usize>)>,
    stats: ControlStats,
    /// Post-takeover quarantine, rounds: the resolved knob raised to the
    /// plane's own worst-case delay + lease (authoritative even if links
    /// are ever configured per-pair).
    quarantine: u64,
}

impl ControlPlane {
    /// Builds the plane for a validated [`ClusterConfig`]. Servers are
    /// nodes `0..n`, the primary coordinator is node `n`, the standby
    /// (when failover is on) node `n + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the config's RPC section fails validation — validate the
    /// [`ClusterConfig`] first.
    pub fn new(config: &ClusterConfig) -> ControlPlane {
        let n = config.servers.len();
        let names: Vec<&str> = config.servers.iter().map(|s| s.name.as_str()).collect();
        config
            .rpc
            .validate(&names)
            .expect("invalid rpc config; ClusterConfig::validate reports this cleanly");
        let rpc = config
            .rpc
            .resolve(config.round_s())
            .expect("unresolvable rpc config; ClusterConfig::validate reports this cleanly");
        let coords_n = if rpc.failover { 2 } else { 1 };
        let link = LinkConfig {
            latency: Ps::new(rpc.latency_rounds),
            jitter: Ps::new(rpc.jitter_rounds),
            loss: rpc.loss,
            duplicate: rpc.duplicate,
        };
        let plane = MsgPlane::new(n + coords_n, link, rpc.seed);
        let primary = NodeId(n);
        let standby = NodeId(n + 1);
        let initial = config.global_cap_w / n as f64;
        // The round engine recomputes every barrier today; pinning its
        // coordinator cache to a zero dead-band keeps any replay
        // bit-identical to that recompute. The event engine keeps its
        // configured dead-band semantics.
        let dead_band = match config.engine {
            EngineKind::Round => 0.0,
            EngineKind::Event => config.dead_band_w,
        };
        // Hierarchical runs compile the tree once; every coordinator gets
        // its own (initially cold) per-node replay cache over the shared
        // compiled structure.
        let hier = config
            .topology
            .as_ref()
            .map(|t| HierSplitter::compile(t, &names, dead_band));
        let coords = (0..coords_n)
            .map(|c| {
                let (node, peer) = if c == 0 {
                    (primary, rpc.failover.then_some(standby))
                } else {
                    (standby, Some(primary))
                };
                Coordinator::new(
                    node,
                    peer,
                    c == 0,
                    n,
                    initial,
                    rpc.lease_rounds,
                    dead_band,
                    hier.clone(),
                )
            })
            .collect();
        let leases = (0..n)
            .map(|_| LeaseClient::new(initial, rpc.lease_rounds, rpc.floor_cap_w, primary))
            .collect();
        let name_to_node = |name: &str| -> usize {
            match name {
                "primary" => n,
                "standby" => n + 1,
                _ => names
                    .iter()
                    .position(|s| *s == name)
                    .expect("validated partition name"),
            }
        };
        let partitions = config
            .rpc
            .partitions
            .iter()
            .map(|p| {
                (
                    p.from_round,
                    p.to_round,
                    p.nodes.iter().map(|s| name_to_node(s)).collect(),
                )
            })
            .collect();
        let quarantine = rpc
            .quarantine
            .max(plane.max_delay().as_ps() + rpc.lease_rounds);
        ControlPlane {
            plane,
            coords,
            leases,
            n,
            rpc,
            budget: config.global_cap_w,
            partitions,
            stats: ControlStats::default(),
            quarantine,
        }
    }

    /// Runs one coordination barrier: telemetry out, election checks, the
    /// acting leader's reconcile/grant cycle, and returns the cap in force
    /// at every server for this round (the lease cap, or the floor once a
    /// lease has expired).
    ///
    /// `reports` carries `(server index, telemetry)` for every server with
    /// something to say this barrier — all servers under the round engine,
    /// the awake set plus one final inactive "goodbye" report per freshly
    /// finished server under the event engine.
    pub fn barrier(
        &mut self,
        round: u64,
        reports: &[(usize, ServerDemand)],
        config: &ClusterConfig,
        names: &[&str],
    ) -> Vec<f64> {
        let t = Ps::new(round);
        self.apply_partitions(round);

        // Servers report to whichever leader they last applied a grant
        // from. Telemetry doubles as the liveness heartbeat.
        for &(i, demand) in reports {
            let to = self.leases[i].leader();
            self.plane.send(
                t,
                NodeId(i),
                to,
                CtrlMsg::Telemetry {
                    server: i,
                    round,
                    demand,
                },
            );
        }
        self.pump(t, round);
        self.maybe_elect(round);
        for c in 0..self.coords.len() {
            if self.coords[c].is_leader {
                self.decide(c, round, t, config, names);
            }
        }

        let caps: Vec<f64> = (0..self.n)
            .map(|i| self.leases[i].effective_cap(round))
            .collect();
        for &(i, demand) in reports {
            if demand.active && self.leases[i].on_floor(round) {
                self.stats.floor_rounds += 1;
            }
        }
        caps
    }

    /// Recomputes every node's partition flag from the schedule.
    fn apply_partitions(&mut self, round: u64) {
        let nodes = self.plane.nodes();
        for node in 0..nodes {
            let cut = self.partitions.iter().any(|(from, to, members)| {
                (*from..*to).contains(&round) && members.contains(&node)
            });
            self.plane.set_partitioned(NodeId(node), cut);
        }
    }

    /// Delivers and dispatches every message due at `t`, repeatedly, until
    /// nothing more lands (zero-latency replies circulate to fixpoint
    /// within the barrier). Returns how many messages were dispatched.
    fn pump(&mut self, t: Ps, round: u64) -> u64 {
        let mut dispatched = 0;
        loop {
            let batch = self.plane.deliver_due(t);
            if batch.is_empty() {
                return dispatched;
            }
            dispatched += batch.len() as u64;
            for env in batch {
                self.dispatch(env, t, round);
            }
        }
    }

    fn dispatch(&mut self, env: Envelope<CtrlMsg>, t: Ps, round: u64) {
        let to = env.to;
        if to.0 < self.n {
            // Server side: only grants matter.
            let i = to.0;
            if let CtrlMsg::Grant(g) = env.msg {
                match self.leases[i].apply(round, &g, env.from) {
                    GrantOutcome::Applied => {
                        self.stats.grants_applied += 1;
                        if self.rpc.audit {
                            self.stats.grant_log.push(GrantRecord {
                                round,
                                server: i,
                                term: g.term,
                                seq: g.seq,
                                cap_bits: g.cap_w.to_bits(),
                            });
                        }
                        let (term, seq) = self.leases[i].granted();
                        self.plane.send(
                            t,
                            to,
                            env.from,
                            CtrlMsg::Ack {
                                server: i,
                                term,
                                seq,
                            },
                        );
                    }
                    GrantOutcome::Stale => {
                        self.stats.grants_stale += 1;
                        if g.term < self.leases[i].term() {
                            // A lower-term leader: fence it with our term.
                            self.plane.send(
                                t,
                                to,
                                env.from,
                                CtrlMsg::Nack {
                                    server: i,
                                    term: self.leases[i].term(),
                                    reason: NackReason::Stale,
                                },
                            );
                        } else {
                            // A duplicate or reordered renewal from the
                            // current leader: re-ack the current state so a
                            // lost ack still converges.
                            let (term, seq) = self.leases[i].granted();
                            self.plane.send(
                                t,
                                to,
                                env.from,
                                CtrlMsg::Ack {
                                    server: i,
                                    term,
                                    seq,
                                },
                            );
                        }
                    }
                    GrantOutcome::Expired => {
                        self.stats.grants_expired += 1;
                        self.plane.send(
                            t,
                            to,
                            env.from,
                            CtrlMsg::Nack {
                                server: i,
                                term: self.leases[i].term(),
                                reason: NackReason::Expired,
                            },
                        );
                    }
                }
            }
            return;
        }
        // Coordinator side.
        let Some(c) = self.coords.iter().position(|co| co.node == to) else {
            return;
        };
        match env.msg {
            CtrlMsg::Telemetry {
                server,
                round: r0,
                demand,
            } => {
                let co = &mut self.coords[c];
                if server < self.n && r0 >= co.view_round[server] {
                    co.view[server] = demand;
                    co.view_round[server] = r0;
                }
            }
            CtrlMsg::Ack { server, term, seq } => {
                self.stats.acks += 1;
                let co = &mut self.coords[c];
                if self.rpc.failover {
                    // Defer the release until the standby confirms having
                    // replicated it — tagged with the current heartbeat
                    // seq, droppable once the watermark passes it.
                    let tag = co.hb_seq;
                    co.ledger.note_ack_deferred(server, term, seq, tag);
                } else {
                    co.ledger.note_ack(server, term, seq);
                }
            }
            CtrlMsg::Nack { term, .. } => {
                self.stats.nacks += 1;
                let co = &mut self.coords[c];
                if term > co.term {
                    // A server already follows a newer leader: adopt the
                    // term and stop acting as leader. The new term's
                    // heartbeats start from scratch — nothing is adopted
                    // yet, so nothing may be re-acked.
                    co.term = term;
                    co.last_adopted_hb = 0;
                    if co.is_leader {
                        co.is_leader = false;
                        self.stats.step_downs += 1;
                    }
                }
            }
            CtrlMsg::Heartbeat(hb) => {
                let co = &mut self.coords[c];
                let newer = hb.term > co.term
                    || (hb.term == co.term && !co.is_leader && hb.seq > co.last_adopted_hb);
                if newer {
                    let was_leader = co.is_leader;
                    co.adopt(*hb);
                    co.last_peer_heard = round;
                    if was_leader {
                        self.stats.step_downs += 1;
                    }
                } else if hb.term == co.term && !co.is_leader {
                    // A duplicate or jitter-reordered heartbeat: never
                    // adopt (state must not roll backwards), but it is
                    // still leader liveness, and re-acking the newest
                    // adopted seq lets a lost ack converge.
                    co.last_peer_heard = round;
                } else {
                    return;
                }
                let co = &self.coords[c];
                let (term, seq) = (co.term, co.last_adopted_hb);
                self.plane
                    .send(t, co.node, env.from, CtrlMsg::HeartbeatAck { term, seq });
            }
            CtrlMsg::HeartbeatAck { term, seq } => {
                let co = &mut self.coords[c];
                if term == co.term && co.is_leader && seq > co.repl_watermark {
                    co.repl_watermark = seq;
                }
            }
            CtrlMsg::Grant(_) => {}
        }
    }

    /// A coordinator that hasn't heard a live leader for the timeout
    /// elects itself at the next term of its own parity (primary even,
    /// standby odd — terms are leader-unique by construction). The new
    /// leader reconstructs its ledger conservatively (one synthetic
    /// reservation per server at the worst replicated outstanding cap),
    /// quarantines the free pool for the full handoff horizon — max link
    /// latency + jitter + lease, so every grant the dead leader could
    /// have issued, even one still in flight, expires inside the reserved
    /// window — and resets its suspicion clocks so servers get a fresh
    /// window to reach it.
    fn maybe_elect(&mut self, round: u64) {
        if !self.rpc.failover {
            return;
        }
        let quarantine = self.quarantine;
        for (c, co) in self.coords.iter_mut().enumerate() {
            if co.is_leader || round <= co.last_peer_heard + self.rpc.heartbeat_timeout {
                continue;
            }
            let mut term = co.term + 1;
            if term % 2 != c as u64 {
                term += 1;
            }
            co.term = term;
            co.is_leader = true;
            co.quarantine_until = round + quarantine;
            co.ledger.reconstruct(term, round + quarantine);
            // The peer has confirmed nothing of this leadership yet.
            co.repl_watermark = 0;
            co.hb_seq = 0;
            co.last_adopted_hb = 0;
            for r in &mut co.view_round {
                *r = round;
            }
            for s in &mut co.suspected {
                *s = false;
            }
            co.cache.invalidate();
            if let Some(h) = &mut co.hier {
                h.invalidate();
            }
            self.stats.elections += 1;
        }
    }

    /// The acting leader's barrier work: expire the ledger, refresh
    /// suspicion, compute the desired split over the live view, then
    /// reconcile — send renewals/decreases, fund increases from the free
    /// pool, and repeat as zero-latency acks free more watts, until the
    /// barrier is quiet. With failover on, a heartbeat goes out between
    /// passes so the standby's acks confirm each pass's releases before
    /// the next pass spends them, and the first higher-term nack aborts
    /// the batch — a deposed leader stops granting immediately. Ends with
    /// a heartbeat to the peer.
    fn decide(&mut self, c: usize, round: u64, t: Ps, config: &ClusterConfig, names: &[&str]) {
        let n = self.n;
        let desired = {
            let co = &mut self.coords[c];
            self.stats.lease_expirations += if self.rpc.failover {
                let tag = co.hb_seq;
                co.ledger.expire_deferred(round, tag)
            } else {
                co.ledger.expire(round)
            };
            co.ledger.release_confirmed(co.repl_watermark);
            for i in 0..n {
                co.suspected[i] = co.view[i].active
                    && round.saturating_sub(co.view_round[i]) > self.rpc.suspect_after;
                if co.suspected[i] {
                    self.stats.suspect_rounds += 1;
                }
            }
            // The split runs over the live view: suspected servers are
            // treated as inactive (no fresh telemetry to honor), which also
            // invalidates any cached allocation via the activity flip.
            co.live.clear();
            co.live.extend_from_slice(&co.view);
            for (i, entry) in co.live.iter_mut().enumerate() {
                if co.suspected[i] {
                    entry.active = false;
                }
            }
            co.granted_this_barrier.clear();
            co.granted_this_barrier.resize(n, None);
            if let Some(caps) = co.cache.lookup(&co.live, None, None) {
                caps
            } else {
                // Hierarchical splits go through the compiled per-node
                // replay cache when present; flat splits compact to the
                // active set. Both are bit-identical to the plain tree /
                // full-slice split.
                let caps = match (&config.topology, co.hier.as_mut()) {
                    (Some(_), Some(h)) => {
                        h.split(config.global_cap_w, &co.live, None, config.quantum_w)
                    }
                    (Some(tree), None) => {
                        tree.split(config.global_cap_w, names, &co.live, None, config.quantum_w)
                    }
                    (None, _) => split_caps_active(
                        config.split,
                        config.global_cap_w,
                        &co.live,
                        config.quantum_w,
                    ),
                };
                co.cache.store(&co.live, None, None, &caps);
                caps
            }
        };

        // Reconcile to fixpoint: at zero latency each pass's acks free the
        // watts the next pass's increases need, and the loop converges to
        // the exact desired split; at positive latency the second pass
        // finds nothing new and the deficit waits for future barriers.
        let mut passes = 0;
        loop {
            let planned = self.reconcile_pass(c, round, &desired);
            let sent = planned.len() as u64;
            let mut delivered = 0;
            if self.rpc.failover {
                // Send one grant at a time, pumping between sends: a
                // higher-term nack delivered mid-batch deposes this
                // leader *before* the rest of the batch goes out.
                for (i, cap) in planned {
                    if !self.coords[c].is_leader {
                        break;
                    }
                    self.send_grant(c, i, cap, round, t);
                    delivered += self.pump(t, round);
                }
                if !self.coords[c].is_leader {
                    // Stepped down: no more passes, and the final
                    // heartbeat below belongs to the new leader, not us.
                    return;
                }
            } else {
                // Without a standby no higher term can exist, so the
                // batch order (all grants, then the pump) is safe — and
                // keeps the plane's message-fate sequence identical to
                // the pre-handoff protocol.
                for (i, cap) in planned {
                    self.send_grant(c, i, cap, round, t);
                }
                delivered = self.pump(t, round);
            }
            passes += 1;
            if (sent == 0 && delivered == 0) || passes > n + 4 {
                break;
            }
            // Mid-barrier replication: at zero latency the standby adopts
            // and acks within this pump, confirming the releases this
            // pass's acks pinned, so the next pass may spend them.
            self.heartbeat(c, t, round);
            let co = &mut self.coords[c];
            co.ledger.release_confirmed(co.repl_watermark);
        }

        self.heartbeat(c, t, round);
        let co = &mut self.coords[c];
        co.ledger.release_confirmed(co.repl_watermark);
    }

    /// Sends a state-replicating heartbeat to the peer (if any) and pumps
    /// so a zero-latency ack advances the watermark within the barrier.
    fn heartbeat(&mut self, c: usize, t: Ps, round: u64) {
        let co = &mut self.coords[c];
        let Some(peer) = co.peer else {
            return;
        };
        co.hb_seq += 1;
        let hb = Heartbeat {
            term: co.term,
            seq: co.hb_seq,
            round,
            state: co.repl_state(),
        };
        let from = co.node;
        self.plane
            .send(t, from, peer, CtrlMsg::Heartbeat(Box::new(hb)));
        self.pump(t, round);
    }

    /// Materializes one planned grant: ledger entry, stats, and the
    /// message onto the plane. Kept separate from planning so a leader
    /// deposed mid-batch leaves no trace of the grants it never sent.
    fn send_grant(&mut self, c: usize, i: usize, cap: f64, round: u64, t: Ps) {
        let co = &mut self.coords[c];
        let entry = LeaseEntry {
            term: co.term,
            seq: co.next_seq,
            cap_w: cap,
            expires: round + self.rpc.lease_rounds,
        };
        co.next_seq += 1;
        co.ledger.note_sent(i, entry);
        co.granted_this_barrier[i] = Some(cap);
        self.stats.grants_sent += 1;
        let from = co.node;
        self.plane.send(
            t,
            from,
            NodeId(i),
            CtrlMsg::Grant(CapGrant {
                server: i,
                term: entry.term,
                seq: entry.seq,
                cap_w: cap,
                expires: entry.expires,
            }),
        );
    }

    /// One reconcile pass: plan what to send each server given the
    /// ledger's current reservations and the free pool — pure planning,
    /// `(server, cap)` pairs with no ledger or stats side effects.
    /// Decreases and renewals always go out (they keep leases alive);
    /// increases are funded from `budget − Σ reserved`, granted at the
    /// exact target when the pool covers the deficit. A new leader in
    /// quarantine has an empty pool, so its grants never exceed what its
    /// reconstructed ledger already reserved.
    fn reconcile_pass(&mut self, c: usize, round: u64, desired: &[f64]) -> Vec<(usize, f64)> {
        let n = self.n;
        let co = &mut self.coords[c];
        let quarantined = round < co.quarantine_until;
        let mut free = if quarantined {
            0.0
        } else {
            (self.budget - co.ledger.total_reserved()).max(0.0)
        };
        let mut out = Vec::new();
        #[allow(clippy::needless_range_loop)] // `co` fields are indexed alongside `desired`
        for i in 0..n {
            if co.suspected[i] {
                // Possibly partitioned, not dead: leave its lease alone and
                // let expiry return the watts.
                continue;
            }
            if !co.view[i].active {
                // Finished: one release-to-zero so both engines record the
                // same zeroed cap the direct split used to produce.
                if co.granted_this_barrier[i].is_none()
                    && co.ledger.last_sent_cap(i).to_bits() != 0.0f64.to_bits()
                {
                    out.push((i, 0.0));
                }
                continue;
            }
            let target = desired[i];
            let reserved = co.ledger.reserved_w(i);
            let cap = if target <= reserved {
                target
            } else if target - reserved <= free {
                free -= target - reserved;
                target
            } else {
                let take = free;
                free = 0.0;
                reserved + take
            };
            let send = match co.granted_this_barrier[i] {
                // First pass: always renew, keeping the lease alive.
                None => true,
                // Later passes: only a strict top-up is news.
                Some(prev) => cap > prev,
            };
            if send {
                out.push((i, cap));
            }
        }
        out
    }

    /// Consumes the plane and returns the run's control statistics.
    pub fn finish(mut self) -> ControlStats {
        self.stats.plane = self.plane.stats();
        self.stats.in_flight_at_end = self.plane.in_flight();
        self.stats.terms = self.coords.iter().map(|c| c.term).collect();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(term: u64, seq: u64, cap_w: f64, expires: u64) -> CapGrant {
        CapGrant {
            server: 0,
            term,
            seq,
            cap_w,
            expires,
        }
    }

    #[test]
    fn lease_client_applies_renews_expires_floors() {
        let mut lc = LeaseClient::new(50.0, 8, 2.0, NodeId(9));
        assert_eq!(lc.effective_cap(0), 50.0);
        assert_eq!(lc.effective_cap(7), 50.0);
        assert_eq!(lc.effective_cap(8), 2.0, "expiry barrier is exclusive");
        assert!(lc.on_floor(8));

        // A renewal pushes the horizon out.
        assert_eq!(
            lc.apply(5, &grant(0, 1, 60.0, 13), NodeId(9)),
            GrantOutcome::Applied
        );
        assert_eq!(lc.effective_cap(12), 60.0);
        assert_eq!(lc.effective_cap(13), 2.0);

        // Stale (term, seq) never applies — duplicates and reorders alike.
        assert_eq!(
            lc.apply(5, &grant(0, 1, 99.0, 20), NodeId(9)),
            GrantOutcome::Stale
        );
        assert_eq!(
            lc.apply(5, &grant(0, 0, 99.0, 20), NodeId(9)),
            GrantOutcome::Stale
        );
        assert_eq!(lc.effective_cap(5), 60.0);

        // A grant arriving at/after its own expiry is rejected and cannot
        // resurrect a cap, even with a newer (term, seq).
        assert_eq!(
            lc.apply(14, &grant(0, 2, 80.0, 14), NodeId(9)),
            GrantOutcome::Expired
        );
        assert_eq!(lc.effective_cap(14), 2.0);

        // A newer term always beats a newer seq of an older term.
        assert_eq!(
            lc.apply(14, &grant(1, 1, 40.0, 22), NodeId(7)),
            GrantOutcome::Applied
        );
        assert_eq!(lc.leader(), NodeId(7), "server follows the granting leader");
        assert_eq!(
            lc.apply(14, &grant(0, 99, 70.0, 30), NodeId(9)),
            GrantOutcome::Stale
        );
    }

    #[test]
    fn ledger_reserves_until_ack_or_expiry() {
        let mut lg = LeaseLedger::new(2, 50.0, 8);
        assert_eq!(lg.total_reserved(), 100.0);

        // A decrease is sent: both old and new grants are reserved-worthy
        // until the ack proves the old one superseded.
        lg.note_sent(
            0,
            LeaseEntry {
                term: 0,
                seq: 1,
                cap_w: 30.0,
                expires: 9,
            },
        );
        assert_eq!(lg.reserved_w(0), 50.0, "decrease frees nothing before ack");
        lg.note_ack(0, 0, 1);
        assert_eq!(lg.reserved_w(0), 30.0, "ack releases the superseded grant");
        assert_eq!(lg.total_reserved(), 80.0);

        // A stale ack can never roll the ledger backwards.
        lg.note_ack(0, 0, 0);
        assert_eq!(lg.reserved_w(0), 30.0);

        // Expiry releases unacked grants.
        lg.note_sent(
            1,
            LeaseEntry {
                term: 0,
                seq: 2,
                cap_w: 70.0,
                expires: 10,
            },
        );
        assert_eq!(lg.reserved_w(1), 70.0);
        // At round 9 the bootstrap grants (expiry 8) and server 0's seq-1
        // (expiry 9) are gone; server 1's seq-2 (expiry 10) survives.
        let dropped = lg.expire(9);
        assert!(dropped >= 1);
        assert_eq!(lg.reserved_w(1), 70.0, "live entry survives expiry sweep");
        lg.expire(10);
        assert_eq!(lg.reserved_w(1), 0.0, "expired entries release their watts");
    }

    #[test]
    fn clock_skewed_renewals_keep_the_lease_alive() {
        // The server's barrier clock runs ahead of the coordinator's by
        // `skew`; renewals expire relative to the coordinator clock. As
        // long as lease_rounds exceeds the skew the server stays leased.
        for skew in 0u64..4 {
            let mut lc = LeaseClient::new(50.0, 8, 0.0, NodeId(9));
            let mut rejected = 0u64;
            for coord_round in 1..40u64 {
                let server_round = coord_round + skew;
                let g = grant(0, coord_round, 50.0, coord_round + 8);
                match lc.apply(server_round, &g, NodeId(9)) {
                    GrantOutcome::Applied => {
                        assert!(
                            !lc.on_floor(server_round),
                            "skew {skew}: applied a grant yet on floor at {server_round}"
                        );
                    }
                    GrantOutcome::Expired => rejected += 1,
                    GrantOutcome::Stale => panic!("seqs are strictly increasing"),
                }
            }
            assert_eq!(rejected, 0, "skew {skew} < lease 8 must never reject");
        }
        // A skew at/above the lease length rejects every renewal on
        // arrival: the grant is already expired by the server's clock.
        let mut lc = LeaseClient::new(50.0, 8, 0.0, NodeId(9));
        let g = grant(0, 1, 50.0, 9); // coordinator round 1 + lease 8
        assert_eq!(lc.apply(9 + 3, &g, NodeId(9)), GrantOutcome::Expired);
    }

    #[test]
    fn rpc_validation_rejects_bad_inputs() {
        let names = ["s0", "s1"];
        let ok = RpcConfig::default();
        assert!(ok.validate(&names).is_ok());
        assert!(ok.is_loopback());

        let bad = RpcConfig {
            loss: 1.5,
            ..RpcConfig::default()
        };
        assert!(bad.validate(&names).is_err());
        let bad = RpcConfig {
            latency_us: -1.0,
            ..RpcConfig::default()
        };
        assert!(bad.validate(&names).is_err());
        let bad = RpcConfig {
            duplicate: f64::NAN,
            ..RpcConfig::default()
        };
        assert!(bad.validate(&names).is_err());
        let bad = RpcConfig {
            lease_rounds: 0,
            ..RpcConfig::default()
        };
        assert!(bad.validate(&names).is_err());
        let bad = RpcConfig {
            partitions: vec![PartitionSpec {
                from_round: 5,
                to_round: 5,
                nodes: vec!["s0".into()],
            }],
            ..RpcConfig::default()
        };
        assert!(bad.validate(&names).is_err(), "empty partition window");
        let bad = RpcConfig {
            partitions: vec![PartitionSpec {
                from_round: 1,
                to_round: 5,
                nodes: vec!["ghost".into()],
            }],
            ..RpcConfig::default()
        };
        assert!(bad.validate(&names).is_err(), "unknown node name");
        let bad = RpcConfig {
            partitions: vec![PartitionSpec {
                from_round: 1,
                to_round: 5,
                nodes: vec!["standby".into()],
            }],
            ..RpcConfig::default()
        };
        assert!(bad.validate(&names).is_err(), "standby without failover");
    }

    #[test]
    fn resolve_quantizes_and_guards_the_lease() {
        let round_s = 1250e-6; // 5 × 250 µs epochs
        let r = RpcConfig {
            latency_us: 1.0,
            ..RpcConfig::default()
        }
        .resolve(round_s)
        .unwrap();
        assert_eq!(
            r.latency_rounds, 1,
            "sub-round latency still costs a barrier"
        );
        let r = RpcConfig::default().resolve(round_s).unwrap();
        assert_eq!(r.latency_rounds, 0);
        assert_eq!(r.suspect_after, 5, "auto suspicion floor");

        let too_slow = RpcConfig {
            latency_us: 1250.0 * 9.0,
            lease_rounds: 8,
            ..RpcConfig::default()
        };
        let err = too_slow.resolve(round_s).unwrap_err();
        assert!(err.contains("expire in flight"), "{err}");
    }

    #[test]
    fn quarantine_resolves_to_the_handoff_horizon() {
        let round_s = 1250e-6;
        // Auto (0): latency + jitter + lease, in rounds. 2 latency rounds
        // + 1 jitter round + 8 lease rounds = 11.
        let r = RpcConfig {
            latency_us: 2500.0,
            jitter_us: 1250.0,
            quarantine_rounds: 0,
            ..RpcConfig::default()
        }
        .resolve(round_s)
        .unwrap();
        assert_eq!(r.quarantine, 11, "auto horizon = latency + jitter + lease");

        // An explicit value below the horizon is raised to it — a grant
        // from the dead leader may still be in flight for latency + jitter
        // rounds and then lives a full lease, so anything shorter would
        // let it land outside the reserved window.
        let r = RpcConfig {
            latency_us: 2500.0,
            jitter_us: 1250.0,
            quarantine_rounds: 4,
            ..RpcConfig::default()
        }
        .resolve(round_s)
        .unwrap();
        assert_eq!(
            r.quarantine, 11,
            "explicit values below the horizon are raised"
        );

        // An explicit value above the horizon is honored.
        let r = RpcConfig {
            quarantine_rounds: 20,
            ..RpcConfig::default()
        }
        .resolve(round_s)
        .unwrap();
        assert_eq!(r.quarantine, 20);

        // Loopback auto: just the lease length (zero latency, zero jitter).
        let r = RpcConfig::default().resolve(round_s).unwrap();
        assert_eq!(r.quarantine, RpcConfig::default().lease_rounds);
    }

    /// Drives a full `ControlPlane` through a partition-and-heal schedule
    /// at loopback and pins the deposed-primary step-down path: when the
    /// healed primary (still leader at its old term) starts its grant
    /// batch, the **first** higher-term nack must depose it mid-batch —
    /// exactly one stale grant reaches a server, not the whole batch.
    #[test]
    fn deposed_primary_aborts_its_grant_batch_on_first_nack() {
        use crate::{CapSplit, ServerSpec};

        // Primary cut off for rounds 2..6: the standby (heartbeat timeout
        // 3, last heard at round 1) elects itself at round 5; the heal at
        // round 6 has both coordinators acting as leader, and barrier
        // order runs the stale primary's decide first.
        let rpc = RpcConfig {
            failover: true,
            partitions: vec![PartitionSpec {
                from_round: 2,
                to_round: 6,
                nodes: vec!["primary".into()],
            }],
            ..RpcConfig::default()
        };
        let fleet: Vec<ServerSpec> = (0..3)
            .map(|i| ServerSpec::small(&format!("s{i}"), "MID1", i as u64))
            .collect();
        let config = ClusterConfig::new(fleet, 90.0, CapSplit::FastCap).with_rpc(rpc);
        let names = ["s0", "s1", "s2"];
        let mut plane = ControlPlane::new(&config);

        // Skewed demands so the split is non-uniform and every server gets
        // a fresh grant each barrier.
        let reports: Vec<(usize, ServerDemand)> = (0..3)
            .map(|i| {
                (
                    i,
                    ServerDemand {
                        demand_w: 30.0 + 10.0 * i as f64,
                        min_w: 0.0,
                        active: true,
                    },
                )
            })
            .collect();
        for round in 0..8u64 {
            let caps = plane.barrier(round, &reports, &config, &names);
            let total: f64 = caps.iter().sum();
            assert!(
                total <= 90.0 + 1e-9,
                "round {round}: caps sum to {total:.6} W over the 90 W budget"
            );
        }
        let stats = plane.finish();

        assert_eq!(stats.elections, 1, "standby must take over: {stats:?}");
        assert_eq!(
            stats.step_downs, 1,
            "healed primary must step down exactly once: {stats:?}"
        );
        // The pin: one stale grant, then the batch aborts. A primary that
        // finished its batch before pumping would land one stale grant per
        // server (3 here).
        assert_eq!(
            stats.grants_stale, 1,
            "first higher-term nack must abort the rest of the batch: {stats:?}"
        );
        assert_eq!(
            stats.terms,
            vec![1, 1],
            "deposed primary adopts the standby's term: {stats:?}"
        );
    }
}
