//! Cluster-level configuration: the server fleet, the global power budget,
//! and how the coordinator splits it.

use coscale::SimConfig;

/// How the coordinator divides the global budget into per-server caps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CapSplit {
    /// Every active server receives an equal share of the budget,
    /// regardless of what it could use. The naive baseline.
    Uniform,
    /// Shares proportional to each server's observed uncapped power demand
    /// (above its power floor), so heavy servers receive more headroom.
    DemandProportional,
    /// FastCap-style marginal-utility splitting (after Liu et al.): the
    /// budget is granted in small quanta, each to the server whose
    /// predicted performance gain per additional watt is currently
    /// highest, under a concave performance-versus-power curve.
    FastCap,
}

impl std::fmt::Display for CapSplit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CapSplit::Uniform => "uniform",
            CapSplit::DemandProportional => "demand-proportional",
            CapSplit::FastCap => "fastcap",
        };
        write!(f, "{s}")
    }
}

/// One server in the cluster: a display name plus the full single-server
/// simulation configuration it runs.
#[derive(Clone, Debug)]
pub struct ServerSpec {
    /// Display name (used in tables and result rows).
    pub name: String,
    /// The server's own simulation configuration (mix, cores, grids…).
    pub config: SimConfig,
}

impl ServerSpec {
    /// A small fast-running server for tests and examples: the reduced
    /// [`SimConfig::small`] configuration for `mix_name`, re-seeded per
    /// server so servers are not clones of each other. Epochs are
    /// shortened to 250 µs so even the reduced workloads span enough
    /// epochs for several coordination rounds, and the epoch ceiling is
    /// raised (a capped server legitimately needs more epochs than an
    /// unmanaged one).
    ///
    /// # Panics
    ///
    /// Panics if the mix name is unknown.
    pub fn small(name: &str, mix_name: &str, seed: u64) -> ServerSpec {
        let m = workloads::mix(mix_name).unwrap_or_else(|| panic!("unknown mix {mix_name}"));
        let mut config = SimConfig::small(m);
        config.seed = seed;
        config.epoch = simkernel::Ps::from_us(250);
        config.profile_window = simkernel::Ps::from_us(50);
        config.max_epochs = 4_000;
        ServerSpec {
            name: name.to_string(),
            config,
        }
    }

    /// Same as [`ServerSpec::small`] with a custom core count (1..=16),
    /// the easiest way to build a heterogeneous fleet.
    ///
    /// # Panics
    ///
    /// Panics if the mix name is unknown.
    pub fn small_with_cores(name: &str, mix_name: &str, seed: u64, cores: usize) -> ServerSpec {
        let mut s = Self::small(name, mix_name, seed);
        s.config.cores = cores;
        s
    }
}

/// Configuration of one cluster simulation.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The server fleet.
    pub servers: Vec<ServerSpec>,
    /// Global power budget across all servers, watts.
    pub global_cap_w: f64,
    /// The budget-splitting discipline.
    pub split: CapSplit,
    /// Coordination period: how many epochs each server runs between
    /// redistributions of the budget.
    pub epochs_per_round: usize,
    /// Worker threads driving servers within a round. Results are
    /// identical for any thread count — servers only exchange state with
    /// the coordinator at round barriers.
    pub threads: usize,
    /// FastCap grant granularity, watts per quantum.
    pub quantum_w: f64,
}

impl ClusterConfig {
    /// A cluster of `servers` under `global_cap_w` using `split`, with the
    /// default coordination period (5 epochs), one worker thread and 1 W
    /// grant quanta.
    pub fn new(servers: Vec<ServerSpec>, global_cap_w: f64, split: CapSplit) -> ClusterConfig {
        ClusterConfig {
            servers,
            global_cap_w,
            split,
            epochs_per_round: 5,
            threads: 1,
            quantum_w: 1.0,
        }
    }

    /// Sets the worker thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ClusterConfig {
        self.threads = threads;
        self
    }

    /// Sets the coordination period in epochs.
    #[must_use]
    pub fn with_epochs_per_round(mut self, epochs: usize) -> ClusterConfig {
        self.epochs_per_round = epochs;
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.servers.is_empty() {
            return Err("cluster needs at least one server".into());
        }
        if self.global_cap_w.is_nan() || self.global_cap_w <= 0.0 {
            return Err(format!("global cap {} must be positive", self.global_cap_w));
        }
        if self.epochs_per_round == 0 {
            return Err("epochs_per_round must be positive".into());
        }
        if self.threads == 0 {
            return Err("threads must be positive".into());
        }
        if self.quantum_w.is_nan() || self.quantum_w <= 0.0 {
            return Err(format!("quantum {} must be positive", self.quantum_w));
        }
        for s in &self.servers {
            s.config
                .validate()
                .map_err(|e| format!("server {}: {e}", s.name))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_clusters() {
        let ok = ClusterConfig::new(
            vec![ServerSpec::small("s0", "MID1", 1)],
            100.0,
            CapSplit::Uniform,
        );
        assert!(ok.validate().is_ok());

        let mut c = ok.clone();
        c.servers.clear();
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.global_cap_w = 0.0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.epochs_per_round = 0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.threads = 0;
        assert!(c.validate().is_err());

        let mut c = ok;
        c.servers[0].config.gamma = 2.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn split_display_names() {
        assert_eq!(CapSplit::Uniform.to_string(), "uniform");
        assert_eq!(
            CapSplit::DemandProportional.to_string(),
            "demand-proportional"
        );
        assert_eq!(CapSplit::FastCap.to_string(), "fastcap");
    }
}
