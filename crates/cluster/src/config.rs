//! Cluster-level configuration: the server fleet, the global power budget,
//! and how the coordinator splits it.

use crate::tree::BudgetTree;
use coscale::SimConfig;

/// How the coordinator divides the global budget into per-server caps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CapSplit {
    /// Every active server receives an equal share of the budget,
    /// regardless of what it could use. The naive baseline.
    Uniform,
    /// Shares proportional to each server's observed uncapped power demand
    /// (above its power floor), so heavy servers receive more headroom.
    DemandProportional,
    /// FastCap-style marginal-utility splitting (after Liu et al.): the
    /// budget is granted in small quanta, each to the server whose
    /// predicted performance gain per additional watt is currently
    /// highest, under a concave performance-versus-power curve.
    FastCap,
    /// Latency-target aware splitting: servers violating their p99 SLO bid
    /// for budget first (up to their full demand), servers comfortably
    /// meeting it are trimmed below their demand in proportion to their
    /// latency headroom, and granting within each tier is FastCap-style.
    /// Requires per-server [`SlaSignal`](crate::coordinator::SlaSignal)s
    /// (see [`split_caps_sla`](crate::coordinator::split_caps_sla));
    /// without them it degrades to plain FastCap.
    SlaAware,
}

impl std::fmt::Display for CapSplit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CapSplit::Uniform => "uniform",
            CapSplit::DemandProportional => "demand-proportional",
            CapSplit::FastCap => "fastcap",
            CapSplit::SlaAware => "sla-aware",
        };
        write!(f, "{s}")
    }
}

/// What happens to the fleet at one churn point.
#[derive(Clone, Debug)]
pub enum ChurnAction<S> {
    /// A new server (described by `S`, e.g. a spec) joins the fleet.
    Join(S),
    /// The named server leaves the fleet. Unknown names are ignored — a
    /// server may have already left, or never joined.
    Leave(String),
}

/// One scheduled fleet change, applied at the boundary of `round` (before
/// telemetry is collected and the budget is split for that round).
#[derive(Clone, Debug)]
pub struct ChurnEvent<S> {
    /// The coordination round at whose start the action applies.
    pub round: usize,
    /// The action.
    pub action: ChurnAction<S>,
}

/// An ordered list of fleet changes. The coordinator drains the events due
/// at each round boundary; the generic parameter is the server-description
/// type of whichever simulation layer consumes the schedule.
#[derive(Clone, Debug, Default)]
pub struct ChurnSchedule<S> {
    events: Vec<ChurnEvent<S>>,
}

impl<S> ChurnSchedule<S> {
    /// An empty schedule (no churn).
    pub fn new() -> Self {
        ChurnSchedule { events: Vec::new() }
    }

    /// Builds a schedule from events, ordering them by round (stable, so
    /// same-round events apply in insertion order).
    pub fn from_events(mut events: Vec<ChurnEvent<S>>) -> Self {
        events.sort_by_key(|e| e.round);
        ChurnSchedule { events }
    }

    /// Adds a join at the given round boundary.
    pub fn join(&mut self, round: usize, server: S) {
        self.events.push(ChurnEvent {
            round,
            action: ChurnAction::Join(server),
        });
        self.events.sort_by_key(|e| e.round);
    }

    /// Adds a departure at the given round boundary.
    pub fn leave(&mut self, round: usize, name: &str) {
        self.events.push(ChurnEvent {
            round,
            action: ChurnAction::Leave(name.to_string()),
        });
        self.events.sort_by_key(|e| e.round);
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events not yet drained.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }

    /// Removes and returns the actions due at or before `round`, in order.
    pub fn drain_due(&mut self, round: usize) -> Vec<ChurnAction<S>> {
        let n_due = self.events.iter().take_while(|e| e.round <= round).count();
        self.events.drain(..n_due).map(|e| e.action).collect()
    }
}

/// One server in the cluster: a display name plus the full single-server
/// simulation configuration it runs.
#[derive(Clone, Debug)]
pub struct ServerSpec {
    /// Display name (used in tables and result rows).
    pub name: String,
    /// The server's own simulation configuration (mix, cores, grids…).
    pub config: SimConfig,
}

impl ServerSpec {
    /// A small fast-running server for tests and examples: the reduced
    /// [`SimConfig::small`] configuration for `mix_name`, re-seeded per
    /// server so servers are not clones of each other. Epochs are
    /// shortened to 250 µs so even the reduced workloads span enough
    /// epochs for several coordination rounds, and the epoch ceiling is
    /// raised (a capped server legitimately needs more epochs than an
    /// unmanaged one).
    ///
    /// # Panics
    ///
    /// Panics if the mix name is unknown.
    pub fn small(name: &str, mix_name: &str, seed: u64) -> ServerSpec {
        let m = workloads::mix(mix_name).unwrap_or_else(|| panic!("unknown mix {mix_name}"));
        let mut config = SimConfig::small(m);
        config.seed = seed;
        config.epoch = simkernel::Ps::from_us(250);
        config.profile_window = simkernel::Ps::from_us(50);
        config.max_epochs = 4_000;
        ServerSpec {
            name: name.to_string(),
            config,
        }
    }

    /// Same as [`ServerSpec::small`] with a custom core count (1..=16),
    /// the easiest way to build a heterogeneous fleet.
    ///
    /// # Panics
    ///
    /// Panics if the mix name is unknown.
    pub fn small_with_cores(name: &str, mix_name: &str, seed: u64, cores: usize) -> ServerSpec {
        let mut s = Self::small(name, mix_name, seed);
        s.config.cores = cores;
        s
    }
}

/// Configuration of one cluster simulation.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The server fleet.
    pub servers: Vec<ServerSpec>,
    /// Global power budget across all servers, watts.
    pub global_cap_w: f64,
    /// The budget-splitting discipline (the root discipline when a
    /// `topology` tree is also set — flat splitting ignores the tree).
    pub split: CapSplit,
    /// Optional hierarchical budget topology. When set, each coordination
    /// round splits the budget down the tree (every interior node applies
    /// its own discipline over its children's aggregated telemetry)
    /// instead of flat across the fleet, and `split` is ignored. The
    /// tree's leaves must match the fleet's server names exactly.
    pub topology: Option<BudgetTree>,
    /// Coordination period: how many epochs each server runs between
    /// redistributions of the budget.
    pub epochs_per_round: usize,
    /// Worker threads driving servers within a round. Results are
    /// identical for any thread count — servers only exchange state with
    /// the coordinator at round barriers.
    pub threads: usize,
    /// FastCap grant granularity, watts per quantum.
    pub quantum_w: f64,
}

impl ClusterConfig {
    /// A cluster of `servers` under `global_cap_w` using `split`, with the
    /// default coordination period (5 epochs), one worker thread and 1 W
    /// grant quanta.
    pub fn new(servers: Vec<ServerSpec>, global_cap_w: f64, split: CapSplit) -> ClusterConfig {
        ClusterConfig {
            servers,
            global_cap_w,
            split,
            topology: None,
            epochs_per_round: 5,
            threads: 1,
            quantum_w: 1.0,
        }
    }

    /// Sets the worker thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ClusterConfig {
        self.threads = threads;
        self
    }

    /// Sets a hierarchical budget topology (see [`BudgetTree`]).
    #[must_use]
    pub fn with_topology(mut self, topology: BudgetTree) -> ClusterConfig {
        self.topology = Some(topology);
        self
    }

    /// Sets the coordination period in epochs.
    #[must_use]
    pub fn with_epochs_per_round(mut self, epochs: usize) -> ClusterConfig {
        self.epochs_per_round = epochs;
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.servers.is_empty() {
            return Err("cluster needs at least one server".into());
        }
        if self.global_cap_w.is_nan() || self.global_cap_w <= 0.0 {
            return Err(format!("global cap {} must be positive", self.global_cap_w));
        }
        if self.epochs_per_round == 0 {
            return Err("epochs_per_round must be positive".into());
        }
        if self.threads == 0 {
            return Err("threads must be positive".into());
        }
        if self.quantum_w.is_nan() || self.quantum_w <= 0.0 {
            return Err(format!("quantum {} must be positive", self.quantum_w));
        }
        for s in &self.servers {
            s.config
                .validate()
                .map_err(|e| format!("server {}: {e}", s.name))?;
        }
        if let Some(tree) = &self.topology {
            let names: Vec<&str> = self.servers.iter().map(|s| s.name.as_str()).collect();
            tree.validate(&names)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_clusters() {
        let ok = ClusterConfig::new(
            vec![ServerSpec::small("s0", "MID1", 1)],
            100.0,
            CapSplit::Uniform,
        );
        assert!(ok.validate().is_ok());

        let mut c = ok.clone();
        c.servers.clear();
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.global_cap_w = 0.0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.epochs_per_round = 0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.threads = 0;
        assert!(c.validate().is_err());

        let mut c = ok;
        c.servers[0].config.gamma = 2.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_checks_topology_leaves() {
        let fleet = vec![
            ServerSpec::small("s0", "MID1", 1),
            ServerSpec::small("s1", "MID1", 2),
        ];
        let mut c = ClusterConfig::new(fleet, 100.0, CapSplit::Uniform);
        c.topology = Some(BudgetTree::parse("f:uniform[s0,s1]").unwrap());
        assert!(c.validate().is_ok());
        c.topology = Some(BudgetTree::parse("f:uniform[s0]").unwrap());
        assert!(c.validate().is_err(), "s1 missing from the tree");
        c.topology = Some(BudgetTree::parse("f:uniform[s0,s1,ghost]").unwrap());
        assert!(c.validate().is_err(), "ghost is not in the fleet");
    }

    #[test]
    fn split_display_names() {
        assert_eq!(CapSplit::Uniform.to_string(), "uniform");
        assert_eq!(
            CapSplit::DemandProportional.to_string(),
            "demand-proportional"
        );
        assert_eq!(CapSplit::FastCap.to_string(), "fastcap");
        assert_eq!(CapSplit::SlaAware.to_string(), "sla-aware");
    }

    #[test]
    fn churn_schedule_drains_in_round_order() {
        let mut sched: ChurnSchedule<&str> = ChurnSchedule::new();
        sched.leave(5, "a");
        sched.join(2, "b");
        sched.join(5, "c");
        assert_eq!(sched.remaining(), 3);

        assert!(sched.drain_due(1).is_empty());
        let due = sched.drain_due(2);
        assert_eq!(due.len(), 1);
        assert!(matches!(due[0], ChurnAction::Join("b")));

        // Round 5's events come out in insertion order (stable sort).
        let due = sched.drain_due(10);
        assert_eq!(due.len(), 2);
        assert!(matches!(due[0], ChurnAction::Leave(ref n) if n == "a"));
        assert!(matches!(due[1], ChurnAction::Join("c")));
        assert!(sched.is_empty());
    }
}
