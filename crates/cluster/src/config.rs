//! Cluster-level configuration: the server fleet, the global power budget,
//! and how the coordinator splits it.

use crate::ctrlplane::RpcConfig;
use crate::engine::EngineKind;
use crate::tree::BudgetTree;
use coscale::SimConfig;
use simkernel::Ps;

/// How the coordinator divides the global budget into per-server caps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CapSplit {
    /// Every active server receives an equal share of the budget,
    /// regardless of what it could use. The naive baseline.
    Uniform,
    /// Shares proportional to each server's observed uncapped power demand
    /// (above its power floor), so heavy servers receive more headroom.
    DemandProportional,
    /// FastCap-style marginal-utility splitting (after Liu et al.): the
    /// budget is granted in small quanta, each to the server whose
    /// predicted performance gain per additional watt is currently
    /// highest, under a concave performance-versus-power curve.
    FastCap,
    /// Latency-target aware splitting: servers violating their p99 SLO bid
    /// for budget first (up to their full demand), servers comfortably
    /// meeting it are trimmed below their demand in proportion to their
    /// latency headroom, and granting within each tier is FastCap-style.
    /// Requires per-server [`SlaSignal`](crate::coordinator::SlaSignal)s
    /// (see [`split_caps_sla`](crate::coordinator::split_caps_sla));
    /// without them it degrades to plain FastCap.
    SlaAware,
    /// Critical-path aware splitting for groups of service tiers: budget
    /// shifts toward the child with the largest share of end-to-end
    /// critical-path time (from request traces), honoring per-tier floors.
    /// Without trace signals — sparse traces, batch runs, flat splitting —
    /// it degrades to demand-proportional.
    CriticalPath,
}

impl std::fmt::Display for CapSplit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CapSplit::Uniform => "uniform",
            CapSplit::DemandProportional => "demand-proportional",
            CapSplit::FastCap => "fastcap",
            CapSplit::SlaAware => "sla-aware",
            CapSplit::CriticalPath => "critical-path",
        };
        write!(f, "{s}")
    }
}

/// What happens to the fleet at one churn point.
#[derive(Clone, Debug)]
pub enum ChurnAction<S> {
    /// A new server (described by `S`, e.g. a spec) joins the fleet.
    Join(S),
    /// The named server leaves the fleet. Unknown names are ignored — a
    /// server may have already left, or never joined.
    Leave(String),
}

/// One scheduled fleet change, applied at the boundary of `round` (before
/// telemetry is collected and the budget is split for that round).
#[derive(Clone, Debug)]
pub struct ChurnEvent<S> {
    /// The coordination round at whose start the action applies.
    pub round: usize,
    /// The server the action concerns (a joiner's spec name, a leaver's
    /// fleet name). Used to reject ambiguous same-barrier schedules.
    pub name: String,
    /// The action.
    pub action: ChurnAction<S>,
}

/// An ordered list of fleet changes. The coordinator drains the events due
/// at each round boundary; the generic parameter is the server-description
/// type of whichever simulation layer consumes the schedule.
///
/// Ordering is explicit: events sort by round (stably), and events sharing
/// a round apply in **insertion order**. What a schedule refuses to hold is
/// two events for the *same server at the same round* — a join and a leave
/// of one id at one barrier has no defensible meaning (did the server serve
/// that round or not?), and the old behavior of silently keeping both left
/// the answer to insertion-order luck. [`ChurnSchedule::join`] and
/// [`ChurnSchedule::leave`] report the conflict instead.
#[derive(Clone, Debug, Default)]
pub struct ChurnSchedule<S> {
    events: Vec<ChurnEvent<S>>,
}

impl<S> ChurnSchedule<S> {
    /// An empty schedule (no churn).
    pub fn new() -> Self {
        ChurnSchedule { events: Vec::new() }
    }

    /// Builds a schedule from events, ordering them by round (stable, so
    /// same-round events apply in insertion order).
    ///
    /// # Errors
    ///
    /// Rejects two events for the same server at the same round.
    pub fn from_events(events: Vec<ChurnEvent<S>>) -> Result<Self, String> {
        let mut sched = ChurnSchedule::new();
        for e in events {
            sched.insert(e)?;
        }
        Ok(sched)
    }

    /// Adds a join at the given round boundary. `name` is the joining
    /// server's id (the name its spec will carry in the fleet).
    ///
    /// # Errors
    ///
    /// Rejects a second event for the same server at the same round.
    pub fn join(&mut self, round: usize, name: &str, server: S) -> Result<(), String> {
        self.insert(ChurnEvent {
            round,
            name: name.to_string(),
            action: ChurnAction::Join(server),
        })
    }

    /// Adds a departure at the given round boundary.
    ///
    /// # Errors
    ///
    /// Rejects a second event for the same server at the same round.
    pub fn leave(&mut self, round: usize, name: &str) -> Result<(), String> {
        self.insert(ChurnEvent {
            round,
            name: name.to_string(),
            action: ChurnAction::Leave(name.to_string()),
        })
    }

    fn insert(&mut self, event: ChurnEvent<S>) -> Result<(), String> {
        let describe = |a: &ChurnAction<S>| match a {
            ChurnAction::Join(_) => "join",
            ChurnAction::Leave(_) => "leave",
        };
        if let Some(prev) = self
            .events
            .iter()
            .find(|e| e.round == event.round && e.name == event.name)
        {
            return Err(format!(
                "churn: server '{}' already has a {} at round {} — a second {} at the same \
                 barrier is ambiguous; schedule it at a different round",
                event.name,
                describe(&prev.action),
                event.round,
                describe(&event.action),
            ));
        }
        self.events.push(event);
        self.events.sort_by_key(|e| e.round);
        Ok(())
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events not yet drained.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }

    /// Removes and returns the actions due at or before `round`, in order.
    pub fn drain_due(&mut self, round: usize) -> Vec<ChurnAction<S>> {
        let n_due = self.events.iter().take_while(|e| e.round <= round).count();
        self.events.drain(..n_due).map(|e| e.action).collect()
    }
}

/// One server in the cluster: a display name plus the full single-server
/// simulation configuration it runs.
#[derive(Clone, Debug)]
pub struct ServerSpec {
    /// Display name (used in tables and result rows).
    pub name: String,
    /// The server's own simulation configuration (mix, cores, grids…).
    pub config: SimConfig,
}

impl ServerSpec {
    /// A small fast-running server for tests and examples: the reduced
    /// [`SimConfig::small`] configuration for `mix_name`, re-seeded per
    /// server so servers are not clones of each other. Epochs are
    /// shortened to 250 µs so even the reduced workloads span enough
    /// epochs for several coordination rounds, and the epoch ceiling is
    /// raised (a capped server legitimately needs more epochs than an
    /// unmanaged one).
    ///
    /// # Panics
    ///
    /// Panics if the mix name is unknown.
    pub fn small(name: &str, mix_name: &str, seed: u64) -> ServerSpec {
        let m = workloads::mix(mix_name).unwrap_or_else(|| panic!("unknown mix {mix_name}"));
        let mut config = SimConfig::small(m);
        config.seed = seed;
        config.epoch = simkernel::Ps::from_us(250);
        config.profile_window = simkernel::Ps::from_us(50);
        config.max_epochs = 4_000;
        ServerSpec {
            name: name.to_string(),
            config,
        }
    }

    /// Same as [`ServerSpec::small`] with a custom core count (1..=16),
    /// the easiest way to build a heterogeneous fleet.
    ///
    /// # Panics
    ///
    /// Panics if the mix name is unknown.
    pub fn small_with_cores(name: &str, mix_name: &str, seed: u64, cores: usize) -> ServerSpec {
        let mut s = Self::small(name, mix_name, seed);
        s.config.cores = cores;
        s
    }
}

/// Builds a large fleet for scale experiments: `n` servers, of which the
/// first `ceil(n * idle_fraction)` are near-idle (tiny CPU-bound workloads
/// that finish after a handful of rounds and then sit quiesced) and the rest
/// run a long-lived workload, so the fleet spends most of its coordination
/// rounds with only the `1 − idle_fraction` tail awake. Seeds derive from
/// the index so no two servers are clones.
///
/// # Panics
///
/// Panics if `idle_fraction` is not in `[0, 1]`.
pub fn synthetic_fleet(n: usize, idle_fraction: f64) -> Vec<ServerSpec> {
    assert!(
        (0.0..=1.0).contains(&idle_fraction),
        "idle_fraction {idle_fraction} must be in [0, 1]"
    );
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let n_idle = ((n as f64) * idle_fraction).ceil() as usize;
    (0..n)
        .map(|i| {
            let mut spec = ServerSpec::small(&format!("s{i:04}"), "MID1", 1 + i as u64);
            // The test default keeps Table 2's 16 MiB L2; at a thousand
            // servers that is gigabytes of tag arrays and construction
            // drowns in page faults. Scale-fleet servers model a 1 MiB L2.
            spec.config.cache.size_bytes = 1024 * 1024;
            // Coordination-scale regime: small nodes (2 cores, a coarse
            // 4-step DVFS grid) on epochs an order of magnitude shorter
            // than the test default, so a round's cost is dominated by the
            // coordinator (telemetry, cap splitting) rather than by cycle
            // simulation — the regime a 1000-server fleet actually runs
            // in, where each server does little work between barriers.
            spec.config.cores = 2;
            spec.config.core_freqs = SimConfig::core_grid_with_steps(4);
            spec.config.epoch = Ps::from_us(10);
            spec.config.profile_window = Ps::from_us(1);
            spec.config.core_transition = Ps::from_us(1);
            spec.config.max_epochs = 2000;
            spec.config.target_instrs = 1_000_000;
            if i < n_idle {
                // An idle server: a workload so small it completes within
                // the first coordination rounds, after which the server is
                // quiesced and should cost the coordinator nothing.
                spec.config.target_instrs /= 200;
            }
            spec
        })
        .collect()
}

/// Configuration of one cluster simulation.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The server fleet.
    pub servers: Vec<ServerSpec>,
    /// Global power budget across all servers, watts.
    pub global_cap_w: f64,
    /// The budget-splitting discipline (the root discipline when a
    /// `topology` tree is also set — flat splitting ignores the tree).
    pub split: CapSplit,
    /// Optional hierarchical budget topology. When set, each coordination
    /// round splits the budget down the tree (every interior node applies
    /// its own discipline over its children's aggregated telemetry)
    /// instead of flat across the fleet, and `split` is ignored. The
    /// tree's leaves must match the fleet's server names exactly.
    pub topology: Option<BudgetTree>,
    /// Coordination period: how many epochs each server runs between
    /// redistributions of the budget.
    pub epochs_per_round: usize,
    /// Worker threads driving servers within a round. Results are
    /// identical for any thread count — servers only exchange state with
    /// the coordinator at round barriers.
    pub threads: usize,
    /// FastCap grant granularity, watts per quantum.
    pub quantum_w: f64,
    /// Which coordination engine drives the fleet: the legacy round-barrier
    /// reference loop, or the event-driven wake-queue engine. Both produce
    /// identical digests (see `tests/engine_equivalence.rs`); the event
    /// engine is the one that scales to 1000-server fleets.
    pub engine: EngineKind,
    /// Telemetry dead-band for the event engine's incremental re-split,
    /// watts. A server whose demand moved by no more than this since the
    /// last split is not considered dirty, and if no server is dirty the
    /// cached caps are replayed instead of recomputed. `0.0` (the default)
    /// means "dirty iff the bits changed", which keeps the event engine
    /// bit-identical to the round engine; positive values trade fidelity
    /// for fewer re-splits. Ignored by the round engine.
    pub dead_band_w: f64,
    /// Control-plane (coordinator ↔ server RPC) configuration. The default
    /// is the loopback plane — zero latency, no loss, no failover — under
    /// which both engines are bit-identical to the pre-plane direct-call
    /// coordinator. See [`RpcConfig`](crate::ctrlplane::RpcConfig).
    pub rpc: RpcConfig,
    /// Wake-queue shards for the event engine. `0` (the default) means
    /// "one shard per worker thread". Any shard count produces identical
    /// results — the sharded queue merges due wakes back into the global
    /// sequence order (see
    /// [`ShardedWakeQueue`](crate::engine::ShardedWakeQueue)) — so this is
    /// purely a scaling knob. Ignored by the round engine.
    pub wake_shards: usize,
    /// Whether to record the full per-round cap timeline in the result.
    /// The timeline is what the digests and differential tests compare,
    /// so it defaults to `true`; scale benches over tens of thousands of
    /// servers turn it off to keep the result from dwarfing the
    /// simulation (`rounds × fleet` f64s).
    pub record_timeline: bool,
}

impl ClusterConfig {
    /// A cluster of `servers` under `global_cap_w` using `split`, with the
    /// default coordination period (5 epochs), one worker thread and 1 W
    /// grant quanta.
    pub fn new(servers: Vec<ServerSpec>, global_cap_w: f64, split: CapSplit) -> ClusterConfig {
        ClusterConfig {
            servers,
            global_cap_w,
            split,
            topology: None,
            epochs_per_round: 5,
            threads: 1,
            quantum_w: 1.0,
            engine: EngineKind::Round,
            dead_band_w: 0.0,
            rpc: RpcConfig::default(),
            wake_shards: 0,
            record_timeline: true,
        }
    }

    /// Sets the event engine's wake-queue shard count (see the
    /// `wake_shards` field; `0` = one shard per worker thread).
    #[must_use]
    pub fn with_wake_shards(mut self, wake_shards: usize) -> ClusterConfig {
        self.wake_shards = wake_shards;
        self
    }

    /// Enables or disables per-round cap-timeline recording (see the
    /// `record_timeline` field).
    #[must_use]
    pub fn with_record_timeline(mut self, record: bool) -> ClusterConfig {
        self.record_timeline = record;
        self
    }

    /// Sets the control-plane configuration (see
    /// [`RpcConfig`](crate::ctrlplane::RpcConfig)).
    #[must_use]
    pub fn with_rpc(mut self, rpc: RpcConfig) -> ClusterConfig {
        self.rpc = rpc;
        self
    }

    /// The wall-clock length of one coordination round in seconds:
    /// `epochs_per_round` × the first server's epoch. (The plane's clock
    /// ticks once per round barrier, so RPC latencies quantize against
    /// this; in a heterogeneous fleet the first server's epoch is the
    /// reference.)
    pub fn round_s(&self) -> f64 {
        let epoch_s = self
            .servers
            .first()
            .map_or(250e-6, |s| s.config.epoch.as_secs_f64());
        epoch_s * self.epochs_per_round as f64
    }

    /// Selects the coordination engine (see [`EngineKind`]).
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> ClusterConfig {
        self.engine = engine;
        self
    }

    /// Sets the event engine's telemetry dead-band in watts (see the
    /// `dead_band_w` field).
    #[must_use]
    pub fn with_dead_band(mut self, dead_band_w: f64) -> ClusterConfig {
        self.dead_band_w = dead_band_w;
        self
    }

    /// Sets the worker thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ClusterConfig {
        self.threads = threads;
        self
    }

    /// Sets a hierarchical budget topology (see [`BudgetTree`]).
    #[must_use]
    pub fn with_topology(mut self, topology: BudgetTree) -> ClusterConfig {
        self.topology = Some(topology);
        self
    }

    /// Sets the coordination period in epochs.
    #[must_use]
    pub fn with_epochs_per_round(mut self, epochs: usize) -> ClusterConfig {
        self.epochs_per_round = epochs;
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.servers.is_empty() {
            return Err("cluster needs at least one server".into());
        }
        if self.global_cap_w.is_nan() || self.global_cap_w <= 0.0 {
            return Err(format!("global cap {} must be positive", self.global_cap_w));
        }
        if self.epochs_per_round == 0 {
            return Err("epochs_per_round must be positive".into());
        }
        if self.threads == 0 {
            return Err("threads must be positive".into());
        }
        if self.quantum_w.is_nan() || self.quantum_w <= 0.0 {
            return Err(format!("quantum {} must be positive", self.quantum_w));
        }
        if self.dead_band_w.is_nan() || self.dead_band_w < 0.0 {
            return Err(format!(
                "dead band {} must be finite and non-negative",
                self.dead_band_w
            ));
        }
        for s in &self.servers {
            s.config
                .validate()
                .map_err(|e| format!("server {}: {e}", s.name))?;
        }
        if let Some(tree) = &self.topology {
            let names: Vec<&str> = self.servers.iter().map(|s| s.name.as_str()).collect();
            tree.validate(&names)?;
        }
        let names: Vec<&str> = self.servers.iter().map(|s| s.name.as_str()).collect();
        self.rpc.validate(&names).map_err(|e| format!("rpc: {e}"))?;
        self.rpc
            .resolve(self.round_s())
            .map_err(|e| format!("rpc: {e}"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_clusters() {
        let ok = ClusterConfig::new(
            vec![ServerSpec::small("s0", "MID1", 1)],
            100.0,
            CapSplit::Uniform,
        );
        assert!(ok.validate().is_ok());

        let mut c = ok.clone();
        c.servers.clear();
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.global_cap_w = 0.0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.epochs_per_round = 0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.threads = 0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.dead_band_w = -0.5;
        assert!(c.validate().is_err());

        let mut c = ok;
        c.servers[0].config.gamma = 2.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_checks_topology_leaves() {
        let fleet = vec![
            ServerSpec::small("s0", "MID1", 1),
            ServerSpec::small("s1", "MID1", 2),
        ];
        let mut c = ClusterConfig::new(fleet, 100.0, CapSplit::Uniform);
        c.topology = Some(BudgetTree::parse("f:uniform[s0,s1]").unwrap());
        assert!(c.validate().is_ok());
        c.topology = Some(BudgetTree::parse("f:uniform[s0]").unwrap());
        assert!(c.validate().is_err(), "s1 missing from the tree");
        c.topology = Some(BudgetTree::parse("f:uniform[s0,s1,ghost]").unwrap());
        assert!(c.validate().is_err(), "ghost is not in the fleet");
    }

    #[test]
    fn split_display_names() {
        assert_eq!(CapSplit::Uniform.to_string(), "uniform");
        assert_eq!(
            CapSplit::DemandProportional.to_string(),
            "demand-proportional"
        );
        assert_eq!(CapSplit::FastCap.to_string(), "fastcap");
        assert_eq!(CapSplit::SlaAware.to_string(), "sla-aware");
        assert_eq!(CapSplit::CriticalPath.to_string(), "critical-path");
    }

    #[test]
    fn churn_schedule_drains_in_round_order() {
        let mut sched: ChurnSchedule<&str> = ChurnSchedule::new();
        sched.leave(5, "a").unwrap();
        sched.join(2, "b", "b").unwrap();
        sched.join(5, "c", "c").unwrap();
        assert_eq!(sched.remaining(), 3);

        assert!(sched.drain_due(1).is_empty());
        let due = sched.drain_due(2);
        assert_eq!(due.len(), 1);
        assert!(matches!(due[0], ChurnAction::Join("b")));

        // Round 5's events come out in insertion order (stable sort).
        let due = sched.drain_due(10);
        assert_eq!(due.len(), 2);
        assert!(matches!(due[0], ChurnAction::Leave(ref n) if n == "a"));
        assert!(matches!(due[1], ChurnAction::Join("c")));
        assert!(sched.is_empty());
    }

    #[test]
    fn churn_schedule_rejects_same_round_duplicates() {
        // Regression: a join and a leave of the same server id at the same
        // round barrier used to be silently accepted, leaving whether the
        // server served that round to insertion-order luck.
        let mut sched: ChurnSchedule<&str> = ChurnSchedule::new();
        sched.join(3, "s0", "s0").unwrap();
        let err = sched.leave(3, "s0").unwrap_err();
        assert!(err.contains("s0") && err.contains("round 3"), "{err}");

        // The opposite insertion order is just as ambiguous.
        let mut sched: ChurnSchedule<&str> = ChurnSchedule::new();
        sched.leave(3, "s0").unwrap();
        assert!(sched.join(3, "s0", "s0").is_err());

        // Double joins and double leaves of one id are duplicates too.
        let mut sched: ChurnSchedule<&str> = ChurnSchedule::new();
        sched.join(3, "s0", "s0").unwrap();
        assert!(sched.join(3, "s0", "s0").is_err());
        let mut sched: ChurnSchedule<&str> = ChurnSchedule::new();
        sched.leave(3, "s0").unwrap();
        assert!(sched.leave(3, "s0").is_err());

        // Distinct rounds or distinct servers stay fine, and from_events
        // applies the same rule.
        let mut sched: ChurnSchedule<&str> = ChurnSchedule::new();
        sched.join(3, "s0", "s0").unwrap();
        sched.leave(4, "s0").unwrap();
        sched.leave(3, "s1").unwrap();
        assert_eq!(sched.remaining(), 3);
        assert!(ChurnSchedule::from_events(vec![
            ChurnEvent {
                round: 2,
                name: "x".into(),
                action: ChurnAction::Join("x"),
            },
            ChurnEvent {
                round: 2,
                name: "x".into(),
                action: ChurnAction::Leave("x".into()),
            },
        ])
        .is_err());
    }
}
