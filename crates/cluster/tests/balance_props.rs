//! Property tests for the front-end load balancer, centred on the
//! PowerHeadroom policy's highest-averages (D'Hondt) apportionment —
//! previously only exercised end-to-end through serving runs.
//!
//! The key subtlety is ties: D'Hondt breaks equal averages toward the
//! lowest server index, which is *not* permutation-equivariant (see
//! `dhondt_ties_break_toward_lowest_index_and_defeat_naive_permutation`),
//! so the permutation property is asserted only for pairwise-distinct
//! weights, and tie behavior is pinned by a model implementation instead.

use cluster::{BalancePolicy, LoadBalancer, ServerDemand, ServerLoad};
use proptest::prelude::*;

fn load(demand_w: f64, min_w: f64, cap_w: f64, queue_depth: usize) -> ServerLoad {
    ServerLoad {
        demand: ServerDemand {
            demand_w,
            min_w,
            active: true,
        },
        cap_w,
        queue_depth,
    }
}

/// The balancer's weight function, mirrored from the coordinator's
/// predicted-absolute-performance curve: `demand × sqrt(fill)` where
/// `fill` is the fraction of the demand headroom the cap covers (a server
/// at or below its floor predicts zero performance; one with no headroom
/// predicts full).
fn model_weight(l: &ServerLoad) -> f64 {
    let headroom = (l.demand.demand_w - l.demand.min_w).max(0.0);
    let perf = if headroom <= 0.0 {
        1.0
    } else {
        ((l.cap_w - l.demand.min_w) / headroom)
            .clamp(0.0, 1.0)
            .sqrt()
    };
    (l.demand.demand_w * perf).max(0.0)
}

/// Reference D'Hondt: assign each request to the server maximizing
/// `weight / (assigned + 1)`, strict-greater comparison so ties stay with
/// the lowest index. Returns per-server counts.
fn model_dhondt(weights: &[f64], count: usize) -> Vec<usize> {
    let mut assigned = vec![0usize; weights.len()];
    for _ in 0..count {
        let mut best = 0usize;
        let mut best_avg = f64::NEG_INFINITY;
        for (i, &w) in weights.iter().enumerate() {
            let avg = w / (assigned[i] + 1) as f64;
            if avg > best_avg {
                best = i;
                best_avg = avg;
            }
        }
        assigned[best] += 1;
    }
    assigned
}

fn counts(assign: &[usize], fleet: usize) -> Vec<usize> {
    let mut c = vec![0usize; fleet];
    for &i in assign {
        c[i] += 1;
    }
    c
}

/// A deterministic fleet whose telemetry is scrambled by `seed` (a small
/// multiplicative generator — the vendored proptest shim has no collection
/// strategies, so structure comes from integers).
fn fleet_from_seed(n: usize, mut seed: u64) -> Vec<ServerLoad> {
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as f64 / (1u64 << 31) as f64 // in [0, 1)
    };
    (0..n)
        .map(|_| {
            let min_w = 10.0 + 30.0 * next();
            let demand_w = min_w + 120.0 * next();
            // Caps anywhere from below the floor to above demand.
            let cap_w = demand_w * (0.2 + next());
            let queue_depth = (next() * 20.0) as usize;
            load(demand_w, min_w, cap_w, queue_depth)
        })
        .collect()
}

proptest! {
    /// Every policy conserves the batch: each request lands on exactly one
    /// valid server, so per-server counts sum to the batch size.
    #[test]
    fn assignments_sum_to_batch(
        policy in 0u8..3,
        n in 1usize..9,
        count in 0usize..40,
        seed in any::<u64>(),
    ) {
        let policy = [
            BalancePolicy::RoundRobin,
            BalancePolicy::LeastQueue,
            BalancePolicy::PowerHeadroom,
        ][policy as usize];
        let loads = fleet_from_seed(n, seed);
        let assign = LoadBalancer::new(policy).assign_batch(count, &loads);
        prop_assert_eq!(assign.len(), count);
        prop_assert!(assign.iter().all(|&i| i < n), "out-of-range index");
        let c = counts(&assign, n);
        prop_assert_eq!(c.iter().sum::<usize>(), count);
    }

    /// PowerHeadroom matches the reference D'Hondt apportionment over the
    /// mirrored weight curve exactly — ties, fallback and all.
    #[test]
    fn power_headroom_matches_model_dhondt(
        n in 1usize..9,
        count in 0usize..40,
        seed in any::<u64>(),
        pin_first in any::<bool>(),
    ) {
        let mut loads = fleet_from_seed(n, seed);
        if pin_first {
            // Force at least one zero-weight server into the mix.
            loads[0].cap_w = loads[0].demand.min_w;
        }
        let mut weights: Vec<f64> = loads.iter().map(model_weight).collect();
        if weights.iter().all(|&w| w <= 0.0) {
            weights.iter_mut().for_each(|w| *w = 1.0);
        }
        let assign =
            LoadBalancer::new(BalancePolicy::PowerHeadroom).assign_batch(count, &loads);
        prop_assert_eq!(counts(&assign, n), model_dhondt(&weights, count));
    }

    /// LeastQueue matches a naive linear-scan join-the-shortest-queue
    /// reference exactly, provisional assignments and lowest-index ties
    /// included — the heap in the implementation is a pure speedup.
    #[test]
    fn least_queue_matches_linear_scan_model(
        n in 1usize..9,
        count in 0usize..60,
        seed in any::<u64>(),
    ) {
        let loads = fleet_from_seed(n, seed);
        let mut depth: Vec<usize> = loads.iter().map(|l| l.queue_depth).collect();
        let reference: Vec<usize> = (0..count)
            .map(|_| {
                let mut best = 0;
                for (i, &d) in depth.iter().enumerate().skip(1) {
                    if d < depth[best] {
                        best = i;
                    }
                }
                depth[best] += 1;
                best
            })
            .collect();
        let assign = LoadBalancer::new(BalancePolicy::LeastQueue).assign_batch(count, &loads);
        prop_assert_eq!(assign, reference);
    }

    /// A server predicting zero performance (capped at or below its floor)
    /// receives nothing while any server predicts more — watts-starved
    /// machines are shielded from traffic.
    #[test]
    fn zero_utility_servers_get_zero(
        n in 2usize..9,
        count in 1usize..40,
        seed in any::<u64>(),
        n_pinned in 1usize..8,
    ) {
        let mut loads = fleet_from_seed(n, seed);
        let n_pinned = n_pinned.min(n - 1);
        for l in loads.iter_mut().take(n_pinned) {
            l.cap_w = l.demand.min_w; // at the floor: zero predicted perf
        }
        for l in loads.iter_mut().skip(n_pinned) {
            l.cap_w = l.demand.demand_w; // full demand: positive perf
        }
        let assign =
            LoadBalancer::new(BalancePolicy::PowerHeadroom).assign_batch(count, &loads);
        prop_assert!(
            assign.iter().all(|&i| i >= n_pinned),
            "a floor-pinned server was handed traffic: {:?}",
            assign
        );
    }

    /// With pairwise-distinct weights the apportionment is a pure function
    /// of each server's weight, not its position: rotating the fleet
    /// rotates the per-server counts with it.
    #[test]
    fn distinct_weight_apportionment_is_permutation_equivariant(
        n in 2usize..9,
        count in 0usize..40,
        rot in 1usize..8,
        seed in any::<u64>(),
    ) {
        // Distinct-by-construction weights: strictly increasing demands,
        // every server granted its full demand (perf 1, weight = demand).
        let base: Vec<ServerLoad> = (0..n)
            .map(|i| {
                let demand = 40.0 + 13.7 * i as f64 + (seed % 997) as f64 * 1e-3;
                load(demand, 10.0, demand, 0)
            })
            .collect();
        let rot = rot % n;
        let rotated: Vec<ServerLoad> = (0..n).map(|i| base[(i + rot) % n]).collect();

        let c_base = counts(
            &LoadBalancer::new(BalancePolicy::PowerHeadroom).assign_batch(count, &base),
            n,
        );
        let c_rot = counts(
            &LoadBalancer::new(BalancePolicy::PowerHeadroom).assign_batch(count, &rotated),
            n,
        );
        for i in 0..n {
            // rotated[i] is base[(i + rot) % n]: same server, same count.
            prop_assert_eq!(
                c_rot[i],
                c_base[(i + rot) % n],
                "server moved from {} to {} but its share changed",
                (i + rot) % n,
                i
            );
        }
    }
}

/// A fluid-scale batch: one hundred thousand requests over an uneven
/// fleet stay exact — D'Hondt shares match the closed-form proportional
/// split to within one request per server, and least-queue levels the
/// depths to within one. This is the regime (million-client barriers)
/// the heap-based assignment exists for; the naive O(n·count) references
/// above stay confined to small batches.
#[test]
fn heap_policies_stay_exact_at_bulk_batch_sizes() {
    let count = 100_000;
    let loads: Vec<ServerLoad> = (0..7)
        .map(|i| load(40.0 + 20.0 * i as f64, 10.0, 40.0 + 20.0 * i as f64, 13 * i))
        .collect();
    // Every server granted full demand: weight = demand, so the D'Hondt
    // share converges to weight / total within one seat.
    let assign = LoadBalancer::new(BalancePolicy::PowerHeadroom).assign_batch(count, &loads);
    let c = counts(&assign, loads.len());
    let total_w: f64 = loads.iter().map(|l| l.demand.demand_w).sum();
    for (i, l) in loads.iter().enumerate() {
        let ideal = count as f64 * l.demand.demand_w / total_w;
        assert!(
            (c[i] as f64 - ideal).abs() <= 1.0,
            "server {i}: {} seats vs ideal {ideal:.2}",
            c[i]
        );
    }
    // Least-queue levels final depths (initial + assigned) to within one.
    let assign = LoadBalancer::new(BalancePolicy::LeastQueue).assign_batch(count, &loads);
    let c = counts(&assign, loads.len());
    let final_depths: Vec<usize> = loads
        .iter()
        .zip(&c)
        .map(|(l, &a)| l.queue_depth + a)
        .collect();
    let (lo, hi) = (
        *final_depths.iter().min().unwrap(),
        *final_depths.iter().max().unwrap(),
    );
    assert!(hi - lo <= 1, "unlevel final depths: {final_depths:?}");
}

/// Ties go to the lowest index, which is exactly why the permutation
/// property above must exclude them: `[2, 1, 1]` at batch 2 gives server 0
/// both requests (averages 2, then 1-tie resolved to index 0), while the
/// permuted `[1, 2, 1]` spreads them — naive permutation invariance is
/// false under ties, and this pins the documented behavior.
#[test]
fn dhondt_ties_break_toward_lowest_index_and_defeat_naive_permutation() {
    let tied = |ws: &[f64]| -> Vec<ServerLoad> { ws.iter().map(|&w| load(w, 0.0, w, 0)).collect() };
    let c1 = counts(
        &LoadBalancer::new(BalancePolicy::PowerHeadroom).assign_batch(2, &tied(&[2.0, 1.0, 1.0])),
        3,
    );
    assert_eq!(c1, vec![2, 0, 0]);
    let c2 = counts(
        &LoadBalancer::new(BalancePolicy::PowerHeadroom).assign_batch(2, &tied(&[1.0, 2.0, 1.0])),
        3,
    );
    assert_eq!(c2, vec![1, 1, 0]);
}
