//! End-to-end cluster tests: budget respect, determinism across thread
//! counts, equivalence with the single-server engine, and the headline
//! property — coordinated (FastCap-style) splitting beats uniform splitting
//! on aggregate performance at the same global budget.

use cluster::{run_cluster, BudgetTree, CapSplit, ClusterConfig, ClusterResult, ServerSpec};
use coscale::{PolicyKind, PowerCapPolicy, Runner};

/// A small heterogeneous fleet: two big memory-bound servers and two small
/// compute-bound ones. Calibrated power envelopes (see the power model):
/// the 8-core MEM servers demand ~97 W (floor ~52 W), the 2-core ILP
/// servers ~57 W (floor ~36 W). The fast ILP servers get proportionally
/// longer workloads so the fleet stays busy together and the budget split
/// binds for the whole run.
fn hetero_fleet() -> Vec<ServerSpec> {
    let mut f = vec![
        ServerSpec::small_with_cores("mem-a", "MEM2", 11, 8),
        ServerSpec::small_with_cores("mem-b", "MEM2", 12, 8),
        ServerSpec::small_with_cores("ilp-a", "ILP2", 13, 2),
        ServerSpec::small_with_cores("ilp-b", "ILP2", 14, 2),
    ];
    for s in &mut f[2..] {
        s.config.target_instrs *= 3;
    }
    f
}

fn run_split(split: CapSplit, global_cap_w: f64, threads: usize) -> ClusterResult {
    run_cluster(
        ClusterConfig::new(hetero_fleet(), global_cap_w, split)
            .with_epochs_per_round(2)
            .with_threads(threads),
    )
}

#[test]
fn caps_never_exceed_global_budget() {
    for split in [
        CapSplit::Uniform,
        CapSplit::DemandProportional,
        CapSplit::FastCap,
    ] {
        let r = run_split(split, 250.0, 1);
        assert!(
            r.rounds >= 2,
            "{split}: want multiple rounds, got {}",
            r.rounds
        );
        assert_eq!(r.cap_timeline.len(), r.rounds);
        for (round, caps) in r.cap_timeline.iter().enumerate() {
            let total: f64 = caps.iter().sum();
            assert!(
                total <= r.global_cap_w + 1e-6,
                "{split} round {round}: caps sum {total} > budget {}",
                r.global_cap_w
            );
        }
    }
}

/// Satellite: the same cluster configuration produces byte-identical
/// aggregated results no matter how many worker threads drive it.
#[test]
fn thread_count_does_not_change_results() {
    let single = run_split(CapSplit::FastCap, 250.0, 1);
    for threads in [2, 4, 7] {
        let multi = run_split(CapSplit::FastCap, 250.0, threads);
        assert_eq!(
            single.digest(),
            multi.digest(),
            "digest differs between 1 and {threads} threads"
        );
    }
}

/// A one-server cluster under uniform splitting is just the single-server
/// engine with a fixed `PowerCapPolicy` — same makespan, same energy.
#[test]
fn single_server_cluster_matches_standalone_runner() {
    let cap_w = 55.0;
    let spec = ServerSpec::small("solo", "MEM1", 7);
    let clustered = run_cluster(ClusterConfig::new(
        vec![spec.clone()],
        cap_w,
        CapSplit::Uniform,
    ));
    let standalone = Runner::new(spec.config, PolicyKind::PowerCap)
        .with_policy(Box::new(PowerCapPolicy::new(cap_w)))
        .run();
    let c = &clustered.outcomes[0].result;
    assert_eq!(c.makespan, standalone.makespan, "makespans diverge");
    assert_eq!(c.epochs, standalone.epochs, "epoch counts diverge");
    assert!(
        (c.total_energy_j() - standalone.total_energy_j()).abs() < 1e-9,
        "energies diverge: {} vs {}",
        c.total_energy_j(),
        standalone.total_energy_j()
    );
}

/// The headline acceptance property: at the same global budget, the
/// coordinated FastCap-style split achieves at least the aggregate
/// performance of the uniform split. Uniform hands the small ILP servers
/// more than they can use while starving the big MEM servers; FastCap
/// saturates the small servers and routes the surplus to the big ones.
#[test]
fn fastcap_matches_or_beats_uniform_aggregate_performance() {
    let budget = 250.0;
    let uniform = run_split(CapSplit::Uniform, budget, 1);
    let fastcap = run_split(CapSplit::FastCap, budget, 1);
    let tput_uni = uniform.aggregate_throughput_ips();
    let tput_fc = fastcap.aggregate_throughput_ips();
    assert!(
        tput_fc >= tput_uni,
        "fastcap {tput_fc:.3e} IPS < uniform {tput_uni:.3e} IPS at {budget} W"
    );
    // The same holds for cluster makespan: the slowest (big) servers finish
    // no later under the coordinated split.
    assert!(
        fastcap.makespan() <= uniform.makespan(),
        "fastcap makespan {:?} > uniform {:?}",
        fastcap.makespan(),
        uniform.makespan()
    );
}

/// Tentpole: a two-level budget tree (uniform across racks, FastCap inside
/// each) stays within the global budget every round and is bit-identical
/// for 1/2/4/8 worker threads — the tree recursion runs entirely at the
/// round barrier, so it must not disturb the determinism contract.
#[test]
fn two_level_topology_respects_budget_and_thread_determinism() {
    let tree = BudgetTree::parse(
        "fleet:uniform[mem-rack:fastcap[mem-a,mem-b],ilp-rack:fastcap[ilp-a,ilp-b]]",
    )
    .unwrap();
    let run = |threads: usize| {
        run_cluster(
            ClusterConfig::new(hetero_fleet(), 250.0, CapSplit::Uniform)
                .with_topology(tree.clone())
                .with_epochs_per_round(2)
                .with_threads(threads),
        )
    };
    let r1 = run(1);
    assert!(r1.rounds >= 2);
    for (round, caps) in r1.cap_timeline.iter().enumerate() {
        let total: f64 = caps.iter().sum();
        assert!(
            total <= 250.0 + 1e-6,
            "round {round}: caps sum {total} > budget"
        );
        // While both racks are active, the uniform root pins each to half
        // the budget (servers are fleet-ordered rack by rack).
        if caps.iter().all(|&c| c > 0.0) {
            assert!(caps[0] + caps[1] <= 125.0 + 1e-6, "mem rack over its share");
            assert!(caps[2] + caps[3] <= 125.0 + 1e-6, "ilp rack over its share");
        }
    }
    // The digest records the topology, distinguishing it from a flat run.
    assert!(
        r1.digest().contains("topo=fleet:uniform["),
        "{}",
        r1.digest()
    );
    for threads in [2, 4, 8] {
        assert_eq!(
            r1.digest(),
            run(threads).digest(),
            "digest differs between 1 and {threads} threads"
        );
    }
}

/// Fairness bookkeeping sanity: uniform allocation is perfectly fair by
/// construction while the fleet is fully active; FastCap deliberately
/// skews caps toward demand, so its cap fairness is at most uniform's.
#[test]
fn fairness_index_orders_splits() {
    let uniform = run_split(CapSplit::Uniform, 250.0, 1);
    let fastcap = run_split(CapSplit::FastCap, 250.0, 1);
    let fair_uni = uniform.cap_fairness();
    let fair_fc = fastcap.cap_fairness();
    for f in [fair_uni, fair_fc] {
        assert!(
            (0.0..=1.0 + 1e-12).contains(&f),
            "fairness {f} out of range"
        );
    }
    assert!(
        fair_fc <= fair_uni + 1e-9,
        "fastcap fairness {fair_fc} above uniform {fair_uni}"
    );
    assert!(uniform.total_violations() <= 1, "uniform violations");
}
