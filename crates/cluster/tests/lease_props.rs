//! Property tests for the control plane's lease state machine
//! ([`LeaseClient`]) and the coordinator's conservative accounting
//! ([`LeaseLedger`]) — the two halves whose agreement keeps the fleet's
//! in-force caps under the budget no matter which grants the network
//! drops, delays, duplicates, or reorders.

use cluster::{CapGrant, GrantOutcome, LeaseClient, LeaseEntry, LeaseLedger, NodeId};
use proptest::prelude::*;

const LEASE: u64 = 8;

fn grant(term: u64, seq: u64, cap_w: f64, expires: u64) -> CapGrant {
    CapGrant {
        server: 0,
        term,
        seq,
        cap_w,
        expires,
    }
}

proptest! {
    /// The full grant → renew → expire → floor cycle under an arbitrary
    /// schedule of (possibly reordered, duplicated, late) grants and an
    /// advancing clock, checked against first principles at every step:
    ///
    /// * `(term, seq)` only ever advances, and advances exactly on
    ///   `Applied`;
    /// * an applied grant is live on arrival (a grant that would be dead
    ///   on arrival is refused as `Expired`, so expiry can never *raise*
    ///   a cap);
    /// * the effective cap is the applied grant's cap until its expiry
    ///   barrier, the floor from then on — with no third state.
    #[test]
    fn lease_lifecycle_only_moves_forward(
        floor in 0.0f64..5.0,
        events in proptest::collection::vec(
            // (clock advance, term, seq, cap, expiry offset from "now")
            (0u64..4, 0u64..3, 0u64..40, 0.0f64..100.0, 0i64..12),
            1..120,
        ),
    ) {
        let mut lc = LeaseClient::new(50.0, LEASE, floor, NodeId(99));
        let mut now = 0u64;
        for (advance, term, seq, cap, exp_off) in events {
            now += advance;
            let expires = now.saturating_add_signed(exp_off);
            let before = lc.granted();
            let g = grant(term, seq, cap, expires);
            match lc.apply(now, &g, NodeId(7)) {
                GrantOutcome::Applied => {
                    prop_assert!((term, seq) > before, "applied a non-newer grant");
                    prop_assert_eq!(lc.granted(), (term, seq));
                    prop_assert!(expires > now, "applied a grant already expired on arrival");
                    prop_assert!(!lc.on_floor(now), "freshly applied lease cannot be on the floor");
                    prop_assert_eq!(lc.effective_cap(now).to_bits(), cap.to_bits());
                    prop_assert_eq!(lc.leader(), NodeId(7), "apply must adopt the granting leader");
                }
                GrantOutcome::Stale => {
                    prop_assert!((term, seq) <= before, "refused a newer grant as stale");
                    prop_assert_eq!(lc.granted(), before, "stale grant mutated the lease");
                }
                GrantOutcome::Expired => {
                    prop_assert!((term, seq) > before, "expired-refusal of a non-newer grant");
                    prop_assert!(expires <= now, "refused a live grant as expired");
                    prop_assert_eq!(lc.granted(), before, "expired grant mutated the lease");
                }
            }
            // The two-state invariant holds at every instant.
            if lc.on_floor(now) {
                prop_assert_eq!(lc.effective_cap(now).to_bits(), floor.to_bits());
            }
        }
        // With the clock run far enough past any reachable expiry, every
        // lease ends on the floor.
        now += LEASE + 12 + 1;
        prop_assert!(lc.on_floor(now));
        prop_assert_eq!(lc.effective_cap(now).to_bits(), floor.to_bits());
    }

    /// Clock-skewed renewals: a coordinator whose clock lags the server's
    /// by `skew` rounds still keeps the lease alive iff the lease outlasts
    /// the skew, and every renewal is refused the moment the skew reaches
    /// the lease length — the server can never be held above the floor by
    /// grants that are dead on arrival.
    #[test]
    fn skewed_renewals_hold_iff_lease_outlasts_skew(
        skew in 0u64..16,
        rounds in 10u64..60,
    ) {
        let mut lc = LeaseClient::new(50.0, LEASE, 0.0, NodeId(99));
        let mut refusals = 0u64;
        for coord_round in 1..rounds {
            let server_round = coord_round + skew;
            let g = grant(0, coord_round, 50.0, coord_round + LEASE);
            match lc.apply(server_round, &g, NodeId(99)) {
                GrantOutcome::Applied => {
                    prop_assert!(skew < LEASE, "applied a grant dead on arrival (skew {skew})");
                    prop_assert!(!lc.on_floor(server_round));
                }
                GrantOutcome::Expired => {
                    refusals += 1;
                    prop_assert!(skew >= LEASE, "refused a live renewal (skew {skew})");
                }
                GrantOutcome::Stale => prop_assert!(false, "strictly increasing seqs can't be stale"),
            }
        }
        if skew >= LEASE {
            prop_assert_eq!(refusals, rounds - 1, "every renewal must be dead on arrival");
            // The bootstrap lease ran out long ago; the server sits on the
            // floor for good.
            prop_assert!(lc.on_floor(LEASE + skew + rounds));
        } else {
            prop_assert_eq!(refusals, 0);
        }
    }

    /// Ledger conservation: under any interleaving of sends, acks (in any
    /// order, including stale ones), and expiry sweeps,
    ///
    /// * a server's reserved watts never exceed the largest cap ever
    ///   offered to it (no invention of watts);
    /// * reserved watts never drop below the cap of the newest *acked*
    ///   still-live grant (no premature release: the cap the server is
    ///   provably running under stays covered until it expires);
    /// * acks only shrink the reservation, expiry only shrinks it, sends
    ///   only grow it.
    #[test]
    fn ledger_releases_only_on_ack_or_expiry(
        script in proptest::collection::vec(
            // (op selector, cap, lease length)
            (0u8..10, 1.0f64..100.0, 1u64..12),
            1..150,
        ),
    ) {
        let mut lg = LeaseLedger::new(1, 50.0, LEASE);
        // Mirror of every grant ever sent: (term=0, seq, cap, expires).
        let mut sent: Vec<(u64, f64, u64)> = vec![(0, 50.0, LEASE)];
        let mut next_seq = 1u64;
        let mut acked_seq = 0u64;
        let mut now = 0u64;
        for (op, cap, lease) in script {
            match op {
                0..=4 => {
                    lg.note_sent(
                        0,
                        LeaseEntry {
                            term: 0,
                            seq: next_seq,
                            cap_w: cap,
                            expires: now + lease,
                        },
                    );
                    sent.push((next_seq, cap, now + lease));
                    next_seq += 1;
                }
                5..=7 => {
                    // Ack some previously sent grant — newest, oldest, or
                    // repeated; the ledger must be monotone under all.
                    let pick = (cap as u64) % next_seq;
                    let before = lg.reserved_w(0);
                    lg.note_ack(0, 0, pick);
                    acked_seq = acked_seq.max(pick);
                    prop_assert!(lg.reserved_w(0) <= before + 1e-12, "ack grew the reservation");
                }
                _ => {
                    now += 1;
                    let before = lg.reserved_w(0);
                    lg.expire(now);
                    prop_assert!(lg.reserved_w(0) <= before + 1e-12, "expiry grew the reservation");
                }
            }
            let reserved = lg.reserved_w(0);
            let max_live_sent = sent
                .iter()
                .filter(|(_, _, exp)| *exp > now)
                .map(|(_, c, _)| *c)
                .fold(0.0, f64::max);
            prop_assert!(
                reserved <= max_live_sent + 1e-12,
                "reserved {reserved} exceeds any live sent cap {max_live_sent}"
            );
            // The newest acked grant still in force must stay covered:
            // the server is provably running under it.
            if let Some((_, c, _)) = sent
                .iter()
                .find(|(s, _, exp)| *s == acked_seq && *exp > now)
            {
                prop_assert!(
                    reserved + 1e-12 >= *c,
                    "reserved {reserved} dropped below the acked in-force cap {c}"
                );
            }
        }
    }

    /// The acked-state handoff, end to end over the ledger pair: a primary
    /// runs the failover-mode discipline (deferred releases tagged by
    /// heartbeat seq, confirmation-gated drops, funding from
    /// `budget − Σ reserved`) against two lease clients over a lossy,
    /// delaying plane; the standby's state is whichever heartbeat snapshot
    /// it last adopted (a ledger clone, exactly what [`ReplState`]
    /// replicates), and only adopted snapshots advance the primary's
    /// watermark. For **any** send/ack/loss/heartbeat schedule and **any**
    /// takeover point:
    ///
    /// * while the primary lives, each server's in-force cap never exceeds
    ///   the primary's reservation for it, and reservations sum within
    ///   budget;
    /// * the reconstructed standby ledger (worst outstanding cap per
    ///   server, pinned cleared) also sums within budget — the replication
    ///   prefix can lag arbitrarily, but every snapshot entry it reserves
    ///   is still reserved at the primary, because un-confirmed releases
    ///   stay pinned;
    /// * after takeover, even if the new leader immediately re-grants
    ///   every server its full reconstructed reserve while the dead
    ///   primary's in-flight grants keep landing, the fleet's in-force
    ///   caps stay within budget every round until everything old expires.
    #[test]
    fn reconstructed_ledger_dominates_in_force_caps(
        script in proptest::collection::vec(
            // (op selector, server, desired cap, delivery delay, fate)
            (0u8..10, 0usize..2, 1.0f64..90.0, 0u64..4, 0u8..4),
            10..120,
        ),
        standby_fates in 0u8..4,
    ) {
        let budget = 100.0;
        let n = 2;
        let mut primary = LeaseLedger::new(n, 40.0, LEASE);
        let mut standby = primary.clone(); // bootstrap state is shared
        let mut clients: Vec<LeaseClient> =
            (0..n).map(|_| LeaseClient::new(40.0, LEASE, 0.0, NodeId(9))).collect();
        // (due round, server, grant, ack lost?)
        let mut in_flight: Vec<(u64, usize, CapGrant, bool)> = Vec::new();
        let mut hb_seq = 0u64;
        let mut watermark = 0u64;
        let mut next_seq = 1u64;
        let mut now = 0u64;

        // Delivers every grant due by `now`; surviving acks release
        // deferred under the current heartbeat tag.
        macro_rules! deliver_due {
            () => {
                let due: Vec<_> = in_flight
                    .iter()
                    .filter(|(d, _, _, _)| *d <= now)
                    .cloned()
                    .collect();
                in_flight.retain(|(d, _, _, _)| *d > now);
                for (_, i, g, ack_lost) in due {
                    let outcome = clients[i].apply(now, &g, NodeId(9));
                    if outcome != GrantOutcome::Expired && !ack_lost {
                        // Acks (and re-acks of stale duplicates) carry the
                        // client's now-current state.
                        let (term, seq) = clients[i].granted();
                        primary.note_ack_deferred(i, term, seq, hb_seq);
                    }
                }
            };
        }

        for (op, i, desired, delay, fate) in script {
            match op {
                0..=4 => {
                    // Send: fund the increase from the free pool, exactly
                    // like `reconcile_pass`.
                    let reserved = primary.reserved_w(i);
                    let free = (budget - primary.total_reserved()).max(0.0);
                    let cap = if desired <= reserved {
                        desired
                    } else {
                        desired.min(reserved + free)
                    };
                    primary.note_sent(
                        i,
                        LeaseEntry { term: 0, seq: next_seq, cap_w: cap, expires: now + LEASE },
                    );
                    let g = grant(0, next_seq, cap, now + LEASE);
                    next_seq += 1;
                    if fate != 0 {
                        in_flight.push((now + delay, i, g, fate == 1));
                    }
                }
                5..=6 => {
                    // A barrier passes: clock, deliveries, deferred expiry.
                    now += 1;
                    deliver_due!();
                    primary.expire_deferred(now, hb_seq);
                    primary.release_confirmed(watermark);
                }
                _ => {
                    // Heartbeat: the snapshot is the ledger as sent —
                    // including releases still pinned awaiting this very
                    // confirmation. A lost heartbeat leaves the standby
                    // (and the watermark) behind.
                    hb_seq += 1;
                    if fate != 0 {
                        standby = primary.clone();
                        watermark = hb_seq;
                        primary.release_confirmed(watermark);
                    }
                }
            }
            prop_assert!(
                primary.total_reserved() <= budget + 1e-9,
                "primary over-reserved: {} W", primary.total_reserved()
            );
            for (i, lc) in clients.iter().enumerate() {
                prop_assert!(
                    lc.effective_cap(now) <= primary.reserved_w(i) + 1e-9,
                    "server {i} in force at {} W over the primary's {} W reservation",
                    lc.effective_cap(now), primary.reserved_w(i)
                );
            }
        }

        // Takeover: the standby rebuilds from its (arbitrarily stale)
        // snapshot, reserving the worst outstanding cap per server.
        let horizon = LEASE + 4;
        standby.reconstruct(99, now + horizon);
        prop_assert!(
            standby.total_reserved() <= budget + 1e-9,
            "reconstructed ledger over-reserved: {} W vs {} W at the primary",
            standby.total_reserved(), primary.total_reserved()
        );

        // Worst-case quarantine spend: the new leader immediately grants
        // every server its full reconstructed reserve (per-server, the
        // most `reconcile_pass` can send with an empty free pool). Some of
        // those grants are lost, leaving servers riding the dead
        // primary's leases.
        for (i, lc) in clients.iter_mut().enumerate() {
            let cap = standby.reserved_w(i);
            if cap > 0.0 && standby_fates & (1 << i) != 0 {
                lc.apply(now, &grant(99, 1 + i as u64, cap, now + LEASE), NodeId(10));
            }
        }
        // The dead primary's in-flight grants keep landing; conservation
        // must hold every round until every old lease has expired.
        let takeover = now;
        for r in takeover..=takeover + horizon {
            now = r;
            deliver_due!();
            let total: f64 = clients.iter().map(|lc| lc.effective_cap(r)).sum();
            prop_assert!(
                total <= budget + 1e-9,
                "takeover + {}: in-force caps sum to {total} W",
                r - takeover
            );
        }
    }
}
