//! Property tests for the control plane's lease state machine
//! ([`LeaseClient`]) and the coordinator's conservative accounting
//! ([`LeaseLedger`]) — the two halves whose agreement keeps the fleet's
//! in-force caps under the budget no matter which grants the network
//! drops, delays, duplicates, or reorders.

use cluster::{CapGrant, GrantOutcome, LeaseClient, LeaseEntry, LeaseLedger, NodeId};
use proptest::prelude::*;

const LEASE: u64 = 8;

fn grant(term: u64, seq: u64, cap_w: f64, expires: u64) -> CapGrant {
    CapGrant {
        server: 0,
        term,
        seq,
        cap_w,
        expires,
    }
}

proptest! {
    /// The full grant → renew → expire → floor cycle under an arbitrary
    /// schedule of (possibly reordered, duplicated, late) grants and an
    /// advancing clock, checked against first principles at every step:
    ///
    /// * `(term, seq)` only ever advances, and advances exactly on
    ///   `Applied`;
    /// * an applied grant is live on arrival (a grant that would be dead
    ///   on arrival is refused as `Expired`, so expiry can never *raise*
    ///   a cap);
    /// * the effective cap is the applied grant's cap until its expiry
    ///   barrier, the floor from then on — with no third state.
    #[test]
    fn lease_lifecycle_only_moves_forward(
        floor in 0.0f64..5.0,
        events in proptest::collection::vec(
            // (clock advance, term, seq, cap, expiry offset from "now")
            (0u64..4, 0u64..3, 0u64..40, 0.0f64..100.0, 0i64..12),
            1..120,
        ),
    ) {
        let mut lc = LeaseClient::new(50.0, LEASE, floor, NodeId(99));
        let mut now = 0u64;
        for (advance, term, seq, cap, exp_off) in events {
            now += advance;
            let expires = now.saturating_add_signed(exp_off);
            let before = lc.granted();
            let g = grant(term, seq, cap, expires);
            match lc.apply(now, &g, NodeId(7)) {
                GrantOutcome::Applied => {
                    prop_assert!((term, seq) > before, "applied a non-newer grant");
                    prop_assert_eq!(lc.granted(), (term, seq));
                    prop_assert!(expires > now, "applied a grant already expired on arrival");
                    prop_assert!(!lc.on_floor(now), "freshly applied lease cannot be on the floor");
                    prop_assert_eq!(lc.effective_cap(now).to_bits(), cap.to_bits());
                    prop_assert_eq!(lc.leader(), NodeId(7), "apply must adopt the granting leader");
                }
                GrantOutcome::Stale => {
                    prop_assert!((term, seq) <= before, "refused a newer grant as stale");
                    prop_assert_eq!(lc.granted(), before, "stale grant mutated the lease");
                }
                GrantOutcome::Expired => {
                    prop_assert!((term, seq) > before, "expired-refusal of a non-newer grant");
                    prop_assert!(expires <= now, "refused a live grant as expired");
                    prop_assert_eq!(lc.granted(), before, "expired grant mutated the lease");
                }
            }
            // The two-state invariant holds at every instant.
            if lc.on_floor(now) {
                prop_assert_eq!(lc.effective_cap(now).to_bits(), floor.to_bits());
            }
        }
        // With the clock run far enough past any reachable expiry, every
        // lease ends on the floor.
        now += LEASE + 12 + 1;
        prop_assert!(lc.on_floor(now));
        prop_assert_eq!(lc.effective_cap(now).to_bits(), floor.to_bits());
    }

    /// Clock-skewed renewals: a coordinator whose clock lags the server's
    /// by `skew` rounds still keeps the lease alive iff the lease outlasts
    /// the skew, and every renewal is refused the moment the skew reaches
    /// the lease length — the server can never be held above the floor by
    /// grants that are dead on arrival.
    #[test]
    fn skewed_renewals_hold_iff_lease_outlasts_skew(
        skew in 0u64..16,
        rounds in 10u64..60,
    ) {
        let mut lc = LeaseClient::new(50.0, LEASE, 0.0, NodeId(99));
        let mut refusals = 0u64;
        for coord_round in 1..rounds {
            let server_round = coord_round + skew;
            let g = grant(0, coord_round, 50.0, coord_round + LEASE);
            match lc.apply(server_round, &g, NodeId(99)) {
                GrantOutcome::Applied => {
                    prop_assert!(skew < LEASE, "applied a grant dead on arrival (skew {skew})");
                    prop_assert!(!lc.on_floor(server_round));
                }
                GrantOutcome::Expired => {
                    refusals += 1;
                    prop_assert!(skew >= LEASE, "refused a live renewal (skew {skew})");
                }
                GrantOutcome::Stale => prop_assert!(false, "strictly increasing seqs can't be stale"),
            }
        }
        if skew >= LEASE {
            prop_assert_eq!(refusals, rounds - 1, "every renewal must be dead on arrival");
            // The bootstrap lease ran out long ago; the server sits on the
            // floor for good.
            prop_assert!(lc.on_floor(LEASE + skew + rounds));
        } else {
            prop_assert_eq!(refusals, 0);
        }
    }

    /// Ledger conservation: under any interleaving of sends, acks (in any
    /// order, including stale ones), and expiry sweeps,
    ///
    /// * a server's reserved watts never exceed the largest cap ever
    ///   offered to it (no invention of watts);
    /// * reserved watts never drop below the cap of the newest *acked*
    ///   still-live grant (no premature release: the cap the server is
    ///   provably running under stays covered until it expires);
    /// * acks only shrink the reservation, expiry only shrinks it, sends
    ///   only grow it.
    #[test]
    fn ledger_releases_only_on_ack_or_expiry(
        script in proptest::collection::vec(
            // (op selector, cap, lease length)
            (0u8..10, 1.0f64..100.0, 1u64..12),
            1..150,
        ),
    ) {
        let mut lg = LeaseLedger::new(1, 50.0, LEASE);
        // Mirror of every grant ever sent: (term=0, seq, cap, expires).
        let mut sent: Vec<(u64, f64, u64)> = vec![(0, 50.0, LEASE)];
        let mut next_seq = 1u64;
        let mut acked_seq = 0u64;
        let mut now = 0u64;
        for (op, cap, lease) in script {
            match op {
                0..=4 => {
                    lg.note_sent(
                        0,
                        LeaseEntry {
                            term: 0,
                            seq: next_seq,
                            cap_w: cap,
                            expires: now + lease,
                        },
                    );
                    sent.push((next_seq, cap, now + lease));
                    next_seq += 1;
                }
                5..=7 => {
                    // Ack some previously sent grant — newest, oldest, or
                    // repeated; the ledger must be monotone under all.
                    let pick = (cap as u64) % next_seq;
                    let before = lg.reserved_w(0);
                    lg.note_ack(0, 0, pick);
                    acked_seq = acked_seq.max(pick);
                    prop_assert!(lg.reserved_w(0) <= before + 1e-12, "ack grew the reservation");
                }
                _ => {
                    now += 1;
                    let before = lg.reserved_w(0);
                    lg.expire(now);
                    prop_assert!(lg.reserved_w(0) <= before + 1e-12, "expiry grew the reservation");
                }
            }
            let reserved = lg.reserved_w(0);
            let max_live_sent = sent
                .iter()
                .filter(|(_, _, exp)| *exp > now)
                .map(|(_, c, _)| *c)
                .fold(0.0, f64::max);
            prop_assert!(
                reserved <= max_live_sent + 1e-12,
                "reserved {reserved} exceeds any live sent cap {max_live_sent}"
            );
            // The newest acked grant still in force must stay covered:
            // the server is provably running under it.
            if let Some((_, c, _)) = sent
                .iter()
                .find(|(s, _, exp)| *s == acked_seq && *exp > now)
            {
                prop_assert!(
                    reserved + 1e-12 >= *c,
                    "reserved {reserved} dropped below the acked in-force cap {c}"
                );
            }
        }
    }
}
