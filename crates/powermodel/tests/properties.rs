//! Property-based tests for the power models: monotonicity in frequency,
//! voltage and load, and physical bounds.

use cpusim::CoreCounters;
use memsim::MemCounters;
use powermodel::{
    core_power, core_power_shared_domain, l2_power, memory_power, MemGeometry, PowerConfig,
};
use proptest::prelude::*;
use simkernel::{Freq, Ps};

fn counters(window: Ps, busy_frac: f64, tic: u64) -> CoreCounters {
    CoreCounters {
        tic,
        busy_time: window.scale_f64(busy_frac),
        cac_alu: tic as f64 * 0.45,
        cac_fpu: tic as f64 * 0.02,
        cac_branch: tic as f64 * 0.18,
        cac_loadstore: tic as f64 * 0.35,
        ..CoreCounters::default()
    }
}

fn geom() -> MemGeometry {
    MemGeometry::of(&memsim::MemConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Core power is monotone non-decreasing in frequency for any activity.
    #[test]
    fn core_power_monotone_in_frequency(busy in 0.0f64..1.0, tic in 1u64..5_000_000) {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let c = counters(w, busy, tic);
        let mut last = 0.0;
        for ghz10 in 22..=40u64 {
            let p = core_power(&cfg, Freq::from_ghz(ghz10 as f64 / 10.0), &c, w);
            prop_assert!(p >= last - 1e-12, "power dropped at {ghz10}: {last} -> {p}");
            last = p;
        }
    }

    /// Core power is bounded by leakage below and by ~2x the calibration
    /// point above (FPU-heavy mixes can exceed the typical-activity point).
    #[test]
    fn core_power_within_physical_bounds(busy in 0.0f64..1.0, tic in 1u64..5_000_000) {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let c = counters(w, busy, tic);
        let p = core_power(&cfg, cfg.core_fmax, &c, w);
        let leak_floor = cfg.core_max_power_w * cfg.core_leak_frac * 0.9;
        prop_assert!(p >= leak_floor, "below leakage: {p}");
        prop_assert!(p <= cfg.core_max_power_w * 2.0, "implausibly high: {p}");
    }

    /// A shared voltage domain never reduces a core's power, and equals the
    /// per-core model when the domain runs at the core's own frequency.
    #[test]
    fn shared_domain_voltage_dominates(busy in 0.0f64..1.0, fc in 0usize..10, fv in 0usize..10) {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let c = counters(w, busy, 1_000_000);
        let grid: Vec<Freq> = (0..10)
            .map(|k| Freq::from_ghz(2.2 + 1.8 * k as f64 / 9.0))
            .collect();
        let own = core_power(&cfg, grid[fc], &c, w);
        let shared = core_power_shared_domain(&cfg, grid[fc], grid[fv], &c, w);
        if fv >= fc {
            prop_assert!(shared >= own - 1e-12);
        } else {
            // Voltage-setting frequency below the core's own clamps up.
            prop_assert!((shared - own).abs() < 1e-12);
        }
    }

    /// Memory power is monotone in traffic intensity.
    #[test]
    fn memory_power_monotone_in_traffic(scale in 1u64..50) {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let mk = |k: u64| MemCounters {
            reads: 2_000 * k,
            page_opens: 2_500 * k,
            bus_busy: Ps::from_us(10) * k.min(95),
            rank_active: Ps::from_us(40) * k.min(399),
            refreshes: 2048,
            ..MemCounters::default()
        };
        let lo = memory_power(&cfg, &geom(), Freq::from_mhz(800), &mk(scale), w);
        let hi = memory_power(&cfg, &geom(), Freq::from_mhz(800), &mk(scale + 1), w);
        prop_assert!(hi.total() >= lo.total() - 1e-9);
    }

    /// L2 power grows linearly with access count.
    #[test]
    fn l2_power_linear_in_accesses(a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let pa = l2_power(&cfg, a, w) - cfg.l2_leakage_w;
        let pb = l2_power(&cfg, b, w) - cfg.l2_leakage_w;
        if a > 0 && b > 0 {
            let ratio = (pa / a as f64) / (pb / b as f64);
            prop_assert!((ratio - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(pa >= 0.0 && pb >= 0.0);
        }
    }

    /// The voltage map is monotone and clamped to its endpoints.
    #[test]
    fn voltage_map_monotone(mhz in 1_000u64..6_000) {
        let cfg = PowerConfig::default();
        let v = cfg.core_voltage(Freq::from_mhz(mhz));
        prop_assert!((cfg.core_vmin..=cfg.core_vmax).contains(&v));
        let v2 = cfg.core_voltage(Freq::from_mhz(mhz + 100));
        prop_assert!(v2 >= v - 1e-12);
    }

    /// Sleep residency can only lower DIMM power, never raise it.
    #[test]
    fn sleep_never_raises_power(sleep_us in 0u64..1_000) {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let awake = MemCounters::default();
        let mut sleeping = awake;
        sleeping.rank_sleep = Ps::from_us(sleep_us) * 16;
        let p_awake = memory_power(&cfg, &geom(), Freq::from_mhz(800), &awake, w);
        let p_sleep = memory_power(&cfg, &geom(), Freq::from_mhz(800), &sleeping, w);
        prop_assert!(p_sleep.dimm_w <= p_awake.dimm_w + 1e-9);
    }
}
