//! Power-model calibration constants and voltage maps.
//!
//! The paper estimates CPU power with McPAT and memory power with Micron's
//! DDR3 power calculator. Neither exists in Rust, so we use analytic models
//! with the paper's own calibration targets (§4.1):
//!
//! * at maximum frequencies the CPU accounts for ≈60%, the memory subsystem
//!   ≈30%, and the rest of the system ≈10% of total power;
//! * MC power ranges 4.5–15 W with utilization; PLL/register power ranges
//!   0.1–0.5 W per DIMM;
//! * core voltage scales linearly with frequency over 0.65–1.2 V
//!   (Sandy-Bridge-like), cores 2.2–4.0 GHz;
//! * DIMM voltage is fixed (only frequency scales), per §3.4.

use simkernel::Freq;

/// All calibration constants for the power models.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerConfig {
    /// Lowest core frequency (V = `core_vmin` here).
    pub core_fmin: Freq,
    /// Highest core frequency (V = `core_vmax` here).
    pub core_fmax: Freq,
    /// Core voltage at `core_fmin`.
    pub core_vmin: f64,
    /// Core voltage at `core_fmax`.
    pub core_vmax: f64,
    /// One core's power at `core_fmax`/`core_vmax` with typical activity.
    pub core_max_power_w: f64,
    /// Fraction of `core_max_power_w` that is static/leakage at `core_vmax`.
    pub core_leak_frac: f64,
    /// Activity factor attributed to a stalled (but clocked) pipeline,
    /// relative to the typical active factor of 1.0.
    pub core_idle_activity: f64,

    /// Shared-L2 leakage (uncore domain, never scaled).
    pub l2_leakage_w: f64,
    /// Dynamic energy per L2 access, joules.
    pub l2_access_energy_j: f64,

    /// Memory bus frequency at the top of the DVFS grid (device currents are
    /// specified at this point).
    pub mem_fmax: Freq,
    /// DRAM supply voltage (fixed; commercial parts lack DIMM DVFS, §3.4).
    pub dram_vdd: f64,
    /// DRAM chips per rank (x8 devices with ECC → 9).
    pub chips_per_rank: f64,
    /// Global scale on per-chip currents calibrating DIMM power to the
    /// paper's CPU:memory budget.
    pub rank_current_scale: f64,
    /// Per-chip precharge-powerdown current, mA (idle ranks powerdown).
    pub idd_pre_pdn_ma: f64,
    /// Per-chip active-standby current, mA.
    pub idd_act_stby_ma: f64,
    /// Per-chip activate-precharge current, mA (IDD0-like).
    pub idd_act_pre_ma: f64,
    /// Per-chip burst read/write current, mA (IDD4-like).
    pub idd_burst_ma: f64,
    /// Per-chip refresh current, mA.
    pub idd_refresh_ma: f64,
    /// Per-chip self-refresh current, mA (managed idle sleep; IDD6-class).
    pub idd_sleep_ma: f64,
    /// Fraction of background current that persists at the lowest device
    /// frequency (the rest scales linearly with frequency).
    pub idd_freq_floor: f64,

    /// Memory-controller power at zero utilization, full MC frequency.
    pub mc_min_w: f64,
    /// Memory-controller power at full utilization, full MC frequency.
    pub mc_max_w: f64,
    /// MC voltage at the lowest MC frequency (MC shares the core voltage
    /// technology but has its own domain, §3).
    pub mc_vmin: f64,
    /// MC voltage at the highest MC frequency.
    pub mc_vmax: f64,

    /// Per-DIMM PLL/register power at zero utilization.
    pub pllreg_min_w: f64,
    /// Per-DIMM PLL/register power at full utilization.
    pub pllreg_max_w: f64,

    /// Fixed rest-of-system power (everything except cores, L2, memory
    /// subsystem). Derived from the baseline fraction via
    /// [`PowerConfig::with_rest_fraction`].
    pub rest_power_w: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            core_fmin: Freq::from_ghz(2.2),
            core_fmax: Freq::from_ghz(4.0),
            core_vmin: 0.65,
            core_vmax: 1.2,
            core_max_power_w: 7.5,
            core_leak_frac: 0.30,
            core_idle_activity: 0.30,

            l2_leakage_w: 2.5,
            l2_access_energy_j: 2.0e-9,

            mem_fmax: Freq::from_mhz(800),
            dram_vdd: 1.5,
            chips_per_rank: 9.0,
            rank_current_scale: 1.5,
            idd_pre_pdn_ma: 45.0,
            idd_act_stby_ma: 67.0,
            idd_act_pre_ma: 120.0,
            idd_burst_ma: 250.0,
            idd_refresh_ma: 240.0,
            idd_sleep_ma: 10.0,
            idd_freq_floor: 0.35,

            mc_min_w: 4.5,
            mc_max_w: 15.0,
            mc_vmin: 0.65,
            mc_vmax: 1.2,

            pllreg_min_w: 0.1,
            pllreg_max_w: 0.5,

            // 10% of baseline total given ~120 W CPU + ~60 W memory:
            // rest = 180 * 0.1/0.9 = 20 W.
            rest_power_w: 20.0,
        }
    }
}

impl PowerConfig {
    /// Reference CPU+memory power used to anchor the rest-of-system share
    /// (16 cores at max plus a loaded memory subsystem).
    pub const REFERENCE_CPU_MEM_W: f64 = 180.0;

    /// Sets the rest-of-system power so that it would account for `frac` of
    /// baseline total system power (Figure 11 varies this 5–20%).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < frac < 1`.
    pub fn with_rest_fraction(mut self, frac: f64) -> Self {
        assert!(
            frac > 0.0 && frac < 1.0,
            "rest fraction {frac} out of (0,1)"
        );
        self.rest_power_w = Self::REFERENCE_CPU_MEM_W * frac / (1.0 - frac);
        self
    }

    /// Scales memory-side power by `ratio` relative to the default
    /// calibration (Figures 12–13 vary the CPU:memory power ratio).
    pub fn with_memory_power_scale(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0, "memory power scale must be positive");
        self.rank_current_scale *= ratio;
        self.mc_min_w *= ratio;
        self.mc_max_w *= ratio;
        self.pllreg_min_w *= ratio;
        self.pllreg_max_w *= ratio;
        self
    }

    /// Scales per-core power by `ratio` relative to the default calibration.
    pub fn with_cpu_power_scale(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0, "cpu power scale must be positive");
        self.core_max_power_w *= ratio;
        self
    }

    /// Narrows the core (and MC) voltage range by raising the minimum
    /// voltage (Figure 14 uses 0.95–1.2 V).
    pub fn with_core_vmin(mut self, vmin: f64) -> Self {
        assert!(vmin > 0.0 && vmin <= self.core_vmax, "bad vmin {vmin}");
        self.core_vmin = vmin;
        self.mc_vmin = vmin;
        self
    }

    /// Core voltage at frequency `f`: linear in frequency between the two
    /// endpoints, clamped at the ends (matches the i7 measurement cited in
    /// §4.1).
    pub fn core_voltage(&self, f: Freq) -> f64 {
        linear_v(
            f,
            self.core_fmin,
            self.core_fmax,
            self.core_vmin,
            self.core_vmax,
        )
    }

    /// MC voltage at MC frequency `f_mc` (the MC runs at twice the bus
    /// frequency; its voltage map spans the doubled grid).
    pub fn mc_voltage(&self, f_mc: Freq) -> f64 {
        let lo = Freq::from_hz(2 * 200_000_000);
        let hi = Freq::from_hz(2 * self.mem_fmax.as_hz());
        linear_v(f_mc, lo, hi, self.mc_vmin, self.mc_vmax)
    }

    /// Frequency-scaling factor for DRAM background currents.
    pub fn dram_freq_factor(&self, bus: Freq) -> f64 {
        let r = bus.as_hz() as f64 / self.mem_fmax.as_hz() as f64;
        self.idd_freq_floor + (1.0 - self.idd_freq_floor) * r.min(1.0)
    }
}

fn linear_v(f: Freq, fmin: Freq, fmax: Freq, vmin: f64, vmax: f64) -> f64 {
    if f <= fmin {
        return vmin;
    }
    if f >= fmax {
        return vmax;
    }
    let span = (fmax.as_hz() - fmin.as_hz()) as f64;
    vmin + (vmax - vmin) * (f.as_hz() - fmin.as_hz()) as f64 / span
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_map_endpoints_and_midpoint() {
        let c = PowerConfig::default();
        assert!((c.core_voltage(Freq::from_ghz(2.2)) - 0.65).abs() < 1e-9);
        assert!((c.core_voltage(Freq::from_ghz(4.0)) - 1.2).abs() < 1e-9);
        let mid = c.core_voltage(Freq::from_ghz(3.1));
        assert!((mid - 0.925).abs() < 1e-9);
        // Clamped outside the range.
        assert!((c.core_voltage(Freq::from_ghz(1.0)) - 0.65).abs() < 1e-9);
        assert!((c.core_voltage(Freq::from_ghz(5.0)) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn mc_voltage_follows_doubled_grid() {
        let c = PowerConfig::default();
        assert!((c.mc_voltage(Freq::from_mhz(400)) - 0.65).abs() < 1e-9);
        assert!((c.mc_voltage(Freq::from_mhz(1600)) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn rest_fraction_math() {
        let c = PowerConfig::default().with_rest_fraction(0.10);
        assert!((c.rest_power_w - 20.0).abs() < 1e-9);
        let c = PowerConfig::default().with_rest_fraction(0.20);
        assert!((c.rest_power_w - 45.0).abs() < 1e-9);
    }

    #[test]
    fn scale_builders() {
        let c = PowerConfig::default().with_memory_power_scale(2.0);
        assert!((c.mc_max_w - 30.0).abs() < 1e-9);
        let c = PowerConfig::default().with_cpu_power_scale(0.5);
        assert!((c.core_max_power_w - 3.75).abs() < 1e-9);
        let c = PowerConfig::default().with_core_vmin(0.95);
        assert!((c.core_voltage(Freq::from_ghz(2.2)) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn dram_freq_factor_bounds() {
        let c = PowerConfig::default();
        assert!((c.dram_freq_factor(Freq::from_mhz(800)) - 1.0).abs() < 1e-9);
        let f200 = c.dram_freq_factor(Freq::from_mhz(200));
        assert!(f200 > 0.35 && f200 < 0.6);
    }

    #[test]
    #[should_panic(expected = "out of (0,1)")]
    fn bad_rest_fraction_panics() {
        let _ = PowerConfig::default().with_rest_fraction(1.0);
    }
}
