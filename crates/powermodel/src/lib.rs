//! Power models for the CoScale reproduction.
//!
//! The paper computes CPU power with McPAT and memory power with Micron's
//! DDR3 spreadsheet model; neither is available here, so this crate provides
//! analytic equivalents calibrated to the paper's stated budget — at maximum
//! frequency the CPU is ≈60%, the memory subsystem ≈30% and the rest of the
//! system ≈10% of total power, with MC power spanning 4.5–15 W and DIMM
//! PLL/register power 0.1–0.5 W by utilization (§4.1).
//!
//! All models are pure functions of performance-counter windows, so the
//! same code scores measured epochs (energy accounting) and hypothetical
//! frequency choices (the controllers' predictions).
//!
//! # Example
//!
//! ```
//! use powermodel::{core_power, PowerConfig};
//! use cpusim::CoreCounters;
//! use simkernel::{Freq, Ps};
//!
//! let cfg = PowerConfig::default();
//! let window = Ps::from_ms(1);
//! let idle = CoreCounters::default();
//! let p = core_power(&cfg, Freq::from_ghz(2.2), &idle, window);
//! assert!(p > 0.0 && p < 7.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod models;

pub use config::PowerConfig;
pub use models::{
    core_power, core_power_shared_domain, l2_power, memory_power, system_power, MemGeometry,
    MemPower, SystemPower,
};
