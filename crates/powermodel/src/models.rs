//! The analytic power models: core, L2, DRAM, memory controller,
//! PLL/register, and full-system aggregation.
//!
//! Every function here is *pure*: the same functions score both observed
//! windows (energy accounting) and hypothetical frequency settings (the
//! policies' what-if predictions), exactly as the paper's controller uses
//! one model for both.

use crate::PowerConfig;
use cpusim::CoreCounters;
use memsim::MemCounters;
use simkernel::{Freq, Ps};

/// Relative switching cost of each instruction class, normalized so that a
/// typical integer mix has an activity factor near 1.0 (the approach of
/// event-driven energy accounting [Bellosa '00; Isci & Martonosi '03]).
const W_ALU: f64 = 1.0;
const W_FPU: f64 = 1.5;
const W_BRANCH: f64 = 0.8;
const W_LOADSTORE: f64 = 1.2;
/// Normalizer: activity factor of the reference mix.
const AF_REFERENCE: f64 = 1.05;

/// Average power of one core over a window, in watts.
///
/// `ctr` must be the counter *delta* for the window (see
/// [`CoreCounters::delta`]); `window` its wall-clock length; `freq` the
/// frequency the core ran at.
///
/// The model is `P = P_dyn + P_leak` with
/// `P_dyn ∝ AF_eff · (V/Vmax)² · f` and `P_leak ∝ V`, where the effective
/// activity factor blends the instruction-mix activity while busy with a
/// residual idle activity while stalled.
pub fn core_power(cfg: &PowerConfig, freq: Freq, ctr: &CoreCounters, window: Ps) -> f64 {
    core_power_shared_domain(cfg, freq, freq, ctr, window)
}

/// Like [`core_power`], but the supply voltage is set by `vfreq` — the
/// fastest frequency in the core's *voltage domain* — while dynamic power
/// still follows the core's own clock `freq`. With per-core domains
/// (`vfreq == freq`) this reduces to [`core_power`]; with shared domains a
/// slow core pays the fast neighbour's voltage (§3.4 of the paper).
pub fn core_power_shared_domain(
    cfg: &PowerConfig,
    freq: Freq,
    vfreq: Freq,
    ctr: &CoreCounters,
    window: Ps,
) -> f64 {
    if window == Ps::ZERO {
        return 0.0;
    }
    let v = cfg.core_voltage(vfreq.max(freq)) / cfg.core_vmax;
    let f = freq.as_hz() as f64 / cfg.core_fmax.as_hz() as f64;

    let af_busy = if ctr.tic == 0 {
        cfg.core_idle_activity
    } else {
        let weighted = W_ALU * ctr.cac_alu
            + W_FPU * ctr.cac_fpu
            + W_BRANCH * ctr.cac_branch
            + W_LOADSTORE * ctr.cac_loadstore;
        (weighted / ctr.tic as f64) / AF_REFERENCE
    };
    let busy_frac = (ctr.busy_time.as_secs_f64() / window.as_secs_f64()).min(1.0);
    let af_eff = af_busy * busy_frac + cfg.core_idle_activity * (1.0 - busy_frac);

    let k_dyn = cfg.core_max_power_w * (1.0 - cfg.core_leak_frac);
    let k_leak = cfg.core_max_power_w * cfg.core_leak_frac;
    k_dyn * af_eff * v * v * f + k_leak * v
}

/// Average power of the shared L2 over a window: fixed uncore leakage plus
/// per-access dynamic energy.
pub fn l2_power(cfg: &PowerConfig, accesses: u64, window: Ps) -> f64 {
    if window == Ps::ZERO {
        return cfg.l2_leakage_w;
    }
    cfg.l2_leakage_w + accesses as f64 * cfg.l2_access_energy_j / window.as_secs_f64()
}

/// Memory-subsystem power split into its components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemPower {
    /// DRAM devices: background + activate/precharge + burst + refresh.
    pub dimm_w: f64,
    /// On-chip memory controller (voltage- and frequency-scaled).
    pub mc_w: f64,
    /// DIMM PLL and register devices.
    pub pllreg_w: f64,
}

impl MemPower {
    /// Total memory-subsystem power.
    pub fn total(&self) -> f64 {
        self.dimm_w + self.mc_w + self.pllreg_w
    }
}

/// Geometry the memory power model needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemGeometry {
    /// Total ranks in the system.
    pub ranks: usize,
    /// Total DIMMs in the system.
    pub dimms: usize,
    /// Number of channels.
    pub channels: usize,
    /// Row cycle time (tRAS + tRP), for per-activation energy.
    pub t_rc: Ps,
    /// Refresh cycle time, for refresh energy.
    pub t_rfc: Ps,
}

impl MemGeometry {
    /// Geometry of a [`memsim::MemConfig`].
    pub fn of(config: &memsim::MemConfig) -> Self {
        MemGeometry {
            ranks: config.total_ranks(),
            dimms: config.total_dimms(),
            channels: config.channels,
            t_rc: config.timings.t_ras + config.timings.t_rp,
            t_rfc: config.timings.t_rfc,
        }
    }
}

/// Average memory-subsystem power over a window at bus frequency `bus`.
///
/// `ctr` must be the [`MemCounters`] delta for the window. Follows the
/// Micron power-calculator structure: per-rank background power chosen by
/// state residency (active standby vs precharge powerdown), per-activation
/// energy, burst power proportional to data-bus occupancy, and refresh
/// energy — plus the paper's MC (4.5–15 W, utilization- and DVFS-scaled)
/// and per-DIMM PLL/register (0.1–0.5 W) components.
pub fn memory_power(
    cfg: &PowerConfig,
    geom: &MemGeometry,
    bus: Freq,
    ctr: &MemCounters,
    window: Ps,
) -> MemPower {
    if window == Ps::ZERO {
        return MemPower::default();
    }
    let w = window.as_secs_f64();
    let v = cfg.dram_vdd;
    let chips = cfg.chips_per_rank * cfg.rank_current_scale;
    let ma = 1e-3;
    let ff = cfg.dram_freq_factor(bus);

    // Background: each rank is "some bank active" (active standby), idle
    // (fast-exit precharge powerdown, the mode MemScale/CoScale assume), or
    // — when an idle-state manager is configured — asleep in self-refresh.
    let act_frac = ctr.rank_active_fraction(window, geom.ranks);
    let sleep_frac = ctr
        .rank_sleep_fraction(window, geom.ranks)
        .min(1.0 - act_frac);
    let idle_frac = (1.0 - act_frac - sleep_frac).max(0.0);
    let bg_per_rank = chips
        * v
        * ff
        * (act_frac * cfg.idd_act_stby_ma
            + idle_frac * cfg.idd_pre_pdn_ma
            + sleep_frac * cfg.idd_sleep_ma)
        * ma;
    let background = bg_per_rank * geom.ranks as f64;

    // Activate/precharge energy per page open.
    let e_act = (cfg.idd_act_pre_ma - cfg.idd_act_stby_ma).max(0.0)
        * ma
        * v
        * chips
        * geom.t_rc.as_secs_f64();
    let activate = ctr.page_opens as f64 * e_act / w;

    // Burst power while the data bus is occupied.
    let p_burst = (cfg.idd_burst_ma - cfg.idd_act_stby_ma).max(0.0) * ma * v * chips * ff;
    let burst = p_burst * ctr.bus_busy.as_secs_f64() / w;

    // Refresh.
    let e_ref = (cfg.idd_refresh_ma - cfg.idd_pre_pdn_ma).max(0.0)
        * ma
        * v
        * chips
        * geom.t_rfc.as_secs_f64();
    let refresh = ctr.refreshes as f64 * e_ref / w;

    let dimm_w = background + activate + burst + refresh;

    // Memory controller: linear in utilization, scaled by its own V²f.
    let util = ctr.bus_utilization(window, geom.channels);
    let f_mc = Freq::from_hz(2 * bus.as_hz());
    let v_mc = cfg.mc_voltage(f_mc) / cfg.mc_vmax;
    let f_rel = bus.as_hz() as f64 / cfg.mem_fmax.as_hz() as f64;
    let mc_w = (cfg.mc_min_w + (cfg.mc_max_w - cfg.mc_min_w) * util) * v_mc * v_mc * f_rel;

    // PLL/register per DIMM: register part scales with utilization, PLL part
    // with frequency.
    let pll_scale = 0.5 + 0.5 * f_rel;
    let pllreg_w = (cfg.pllreg_min_w + (cfg.pllreg_max_w - cfg.pllreg_min_w) * util)
        * pll_scale
        * geom.dimms as f64;

    MemPower {
        dimm_w,
        mc_w,
        pllreg_w,
    }
}

/// Full-system average power over one window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SystemPower {
    /// Per-core power, watts.
    pub cores_w: Vec<f64>,
    /// Shared L2 power.
    pub l2_w: f64,
    /// Memory subsystem breakdown.
    pub mem: MemPower,
    /// Fixed rest-of-system power.
    pub rest_w: f64,
}

impl SystemPower {
    /// Sum of all components, watts.
    pub fn total(&self) -> f64 {
        self.cores_w.iter().sum::<f64>() + self.l2_w + self.mem.total() + self.rest_w
    }

    /// Total CPU (all cores) power.
    pub fn cpu_total(&self) -> f64 {
        self.cores_w.iter().sum()
    }

    /// Energy over `window`, joules.
    pub fn energy(&self, window: Ps) -> f64 {
        self.total() * window.as_secs_f64()
    }
}

/// Evaluates the full-system power model for one window.
///
/// `core_windows` pairs each core's counter delta with the frequency it ran
/// at; `l2_accesses` is the L2 access count in the window.
pub fn system_power(
    cfg: &PowerConfig,
    geom: &MemGeometry,
    core_windows: &[(Freq, CoreCounters)],
    l2_accesses: u64,
    bus: Freq,
    mem_ctr: &MemCounters,
    window: Ps,
) -> SystemPower {
    SystemPower {
        cores_w: core_windows
            .iter()
            .map(|(f, c)| core_power(cfg, *f, c, window))
            .collect(),
        l2_w: l2_power(cfg, l2_accesses, window),
        mem: memory_power(cfg, geom, bus, mem_ctr, window),
        rest_w: cfg.rest_power_w,
    }
}

#[cfg(test)]
// Tests build counter/config fixtures incrementally from defaults on purpose.
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    fn busy_counters(window: Ps, busy_frac: f64, tic: u64) -> CoreCounters {
        CoreCounters {
            tic,
            busy_time: window.scale_f64(busy_frac),
            cac_alu: tic as f64 * 0.45,
            cac_fpu: tic as f64 * 0.02,
            cac_branch: tic as f64 * 0.18,
            cac_loadstore: tic as f64 * 0.35,
            ..CoreCounters::default()
        }
    }

    fn geom() -> MemGeometry {
        MemGeometry::of(&memsim::MemConfig::default())
    }

    #[test]
    fn core_power_at_max_matches_calibration() {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let p = core_power(&cfg, cfg.core_fmax, &busy_counters(w, 1.0, 1_000_000), w);
        // Typical INT mix AF ≈ 1.0 → close to the calibrated 7.5 W.
        assert!((p - 7.5).abs() < 0.3, "power {p}");
    }

    #[test]
    fn core_power_drops_superlinearly_with_frequency() {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let c = busy_counters(w, 1.0, 1_000_000);
        let p_hi = core_power(&cfg, Freq::from_ghz(4.0), &c, w);
        let p_lo = core_power(&cfg, Freq::from_ghz(2.2), &c, w);
        // V scales 1.2→0.65 and f 4.0→2.2: dynamic part falls by
        // (0.65/1.2)²·(2.2/4) ≈ 0.16, far below the 0.55 linear ratio.
        assert!(p_lo < p_hi * 0.45, "p_lo {p_lo}, p_hi {p_hi}");
        assert!(p_lo > 0.0);
    }

    #[test]
    fn stalled_core_draws_less_than_busy_core() {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let busy = core_power(&cfg, cfg.core_fmax, &busy_counters(w, 1.0, 1_000_000), w);
        let stalled = core_power(&cfg, cfg.core_fmax, &busy_counters(w, 0.1, 100_000), w);
        assert!(stalled < busy * 0.7, "stalled {stalled}, busy {busy}");
        // But never below leakage.
        assert!(stalled > cfg.core_max_power_w * cfg.core_leak_frac * 0.9);
    }

    #[test]
    fn fpu_heavy_mix_draws_more() {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let mut int_mix = busy_counters(w, 1.0, 1_000_000);
        let mut fp_mix = int_mix;
        fp_mix.cac_fpu = 320_000.0;
        fp_mix.cac_alu = 280_000.0;
        fp_mix.cac_branch = 80_000.0;
        fp_mix.cac_loadstore = 320_000.0;
        int_mix.cac_fpu = 20_000.0;
        let p_int = core_power(&cfg, cfg.core_fmax, &int_mix, w);
        let p_fp = core_power(&cfg, cfg.core_fmax, &fp_mix, w);
        assert!(p_fp > p_int);
    }

    #[test]
    fn memory_power_rises_with_traffic() {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let idle = MemCounters::default();
        let mut loaded = MemCounters::default();
        loaded.reads = 100_000;
        loaded.page_opens = 100_000;
        loaded.bus_busy = Ps::from_us(500) * 4;
        loaded.rank_active = Ps::from_us(700) * 16;
        loaded.refreshes = 2000;
        let p_idle = memory_power(&cfg, &geom(), Freq::from_mhz(800), &idle, w);
        let p_load = memory_power(&cfg, &geom(), Freq::from_mhz(800), &loaded, w);
        assert!(p_load.total() > p_idle.total() * 1.5);
        // MC spans its configured range.
        assert!(p_idle.mc_w >= cfg.mc_min_w * 0.99);
        assert!(p_load.mc_w > p_idle.mc_w);
        assert!(p_load.mc_w <= cfg.mc_max_w + 1e-9);
    }

    #[test]
    fn memory_power_falls_with_frequency_when_idle() {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let idle = MemCounters::default();
        let hi = memory_power(&cfg, &geom(), Freq::from_mhz(800), &idle, w).total();
        let lo = memory_power(&cfg, &geom(), Freq::from_mhz(200), &idle, w).total();
        assert!(lo < hi * 0.6, "lo {lo}, hi {hi}");
    }

    #[test]
    fn baseline_budget_matches_paper_split() {
        // At max frequencies with a busy 16-core system and a moderately
        // loaded memory subsystem, the split should be near 60/30/10.
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let cores: Vec<(Freq, CoreCounters)> = (0..16)
            .map(|_| (cfg.core_fmax, busy_counters(w, 0.85, 3_000_000)))
            .collect();
        let mut mem = MemCounters::default();
        mem.page_opens = 400_000;
        mem.bus_busy = Ps::from_us(350) * 4;
        mem.rank_active = Ps::from_us(600) * 16;
        mem.refreshes = 2048;
        let sys = system_power(
            &cfg,
            &geom(),
            &cores,
            2_000_000,
            Freq::from_mhz(800),
            &mem,
            w,
        );
        let total = sys.total();
        let cpu_frac = sys.cpu_total() / total;
        let mem_frac = sys.mem.total() / total;
        let rest_frac = sys.rest_w / total;
        assert!((0.50..0.70).contains(&cpu_frac), "cpu {cpu_frac}");
        assert!((0.20..0.40).contains(&mem_frac), "mem {mem_frac}");
        assert!((0.05..0.15).contains(&rest_frac), "rest {rest_frac}");
    }

    #[test]
    fn sleep_residency_cuts_background_power() {
        let cfg = PowerConfig::default();
        let w = Ps::from_ms(1);
        let idle = MemCounters::default();
        let mut sleeping = MemCounters::default();
        // All 16 ranks asleep 90% of the window.
        sleeping.rank_sleep = Ps::from_us(900) * 16;
        let p_idle = memory_power(&cfg, &geom(), Freq::from_mhz(800), &idle, w);
        let p_sleep = memory_power(&cfg, &geom(), Freq::from_mhz(800), &sleeping, w);
        assert!(
            p_sleep.dimm_w < p_idle.dimm_w * 0.6,
            "self-refresh should cut background: {} vs {}",
            p_sleep.dimm_w,
            p_idle.dimm_w
        );
    }

    #[test]
    fn energy_integrates_power() {
        let sys = SystemPower {
            cores_w: vec![10.0; 2],
            l2_w: 2.0,
            mem: MemPower {
                dimm_w: 5.0,
                mc_w: 2.0,
                pllreg_w: 1.0,
            },
            rest_w: 10.0,
        };
        assert!((sys.total() - 40.0).abs() < 1e-12);
        assert!((sys.energy(Ps::from_ms(5)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_window_degenerates_gracefully() {
        let cfg = PowerConfig::default();
        assert_eq!(
            core_power(&cfg, cfg.core_fmax, &CoreCounters::default(), Ps::ZERO),
            0.0
        );
        let mp = memory_power(
            &cfg,
            &geom(),
            Freq::from_mhz(800),
            &MemCounters::default(),
            Ps::ZERO,
        );
        assert_eq!(mp.total(), 0.0);
    }
}
